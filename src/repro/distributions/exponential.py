"""The exponential distribution — the interarrival law of a Poisson process.

The paper's central negative result is that exponential interarrivals (and
hence Poisson arrival processes) badly misrepresent most wide-area traffic.
This module provides the exponential both as the null model under test
(Appendix A) and as the comparison curves of Fig. 3 (fits to the geometric
and arithmetic means of observed TELNET interarrivals).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution, geometric_mean
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

#: Euler-Mascheroni constant; the geometric mean of an Exponential(mean=m)
#: is m * exp(-gamma).
EULER_GAMMA = 0.5772156649015329


class Exponential(Distribution):
    """Exponential distribution parameterized by its mean (= 1 / rate)."""

    name = "exponential"

    def __init__(self, mean: float):
        self._mean = require_positive(mean, "mean")

    @property
    def rate(self) -> float:
        """Arrival rate lambda = 1 / mean."""
        return 1.0 / self._mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2

    @property
    def geometric_mean_value(self) -> float:
        """Closed-form geometric mean, mean * exp(-gamma)."""
        return self._mean * math.exp(-EULER_GAMMA)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x >= 0
        out[pos] = np.exp(-x[pos] / self._mean) / self._mean
        return out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x < 0, 0.0, -np.expm1(-np.maximum(x, 0.0) / self._mean))

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x < 0, 1.0, np.exp(-np.maximum(x, 0.0) / self._mean))

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return -self._mean * np.log1p(-q)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        return as_rng(seed).exponential(self._mean, size)

    def cmex(self, x: float, **_ignored) -> float:
        """Memorylessness: the conditional mean exceedance is constant."""
        return self._mean

    @classmethod
    def fit(cls, samples) -> "Exponential":
        """Maximum-likelihood fit: the sample mean."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot fit an exponential to an empty sample")
        if np.any(arr < 0):
            raise ValueError("exponential samples must be nonnegative")
        return cls(float(np.mean(arr)))

    @classmethod
    def fit_geometric(cls, samples) -> "Exponential":
        """Fit so the *geometric* means agree (Fig. 3's 'fit #1').

        Solves m * exp(-gamma) = geometric_mean(samples) for the mean m.
        """
        g = geometric_mean(samples)
        return cls(g * math.exp(EULER_GAMMA))
