"""Tcplib-style empirical traffic distributions.

Tcplib (Danzig & Jamin [11]; Danzig et al. [12]) ships empirical inverse-CDF
tables measured from the UCB trace.  The original tables are not
redistributable here, so this module provides a **calibrated substitute**
for the one table the paper depends on — the TELNET originator packet
interarrival distribution — constructed to match every property the paper
publishes about it (see DESIGN.md, "Substitutions"):

* under 2% of interarrivals are shorter than 8 ms;
* over 15% are longer than 1 s;
* the body fits a Pareto with shape beta ~= 0.9 and the upper 3% tail a
  Pareto with beta ~= 0.95 (Section IV);
* the arithmetic mean is ~1.1 s, so an Exponential(1.1) comparator produces
  "roughly the same number of packets" over a 2000 s connection (Fig. 4);
* the geometric mean sits in the 0.1-0.35 s range, so an exponential fitted
  to it crosses the empirical CDF in the 200-400 ms region (Fig. 3).

Also provided: the connection-size laws of Section V (log2-normal packets,
log-extreme bytes) under Tcplib-flavoured names, so model code reads like
the paper.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.lognormal import Log2Normal
from repro.distributions.logextreme import LogExtreme

#: Quantile anchors of the substitute TELNET interarrival table (seconds).
#: Body hand-calibrated to the paper's published percentile anchors; the
#: p >= 0.97 region follows a Pareto(location=4.5, shape=0.95) truncated at
#: 180 s (an untruncated beta < 1 tail has infinite mean, which a finite
#: empirical table cannot represent — Tcplib's own tables are truncated the
#: same way).
_TELNET_INTERARRIVAL_P = np.array(
    [0.0, 0.015, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70,
     0.80, 0.85, 0.90, 0.95, 0.97, 0.98, 0.99, 0.995, 0.998, 0.9995, 1.0]
)
_TELNET_INTERARRIVAL_X = np.array(
    [0.005, 0.008, 0.030, 0.060, 0.110, 0.170, 0.240, 0.330, 0.460, 0.650,
     0.950, 1.20, 1.90, 3.60, 4.50, 6.90, 14.3, 29.7, 60.0, 120.0, 180.0]
)


def telnet_packet_interarrival() -> EmpiricalDistribution:
    """The Tcplib TELNET originator packet interarrival distribution.

    This is the solid curve of Fig. 3 and the per-packet clock of the
    TCPLIB synthesis scheme and the FULL-TEL model.
    """
    return EmpiricalDistribution(
        _TELNET_INTERARRIVAL_P,
        _TELNET_INTERARRIVAL_X,
        log_interp=True,
        name="tcplib-telnet-interarrival",
    )


#: TELNET originator packet sizes in user-data bytes.  Section V: "One
#: generally assumes that each TELNET originator packet conveys one byte of
#: user data ... Often, however, a packet carries more than one byte, either
#: due to effects of the Nagle algorithm [32] or because the TELNET
#: connection is operating in 'line mode'"; LBL PKT-2 carried ~85,000
#: packets holding ~139,000 user-data bytes (1.63 bytes/packet).  The table
#: below mixes single keystrokes with Nagle-coalesced runs and line-mode
#: lines to land on that mean.
_TELNET_PACKET_BYTES_P = np.array(
    [0.0, 0.80, 0.88, 0.93, 0.96, 0.98, 0.995, 1.0]
)
_TELNET_PACKET_BYTES_X = np.array(
    [1.0, 1.0, 2.0, 3.0, 5.0, 8.0, 16.0, 40.0]
)


def telnet_packet_bytes() -> EmpiricalDistribution:
    """User-data bytes per TELNET originator packet (keystrokes, Nagle
    coalescing, line mode).  Mean ~1.6 bytes/packet, per Section V."""
    return EmpiricalDistribution(
        _TELNET_PACKET_BYTES_P,
        _TELNET_PACKET_BYTES_X,
        log_interp=False,
        name="tcplib-telnet-packet-bytes",
    )


def telnet_connection_packets() -> Log2Normal:
    """Section V: TELNET originator packets per connection, log2-normal.

    log2-mean log2(100), log2-sd 2.24 — the paper's fit to LBL PKT-2
    (with the caveat that "the exact numerical values ... should not be
    taken too seriously").
    """
    return Log2Normal.paxson_telnet_packets()


def telnet_connection_bytes() -> LogExtreme:
    """Ref. [34] / Section V: TELNET originator bytes per connection,
    log-extreme with alpha = log2(100), beta = log2(3.5)."""
    return LogExtreme.paxson_telnet_bytes()
