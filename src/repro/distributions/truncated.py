"""Upper truncation of a distribution.

Several of the paper's laws have infinite mean (Pareto with beta <= 1,
log-extreme with beta ln2 >= 1); any finite trace or empirical table
implicitly truncates them.  :class:`Truncated` makes that explicit: the
conditional law X | X <= upper, with exact CDF/quantile algebra rather than
rejection sampling, so experiments can reason about what truncation does to
tail mass (e.g. the Tcplib table's 180 s cap, Appendix B's remarks on
finite-sample means of infinite-mean laws).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng


class Truncated(Distribution):
    """The conditional distribution X | X <= upper.

    CDF: F_T(x) = F(x) / F(upper) for x <= upper, 1 beyond;
    quantile: Q_T(q) = Q(q * F(upper)).
    """

    name = "truncated"

    def __init__(self, base: Distribution, upper: float):
        mass = float(np.atleast_1d(base.cdf(np.asarray(upper, dtype=float)))[0])
        if not 0.0 < mass <= 1.0:
            raise ValueError(
                f"no probability mass at or below upper={upper!r} "
                f"(F(upper) = {mass})"
            )
        self.base = base
        self.upper = float(upper)
        self._mass = mass
        self.name = f"truncated-{base.name}"

    # ------------------------------------------------------------------
    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.asarray(self.base.cdf(np.minimum(x, self.upper)),
                         dtype=float) / self._mass
        return np.where(x >= self.upper, 1.0, out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        return np.minimum(
            np.asarray(self.base.ppf(q * self._mass), dtype=float), self.upper
        )

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.asarray(self.base.pdf(x), dtype=float) / self._mass
        return np.where(x > self.upper, 0.0, out)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        return np.asarray(self.ppf(as_rng(seed).random(size)), dtype=float)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Numeric mean of the truncated law — finite even when the base
        law's mean is infinite (the whole point)."""
        q = np.linspace(0.0, 1.0, 200001)
        return float(np.mean(self.ppf(q)))

    @property
    def variance(self) -> float:
        q = np.linspace(0.0, 1.0, 200001)
        return float(np.var(self.ppf(q)))

    @property
    def truncated_mass(self) -> float:
        """P[X > upper] under the base law — what the cap discards."""
        return 1.0 - self._mass
