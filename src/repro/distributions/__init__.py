"""Distribution substrate: every law the paper fits, samples, or tests.

* :class:`Exponential` — the Poisson null model and Fig. 3's comparators.
* :class:`Pareto` — the heavy tail of Appendix B (+ Hill / tail fitting).
* :class:`Log2Normal` — TELNET packets-per-connection (Section V).
* :class:`LogExtreme` — TELNET bytes-per-connection (Section V, ref. [34]).
* :class:`Weibull`, :class:`DiscretePareto` — Appendix B's supporting cast.
* :class:`EmpiricalDistribution` + :mod:`repro.distributions.tcplib` — the
  Tcplib machinery and the calibrated TELNET interarrival table.
"""

from repro.distributions.base import (
    Distribution,
    empirical_cdf,
    geometric_mean,
    is_heavy_tailed_estimate,
    lognormal_fit_log2,
    moment_summary,
)
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.logextreme import LogExtreme
from repro.distributions.loglogistic import LogLogistic
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto, hill_estimator, tail_fit
from repro.distributions.truncated import Truncated
from repro.distributions.weibull import Weibull
from repro.distributions.zipf import DiscretePareto
from repro.distributions import tcplib

__all__ = [
    "Distribution",
    "EmpiricalDistribution",
    "Exponential",
    "LogExtreme",
    "LogLogistic",
    "Log2Normal",
    "Pareto",
    "Truncated",
    "Weibull",
    "DiscretePareto",
    "empirical_cdf",
    "geometric_mean",
    "hill_estimator",
    "is_heavy_tailed_estimate",
    "lognormal_fit_log2",
    "moment_summary",
    "tail_fit",
    "tcplib",
]
