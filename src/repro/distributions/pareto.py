"""The classical Pareto distribution (Appendix B).

The Pareto is the paper's workhorse heavy tail: TELNET packet interarrivals
(body beta ~= 0.9, upper-3% tail beta ~= 0.95), FTPDATA burst sizes
(0.9 <= beta <= 1.4), connections per burst, and the i.i.d.-Pareto renewal
process of Appendix C all use it.  With shape beta <= 1 the mean is infinite;
with beta <= 2 the variance is infinite.

CDF:  F(x) = 1 - (a / x)^beta   for x >= a,
PDF:  f(x) = beta * a^beta * x^(-beta-1).

Appendix B properties implemented here:

* conditional mean exceedance CMEX(x) = x / (beta - 1) for beta > 1
  (linear and increasing — the signature of a heavy tail);
* invariance under truncation from below: X | X > x0 is again Pareto with
  the same shape and location x0 (eq. (2) in the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


class Pareto(Distribution):
    """Classical (type I) Pareto with location ``a`` and shape ``beta``."""

    name = "pareto"

    def __init__(self, location: float, shape: float):
        self.location = require_positive(location, "location")
        self.shape = require_positive(shape, "shape")

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.location / (self.shape - 1.0)

    @property
    def variance(self) -> float:
        if self.shape <= 2.0:
            return math.inf
        b, a = self.shape, self.location
        return (a**2 * b) / ((b - 1.0) ** 2 * (b - 2.0))

    # ------------------------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        ok = x >= self.location
        out[ok] = self.shape * self.location**self.shape * x[ok] ** (-self.shape - 1.0)
        return out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        ok = x >= self.location
        out[ok] = 1.0 - (self.location / x[ok]) ** self.shape
        return out

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        ok = x >= self.location
        out[ok] = (self.location / x[ok]) ** self.shape
        return out

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.location * (1.0 - q) ** (-1.0 / self.shape)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        # Inverse transform on 1-U (strictly positive) avoids the q=1 pole.
        u = rng.random(size)
        return self.location * np.power(u, -1.0 / self.shape)

    # ------------------------------------------------------------------
    def cmex(self, x: float, **_ignored) -> float:
        """E[X - x | X > x] = x / (beta - 1) for beta > 1, else infinite."""
        x = max(float(x), self.location)
        if self.shape <= 1.0:
            return math.inf
        return x / (self.shape - 1.0)

    def truncated_from_below(self, x0: float) -> "Pareto":
        """The distribution of X | X > x0 — another Pareto, same shape.

        This is the 'invariance under truncation from below' property the
        paper uses in Appendix C to show the distribution of lull lengths is
        invariant in the bin width b.
        """
        if x0 < self.location:
            return Pareto(self.location, self.shape)
        return Pareto(x0, self.shape)

    def truncated_mean(self, upper: float) -> float:
        """Mean of the Pareto truncated (censored) to [location, upper].

        Finite even when beta <= 1; used to reason about finite-sample
        behaviour of the infinite-mean regimes.
        """
        a, b = self.location, self.shape
        require_positive(upper - a, "upper - location")
        if abs(b - 1.0) < 1e-12:
            body = a * math.log(upper / a)
        else:
            body = (b * a**b) * (upper ** (1.0 - b) - a ** (1.0 - b)) / (1.0 - b)
        # Mass beyond `upper` is placed at `upper` (censoring).
        return body + upper * (a / upper) ** b

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, samples, location: float | None = None) -> "Pareto":
        """Maximum-likelihood fit.

        With known ``location`` a, the MLE of the shape is
        beta_hat = n / sum(log(x_i / a)).  If ``location`` is omitted it is
        estimated by the sample minimum (its MLE).
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot fit a Pareto to an empty sample")
        a = float(arr.min()) if location is None else float(location)
        require_positive(a, "location")
        if np.any(arr < a):
            raise ValueError("samples below the location parameter")
        logs = np.log(arr / a)
        total = float(np.sum(logs))
        if total <= 0:
            raise ValueError("degenerate sample: all values equal the location")
        return cls(a, arr.size / total)


def hill_estimator(samples, k: int) -> float:
    """Hill estimator of the Pareto tail index from the k largest order stats.

    Returns beta_hat = k / sum_{i=1..k} log(X_(n-i+1) / X_(n-k)).  The paper
    fits Pareto shapes to the upper tails of interarrival and burst-size
    distributions; the Hill estimator is the standard tool for that.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    n = arr.size
    if not 1 <= k < n:
        raise ValueError(f"k must satisfy 1 <= k < n (= {n}), got {k}")
    threshold = arr[n - k - 1]
    if threshold <= 0:
        raise ValueError("Hill estimator requires a positive tail threshold")
    tail = arr[n - k:]
    logs = np.log(tail / threshold)
    total = float(np.sum(logs))
    if total <= 0:
        raise ValueError("degenerate upper tail")
    return k / total


def tail_fit(samples, tail_fraction: float = 0.05) -> Pareto:
    """Fit a Pareto to the upper ``tail_fraction`` of a sample.

    Mirrors the paper's practice of fitting e.g. the 'upper 5% tail' of the
    FTPDATA burst-size distribution (Section VI) or the 'upper 3% tail' of
    the TELNET interarrival distribution (Section IV).
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    n = arr.size
    k = max(2, int(math.floor(n * tail_fraction)))
    if k >= n:
        raise ValueError("tail fraction leaves no body below the threshold")
    shape = hill_estimator(arr, k)
    location = float(arr[n - k - 1])
    return Pareto(location, shape)
