"""Empirical (quantile-table) distributions, Tcplib-style.

Tcplib [11, 12] distributes traffic models as empirical tables: sorted
breakpoints of the inverse CDF that generators sample by inverse transform.
:class:`EmpiricalDistribution` reproduces that machinery.  Between anchors we
interpolate the quantile function either linearly or log-linearly; the latter
respects the multi-decade spread of heavy-tailed interarrival data (Fig. 3's
x-axis is log10 seconds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_sorted


class EmpiricalDistribution(Distribution):
    """Distribution defined by (probability, value) quantile anchors.

    Parameters
    ----------
    probabilities:
        Nondecreasing anchor probabilities; must start at 0.0 and end at 1.0.
    values:
        Nondecreasing anchor values, same length.
    log_interp:
        If True (default), interpolate the quantile function linearly in
        log-value space (requires strictly positive values).  This is the
        right choice for interarrival-time tables whose support spans
        milliseconds to minutes.
    """

    name = "empirical"

    def __init__(
        self,
        probabilities: Sequence[float],
        values: Sequence[float],
        *,
        log_interp: bool = True,
        name: str | None = None,
    ):
        p = require_sorted(probabilities, "probabilities")
        v = require_sorted(values, "values")
        if p.size != v.size:
            raise ValueError("probabilities and values must have equal length")
        if p.size < 2:
            raise ValueError("need at least two anchors")
        if abs(p[0]) > 1e-12 or abs(p[-1] - 1.0) > 1e-12:
            raise ValueError("probabilities must span [0, 1] exactly")
        if log_interp and np.any(v <= 0):
            raise ValueError("log interpolation requires strictly positive values")
        self._p = p
        self._v = v
        self._log = log_interp
        if name:
            self.name = name

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples, *, log_interp: bool = False) -> "EmpiricalDistribution":
        """Build an empirical table directly from observed data.

        Anchors the quantile function at every order statistic, so sampling
        from the result resamples the data with interpolation.
        """
        x = np.sort(np.asarray(samples, dtype=float))
        if x.size < 2:
            raise ValueError("need at least two samples")
        p = np.linspace(0.0, 1.0, x.size)
        return cls(p, x, log_interp=log_interp)

    # ------------------------------------------------------------------
    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        if self._log:
            return np.exp(np.interp(q, self._p, np.log(self._v)))
        return np.interp(q, self._p, self._v)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        if self._log:
            lo, hi = self._v[0], self._v[-1]
            xc = np.clip(x, lo, hi)
            out = np.interp(np.log(xc), np.log(self._v), self._p)
        else:
            out = np.interp(x, self._v, self._p)
        out = np.where(x < self._v[0], 0.0, out)
        out = np.where(x >= self._v[-1], 1.0, out)
        return out

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        return self.ppf(rng.random(size))

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Mean of the interpolated distribution (numeric, on a fine grid)."""
        q = np.linspace(0.0, 1.0, 200001)
        return float(np.mean(self.ppf(q)))

    @property
    def variance(self) -> float:
        q = np.linspace(0.0, 1.0, 200001)
        x = self.ppf(q)
        return float(np.var(x))

    @property
    def geometric_mean_value(self) -> float:
        """Geometric mean of the interpolated distribution."""
        q = np.linspace(0.0, 1.0, 200001)
        x = self.ppf(q)
        if np.any(x <= 0):
            raise ValueError("geometric mean requires positive support")
        return float(np.exp(np.mean(np.log(x))))

    @property
    def support(self) -> tuple[float, float]:
        return float(self._v[0]), float(self._v[-1])

    @property
    def anchors(self) -> tuple[np.ndarray, np.ndarray]:
        """The (probabilities, values) table (copies)."""
        return self._p.copy(), self._v.copy()
