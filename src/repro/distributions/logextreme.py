"""Log-extreme (log2-Gumbel) distribution.

Paxson's earlier measurement paper (ref. [34]) — and Section V of this one —
model the number of *bytes* sent by a wide-area TELNET originator as
"log-extreme": log2(X) follows an extreme-value (Gumbel) distribution with
location alpha = log2(100) and scale beta = log2(3.5),

    P[log2 X <= y] = exp(-exp(-(y - alpha) / beta)).

Section V contrasts this with the log2-normal fit for connection size in
*packets*: bytes stay log-extreme, packets are better modeled log-normal.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

_LN2 = math.log(2.0)
#: Euler-Mascheroni constant (mean of the standard Gumbel).
_GAMMA = 0.5772156649015329


class LogExtreme(Distribution):
    """X such that log2(X) ~ Gumbel(location=alpha, scale=beta)."""

    name = "log-extreme"

    def __init__(self, alpha: float, beta: float):
        self.alpha = float(alpha)
        self.beta = require_positive(beta, "beta")

    @classmethod
    def paxson_telnet_bytes(cls) -> "LogExtreme":
        """The paper's fit: alpha = log2(100), beta = log2(3.5)."""
        return cls(alpha=math.log2(100.0), beta=math.log2(3.5))

    # ------------------------------------------------------------------
    @property
    def log2_mean(self) -> float:
        """Mean of log2(X): alpha + gamma * beta."""
        return self.alpha + _GAMMA * self.beta

    @property
    def log2_median(self) -> float:
        return self.alpha - self.beta * math.log(math.log(2.0))

    @property
    def mean(self) -> float:
        """E[X] = E[2^G] = Gamma(1 - beta*ln2) * 2^alpha when beta*ln2 < 1.

        For beta*ln2 >= 1 the mean is infinite (the Gumbel's MGF pole).
        """
        t = self.beta * _LN2
        if t >= 1.0:
            return math.inf
        return math.gamma(1.0 - t) * 2.0**self.alpha

    @property
    def variance(self) -> float:
        t = self.beta * _LN2
        if 2.0 * t >= 1.0:
            return math.inf
        ex = self.mean
        ex2 = math.gamma(1.0 - 2.0 * t) * 2.0 ** (2.0 * self.alpha)
        return ex2 - ex**2

    # ------------------------------------------------------------------
    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        y = np.log2(x[pos])
        out[pos] = np.exp(-np.exp(-(y - self.alpha) / self.beta))
        return out

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        y = np.log2(x[pos])
        z = (y - self.alpha) / self.beta
        # Chain rule: d(log2 x)/dx = 1 / (x ln 2).
        out[pos] = np.exp(-z - np.exp(-z)) / (self.beta * x[pos] * _LN2)
        return out

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore", over="ignore"):
            y = self.alpha - self.beta * np.log(-np.log(q))
            return np.power(2.0, y)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        g = rng.gumbel(self.alpha, self.beta, size)
        return np.power(2.0, g)

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, samples) -> "LogExtreme":
        """Method-of-moments fit on log2 of the data.

        Gumbel(alpha, beta) has mean alpha + gamma*beta and variance
        (pi^2 / 6) * beta^2, giving beta_hat = sd * sqrt(6) / pi.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size < 2:
            raise ValueError("need at least 2 samples to fit a log-extreme")
        if np.any(arr <= 0):
            raise ValueError("log-extreme samples must be strictly positive")
        logs = np.log2(arr)
        sd = float(np.std(logs, ddof=1))
        if sd <= 0:
            raise ValueError("degenerate sample: zero variance in log2 space")
        beta = sd * math.sqrt(6.0) / math.pi
        alpha = float(np.mean(logs)) - _GAMMA * beta
        return cls(alpha, beta)
