"""Discrete Pareto (Zipf) distribution of Appendix B.

The paper quotes (after Feller) the discrete law

    P[X = n] = 1 / ((n + 1)(n + 2)),   n >= 0,

which arises for platoon lengths of cars on an infinite road with no passing
— "a model suggestively analogous to computer network traffic."  Its mean is
infinite: sum n / ((n+1)(n+2)) diverges like the harmonic series.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng


class DiscretePareto(Distribution):
    """P[X = n] = 1 / ((n + 1)(n + 2)) for integer n >= 0."""

    name = "discrete-pareto"

    @property
    def mean(self) -> float:
        return math.inf

    @property
    def variance(self) -> float:
        return math.inf

    def pmf(self, n):
        n = np.asarray(n)
        out = np.zeros(n.shape, dtype=float)
        ok = (n >= 0) & (n == np.floor(n))
        nn = n[ok].astype(float)
        out[ok] = 1.0 / ((nn + 1.0) * (nn + 2.0))
        return out

    def cdf(self, x):
        # P[X <= x] = sum_{n=0}^{floor(x)} 1/((n+1)(n+2)) telescopes to
        # 1 - 1/(floor(x) + 2).
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        ok = x >= 0
        out[ok] = 1.0 - 1.0 / (np.floor(x[ok]) + 2.0)
        return out

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        ok = x >= 0
        out[ok] = 1.0 / (np.floor(x[ok]) + 2.0)
        return out

    def ppf(self, q):
        # Smallest n with 1 - 1/(n+2) >= q  <=>  n >= 1/(1-q) - 2.
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            n = np.ceil(1.0 / (1.0 - q) - 2.0)
        return np.maximum(n, 0.0)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        u = rng.random(size)
        return self.ppf(u).astype(np.int64)
