"""Weibull distribution.

Appendix B notes the Weibull (with shape < 1) satisfies the paper's
heavy-tail-adjacent definitions: it is subexponential/long-tailed, and for
shape < 1 its conditional mean exceedance increases.  It appears in the
paper's citations for telephone call holding times; we include it so tail
comparisons (exponential vs Weibull vs Pareto vs log-normal) can be run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


class Weibull(Distribution):
    """Weibull with scale ``lam`` and shape ``k``: S(x) = exp(-(x/lam)^k)."""

    name = "weibull"

    def __init__(self, scale: float, shape: float):
        self.scale = require_positive(scale, "scale")
        self.shape = require_positive(shape, "shape")

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        z = x[pos] / self.scale
        out[pos] = (self.shape / self.scale) * z ** (self.shape - 1.0) * np.exp(-(z**self.shape))
        return out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        out[pos] = -np.expm1(-((x[pos] / self.scale) ** self.shape))
        return out

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        pos = x > 0
        out[pos] = np.exp(-((x[pos] / self.scale) ** self.shape))
        return out

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.scale * (-np.log1p(-q)) ** (1.0 / self.shape)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        return self.scale * rng.weibull(self.shape, size)

    def is_subexponential(self) -> bool:
        """Subexponential (long-tailed) iff shape < 1."""
        return self.shape < 1.0
