"""Log-normal distribution, parameterized in base-2 logs as in the paper.

Section V models TELNET connection sizes *in packets* as log2-normal with
log2-mean log2(100) and log2-standard-deviation 2.24.  Appendix E proves the
log-normal is *subexponential* (long-tailed: its tail decays slower than any
exponential) but **not** heavy-tailed in the power-law sense of eq. (1) —
which is exactly why the M/G/infinity queue with log-normal service times is
not long-range dependent.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

_LN2 = math.log(2.0)
_SQRT2 = math.sqrt(2.0)


class Log2Normal(Distribution):
    """X such that log2(X) ~ Normal(mu2, sigma2^2)."""

    name = "log2-normal"

    def __init__(self, log2_mean: float, log2_sd: float):
        self.log2_mean = float(log2_mean)
        self.log2_sd = require_positive(log2_sd, "log2_sd")
        # Natural-log parameters for the standard formulae.
        self._mu = self.log2_mean * _LN2
        self._sigma = self.log2_sd * _LN2

    @classmethod
    def paxson_telnet_packets(cls) -> "Log2Normal":
        """Section V's fit for TELNET originator packets per connection."""
        return cls(log2_mean=math.log2(100.0), log2_sd=2.24)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return math.exp(self._mu + self._sigma**2 / 2.0)

    @property
    def variance(self) -> float:
        s2 = self._sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self._mu + s2)

    @property
    def median(self) -> float:
        return math.exp(self._mu)

    # ------------------------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        z = (np.log(x[pos]) - self._mu) / self._sigma
        out[pos] = np.exp(-0.5 * z**2) / (x[pos] * self._sigma * math.sqrt(2 * math.pi))
        return out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        z = (np.log(x[pos]) - self._mu) / self._sigma
        out[pos] = 0.5 * (1.0 + special.erf(z / _SQRT2))
        return out

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        z = special.erfinv(2.0 * q - 1.0) * _SQRT2
        with np.errstate(over="ignore"):
            return np.exp(self._mu + self._sigma * z)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        rng = as_rng(seed)
        return rng.lognormal(self._mu, self._sigma, size)

    # ------------------------------------------------------------------
    def is_heavy_tailed(self) -> bool:
        """Always False: Appendix E shows the log-normal tail
        exp(-log^2(x)/2) / log(x) eventually drops below any power x^-beta."""
        return False

    @classmethod
    def fit(cls, samples) -> "Log2Normal":
        """MLE on log2 of the data."""
        arr = np.asarray(samples, dtype=float)
        if arr.size < 2:
            raise ValueError("need at least 2 samples to fit a log-normal")
        if np.any(arr <= 0):
            raise ValueError("log-normal samples must be strictly positive")
        logs = np.log2(arr)
        sd = float(np.std(logs, ddof=1))
        if sd <= 0:
            raise ValueError("degenerate sample: zero variance in log2 space")
        return cls(float(np.mean(logs)), sd)
