"""Log-logistic distribution.

Section VI, on intra-session FTPDATA spacings (Fig. 8): "the upper tail of
the distribution is much heavier than exponential ... and is better
approximated using a log-normal or log-logistic distribution."

Parameterized by ``scale`` alpha (the median) and ``shape`` beta:

    F(x) = 1 / (1 + (x / alpha)^(-beta)),  x > 0.

The survival function decays like x^(-beta) — a genuine power-law tail, so
the log-logistic is heavy-tailed in the paper's eq.-(1) sense, with
infinite mean for beta <= 1 and infinite variance for beta <= 2.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


class LogLogistic(Distribution):
    """Log-logistic with median ``scale`` and tail index ``shape``."""

    name = "log-logistic"

    def __init__(self, scale: float, shape: float):
        self.scale = require_positive(scale, "scale")
        self.shape = require_positive(shape, "shape")

    @property
    def median(self) -> float:
        return self.scale

    @property
    def mean(self) -> float:
        """alpha * (pi/beta) / sin(pi/beta) for beta > 1, else infinite."""
        if self.shape <= 1.0:
            return math.inf
        b = math.pi / self.shape
        return self.scale * b / math.sin(b)

    @property
    def variance(self) -> float:
        if self.shape <= 2.0:
            return math.inf
        b = math.pi / self.shape
        ex2 = self.scale**2 * 2.0 * b / math.sin(2.0 * b)
        return ex2 - self.mean**2

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        z = (x[pos] / self.scale) ** self.shape
        out[pos] = (self.shape / x[pos]) * z / (1.0 + z) ** 2
        return out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        z = (x[pos] / self.scale) ** self.shape
        out[pos] = z / (1.0 + z)
        return out

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        pos = x > 0
        z = (x[pos] / self.scale) ** self.shape
        out[pos] = 1.0 / (1.0 + z)
        return out

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any(~((q >= 0) & (q <= 1))):  # rejects NaN too
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.scale * (q / (1.0 - q)) ** (1.0 / self.shape)

    def sample(self, size, seed: SeedLike = None) -> np.ndarray:
        return np.asarray(self.ppf(as_rng(seed).random(size)), dtype=float)

    def is_heavy_tailed(self) -> bool:
        """S(x) ~ (x/alpha)^(-beta): always power-law tailed."""
        return True

    @classmethod
    def fit(cls, samples) -> "LogLogistic":
        """Moment-style fit in log space.

        log X follows a logistic distribution with location log(alpha) and
        scale 1/beta; the logistic's sd is pi/(beta sqrt(3)), giving
        beta_hat = pi / (sd(log x) * sqrt(3)).
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size < 2:
            raise ValueError("need at least 2 samples")
        if np.any(arr <= 0):
            raise ValueError("log-logistic samples must be positive")
        logs = np.log(arr)
        sd = float(np.std(logs, ddof=1))
        if sd <= 0:
            raise ValueError("degenerate sample")
        return cls(
            scale=float(np.exp(np.median(logs))),
            shape=math.pi / (sd * math.sqrt(3.0)),
        )
