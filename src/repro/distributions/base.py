"""Abstract base class for the distributions used throughout the paper.

Each distribution exposes the usual quartet (pdf / cdf / sf / ppf), sampling
through a :class:`numpy.random.Generator`, analytic moments where they exist
(several of the paper's distributions have *infinite* mean or variance — the
Pareto with beta <= 1 being the star of the show), and the tail diagnostics
the paper leans on: the survival function and the conditional mean exceedance
(Appendix B).
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class Distribution(abc.ABC):
    """A univariate distribution over (a subset of) the real line."""

    #: Human-readable name used in experiment tables.
    name: str = "distribution"

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cdf(self, x):
        """Cumulative distribution function P[X <= x] (vectorized)."""

    @abc.abstractmethod
    def ppf(self, q):
        """Quantile function (inverse CDF), defined for q in [0, 1]."""

    def sf(self, x):
        """Survival function P[X > x]."""
        return 1.0 - np.asarray(self.cdf(x), dtype=float)

    def pdf(self, x):
        """Probability density.  Subclasses with closed forms override this."""
        raise NotImplementedError(f"{self.name} does not define a density")

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Analytic mean; ``math.inf`` when the mean does not exist."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Analytic variance; ``math.inf`` when it does not exist."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
        """Draw samples by inverse-transform; subclasses may specialize."""
        rng = as_rng(seed)
        u = rng.random(size)
        return np.asarray(self.ppf(u), dtype=float)

    # ------------------------------------------------------------------
    # Tail diagnostics (Appendix B)
    # ------------------------------------------------------------------
    def cmex(self, x: float, *, grid: int = 20001, upper: float | None = None) -> float:
        """Conditional mean exceedance E[X - x | X > x].

        Appendix B classifies tails by the CMEX: decreasing for light tails
        (uniform), constant for the memoryless exponential, and *increasing*
        for heavy tails such as the Pareto.  The default implementation
        integrates the survival function numerically,

            CMEX(x) = (1 / S(x)) * integral_x^upper S(t) dt,

        which subclasses with closed forms override.
        """
        sx = float(self.sf(x))
        if sx <= 0.0:
            raise ValueError(f"survival function is zero at x={x}; CMEX undefined")
        if upper is None:
            upper = float(self.ppf(1.0 - 1e-9))
        if upper <= x:
            return 0.0
        t = np.linspace(x, upper, grid)
        st = np.asarray(self.sf(t), dtype=float)
        return float(np.trapezoid(st, t) / sx)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def log_survival(self, x):
        """log P[X > x]; useful for tail plots spanning many decades."""
        with np.errstate(divide="ignore"):
            return np.log(self.sf(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def empirical_cdf(samples: Sequence[float]):
    """Return ``(sorted_x, ecdf_values)`` for plotting / comparison.

    The returned ECDF uses the right-continuous convention
    ``F_n(x_i) = i / n`` for the i-th order statistic.
    """
    x = np.sort(np.asarray(samples, dtype=float))
    if x.size == 0:
        raise ValueError("cannot build an ECDF from an empty sample")
    return x, np.arange(1, x.size + 1) / x.size


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples.

    Section IV fits one of its two exponential comparison curves to the
    geometric mean of the observed TELNET interarrivals.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def lognormal_fit_log2(samples: Sequence[float]) -> tuple[float, float]:
    """Fit (mean, sd) of log2(samples); the paper's log2-normal parameters."""
    arr = np.asarray(samples, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("log2-normal fit requires strictly positive samples")
    logs = np.log2(arr)
    return float(np.mean(logs)), float(np.std(logs, ddof=1)) if arr.size > 1 else 0.0


def moment_summary(samples: Sequence[float]) -> dict[str, float]:
    """Descriptive moments used in experiment printouts."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    out = {
        "n": float(arr.size),
        "mean": float(np.mean(arr)),
        "variance": float(np.var(arr, ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "median": float(np.median(arr)),
    }
    if np.all(arr > 0):
        out["geometric_mean"] = geometric_mean(arr)
    return out


def is_heavy_tailed_estimate(samples: Sequence[float], *, points: int = 5) -> bool:
    """Crude empirical heavy-tail check via an increasing CMEX curve.

    Evaluates the empirical mean exceedance at ``points`` quantiles between
    the median and the 95th percentile and reports whether it increases
    overall — the Appendix B definition operationalized on data.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size < 20:
        raise ValueError("need at least 20 samples for a CMEX estimate")
    qs = np.linspace(0.5, 0.95, points)
    thresholds = np.quantile(arr, qs)
    cmex = []
    for t in thresholds:
        exceed = arr[arr > t]
        if exceed.size == 0:
            break
        cmex.append(float(np.mean(exceed - t)))
    if len(cmex) < 2:
        return False
    return cmex[-1] > cmex[0]
