"""Trace-side policing inference: was this traffic rate-limited, and at
what rate?

A token-bucket policer leaves a distinctive fingerprint on the *output*
trace alone (no loss or sender-side information needed): whenever the
offered load exceeds the policed rate ``r``, the surviving traffic
drains tokens as fast as they refill, so the binned byte rate sits in a
narrow plateau at exactly ``r`` with a hard ceiling — the only traffic
above the plateau is the one-bucket credit spilled at each busy-period
start.  Unpoliced bursty traffic has neither feature: its bin-rate
distribution is spread (heavy-tailed, per the paper) with substantial
byte mass well above any interior mode.

The inference runs the same plateau fit at a ladder of time scales
(power-of-two aggregations of one fine byte histogram), because no
single bin width works: too fine and packet quantization shreds the
plateau (a bin must hold many packets at the candidate rate), too
coarse and every trace collapses toward its mean rate.  Per scale, the
candidate rate maximizing byte-weighted plateau share is scored on

* **plateau share** — bytes within ``±tol·r̂`` among "active" bins
  (``≥ r̂/2``; partial bins at busy-period edges carry no evidence);
* **coverage** — plateau bytes as a share of the whole trace (guards
  against locking onto bucket-spill spikes, which carry few bytes);
* **excess share** — bytes *above* ``(1+tol)·r̂`` in excess of the
  ceiling, as a share of the trace: near zero for policed traffic
  (spill is bounded by one bucket per busy period), large for
  unpoliced heavy-tailed traffic;
* **idle structure** — policing is only attributable when the trace
  has on/off structure (the clipped bursts); a trace that never goes
  idle (CBR, Poisson) is indistinguishable from a smooth source at the
  same rate, and scores zero here by design;
* **cross-scale corroboration** — a true policing plateau sits at the
  same rate at every resolvable scale, while bucket-spill artifacts
  drift as ``r + depth/W``; single-scale candidates are discounted.

A token-bucket fit at ``r̂`` (running excess ``B_k = max(0, B_{k-1} +
bytes_k - r̂·w)``) yields the implied burst-depth estimate reported
alongside the rate.

Exact under shard merge: the only trace-dependent state is one
:class:`~repro.stream.sketches.CountLadder` byte histogram plus a
packet counter, both of which merge bit-exactly in any order for
integer byte sizes; the verdict is a deterministic function of the
merged state, so any chunking of the input — batch sizes, shard
boundaries, merge order — produces an identical verdict (the property
the hypothesis tests pin).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.stream.sketches import CountLadder
from repro.utils.validation import require_positive

__all__ = [
    "DetectorConfig",
    "PolicingDetector",
    "PolicingVerdict",
    "detect_times",
    "detect_trace",
]


@dataclass(frozen=True)
class DetectorConfig:
    """Detection knobs (picklable; ships to pool workers)."""

    #: Finest rate-sampling bin width, seconds; coarser scales are
    #: power-of-two aggregations of this histogram.
    bin_width: float = 0.25
    #: Window start (ladder origin); traces in this repo start at 0.
    start: float = 0.0
    #: Known horizon for a windowed ladder; None = open-ended.
    end: float | None = None
    #: Relative half-width of the plateau band around a candidate rate.
    rate_tolerance: float = 0.10
    #: A scale can only resolve candidate rates holding at least this
    #: many mean-sized packets per bin (packet-quantization floor).
    quantization_packets: float = 10.0
    #: Coarsest scale keeps at least this many bins.
    min_bins: int = 64
    #: Minimum nonzero bins at a scale for it to contribute evidence.
    min_busy_bins: int = 16
    #: Bins in the plateau band for full support (fewer → discounted).
    band_support: int = 24
    #: Active-byte share in band that counts as a full plateau.
    plateau_full: float = 0.8
    #: Trace-byte share in band that counts as full coverage.
    coverage_full: float = 0.5
    #: Excess-above-ceiling byte share at which confidence reaches 0.
    excess_cap: float = 0.08
    #: Idle-bin share (rate < r̂/10 inside the busy span) for full
    #: on/off-structure credit; 0 idle ⇒ CBR-ambiguous ⇒ confidence 0.
    idle_full: float = 0.05
    #: Cross-scale cluster half-width, in units of ``rate_tolerance``;
    #: candidates corroborated at a single scale only are discounted.
    cluster_width: float = 1.5
    single_scale_discount: float = 0.4
    #: Confidence at or above which the verdict is "policed".
    decision_threshold: float = 0.5

    def __post_init__(self):
        require_positive(self.bin_width, "bin_width")
        require_positive(self.rate_tolerance, "rate_tolerance")
        require_positive(self.quantization_packets, "quantization_packets")
        require_positive(self.plateau_full, "plateau_full")
        require_positive(self.coverage_full, "coverage_full")
        require_positive(self.excess_cap, "excess_cap")
        require_positive(self.idle_full, "idle_full")


@dataclass(frozen=True)
class PolicingVerdict:
    """One detection outcome (all fields derived from merged state)."""

    policed: bool
    rate: float  # inferred policed rate, bytes/s (NaN when not policed)
    confidence: float  # [0, 1]
    scale_s: float  # bin width of the best-supported scale
    n_scales: int  # scales corroborating the rate (within cluster width)
    plateau_share: float
    coverage: float
    excess_share: float
    idle_share: float
    burst_bytes: float  # implied token-bucket depth at the inferred rate
    total_bytes: float
    n_packets: int
    reason: str

    def payload(self) -> dict:
        return {
            "policed": bool(self.policed),
            "rate_bps": float(self.rate),
            "confidence": float(self.confidence),
            "scale_s": float(self.scale_s),
            "n_scales": int(self.n_scales),
            "plateau_share": float(self.plateau_share),
            "coverage": float(self.coverage),
            "excess_share": float(self.excess_share),
            "idle_share": float(self.idle_share),
            "burst_bytes": float(self.burst_bytes),
            "total_bytes": float(self.total_bytes),
            "n_packets": int(self.n_packets),
            "reason": self.reason,
        }

    def render(self) -> str:
        if not self.policed:
            return (f"no policing detected ({self.reason}; "
                    f"confidence {self.confidence:.2f})")
        return (f"policing detected: rate ≈ {self.rate:,.0f} B/s "
                f"(burst ≈ {self.burst_bytes:,.0f} B, confidence "
                f"{self.confidence:.2f}, plateau {self.plateau_share:.0%} "
                f"at {self.scale_s:g} s × {self.n_scales} scales)")


def _no_verdict(config: DetectorConfig, total: float, n_packets: int,
                reason: str) -> PolicingVerdict:
    return PolicingVerdict(
        policed=False, rate=float("nan"), confidence=0.0,
        scale_s=float("nan"), n_scales=0, plateau_share=0.0, coverage=0.0,
        excess_share=0.0, idle_share=0.0, burst_bytes=0.0,
        total_bytes=total, n_packets=n_packets, reason=reason,
    )


@dataclass(frozen=True)
class _ScaleEvidence:
    """Best plateau candidate at one time scale."""

    width: float
    rate: float
    plateau_share: float
    coverage: float
    excess_share: float
    idle_share: float
    band_bins: int
    confidence: float  # per-scale, before cross-scale corroboration


class PolicingDetector:
    """Mergeable single-pass accumulator + closed-form inference.

    ``update`` folds in packet columns; ``merge`` combines shard
    partials exactly (any order); ``infer`` computes the verdict from
    the merged byte histogram alone.
    """

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config if config is not None else DetectorConfig()
        self.ladder = CountLadder(
            self.config.bin_width, start=self.config.start,
            end=self.config.end, weighted=True,
        )
        self.n_packets = 0

    # ------------------------------------------------------------------
    def update(self, times, sizes) -> None:
        """Fold in one batch of packet (timestamp, byte-size) columns."""
        times = np.asarray(times, dtype=float)
        self.ladder.update(times, np.asarray(sizes, dtype=float))
        self.n_packets += int(times.size)

    def merge(self, other: "PolicingDetector") -> None:
        if other.config != self.config:
            raise ValueError("cannot merge detectors with different configs")
        self.ladder.merge(other.ladder)
        self.n_packets += other.n_packets

    @property
    def nbytes(self) -> int:
        return self.ladder.nbytes

    # ------------------------------------------------------------------
    def _evidence_at(self, counts: np.ndarray, width: float,
                     mean_pkt: float) -> _ScaleEvidence | None:
        cfg = self.config
        tol = cfg.rate_tolerance
        total = float(counts.sum())
        rates = counts / width
        nonzero = np.flatnonzero(rates > 0)
        if nonzero.size < cfg.min_busy_bins or total <= 0:
            return None
        # Candidate rates: upper-half quantiles of the nonzero bin
        # rates, restricted to rates this scale can resolve (a bin must
        # hold >= quantization_packets mean packets at the candidate).
        cand = np.unique(
            np.quantile(rates[nonzero], np.linspace(0.5, 1.0, 51))
        )
        cand = cand[cand * width >= cfg.quantization_packets * mean_pkt]
        if cand.size == 0:
            return None
        active = rates[None, :] >= 0.5 * cand[:, None]
        band = np.abs(rates[None, :] - cand[:, None]) <= tol * cand[:, None]
        band_bytes = (band * counts[None, :]).sum(axis=1)
        active_bytes = (active * counts[None, :]).sum(axis=1)
        score = (band_bytes / active_bytes) * np.minimum(
            1.0, band_bytes / total / 0.25
        )
        r0 = float(cand[int(np.argmax(score))])
        # Refine to the byte-weighted band center, then re-measure.
        sel = np.abs(rates - r0) <= tol * r0
        r_hat = float(np.average(rates[sel], weights=counts[sel]))
        sel = np.abs(rates - r_hat) <= tol * r_hat
        act = rates >= 0.5 * r_hat
        plateau = float(counts[sel].sum() / counts[act].sum())
        coverage = float(counts[sel].sum() / total)
        over = rates > (1.0 + tol) * r_hat
        excess = float(
            ((rates[over] - (1.0 + tol) * r_hat) * width).sum() / total
        )
        busy_span = rates[nonzero[0]: nonzero[-1] + 1]
        idle = float(np.mean(busy_span < 0.1 * r_hat))
        confidence = (
            min(1.0, plateau / cfg.plateau_full)
            * min(1.0, coverage / cfg.coverage_full)
            * max(0.0, 1.0 - excess / cfg.excess_cap)
            * min(1.0, idle / cfg.idle_full)
            * min(1.0, int(sel.sum()) / cfg.band_support)
        )
        return _ScaleEvidence(width, r_hat, plateau, coverage, excess,
                              idle, int(sel.sum()), confidence)

    def infer(self) -> PolicingVerdict:
        """The verdict for everything accumulated so far."""
        cfg = self.config
        counts = self.ladder.finalize()
        total = float(counts.sum())
        if total <= 0 or self.n_packets == 0:
            return _no_verdict(cfg, total, self.n_packets, "empty trace")
        mean_pkt = total / self.n_packets
        evidence: list[_ScaleEvidence] = []
        k = 1
        while counts.size // k >= cfg.min_bins:
            folded = counts[: (counts.size // k) * k]
            ev = self._evidence_at(
                folded.reshape(-1, k).sum(axis=1), cfg.bin_width * k,
                mean_pkt,
            )
            if ev is not None:
                evidence.append(ev)
            k *= 2
        if not evidence:
            return _no_verdict(cfg, total, self.n_packets,
                               "insufficient traffic")
        # Cross-scale corroboration: a real plateau recurs at the same
        # rate across scales; bucket-spill artifacts drift with width.
        width = cfg.cluster_width * cfg.rate_tolerance
        best, best_score, best_n = evidence[0], -1.0, 1
        for ev in evidence:
            n = sum(1 for o in evidence
                    if abs(o.rate - ev.rate) <= width * ev.rate)
            score = ev.confidence * (
                1.0 if n >= 2 else cfg.single_scale_discount
            )
            if score > best_score:
                best, best_score, best_n = ev, score, n
        confidence = float(best_score)
        policed = confidence >= cfg.decision_threshold
        # Token-bucket fit at r̂ on the finest histogram: the running
        # excess over the token budget bounds the burst a policer must
        # have allowed.
        budget = best.rate * cfg.bin_width
        burst = level = 0.0
        for c in counts:  # O(bins): bounded by the window, not the trace
            level += float(c) - budget
            if level < 0.0:
                level = 0.0
            elif level > burst:
                burst = level
        if policed:
            reason = "rate plateau with hard ceiling"
        elif best.idle_share < cfg.idle_full and best.confidence == 0.0:
            reason = "no on/off structure (smooth traffic is CBR-ambiguous)"
        else:
            reason = "no dominant rate plateau"
        return PolicingVerdict(
            policed=policed,
            rate=best.rate if policed else float("nan"),
            confidence=confidence,
            scale_s=best.width,
            n_scales=best_n,
            plateau_share=best.plateau_share,
            coverage=best.coverage,
            excess_share=best.excess_share,
            idle_share=best.idle_share,
            burst_bytes=float(burst),
            total_bytes=total,
            n_packets=self.n_packets,
            reason=reason,
        )


# ----------------------------------------------------------------------
# One-shot helpers
# ----------------------------------------------------------------------
def detect_times(times, sizes,
                 config: DetectorConfig | None = None) -> PolicingVerdict:
    """Verdict for in-memory packet columns (single accumulator pass)."""
    det = PolicingDetector(config)
    det.update(times, sizes)
    return det.infer()


def _scan_chunk(chunk, kind, config, block_bytes):
    """Chunk worker (module-level: pickles to pool workers)."""
    from repro.stream.reader import iter_chunk_batches

    det = PolicingDetector(config)
    for batch in iter_chunk_batches(chunk, kind, block_bytes=block_bytes):
        det.update(batch.timestamps, batch.sizes.astype(float))
    return det


def detect_trace(
    path: str | os.PathLike,
    *,
    jobs: int = 1,
    config: DetectorConfig | None = None,
    target_chunk_bytes: int | None = None,
) -> PolicingVerdict:
    """Detect policing in an on-disk packet trace, out-of-core.

    Chunk planning and fan-out mirror :func:`repro.stream.scan_trace`;
    because the detector's merge is exact and order-invariant, the
    verdict is independent of ``jobs`` and chunking.
    """
    from repro.stream.chunks import DEFAULT_CHUNK_BYTES, plan_chunks
    from repro.stream.reader import DEFAULT_BLOCK_BYTES, sniff_kind
    from repro.utils.pool import pool_map

    path = os.fspath(path)
    kind = sniff_kind(path)
    if kind != "packet":
        raise ValueError(f"{path}: policing detection needs a packet trace, "
                         f"got {kind}")
    cfg = config if config is not None else DetectorConfig()
    chunks = plan_chunks(
        path,
        target_bytes=(DEFAULT_CHUNK_BYTES if target_chunk_bytes is None
                      else target_chunk_bytes),
    )
    outcomes = pool_map(
        _scan_chunk,
        [(c, kind, cfg, DEFAULT_BLOCK_BYTES) for c in chunks],
        jobs,
    )
    for chunk, outcome in zip(chunks, outcomes):
        if isinstance(outcome, Exception):
            raise RuntimeError(
                f"chunk {chunk.index} of {path} failed"
            ) from outcome
    merged = outcomes[0]
    for part in outcomes[1:]:
        merged.merge(part)
    return merged.infer()
