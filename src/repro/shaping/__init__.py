"""In-network traffic conditioning and its trace-side inverse.

Three layers, one GCRA:

* :mod:`repro.shaping.gcra` — the pinned synchronous theoretical-
  arrival-time core shared with the replay pacer's asyncio bucket;
* :mod:`repro.shaping.elements` — vectorized policer (drop) and shaper
  (delay) over packet columns, plus fluid-curve forms for flowsim;
* :mod:`repro.shaping.detect` — blind policing inference from a trace
  alone, exact under shard merge;
* :mod:`repro.shaping.scenario` — the synthesize → police → detect
  closed loop and the shaping Hurst-impact battery.

Scenario symbols are lazy (PEP 562): ``replay.pacing`` imports this
package's GCRA core, and the scenario module imports ``replay.source``
— eager loading would close an import cycle.
"""

from repro.shaping.detect import (
    DetectorConfig,
    PolicingDetector,
    PolicingVerdict,
    detect_times,
    detect_trace,
)
from repro.shaping.elements import (
    ConditioningResult,
    LeakyBucketShaper,
    TokenBucketPolicer,
    condition_batches,
    fluid_police_curve,
    reference_condition,
    shaped_curve_eval,
    shaper_drain_end,
)
from repro.shaping.gcra import GcraCore

__all__ = [
    "ConditioningResult",
    "DetectorConfig",
    "GcraCore",
    "GridCell",
    "HurstCell",
    "LeakyBucketShaper",
    "PolicingDetector",
    "PolicingVerdict",
    "ShapingReport",
    "ShapingScenario",
    "TokenBucketPolicer",
    "condition_batches",
    "detect_times",
    "detect_trace",
    "fluid_police_curve",
    "reference_condition",
    "run_scenario",
    "shaped_curve_eval",
    "shaper_drain_end",
]

_SCENARIO_SYMBOLS = {
    "GridCell", "HurstCell", "ShapingReport", "ShapingScenario",
    "run_scenario",
}


def __getattr__(name: str):
    if name in _SCENARIO_SYMBOLS:
        from repro.shaping import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
