"""Vectorized in-network traffic-conditioning elements over packet columns.

Two elements, both driven by the deficit-GCRA conformance rule of
:class:`repro.shaping.gcra.GcraCore` (the same pinned theoretical-arrival
-time math as the replay sender's rate cap):

* :class:`TokenBucketPolicer` — drops every non-conforming arrival
  (``max_wait = 0``), leaving the bucket state untouched on a drop;
  accepted packets pass through with their timestamps unchanged.
* :class:`LeakyBucketShaper` — delays non-conforming arrivals to their
  conformance time (emission-time rewrite) and conserves every byte;
  an optional ``max_delay`` bounds the queue (arrivals whose shaping
  delay would exceed it are dropped, like a finite shaper buffer).

The scan is array-native.  Within a run of accepted packets the GCRA
backlog ``w_k = max(0, tat_k - t_k)`` obeys Lindley's recursion with
service times ``cost_k / rate``, so the closed-form
:func:`repro.kernels.lindley_waits` kernel computes whole accept runs at
once; a violation (``w_k > burst_s + max_wait``) terminates the run, a
vectorized ``searchsorted`` skips the ensuing drop run (every arrival
before the conformance horizon ``tat - limit``), and the block size
doubles on fully-accepted runs so accept-heavy traffic is O(n) with
O(n / block) Python-level iterations.  On float64-exact inputs the scan
is bit-identical to the scalar :meth:`GcraCore.offer` loop
(:func:`reference_condition`), the equivalence the property tests pin.

Fluid (rate-function) forms of both elements close the loop with the
flow-level simulator, which represents a link's traffic as a piecewise
-linear cumulative byte curve rather than packets:
:func:`fluid_police_curve` clips that curve through a fluid token bucket
(returning the dropped byte total that feeds the TCP closure models via
``Topology.path_loss``), and :func:`shaped_curve_eval` evaluates the
leaky-bucket-shaped output exactly at arbitrary times via the min-plus
convolution ``OUT(t) = min(IN(t), min_{s<=t}(IN(s) - r s) + d + r t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.kernels import lindley_waits
from repro.shaping.gcra import GcraCore
from repro.utils.validation import require_positive, require_sorted

__all__ = [
    "ConditioningResult",
    "LeakyBucketShaper",
    "TokenBucketPolicer",
    "condition_batches",
    "fluid_police_curve",
    "reference_condition",
    "shaped_curve_eval",
    "shaper_drain_end",
]

_MIN_BLOCK = 64
_MAX_BLOCK = 65536


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConditioningResult:
    """One element application over a packet column: the accept/drop
    partition plus the emission-time rewrite.

    ``accept`` and ``~accept`` partition the input rows exactly (every
    row lands in exactly one side — the property tests pin this);
    ``emission_times[k]`` is the conditioned timestamp of an accepted
    row (NaN for dropped rows).  A policer never delays, so its
    accepted emission times equal the arrival times bit-for-bit; a
    shaper only moves timestamps forward, monotonically.
    """

    element: object
    times: np.ndarray
    costs: np.ndarray
    accept: np.ndarray
    emission_times: np.ndarray
    final_tat: float

    @property
    def n(self) -> int:
        return int(self.times.size)

    @property
    def n_accepted(self) -> int:
        return int(np.count_nonzero(self.accept))

    @property
    def n_dropped(self) -> int:
        return self.n - self.n_accepted

    @property
    def accepted_times(self) -> np.ndarray:
        """Emission timestamps of the surviving packets (sorted)."""
        return self.emission_times[self.accept]

    @property
    def accepted_costs(self) -> np.ndarray:
        return self.costs[self.accept]

    @property
    def dropped_cost(self) -> float:
        return float(self.costs[~self.accept].sum())

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())

    @property
    def loss_fraction(self) -> float:
        """Cost-weighted drop fraction (byte loss for byte costs)."""
        total = self.total_cost
        return self.dropped_cost / total if total > 0 else 0.0

    @property
    def delays(self) -> np.ndarray:
        """Per-accepted-packet shaping delay (empty for a policer)."""
        return self.accepted_times - self.times[self.accept]

    @property
    def max_delay_s(self) -> float:
        d = self.delays
        return float(d.max()) if d.size else 0.0

    def payload(self) -> dict:
        return {
            "element": getattr(self.element, "kind", "element"),
            "rate": getattr(self.element, "rate", None),
            "depth": getattr(self.element, "depth", None),
            "n": self.n,
            "n_accepted": self.n_accepted,
            "n_dropped": self.n_dropped,
            "dropped_cost": self.dropped_cost,
            "loss_fraction": self.loss_fraction,
            "max_delay_s": self.max_delay_s,
        }


# ----------------------------------------------------------------------
# The vectorized deficit-GCRA scan
# ----------------------------------------------------------------------
def _gcra_scan(times, service, burst_s, limit_s, tat0=None):
    """Accept mask + pre-service backlog for a sorted arrival column.

    ``limit_s = burst_s + max_wait``: arrival ``k`` is accepted iff its
    backlog ``w_k <= limit_s``; a rejected arrival does not advance the
    TAT.  Returns ``(accept, waits, final_tat)``; ``waits`` holds the
    Lindley backlog of accepted rows (0 for dropped rows).
    """
    n = times.size
    accept = np.zeros(n, dtype=bool)
    waits = np.zeros(n)
    if n == 0:
        return accept, waits, tat0
    tat = float(times[0]) if tat0 is None else float(tat0)

    if not np.isfinite(limit_s):
        # Lossless shaper fast path: nothing can be dropped, so the whole
        # column is one accept run — a single closed-form Lindley call.
        w0 = tat - times[0]
        if w0 < 0.0:
            w0 = 0.0
        sv = np.concatenate([[w0], service])
        gaps = np.concatenate([[0.0], np.diff(times)])
        waits = lindley_waits(sv, gaps)[1:]
        accept[:] = True
        final = times[-1] + waits[-1] + service[-1]
        return accept, waits, float(final)

    i = 0
    block = _MIN_BLOCK
    while i < n:
        if tat - times[i] > limit_s:
            # Drop run: every arrival strictly before the conformance
            # horizon ``tat - limit`` is non-conforming and leaves the
            # TAT untouched — one searchsorted skips them all.
            j = i + int(np.searchsorted(times[i:], tat - limit_s,
                                        side="left"))
            i = max(j, i + 1)
            block = _MIN_BLOCK
            continue
        end = min(i + block, n)
        run_t = times[i:end]
        w0 = tat - run_t[0]
        if w0 < 0.0:
            w0 = 0.0
        # Virtual zero-gap packet with service ``w0`` seeds the Lindley
        # recursion with the carried backlog.
        sv = np.concatenate([[w0], service[i:end]])
        gaps = np.concatenate([[0.0], np.diff(run_t)])
        w = lindley_waits(sv, gaps)[1:]
        viol = w > limit_s
        if viol.any():
            k = int(np.argmax(viol))  # first violation; k >= 1 by the
            # run-start conformance check above
            accept[i:i + k] = True
            waits[i:i + k] = w[:k]
            tat = run_t[k - 1] + w[k - 1] + service[i + k - 1]
            i += k
            block = _MIN_BLOCK
        else:
            accept[i:end] = True
            waits[i:end] = w
            tat = run_t[-1] + w[-1] + service[end - 1]
            i = end
            block = min(block * 2, _MAX_BLOCK)
    return accept, waits, float(tat)


def _as_costs(costs, n) -> np.ndarray:
    if costs is None:
        return np.ones(n)
    if np.isscalar(costs):
        c = np.full(n, float(costs))
    else:
        c = np.asarray(costs, dtype=float)
        if c.size != n:
            raise ValueError(f"need one cost per arrival ({n}), got {c.size}")
    if np.any(c < 0):
        raise ValueError("costs must be >= 0")
    return c


@dataclass(frozen=True)
class _GcraElement:
    """Shared machinery: a rate/depth pair applied through the scan."""

    rate: float  # units/second (bytes/s for byte costs)
    depth: float  # burst allowance, same units as costs

    def __post_init__(self):
        require_positive(self.rate, "rate")
        require_positive(self.depth, "depth")

    @property
    def burst_s(self) -> float:
        return self.depth / self.rate

    def _max_wait(self) -> float:
        raise NotImplementedError

    def core(self) -> GcraCore:
        """A fresh scalar GCRA with this element's parameters."""
        return GcraCore(self.rate, self.depth)

    def apply(self, times, costs=None, *, tat=None) -> ConditioningResult:
        """Condition a sorted arrival column; ``costs`` defaults to one
        unit per packet (pass sizes for byte-granular conditioning).

        ``tat`` carries bucket state across chunked calls: feeding a
        split column through with the previous chunk's ``final_tat``
        reproduces the unsplit scan exactly.
        """
        t = require_sorted(times, "times")
        c = _as_costs(costs, t.size)
        burst_s = self.depth / self.rate
        limit_s = burst_s + self._max_wait()
        accept, waits, final_tat = _gcra_scan(
            t, c / self.rate, burst_s, limit_s, tat
        )
        emission = np.full(t.size, np.nan)
        if t.size:
            emission[accept] = (t + np.maximum(waits - burst_s, 0.0))[accept]
        if final_tat is None:
            final_tat = float(t[0]) if t.size else 0.0
        return ConditioningResult(
            element=self, times=t, costs=c, accept=accept,
            emission_times=emission, final_tat=float(final_tat),
        )


@dataclass(frozen=True)
class TokenBucketPolicer(_GcraElement):
    """GCRA token-bucket policer: drop non-conforming packets, never
    delay conforming ones.  ``rate`` units/s sustained, ``depth`` units
    of burst tolerance; a drop leaves the bucket state untouched."""

    kind: str = field(default="policer", init=False, repr=False)

    def _max_wait(self) -> float:
        return 0.0


@dataclass(frozen=True)
class LeakyBucketShaper(_GcraElement):
    """Leaky-bucket shaper: rewrite each packet's emission time to its
    GCRA conformance time.  With ``max_delay=None`` (unbounded queue)
    the shaper is lossless and byte-conserving — only timestamps move,
    monotonically; a finite ``max_delay`` drops arrivals whose shaping
    delay would exceed the bound (a finite buffer)."""

    max_delay: float | None = None
    kind: str = field(default="shaper", init=False, repr=False)

    def __post_init__(self):
        super().__post_init__()
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError(
                f"max_delay must be >= 0 or None, got {self.max_delay}"
            )

    def _max_wait(self) -> float:
        return math.inf if self.max_delay is None else float(self.max_delay)


# ----------------------------------------------------------------------
# Frozen scalar reference (the semantics the scan must reproduce)
# ----------------------------------------------------------------------
def reference_condition(element, times, costs=None) -> ConditioningResult:
    """Per-packet :meth:`GcraCore.offer` loop — the pinned reference the
    vectorized scan is tested against (bit-identical on float64-exact
    inputs, where Lindley's closed form incurs no reassociation error).
    """
    t = require_sorted(times, "times")
    c = _as_costs(costs, t.size)
    core = element.core()
    max_wait = element._max_wait()
    accept = np.zeros(t.size, dtype=bool)
    emission = np.full(t.size, np.nan)
    for k in range(t.size):
        ok, delay = core.offer(float(t[k]), float(c[k]), max_wait)
        accept[k] = ok
        if ok:
            emission[k] = t[k] + delay
    final = core.tat if core.tat is not None else (float(t[0]) if t.size else 0.0)
    return ConditioningResult(
        element=element, times=t, costs=c, accept=accept,
        emission_times=emission, final_tat=float(final),
    )


# ----------------------------------------------------------------------
# Streaming composition (replay in-path element)
# ----------------------------------------------------------------------
def condition_batches(batches, element):
    """Apply an element to a stream of time-sorted ``PacketBatch``es,
    carrying bucket state across batch boundaries (chunking-invariant:
    any batch split yields the same conditioned stream).

    Costs are the packet ``sizes`` (byte-granular conditioning).  A
    policer filters rows; a shaper rewrites ``timestamps`` in place of
    the originals.  Batches that lose every row are skipped.
    """
    from repro.stream.reader import PacketBatch

    tat = None
    for batch in batches:
        res = element.apply(
            batch.timestamps, costs=batch.sizes.astype(float), tat=tat
        )
        tat = res.final_tat
        mask = res.accept
        if not mask.any():
            continue
        if mask.all():
            timestamps = res.emission_times
            sel = slice(None)
        else:
            timestamps = res.emission_times[mask]
            sel = mask
        yield PacketBatch(
            timestamps=timestamps,
            protocols=batch.protocols[sel],
            connection_ids=batch.connection_ids[sel],
            directions=batch.directions[sel],
            sizes=batch.sizes[sel],
            user_data=batch.user_data[sel],
            protocols_s=(None if batch.protocols_s is None
                         else batch.protocols_s[sel]),
        )


# ----------------------------------------------------------------------
# Fluid forms (flow-level simulator integration)
# ----------------------------------------------------------------------
def _compress_curve(times, cum):
    """Deduplicate repeated breakpoint times (keep the last value)."""
    times = np.asarray(times, dtype=float)
    cum = np.asarray(cum, dtype=float)
    if times.size < 2:
        return times, cum
    keep = np.concatenate([times[1:] > times[:-1], [True]])
    return times[keep], cum[keep]


def fluid_police_curve(times, cum, rate, depth):
    """Fluid token-bucket policing of a piecewise-linear cumulative
    byte curve.

    ``times``/``cum`` are the breakpoints of the offered cumulative
    bytes (nondecreasing).  The bucket starts full (``depth`` bytes,
    refill ``rate`` bytes/s); while tokens remain the offered rate
    passes through, once they are exhausted the admitted rate is capped
    at ``rate`` and the excess is dropped.  Returns ``(out_times,
    out_cum, dropped_bytes)`` — the admitted curve's breakpoints
    (including mid-segment bucket-exhaustion crossings) and the total
    bytes dropped.
    """
    require_positive(rate, "rate")
    require_positive(depth, "depth")
    times, cum = _compress_curve(times, cum)
    if times.size == 0:
        return times, cum, 0.0
    out_t = [float(times[0])]
    out_c = [0.0]
    admitted = 0.0
    tokens = float(depth)
    dropped = 0.0
    for k in range(times.size - 1):
        dt = float(times[k + 1] - times[k])
        if dt <= 0.0:
            continue
        x = float(cum[k + 1] - cum[k]) / dt
        if x <= rate:
            admitted += x * dt
            tokens = min(depth, tokens + (rate - x) * dt)
            out_t.append(float(times[k + 1]))
            out_c.append(admitted)
            continue
        # Offered above the sustained rate: tokens drain at x - rate.
        tau = tokens / (x - rate)
        if tau >= dt:
            admitted += x * dt
            tokens -= (x - rate) * dt
            out_t.append(float(times[k + 1]))
            out_c.append(admitted)
            continue
        # Bucket empties mid-segment: passthrough until the crossing,
        # then clip to the token rate and drop the excess.
        if tau > 0.0:
            admitted += x * tau
            out_t.append(float(times[k]) + tau)
            out_c.append(admitted)
        tokens = 0.0
        admitted += rate * (dt - tau)
        dropped += (x - rate) * (dt - tau)
        out_t.append(float(times[k + 1]))
        out_c.append(admitted)
    return np.asarray(out_t), np.asarray(out_c), float(dropped)


def shaped_curve_eval(times, cum, rate, depth, at):
    """Evaluate the leaky-bucket-shaped output curve at times ``at``.

    The greedy (σ=depth, ρ=rate) shaper's output is the min-plus
    convolution ``OUT(t) = min(IN(t), min_{s<=t}(IN(s) - ρ s) + σ + ρ t)``
    — exact for piecewise-linear ``IN`` because each linear piece attains
    its minimum at a breakpoint.  Bytes are conserved: for ``t`` beyond
    the drain point (:func:`shaper_drain_end`) the output equals the
    offered total.
    """
    require_positive(rate, "rate")
    require_positive(depth, "depth")
    times, cum = _compress_curve(times, cum)
    at = np.asarray(at, dtype=float)
    if times.size == 0:
        return np.zeros(at.shape)
    envelope = np.minimum.accumulate(cum - rate * times)
    idx = np.searchsorted(times, at, side="right") - 1
    inside = idx >= 0
    in_at = np.interp(at, times, cum, left=float(cum[0]),
                      right=float(cum[-1]))
    out = np.zeros(at.shape)
    out[inside] = np.minimum(
        in_at[inside],
        envelope[idx[inside]] + depth + rate * at[inside],
    )
    return np.maximum(out, 0.0)


def shaper_drain_end(times, cum, rate, depth):
    """The time by which a (σ=depth, ρ=rate) shaper has emitted every
    offered byte (equals the last breakpoint when nothing is backlogged).
    """
    times, cum = _compress_curve(times, cum)
    if times.size == 0:
        return 0.0
    envelope = float(np.min(cum - rate * times))
    total = float(cum[-1])
    drain = (total - depth - envelope) / rate
    return max(float(times[-1]), drain)
