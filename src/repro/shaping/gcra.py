"""The shared synchronous GCRA (virtual-scheduling token bucket) core.

One pinned implementation of the theoretical-arrival-time math drives
every rate enforcer in the repo:

* the asyncio send-side cap (:class:`repro.replay.pacing.TokenBucket`)
  delegates its ``acquire`` arithmetic to :meth:`GcraCore.advance` —
  the extraction is bit-identical (same float operations in the same
  order as the pre-refactor inline math, pinned by a fake-clock test);
* the in-network elements (:mod:`repro.shaping.elements`) use
  :meth:`GcraCore.offer` as the scalar *reference* semantics their
  vectorized scans must reproduce.

State is a single float: the theoretical arrival time (TAT).  With rate
``r`` units/second and burst depth ``d`` units (``burst_s = d / r``
seconds of credit):

* an idle bucket accrues at most one burst of credit — the TAT never
  lags behind the present (``max(tat, now)``);
* admitting ``n`` units advances the TAT by ``n / r``;
* the conformance tolerance is exactly one burst: an arrival is
  conforming while ``tat - now <= burst_s``.

Two admission styles share that state:

* **deficit** (:meth:`advance`): admit unconditionally, report how long
  the caller must wait for the average rate to catch up.  A single
  oversized batch is admitted instantly and waited off afterwards — the
  replay sender's batch-granular capping.
* **conforming** (:meth:`offer`): consume only if the arrival's delay
  to conformance is within ``max_wait`` — ``max_wait=0`` is a policer
  (drop non-conforming), ``max_wait=inf`` a lossless shaper (delay
  non-conforming), and anything between a bounded-queue shaper.
"""

from __future__ import annotations

import math

__all__ = ["GcraCore"]


class GcraCore:
    """Synchronous theoretical-arrival-time GCRA state machine.

    Unit-agnostic: ``rate`` is units/second and ``depth`` is units,
    where a unit is whatever the caller admits (records for the replay
    cap, bytes for the in-network elements).
    """

    __slots__ = ("rate", "depth", "tat")

    def __init__(self, rate: float, depth: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if depth <= 0:
            raise ValueError(f"depth must be > 0, got {depth}")
        self.rate = float(rate)
        self.depth = float(depth)
        self.tat: float | None = None  # theoretical arrival time

    @property
    def burst_s(self) -> float:
        """One burst of credit, in seconds (``depth / rate``)."""
        return self.depth / self.rate

    def reset(self) -> None:
        self.tat = None

    # ------------------------------------------------------------------
    def advance(self, now: float, n: float = 1.0) -> float:
        """Deficit admission: admit ``n`` units at ``now`` unconditionally
        and return the (>= 0) wait until the average rate allows them.

        Exactly the pre-extraction ``TokenBucket.acquire`` arithmetic —
        same operations, same order — so the asyncio bucket's sleep
        sequence is bit-identical across the refactor.
        """
        if self.tat is None:
            self.tat = now
        burst_s = self.depth / self.rate
        # An idle bucket accrues at most `depth` units of credit: the
        # theoretical arrival time never lags behind the present, and the
        # conformance tolerance below is exactly one burst.
        self.tat = max(self.tat, now) + n / self.rate
        wait = self.tat - now - burst_s
        return wait if wait > 0 else 0.0

    def offer(
        self, now: float, n: float = 1.0, max_wait: float = 0.0
    ) -> tuple[bool, float]:
        """Conforming admission: ``(accepted, delay)`` for ``n`` units.

        ``delay`` is the time from ``now`` until the arrival conforms
        (0 for a conforming arrival).  The units are consumed — the TAT
        advances — only when ``delay <= max_wait``; a rejected arrival
        leaves the bucket untouched, the defining property of a policer.

        * ``max_wait=0``    — GCRA policer (drop + leave state alone);
        * ``max_wait=inf``  — lossless leaky-bucket shaper (emit at
          ``now + delay``);
        * finite ``max_wait`` — shaper with a bounded queue (drop
          arrivals whose shaping delay would exceed the bound).
        """
        if self.tat is None:
            self.tat = now
        burst_s = self.depth / self.rate
        delay = self.tat - now - burst_s
        if delay <= 0.0:
            delay = 0.0
        if delay > max_wait:
            return False, delay
        self.tat = max(self.tat, now) + n / self.rate
        return True, delay

    # ------------------------------------------------------------------
    def __repr__(self):
        return (f"GcraCore(rate={self.rate:g}, depth={self.depth:g}, "
                f"tat={self.tat!r})")


# Re-exported for introspection/tests: the sentinel "no queue bound".
UNBOUNDED = math.inf
