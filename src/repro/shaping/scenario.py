"""The closed loop: synthesize → police → detect → rate recovery.

No 1994-era study could run this experiment: take the paper's own
traffic models, push them through an in-network policer at a *known*
rate, then hand only the surviving trace to the blind detector and ask
how well the enforcement parameters are recovered.  The scenario sweeps
a rate-factor × burst-depth grid and reports, per cell, the policer's
actual drop rate and the detector's inferred rate, confidence, and
relative error — plus an unpoliced control that must come back clean.

The companion Hurst-impact battery answers the Clegg-et-al. criticism
quantitatively (can shaping masquerade as, or destroy, the paper's
H≈0.85 signature?): a leaky-bucket shaper at depth *d* suppresses the
variance-time slope at time scales below its queue-drain time (fine-H
drops toward the CBR 0.5 as the rate tightens) while the coarse-scale
slope — the LRD signature itself — is conserved, because shaping only
*delays* bytes by a bounded amount and long-run counts are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import hurst_from_variance_time
from repro.shaping.detect import DetectorConfig, PolicingVerdict, detect_times
from repro.shaping.elements import LeakyBucketShaper, TokenBucketPolicer
from repro.utils.validation import require_positive

__all__ = [
    "GridCell",
    "HurstCell",
    "ShapingReport",
    "ShapingScenario",
    "run_scenario",
]


@dataclass(frozen=True)
class ShapingScenario:
    """Closed-loop experiment configuration."""

    #: Source model from :data:`repro.replay.source.MODELS`.
    model: str = "ftp"
    n_packets: int = 60_000
    #: Source intensity knob (sessions/hour for ftp).  The default is
    #: dense traffic — the policer must actually bind for trace-side
    #: detection to have evidence to work with.
    source_rate: float | None = 240.0
    #: Policed rate as a fraction of the trace's mean byte rate.
    rate_factors: tuple[float, ...] = (0.3, 0.5, 0.8)
    #: Token-bucket depth in seconds of credit at the policed rate.
    burst_seconds: tuple[float, ...] = (0.25, 1.0, 4.0)
    #: Shaper rate factors for the Hurst battery (>= 1: lossless).
    shaper_rate_factors: tuple[float, ...] = (1.0, 1.5, 3.0)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Count-process bin for Hurst estimation, and the variance-time
    #: level split: fine levels see shaping, coarse levels see LRD.
    hurst_bin_s: float = 0.01
    hurst_split_level: int = 8
    seed: int = 7

    def __post_init__(self):
        require_positive(self.n_packets, "n_packets")
        if not self.rate_factors or not self.burst_seconds:
            raise ValueError("rate_factors and burst_seconds must be non-empty")
        for f in self.rate_factors:
            require_positive(f, "rate_factors")
        for b in self.burst_seconds:
            require_positive(b, "burst_seconds")
        for f in self.shaper_rate_factors:
            if f < 1.0:
                raise ValueError(
                    f"shaper_rate_factors must be >= 1 (lossless), got {f}"
                )


@dataclass(frozen=True)
class GridCell:
    """One police → detect cell of the recovery grid."""

    rate_factor: float
    burst_seconds: float
    rate: float  # true policed rate, bytes/s
    loss_fraction: float  # policer byte drop fraction
    verdict: PolicingVerdict

    @property
    def rate_error(self) -> float:
        """Relative recovery error (NaN when not detected)."""
        if not self.verdict.policed:
            return float("nan")
        return abs(self.verdict.rate - self.rate) / self.rate

    @property
    def recovered(self) -> bool:
        return self.verdict.policed and self.rate_error <= 0.10


@dataclass(frozen=True)
class HurstCell:
    """One shaper cell of the Hurst-impact battery."""

    rate_factor: float
    burst_seconds: float
    hurst_fine: float
    hurst_coarse: float
    max_delay_s: float


@dataclass(frozen=True)
class ShapingReport:
    scenario: ShapingScenario
    mean_rate: float  # trace mean byte rate, bytes/s
    span_s: float
    control: PolicingVerdict
    cells: tuple[GridCell, ...]
    baseline_hurst_fine: float
    baseline_hurst_coarse: float
    hurst_cells: tuple[HurstCell, ...]

    # ------------------------------------------------------------------
    @property
    def control_clean(self) -> bool:
        return not self.control.policed

    @property
    def n_recovered(self) -> int:
        return sum(c.recovered for c in self.cells)

    @property
    def recovery_ok(self) -> bool:
        """The closed loop is *sound*: the control comes back clean,
        every rate the detector claims is within 10% of the truth, and
        at least one cell recovers.  Cells the detector declines at low
        confidence (deep buckets over sparse traffic) don't fail the
        loop — "I don't know" is an honest answer, a confidently wrong
        rate is not."""
        claims_accurate = all(
            c.rate_error <= 0.10 for c in self.cells if c.verdict.policed
        )
        return self.control_clean and claims_accurate \
            and self.n_recovered >= 1

    @property
    def max_rate_error(self) -> float:
        errs = [c.rate_error for c in self.cells if c.verdict.policed]
        return max(errs) if errs else float("nan")

    @property
    def coarse_hurst_conserved(self) -> bool:
        """Shaping must not move the coarse-scale LRD signature."""
        return all(
            abs(h.hurst_coarse - self.baseline_hurst_coarse) <= 0.05
            for h in self.hurst_cells
        )

    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        out = []
        for c in self.cells:
            v = c.verdict
            out.append({
                "rate_factor": c.rate_factor,
                "burst_s": c.burst_seconds,
                "rate_Bps": round(c.rate),
                "loss": round(c.loss_fraction, 3),
                "detected": v.policed,
                "inferred_Bps": (round(v.rate) if v.policed else "-"),
                "err": (round(c.rate_error, 3) if v.policed else "-"),
                "confidence": round(v.confidence, 2),
            })
        return out

    def hurst_rows(self) -> list[dict]:
        out = [{
            "rate_factor": "(none)", "burst_s": "-",
            "H_fine": round(self.baseline_hurst_fine, 3),
            "H_coarse": round(self.baseline_hurst_coarse, 3),
            "max_delay_s": 0.0,
        }]
        for h in self.hurst_cells:
            out.append({
                "rate_factor": h.rate_factor,
                "burst_s": h.burst_seconds,
                "H_fine": round(h.hurst_fine, 3),
                "H_coarse": round(h.hurst_coarse, 3),
                "max_delay_s": round(h.max_delay_s, 2),
            })
        return out

    def render(self) -> str:
        from repro.experiments.report import format_table

        s = self.scenario
        head = (
            f"shaping closed loop — {s.model} ×{s.n_packets} packets, "
            f"seed {s.seed}, mean {self.mean_rate:,.0f} B/s over "
            f"{self.span_s:,.0f} s"
        )
        parts = [
            head,
            "",
            format_table(self.rows(), title="police → detect recovery grid"),
            "",
            f"control: {self.control.render()}",
            f"recovered {self.n_recovered}/{len(self.cells)} cells"
            f" (max error {self.max_rate_error:.3f})"
            if self.n_recovered else
            f"recovered 0/{len(self.cells)} cells",
            "",
            format_table(
                self.hurst_rows(),
                title="Hurst impact of lossless shaping "
                      "(fine = below drain scale, coarse = LRD)",
            ),
            f"coarse-scale H conserved under shaping: "
            f"{self.coarse_hurst_conserved}",
        ]
        return "\n".join(parts)

    def payload(self) -> dict:
        return {
            "model": self.scenario.model,
            "n_packets": self.scenario.n_packets,
            "seed": self.scenario.seed,
            "mean_rate_bps": float(self.mean_rate),
            "span_s": float(self.span_s),
            "control": self.control.payload(),
            "cells": [
                {
                    "rate_factor": c.rate_factor,
                    "burst_seconds": c.burst_seconds,
                    "rate_bps": float(c.rate),
                    "loss_fraction": float(c.loss_fraction),
                    "recovered": bool(c.recovered),
                    "rate_error": (float(c.rate_error)
                                   if c.verdict.policed else None),
                    "verdict": c.verdict.payload(),
                }
                for c in self.cells
            ],
            "hurst": {
                "baseline_fine": float(self.baseline_hurst_fine),
                "baseline_coarse": float(self.baseline_hurst_coarse),
                "cells": [
                    {
                        "rate_factor": h.rate_factor,
                        "burst_seconds": h.burst_seconds,
                        "hurst_fine": float(h.hurst_fine),
                        "hurst_coarse": float(h.hurst_coarse),
                        "max_delay_s": float(h.max_delay_s),
                    }
                    for h in self.hurst_cells
                ],
                "coarse_conserved": bool(self.coarse_hurst_conserved),
            },
            "control_clean": bool(self.control_clean),
            "n_recovered": int(self.n_recovered),
            "n_cells": len(self.cells),
            "recovery_ok": bool(self.recovery_ok),
        }


# ----------------------------------------------------------------------
def run_scenario(scenario: ShapingScenario | None = None) -> ShapingReport:
    """Run the closed loop for one scenario (deterministic per seed)."""
    from repro.replay.source import synthesize_packets

    s = scenario if scenario is not None else ShapingScenario()
    trace = synthesize_packets(
        s.model, s.n_packets, seed=s.seed, rate=s.source_rate
    )
    times = np.asarray(trace.timestamps, dtype=float)
    costs = np.asarray(trace.sizes, dtype=float)
    span = float(times[-1] - times[0]) if times.size > 1 else 0.0
    if span <= 0:
        raise ValueError("synthesized trace has no span")
    mean_rate = float(costs.sum() / span)

    control = detect_times(times, costs, s.detector)

    cells = []
    for f in s.rate_factors:
        rate = f * mean_rate
        for burst_s in s.burst_seconds:
            policer = TokenBucketPolicer(rate, burst_s * rate)
            res = policer.apply(times, costs)
            verdict = detect_times(
                res.accepted_times, res.accepted_costs, s.detector
            )
            cells.append(GridCell(
                rate_factor=f, burst_seconds=burst_s, rate=rate,
                loss_fraction=res.loss_fraction, verdict=verdict,
            ))

    def hurst_pair(ts: np.ndarray) -> tuple[float, float]:
        process = CountProcess.from_times(ts, s.hurst_bin_s)
        fine = hurst_from_variance_time(
            process, min_level=1, max_level=s.hurst_split_level
        )
        coarse = hurst_from_variance_time(
            process, min_level=s.hurst_split_level
        )
        return float(fine), float(coarse)

    base_fine, base_coarse = hurst_pair(times)
    hurst_cells = []
    for f in s.shaper_rate_factors:
        rate = f * mean_rate
        for burst_s in s.burst_seconds:
            shaper = LeakyBucketShaper(rate, burst_s * rate)
            res = shaper.apply(times, costs)
            fine, coarse = hurst_pair(res.accepted_times)
            hurst_cells.append(HurstCell(
                rate_factor=f, burst_seconds=burst_s,
                hurst_fine=fine, hurst_coarse=coarse,
                max_delay_s=res.max_delay_s,
            ))

    return ShapingReport(
        scenario=s, mean_rate=mean_rate, span_s=span, control=control,
        cells=tuple(cells), baseline_hurst_fine=base_fine,
        baseline_hurst_coarse=base_coarse, hurst_cells=tuple(hurst_cells),
    )
