"""Random-number-generator plumbing.

Every stochastic entry point in this library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
rest of the codebase free of ``isinstance`` checks and makes experiments
reproducible by passing a single integer at the top level.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so helper functions
    can thread a single stream through nested calls without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Produce ``n`` statistically independent child generators.

    Used when an experiment runs several replicates (e.g. the nine seeds of
    Figs. 14 and 15) and wants each replicate independent yet reproducible
    from one master seed.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        return seed.spawn(n)
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
