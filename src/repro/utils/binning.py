"""Binning of event times into count processes, and aggregation of counts.

The paper's variance-time analysis (Section IV, Fig. 5) works on *count
processes*: the number of packet arrivals in consecutive fixed-width bins.
``bin_counts`` builds the unaggregated process; ``aggregate`` implements the
"smoothing" at aggregation level M described in the paper (averaging M
adjacent observations).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import require_positive


def bin_edges(start: float, end: float, width: float) -> np.ndarray:
    """Edges of consecutive bins of ``width`` covering ``[start, end)``.

    The final bin is dropped if it would extend past ``end``; the analysis in
    the paper always uses whole bins (72 000 bins of 0.1 s for a 2 h trace).
    When ``end > start`` there is always at least one bin, even if the window
    is narrower than ``width`` — the single bin then extends past ``end`` so
    that no in-window event can fall outside every bin.  A zero-span window
    (``end == start``) has no bins; ``bin_counts`` widens it when events are
    present.
    """
    require_positive(width, "width")
    if end < start:
        raise ValueError(f"end ({end}) must be >= start ({start})")
    n_bins = int(np.floor((end - start) / width + 1e-9))
    if n_bins == 0 and end > start:
        n_bins = 1
    return start + width * np.arange(n_bins + 1)


def bin_counts(
    times: Sequence[float],
    width: float,
    start: float | None = None,
    end: float | None = None,
) -> np.ndarray:
    """Count events per bin of ``width`` seconds.

    Parameters
    ----------
    times:
        Event timestamps (seconds); need not be sorted.
    width:
        Bin width in seconds.
    start, end:
        Observation window.  Defaults to ``min(times)`` / ``max(times)``.
        Events outside the window are discarded; an event exactly at the
        final bin's right edge is included in that bin (the numpy histogram
        closed-right convention for the last bin).

    Returns
    -------
    Integer array of per-bin event counts.  Whenever at least one event lies
    inside the window there is at least one bin, so in-window events are
    never silently dropped — including windows narrower than ``width`` and
    the degenerate ``end == start`` window with events at that instant.
    """
    arr = np.asarray(times, dtype=float)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    lo = float(arr.min()) if start is None else float(start)
    hi = float(arr.max()) if end is None else float(end)
    edges = bin_edges(lo, hi, width)
    if len(edges) < 2:
        # Zero-span window: a single bin anchored at lo still captures any
        # event sitting exactly at that instant (e.g. all timestamps equal).
        if not np.any((arr >= lo) & (arr <= hi)):
            return np.zeros(0, dtype=np.int64)
        edges = np.array([lo, lo + width])
    counts, _ = np.histogram(arr, bins=edges)
    return counts.astype(np.int64)


def aggregate(counts: Sequence[float], level: int, *, how: str = "mean") -> np.ndarray:
    """Aggregate a count process at level ``level``.

    Following the paper's variance-time construction, consecutive groups of
    ``level`` observations are reduced to a single value.  ``how="mean"``
    (the paper's smoothing) averages them; ``how="sum"`` totals them, which is
    equivalent up to a factor of ``level`` and occasionally more natural.
    Trailing observations that do not fill a complete group are dropped.
    """
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    arr = np.asarray(counts, dtype=float)
    n = (arr.size // level) * level
    if n == 0:
        return np.zeros(0, dtype=float)
    blocks = arr[:n].reshape(-1, level)
    if how == "mean":
        return blocks.mean(axis=1)
    if how == "sum":
        return blocks.sum(axis=1)
    raise ValueError(f"how must be 'mean' or 'sum', got {how!r}")
