"""Argument-validation helpers.

These raise ``ValueError`` with a uniform message format so call sites stay
one-liners and error messages across the library read consistently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Return ``value`` if inside ``[low, high]`` (or ``(low, high)``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value!r}"
        )
    return value


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if it is a valid probability in [0, 1]."""
    return require_in_range(value, name, 0.0, 1.0)


def require_sorted(values: Sequence[float], name: str) -> np.ndarray:
    """Return ``values`` as an array if nondecreasing, else raise."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be sorted in nondecreasing order")
    return arr
