"""Shared low-level utilities: RNG plumbing, binning, argument validation."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.binning import bin_counts, bin_edges, aggregate
from repro.utils.validation import (
    require_positive,
    require_nonnegative,
    require_in_range,
    require_probability,
    require_sorted,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "bin_counts",
    "bin_edges",
    "aggregate",
    "require_positive",
    "require_nonnegative",
    "require_in_range",
    "require_probability",
    "require_sorted",
]
