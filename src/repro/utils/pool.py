"""The engine's shared process-pool fan-out primitives.

Kept in a leaf module (stdlib + numpy imports only) so that source models —
``repro.core.telnet``/``fulltel``/``ftp``, ``repro.queueing.delay``,
``repro.kernels.superpose`` — can offer a ``jobs=`` knob without pulling the
experiment registry into their import closure, which would make every
experiment's source digest (:func:`repro.engine.cache.source_digest`)
sensitive to every file in the package and defeat exact cache invalidation.

Two fan-out shapes live here:

* :func:`pool_map` — the original pickle-everything map: each task's return
  value rides back through the executor.  Fine for small results.
* :func:`pool_map_shared` — the zero-copy reduction path: the parent
  allocates one shared ``(n_tasks, *shape)`` array (a memory-mapped ``.npy``
  scratch file when ``jobs > 1``), every worker writes its slot *in place*
  and returns only small metadata, so hundred-MB partial aggregates never
  transit pickle.  The serial path runs the identical per-slot calls on an
  ordinary in-process array, and because each task owns a disjoint slot the
  buffer contents are bit-identical for any ``jobs``.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Sequence

import numpy as np


class PoolTaskError(RuntimeError):
    """A pool task raised; carries the failing task's index in task order.

    Raised by ``pool_map(strict=True)`` and always by
    :func:`pool_map_shared`, instead of silently returning the exception
    object as an outcome.
    """

    def __init__(self, index: int, cause: BaseException):
        super().__init__(f"pool task {index} failed: {cause!r}")
        self.index = index
        self.cause = cause


def pool_map(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int,
    *,
    on_result: Callable[[int, object, float], None] | None = None,
    strict: bool = False,
) -> list[object]:
    """Order-preserving map over a process pool, capturing exceptions.

    Runs ``fn(*tasks[i])`` for every task — inline when ``jobs == 1`` or
    there is at most one task, otherwise on a ``ProcessPoolExecutor`` with
    up to ``jobs`` workers.  Returns one outcome per task *in task order*:
    the function's return value, or the raised exception object (workers
    never take the whole map down).  With ``strict=True`` a failed task
    raises :class:`PoolTaskError` carrying the failing task index instead
    of smuggling the exception object into the outcome list.
    ``on_result(index, outcome, wall_s)`` fires as each task completes
    (completion order), where ``wall_s`` is submit-to-completion wall time;
    both the experiment runner (cache write-back + progress logs) and the
    stream-scan driver (per-chunk metrics) hook it.

    This is the engine's shared fan-out primitive: anything shaped like
    "independent tasks, mergeable results" — experiment batteries, trace
    chunk scans, batched source synthesis — dispatches through it and
    inherits the same determinism guarantee (outcome order is task order,
    never scheduling order).
    """
    tasks = list(tasks)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    outcomes: list[object] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for i, args in enumerate(tasks):
            t0 = time.perf_counter()
            try:
                outcome = fn(*args)
            except Exception as exc:
                if strict:
                    raise PoolTaskError(i, exc) from exc
                outcome = exc
            outcomes[i] = outcome
            if on_result is not None:
                on_result(i, outcome, time.perf_counter() - t0)
        return outcomes
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        started = {
            pool.submit(fn, *args): (i, time.perf_counter())
            for i, args in enumerate(tasks)
        }
        pending = set(started)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                i, t0 = started[fut]
                exc = fut.exception()
                if exc is not None and strict:
                    raise PoolTaskError(i, exc) from exc
                outcome = exc if exc is not None else fut.result()
                outcomes[i] = outcome
                if on_result is not None:
                    on_result(i, outcome, time.perf_counter() - t0)
    return outcomes


def _shared_slot_task(path: str, index: int, fn: Callable, args: tuple):
    """Worker body for :func:`pool_map_shared`: reopen the scratch ``.npy``
    memory-mapped, hand ``fn`` its slot, return only ``fn``'s metadata."""
    buf = np.lib.format.open_memmap(path, mode="r+")
    try:
        return fn(buf[index], *args)
    finally:
        buf.flush()
        del buf


def pool_map_shared(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int,
    *,
    shape: tuple,
    dtype=np.float64,
    on_result: Callable[[int, object, float], None] | None = None,
    scratch_dir: str | None = None,
) -> tuple[np.ndarray, list[object]]:
    """Shared-memory fan-out: workers fill slots of one array in place.

    Runs ``fn(out_slot, *tasks[i])`` for every task, where ``out_slot`` is
    the zero-initialized ``shape``-shaped ``dtype`` slot ``buffer[i]`` of
    one ``(n_tasks, *shape)`` reduction buffer.  ``fn`` must write its
    result into ``out_slot`` and return only small metadata (a dict of
    counters, say) — the array itself never rides through pickle.  Returns
    ``(buffer, metas)`` with ``metas`` in task order.

    With ``jobs == 1`` (or at most one task) everything runs inline on an
    ordinary ``np.zeros`` buffer; with ``jobs > 1`` the buffer is a
    memory-mapped ``.npy`` scratch file (``numpy.lib.format.open_memmap``)
    that each worker reopens and writes through, and the parent copies it
    back to RAM before deleting the file.  Slots are disjoint, so the
    returned buffer is bit-identical for any ``jobs`` — reduction order is
    the caller's job and stays deterministic because slot order is task
    order.  A failing task raises :class:`PoolTaskError` with its index.
    """
    tasks = list(tasks)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    shape = tuple(int(s) for s in shape)
    full_shape = (len(tasks), *shape)
    metas: list[object] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        buffer = np.zeros(full_shape, dtype=dtype)
        for i, args in enumerate(tasks):
            t0 = time.perf_counter()
            try:
                meta = fn(buffer[i], *args)
            except Exception as exc:
                raise PoolTaskError(i, exc) from exc
            metas[i] = meta
            if on_result is not None:
                on_result(i, meta, time.perf_counter() - t0)
        return buffer, metas

    fd, path = tempfile.mkstemp(suffix=".npy", prefix="repro-pool-",
                                dir=scratch_dir)
    os.close(fd)
    try:
        # open_memmap(w+) writes zeros lazily through the page cache, so
        # slots start zero-initialized just like the serial np.zeros path.
        scratch = np.lib.format.open_memmap(path, mode="w+", dtype=dtype,
                                            shape=full_shape)
        scratch.flush()
        del scratch
        outcomes = pool_map(
            _shared_slot_task,
            [(path, i, fn, args) for i, args in enumerate(tasks)],
            jobs,
            on_result=on_result,
        )
        for i, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                raise PoolTaskError(i, outcome) from outcome
            metas[i] = outcome
        back = np.lib.format.open_memmap(path, mode="r")
        buffer = np.array(back)
        del back
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    return buffer, metas
