"""The engine's shared process-pool fan-out primitive.

Kept in a leaf module (stdlib imports only) so that source models —
``repro.core.telnet``/``fulltel``/``ftp``, ``repro.queueing.delay`` — can
offer a ``jobs=`` knob without pulling the experiment registry into their
import closure, which would make every experiment's source digest
(:func:`repro.engine.cache.source_digest`) sensitive to every file in the
package and defeat exact cache invalidation.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Sequence


def pool_map(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int,
    *,
    on_result: Callable[[int, object, float], None] | None = None,
) -> list[object]:
    """Order-preserving map over a process pool, capturing exceptions.

    Runs ``fn(*tasks[i])`` for every task — inline when ``jobs == 1`` or
    there is at most one task, otherwise on a ``ProcessPoolExecutor`` with
    up to ``jobs`` workers.  Returns one outcome per task *in task order*:
    the function's return value, or the raised exception object (workers
    never take the whole map down).  ``on_result(index, outcome, wall_s)``
    fires as each task completes (completion order), where ``wall_s`` is
    submit-to-completion wall time; both the experiment runner (cache
    write-back + progress logs) and the stream-scan driver (per-chunk
    metrics) hook it.

    This is the engine's shared fan-out primitive: anything shaped like
    "independent tasks, mergeable results" — experiment batteries, trace
    chunk scans, batched source synthesis — dispatches through it and
    inherits the same determinism guarantee (outcome order is task order,
    never scheduling order).
    """
    tasks = list(tasks)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    outcomes: list[object] = [None] * len(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for i, args in enumerate(tasks):
            t0 = time.perf_counter()
            try:
                outcome = fn(*args)
            except Exception as exc:
                outcome = exc
            outcomes[i] = outcome
            if on_result is not None:
                on_result(i, outcome, time.perf_counter() - t0)
        return outcomes
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        started = {
            pool.submit(fn, *args): (i, time.perf_counter())
            for i, args in enumerate(tasks)
        }
        pending = set(started)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                i, t0 = started[fut]
                exc = fut.exception()
                outcome = exc if exc is not None else fut.result()
                outcomes[i] = outcome
                if on_result is not None:
                    on_result(i, outcome, time.perf_counter() - t0)
    return outcomes
