"""Variance-time analysis (Figs. 5, 7, 12, 13).

"A valuable tool for assessing burstiness over different time-scales is the
variance-time plot": smooth the count process at aggregation levels M,
plot log10 Var(X^(M)) against log10 M.  For short-range-dependent processes
(e.g. Poisson) the variance decays like 1/M — slope -1; a shallower slope
indicates slowly decaying autocorrelation (long-range dependence or
nonstationarity), and for an exactly self-similar process the asymptotic
slope is 2H - 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.utils.validation import require_in_range


def default_levels(n_bins: int, per_decade: int = 5, min_blocks: int = 50) -> np.ndarray:
    """Log-spaced aggregation levels 1 .. n_bins/min_blocks.

    ``min_blocks`` keeps at least that many aggregated observations so the
    variance estimate at the largest level is not pure noise; 50 keeps the
    relative standard error of the top-level variance near 20%.
    """
    if n_bins < min_blocks:
        raise ValueError(f"need at least {min_blocks} bins, got {n_bins}")
    max_level = n_bins // min_blocks
    decades = np.log10(max_level) if max_level > 1 else 0.0
    n_pts = max(int(decades * per_decade) + 1, 2)
    levels = np.unique(np.round(np.geomspace(1, max_level, n_pts)).astype(int))
    return levels


@dataclass(frozen=True)
class VarianceTimeCurve:
    """The series behind one variance-time plot."""

    levels: np.ndarray  # aggregation levels M
    variances: np.ndarray  # Var[X^(M)], normalized if requested
    bin_width: float
    normalized: bool

    @property
    def log_levels(self) -> np.ndarray:
        return np.log10(self.levels.astype(float))

    @property
    def log_variances(self) -> np.ndarray:
        return np.log10(self.variances)

    def slope(self, min_level: int = 1, max_level: int | None = None) -> float:
        """Least-squares slope of log10 Var vs log10 M over a level range.

        Slope -1 = Poisson-like; shallower = large-scale correlations.
        """
        sel = self.levels >= min_level
        if max_level is not None:
            sel &= self.levels <= max_level
        if sel.sum() < 2:
            raise ValueError("need at least two points in the requested range")
        return float(np.polyfit(self.log_levels[sel], self.log_variances[sel], 1)[0])

    def hurst(self, min_level: int = 1, max_level: int | None = None) -> float:
        """Hurst estimate H = 1 + slope/2 (slope = 2H - 2)."""
        return 1.0 + self.slope(min_level, max_level) / 2.0


def variance_time_curve(
    process: CountProcess,
    levels=None,
    *,
    normalized: bool = True,
) -> VarianceTimeCurve:
    """Compute Var[X^(M)] across aggregation levels.

    ``normalized=True`` divides by the squared mean of the unaggregated
    process (the Fig. 5 normalization); block means leave the mean unchanged
    so a single normalizer serves every level.
    """
    lv = default_levels(process.n_bins) if levels is None else np.asarray(levels, int)
    if np.any(lv < 1):
        raise ValueError("aggregation levels must be >= 1")
    denom = process.mean**2 if normalized else 1.0
    if normalized and denom == 0:
        raise ValueError("cannot normalize an empty process")
    variances = []
    for m in lv:
        agg = process.aggregated(int(m))
        if agg.n_bins < 2:
            raise ValueError(f"aggregation level {m} leaves fewer than 2 blocks")
        variances.append(agg.variance / denom)
    return VarianceTimeCurve(
        levels=lv.astype(int),
        variances=np.asarray(variances, dtype=float),
        bin_width=process.bin_width,
        normalized=normalized,
    )


def poisson_reference(curve: VarianceTimeCurve) -> np.ndarray:
    """The slope -1 reference line through the curve's first point
    ("the line from the upper left corner has slope -1", Fig. 5)."""
    v0 = curve.variances[0] * curve.levels[0]
    return v0 / curve.levels.astype(float)


def slope_bootstrap(
    process: CountProcess,
    *,
    n_boot: int = 200,
    block_fraction: float = 0.05,
    min_level: int = 10,
    max_level: int | None = None,
    seed=None,
) -> tuple[float, tuple[float, float]]:
    """Variance-time slope with a circular-block-bootstrap 95% interval.

    Ordinary bootstrap destroys the dependence that *is* the quantity being
    measured, so resampling uses circular blocks of ``block_fraction`` of
    the series: long enough to preserve the correlations feeding the
    variance-time curve, short enough to give the resample real variety.
    Returns ``(point_estimate, (lo, hi))``.
    """
    from repro.utils.rng import as_rng

    if n_boot < 10:
        raise ValueError("n_boot must be >= 10")
    rng = as_rng(seed)
    x = process.counts
    n = x.size
    block = max(int(n * block_fraction), 16)
    if n < 4 * block:
        raise ValueError("series too short for block bootstrap")
    base_curve = variance_time_curve(process)
    top = int(base_curve.levels[-1]) if max_level is None else max_level
    point = base_curve.slope(min_level=min_level, max_level=top)

    # Every replicate shares the length and hence the level grid of the base
    # series, so the resampling and the variance sweep both vectorize: one
    # gather on precomputed circular block indices replaces the per-replicate
    # list-of-concatenates, and each aggregation level reduces all replicates
    # in a single reshape.
    n_blocks = int(np.ceil(n / block))
    starts = rng.integers(0, n, size=(n_boot, n_blocks))
    idx = (starts[:, :, None] + np.arange(block)[None, None, :]) % n
    resamples = x[idx.reshape(n_boot, -1)[:, :n]]  # (n_boot, n) single gather

    levels = base_curve.levels
    sel = (levels >= min_level) & (levels <= top)
    if sel.sum() < 2:
        raise ValueError("need at least two points in the requested range")
    fit_levels = levels[sel]
    log_m = np.log10(fit_levels.astype(float))
    denom = resamples.mean(axis=1) ** 2  # Fig. 5 normalization per replicate
    with np.errstate(divide="ignore", invalid="ignore"):
        log_v = np.empty((n_boot, fit_levels.size))
        for j, m in enumerate(fit_levels):
            whole = (n // int(m)) * int(m)
            blocks = resamples[:, :whole].reshape(n_boot, -1, int(m))
            log_v[:, j] = np.log10(blocks.mean(axis=2).var(axis=1) / denom)
        centered = log_m - log_m.mean()
        fit = (log_v - log_v.mean(axis=1, keepdims=True)) @ centered
        slopes = fit / (centered**2).sum()
    slopes = slopes[np.isfinite(slopes)]  # drop degenerate (e.g. all-zero) resamples
    if slopes.size < 10:
        raise ValueError("too few successful bootstrap replicates")
    lo, hi = np.quantile(slopes, [0.025, 0.975])
    return point, (float(lo), float(hi))


def hurst_from_variance_time(
    process: CountProcess,
    min_level: int = 10,
    max_level: int | None = None,
) -> float:
    """One-call variance-time Hurst estimate.

    ``min_level`` skips the smallest scales, where packet-level granularity
    (not long-range dependence) dominates; the paper's fits similarly read
    the slope over the straight mid-range of the plot.
    """
    require_in_range(min_level, "min_level", 1, process.n_bins)
    curve = variance_time_curve(process)
    return curve.hurst(min_level=min_level, max_level=max_level)
