"""Fractional ARIMA(0, d, 0) processes.

Section VII-D lists "better fits to other self-similar models such as
fractional ARIMA processes [3]" among the explanations for traces that
exhibit large-scale correlations yet reject fractional Gaussian noise.
FARIMA(0, d, 0) is the fractionally differenced noise X_t = (1-B)^(-d) e_t
with memory parameter d in (-1/2, 1/2); it is asymptotically self-similar
with H = d + 1/2.

Closed forms implemented:

* autocovariance  gamma(k) = sigma^2 * G(1-2d) * G(k+d)
                             / (G(d) G(1-d) G(k+1-d)),   G = Gamma;
* spectral density f(l) = sigma^2 / (2 pi) * |2 sin(l/2)|^(-2d);
* exact synthesis by circulant embedding of the autocovariance;
* Whittle estimation of d against the FARIMA spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import optimize, special

from repro.selfsim.fgn import periodogram
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_in_range

_D_LO, _D_HI = -0.49, 0.49


def farima_autocovariance(d: float, max_lag: int, sigma2: float = 1.0) -> np.ndarray:
    """gamma(0..max_lag) of FARIMA(0, d, 0).

    Computed via the stable ratio recursion
    gamma(k+1) = gamma(k) * (k + d) / (k + 1 - d), seeded with
    gamma(0) = sigma^2 * Gamma(1-2d) / Gamma(1-d)^2, and evaluated as a
    single ``cumprod`` over the pre-divided per-lag ratios.  ``cumprod``
    multiplies left to right exactly like a scalar ``g *= ratio`` loop, so
    this is bit-identical to the ratio-ordered recursion; relative to the
    historical ``(g * (k+d)) / (k+1-d)`` ordering it reassociates one
    division per lag (a few ulp over thousands of lags — see
    tests/test_kernels.py).
    """
    require_in_range(d, "d", _D_LO, _D_HI)
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    g0 = sigma2 * special.gamma(1.0 - 2.0 * d) / special.gamma(1.0 - d) ** 2
    k = np.arange(max_lag, dtype=float)
    ratios = (k + d) / (k + 1.0 - d)
    return np.cumprod(np.concatenate(([g0], ratios)))


def farima_spectral_density(freqs, d: float, sigma2: float = 1.0) -> np.ndarray:
    """f(l) = sigma^2/(2 pi) |2 sin(l/2)|^(-2d), l in (0, pi]."""
    require_in_range(d, "d", _D_LO, _D_HI)
    lam = np.asarray(freqs, dtype=float)
    if np.any((lam <= 0) | (lam > np.pi + 1e-12)):
        raise ValueError("frequencies must lie in (0, pi]")
    return sigma2 / (2.0 * np.pi) * np.abs(2.0 * np.sin(lam / 2.0)) ** (-2.0 * d)


def _embedding_eig(gamma: np.ndarray) -> np.ndarray:
    """Eigenvalues of the 2n-circulant embedding of gamma(0..n)."""
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    eig = np.fft.fft(row).real
    return np.where(eig < 0, 0.0, eig)


def _sample_from_eig(eig: np.ndarray, n: int, rng) -> np.ndarray:
    """Exact Gaussian sample given the embedding eigenvalues."""
    m = eig.size
    z = rng.normal(size=m) + 1j * rng.normal(size=m)
    x = np.fft.fft(np.sqrt(eig / (2.0 * m)) * z)
    return x.real[:n] * np.sqrt(2.0)


def _circulant_embedding_sample(gamma: np.ndarray, n: int, rng) -> np.ndarray:
    """Exact Gaussian sample from an autocovariance sequence gamma(0..n)."""
    return _sample_from_eig(_embedding_eig(gamma), n, rng)


@lru_cache(maxsize=32)
def _farima_embedding_eig(n: int, d: float, sigma2: float) -> np.ndarray:
    """Memoized embedding eigenvalues keyed on ``(n, d, sigma2)``.

    Deterministic in its key, so caching reuses the exact float sequence
    the inline computation produced; the array is read-only and shared.
    """
    eig = _embedding_eig(farima_autocovariance(d, n, sigma2=sigma2))
    eig.setflags(write=False)
    return eig


def farima_sample(
    n: int, d: float, sigma2: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Exact FARIMA(0, d, 0) sample via circulant embedding.

    The embedding eigenvalue vector is cached across calls keyed on
    ``(n, d, sigma2)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    require_in_range(d, "d", _D_LO, _D_HI)
    eig = _farima_embedding_eig(int(n), float(d), float(sigma2))
    return _sample_from_eig(eig, n, as_rng(seed))


def hurst_from_d(d: float) -> float:
    """H = d + 1/2 for the asymptotically self-similar FARIMA."""
    require_in_range(d, "d", _D_LO, _D_HI)
    return d + 0.5


@dataclass(frozen=True)
class FarimaWhittleResult:
    """Whittle fit of FARIMA(0, d, 0) to one series."""

    d: float
    sigma2: float
    std_error: float
    n: int

    @property
    def hurst(self) -> float:
        return hurst_from_d(self.d)

    @property
    def confidence_interval(self) -> tuple[float, float]:
        half = 1.96 * self.std_error
        return (self.d - half, self.d + half)

    def contains(self, d: float) -> bool:
        lo, hi = self.confidence_interval
        return lo <= d <= hi


def _objective(d: float, lam: np.ndarray, spec: np.ndarray) -> float:
    f = farima_spectral_density(lam, d)
    return float(np.log(np.mean(spec / f)) + np.mean(np.log(f)))


def farima_whittle_estimate(series: np.ndarray) -> FarimaWhittleResult:
    """Estimate d by discrete Whittle likelihood against the FARIMA spectrum."""
    x = np.asarray(series, dtype=float)
    lam, spec = periodogram(x)
    m = lam.size
    res = optimize.minimize_scalar(
        _objective, bounds=(_D_LO, _D_HI), args=(lam, spec),
        method="bounded", options={"xatol": 1e-6},
    )
    d_hat = float(res.x)
    f = farima_spectral_density(lam, d_hat)
    # E[I(l)] = sigma2 * f(l; d, sigma2=1), so the ratio mean profiles out
    # the innovation variance directly.
    sigma2 = float(np.mean(spec / f))
    dh = 1e-4
    d_m = min(max(d_hat, _D_LO + dh), _D_HI - dh)
    curve = (
        _objective(d_m + dh, lam, spec)
        - 2.0 * _objective(d_m, lam, spec)
        + _objective(d_m - dh, lam, spec)
    ) / dh**2
    se = float(1.0 / np.sqrt(m * curve)) if curve > 0 else float("inf")
    return FarimaWhittleResult(d=d_hat, sigma2=sigma2, std_error=se, n=x.size)
