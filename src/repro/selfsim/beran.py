"""Beran's periodogram goodness-of-fit test for a fitted spectral model.

Section VII-C uses "Beran's goodness-of-fit test [2]" to ask whether a trace
is consistent with fractional Gaussian noise at all, not merely to estimate
H.  The test examines the ratios R_j = I(l_j) / f(l_j; H-hat): under the
null they behave like i.i.d. standard exponentials, so the normalized
second-moment statistic

    T = mean(R^2) / mean(R)^2

converges to E[R^2]/E[R]^2 = 2, with  sqrt(m) (T - 2) -> N(0, 4)

(delta method on the exponential moments; this is the same periodogram-ratio
construction as Beran 1992, expressed scale-free so the profiled variance
drops out).  Departures from the fitted spectral shape inflate the
dispersion of the ratios and push T away from 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.selfsim.fgn import fgn_spectral_density, periodogram
from repro.selfsim.whittle import WhittleResult, whittle_estimate


@dataclass(frozen=True)
class BeranResult:
    """Goodness-of-fit verdict for 'this series is fGn(H-hat)'."""

    statistic: float  # T = mean(R^2)/mean(R)^2
    z_score: float  # sqrt(m) (T - 2) / 2
    p_value: float  # two-sided
    hurst: float  # the H used for the fitted spectrum
    m: int  # number of Fourier frequencies

    def consistent(self, alpha: float = 0.05) -> bool:
        """True if the series is consistent with fGn at level ``alpha``."""
        return self.p_value >= alpha


def beran_goodness_of_fit(
    series: np.ndarray,
    hurst: float | None = None,
    *,
    method: str = "montecarlo",
    n_null: int = 400,
    null_seed: int = 1234,
) -> BeranResult:
    """Test agreement between a series and fGn.

    If ``hurst`` is None it is first estimated by Whittle's procedure (the
    paper's workflow: estimate H, then ask whether fGn with that H actually
    fits).

    ``method`` selects the null calibration: "asymptotic" uses the normal
    limit sqrt(m)(T - 2)/2 ~ N(0, 1), which over-rejects slightly (the
    statistic is right-skewed at finite m); "montecarlo" (default) simulates
    the exact null — T over m i.i.d. standard exponentials — and reads the
    two-sided p-value from its quantiles.
    """
    if method not in ("asymptotic", "montecarlo"):
        raise ValueError(f"method must be 'asymptotic' or 'montecarlo', got {method!r}")
    x = np.asarray(series, dtype=float)
    if hurst is None:
        hurst = whittle_estimate(x).hurst
    lam, spec = periodogram(x)
    f = fgn_spectral_density(lam, hurst)
    ratios = spec / f
    ratios = ratios / np.mean(ratios)  # profile out the scale
    m = ratios.size
    t_stat = float(np.mean(ratios**2))  # mean(R)^2 == 1 after profiling
    z = np.sqrt(m) * (t_stat - 2.0) / 2.0
    if method == "asymptotic":
        p = 2.0 * float(stats.norm.sf(abs(z)))
    else:
        null_rng = np.random.default_rng(null_seed)
        e = null_rng.exponential(1.0, size=(n_null, m))
        t_null = np.mean(e**2, axis=1) / np.mean(e, axis=1) ** 2
        lo = float(np.mean(t_null <= t_stat))
        hi = float(np.mean(t_null >= t_stat))
        # add-one smoothing keeps p strictly positive at finite n_null
        p = min(1.0, 2.0 * (min(lo, hi) * n_null + 1.0) / (n_null + 1.0))
    return BeranResult(statistic=t_stat, z_score=float(z), p_value=p,
                       hurst=float(hurst), m=m)


def whittle_with_gof(series: np.ndarray) -> tuple[WhittleResult, BeranResult]:
    """The paper's Section VII-C pipeline: Whittle estimate + fGn fit test."""
    w = whittle_estimate(series)
    g = beran_goodness_of_fit(series, hurst=w.hurst)
    return w, g
