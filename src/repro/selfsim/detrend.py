"""Diurnal detrending and the nonstationarity caveat.

Section VII-C warns that a shallow variance-time slope "can also occur due
to the presence of nonstationarity": a deterministic rate cycle (the Fig. 1
diurnal pattern) inflates variance at large aggregation levels exactly the
way long-range dependence does.  The standard check is to remove the cycle
and re-read the slope:

* genuine LRD survives detrending (the slope stays shallow);
* pure nonstationarity does not (the slope falls back toward -1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import variance_time_curve


def remove_cycle(counts: np.ndarray, period: int, *, how: str = "divide") -> np.ndarray:
    """Remove a deterministic cycle of ``period`` bins from a count series.

    The per-phase mean over all complete cycles is the cycle estimate;
    ``how="divide"`` rescales each observation by (phase mean / grand mean)
    — appropriate for rate modulation, which is multiplicative —
    while ``how="subtract"`` removes it additively.
    """
    x = np.asarray(counts, dtype=float)
    if period < 2:
        raise ValueError(f"period must be >= 2 bins, got {period}")
    if x.size < 2 * period:
        raise ValueError("need at least two full cycles to estimate the trend")
    n = (x.size // period) * period
    phase_mean = x[:n].reshape(-1, period).mean(axis=0)
    grand = float(x[:n].mean())
    if grand <= 0:
        raise ValueError("cannot detrend a zero-mean count series")
    tiled = np.tile(phase_mean, x.size // period + 1)[: x.size]
    if how == "divide":
        safe = np.where(tiled > 0, tiled, grand)
        return x * grand / safe
    if how == "subtract":
        return x - tiled + grand
    raise ValueError(f"how must be 'divide' or 'subtract', got {how!r}")


@dataclass(frozen=True)
class NonstationarityCheck:
    """Variance-time slopes before/after removing a candidate cycle."""

    raw_slope: float
    detrended_slope: float
    period_bins: int

    @property
    def slope_change(self) -> float:
        return self.detrended_slope - self.raw_slope

    @property
    def looks_nonstationary(self) -> bool:
        """True when the shallow slope was mostly the cycle's doing:
        detrending steepens the slope by a large fraction of its distance
        from the Poisson reference -1."""
        gap_before = self.raw_slope - (-1.0)
        gap_after = self.detrended_slope - (-1.0)
        if gap_before <= 0.05:
            return False
        return gap_after < 0.5 * gap_before


def nonstationarity_check(
    process: CountProcess,
    period_bins: int,
    *,
    min_level: int = 10,
    max_level: int | None = None,
) -> NonstationarityCheck:
    """Compare variance-time slopes of raw vs cycle-removed counts."""
    raw = variance_time_curve(process)
    detrended = variance_time_curve(
        CountProcess(remove_cycle(process.counts, period_bins),
                     process.bin_width)
    )
    top = int(raw.levels[-1]) if max_level is None else max_level
    return NonstationarityCheck(
        raw_slope=raw.slope(min_level=min_level, max_level=top),
        detrended_slope=detrended.slope(min_level=min_level, max_level=top),
        period_bins=period_bins,
    )
