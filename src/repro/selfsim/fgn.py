"""Fractional Gaussian noise: autocovariance, spectral density, synthesis.

fGn is "the simplest type of self-similar process" the paper tests traffic
against (Section VII-C) via Whittle's procedure and Beran's goodness-of-fit
test.  This module provides:

* the exact autocovariance gamma(k) = (sigma^2/2)(|k+1|^2H - 2|k|^2H +
  |k-1|^2H);
* the spectral density via the truncated-sum-plus-integral approximation of
  Paxson (1997), accurate to a relative error far below estimation noise;
* exact synthesis by Davies-Harte circulant embedding, used to validate the
  estimators on series of known Hurst parameter.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_in_range, require_positive


def fgn_autocovariance(hurst: float, max_lag: int, sigma2: float = 1.0) -> np.ndarray:
    """gamma(0..max_lag) of fractional Gaussian noise."""
    require_in_range(hurst, "hurst", 0.0, 1.0, inclusive=False)
    require_positive(sigma2, "sigma2")
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    k = np.arange(max_lag + 1, dtype=float)
    h2 = 2.0 * hurst
    return 0.5 * sigma2 * (
        np.abs(k + 1) ** h2 - 2.0 * np.abs(k) ** h2 + np.abs(k - 1) ** h2
    )


def fgn_spectral_density(freqs, hurst: float, sigma2: float = 1.0) -> np.ndarray:
    """Spectral density f(lambda; H) of fGn on (0, pi].

    f(l) = c(H) |e^{il} - 1|^2 * sum_j |l + 2 pi j|^{-2H-1}, with
    c(H) = sigma^2 sin(pi H) Gamma(2H + 1) / (2 pi).  The infinite sum is
    truncated at |j| <= 3 with Paxson's integral correction for the tail.
    """
    require_in_range(hurst, "hurst", 0.0, 1.0, inclusive=False)
    lam = np.asarray(freqs, dtype=float)
    if np.any((lam <= 0) | (lam > np.pi + 1e-12)):
        raise ValueError("frequencies must lie in (0, pi]")
    h = hurst
    expo = -(2.0 * h + 1.0)
    two_pi = 2.0 * np.pi
    total = lam**expo
    for j in range(1, 4):
        total = total + (two_pi * j + lam) ** expo + (two_pi * j - lam) ** expo
    # Tail correction: integral approximation of the j >= 4 terms
    # (Paxson 1997, eq. for B-tilde_3).
    a_lo_p, a_lo_m = two_pi * 3 + lam, two_pi * 3 - lam
    a_hi_p, a_hi_m = two_pi * 4 + lam, two_pi * 4 - lam
    tail = (
        a_lo_p ** (expo + 1.0)
        + a_lo_m ** (expo + 1.0)
        + a_hi_p ** (expo + 1.0)
        + a_hi_m ** (expo + 1.0)
    ) / (8.0 * h * np.pi)
    total = total + tail
    import math

    c = sigma2 * math.sin(math.pi * h) * math.gamma(2.0 * h + 1.0) / two_pi
    # |e^{il} - 1|^2 = 4 sin^2(l/2).  With this normalization
    # integral_{-pi}^{pi} f = sigma^2 and E[I(l_j)] ~ f(l_j) for the
    # periodogram convention used by the Whittle and Beran modules.
    return c * np.abs(2.0 * np.sin(lam / 2.0)) ** 2 * total


@lru_cache(maxsize=32)
def _fgn_embedding_eig(n: int, hurst: float, sigma2: float) -> np.ndarray:
    """Eigenvalues of the 2n-circulant embedding of the fGn covariance.

    The eigenvector is a deterministic function of ``(n, hurst, sigma2)``
    and its FFT dominates :func:`fgn_sample`'s non-RNG cost, so it is
    memoized (the returned array is marked read-only — callers share it).
    Caching changes nothing numerically: the cached value is the same
    float sequence the inline computation produced.
    """
    gamma = fgn_autocovariance(hurst, n, sigma2=sigma2)
    # First row of the 2n-circulant: gamma_0 .. gamma_n, gamma_{n-1} .. gamma_1
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    eig = np.fft.fft(row).real
    eig = np.where(eig < 0, 0.0, eig)  # clip fp noise; theory says >= 0
    eig.setflags(write=False)
    return eig


def fgn_sample(
    n: int, hurst: float, sigma2: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Exact fGn sample of length ``n`` via Davies-Harte circulant embedding.

    The circulant embedding of the covariance is diagonalized by FFT; for
    fGn its eigenvalues are provably nonnegative, so the method is exact
    (no approximation error beyond floating point).  The eigenvalue vector
    is cached across calls keyed on ``(n, hurst, sigma2)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    require_in_range(hurst, "hurst", 0.0, 1.0, inclusive=False)
    require_positive(sigma2, "sigma2")
    rng = as_rng(seed)
    eig = _fgn_embedding_eig(int(n), float(hurst), float(sigma2))
    m = eig.size
    z = rng.normal(size=m) + 1j * rng.normal(size=m)
    x = np.fft.fft(np.sqrt(eig / (2.0 * m)) * z)
    return x.real[:n] * np.sqrt(2.0)


def fractional_brownian_motion(
    n: int, hurst: float, seed: SeedLike = None
) -> np.ndarray:
    """Cumulative sums of fGn: a fractional Brownian motion path."""
    return np.cumsum(fgn_sample(n, hurst, seed=seed))


def periodogram(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(Fourier frequencies, periodogram ordinates) with the convention
    I(l_j) = |sum_t x_t e^{-i t l_j}|^2 / (2 pi n), j = 1 .. floor((n-1)/2).

    The mean is removed first, so the j = 0 ordinate (which would otherwise
    swamp everything) is excluded along with the Nyquist term.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 8:
        raise ValueError(f"need at least 8 observations, got {n}")
    xc = x - x.mean()
    spec = np.abs(np.fft.rfft(xc)) ** 2 / (2.0 * np.pi * n)
    j = np.arange(1, (n - 1) // 2 + 1)
    lam = 2.0 * np.pi * j / n
    return lam, spec[j]
