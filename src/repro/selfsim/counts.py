"""Count-process construction and manipulation.

A *count process* is the paper's basic object for burstiness analysis: the
number of packet arrivals in consecutive fixed-width bins (0.1 s bins for
the TELNET analyses of Section IV, 0.01 s for the aggregate-traffic analyses
of Section VII-D).  This module wraps binning/aggregation with the
normalizations the paper's plots use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.binning import aggregate, bin_counts
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class CountProcess:
    """A binned arrival process.

    Attributes
    ----------
    counts:
        Arrivals per bin.
    bin_width:
        Bin width in seconds.
    """

    counts: np.ndarray
    bin_width: float

    def __post_init__(self):
        require_positive(self.bin_width, "bin_width")
        object.__setattr__(
            self, "counts", np.asarray(self.counts, dtype=float)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_times(
        cls,
        times,
        bin_width: float,
        start: float | None = None,
        end: float | None = None,
    ) -> "CountProcess":
        """Bin raw event timestamps."""
        return cls(bin_counts(times, bin_width, start=start, end=end), bin_width)

    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        return int(self.counts.size)

    @property
    def duration(self) -> float:
        return self.n_bins * self.bin_width

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def mean(self) -> float:
        return float(self.counts.mean()) if self.n_bins else 0.0

    @property
    def variance(self) -> float:
        return float(self.counts.var()) if self.n_bins else 0.0

    @property
    def normalized_variance(self) -> float:
        """Variance divided by the squared mean — the paper's Fig. 5
        normalization, which "allows us to compare the variance of processes
        with different numbers of arrivals"."""
        m = self.mean
        if m == 0:
            raise ValueError("normalized variance undefined for empty process")
        return self.variance / m**2

    @property
    def index_of_dispersion(self) -> float:
        """Var/mean; 1 for Poisson counts, > 1 for over-dispersed traffic."""
        m = self.mean
        if m == 0:
            raise ValueError("index of dispersion undefined for empty process")
        return self.variance / m

    # ------------------------------------------------------------------
    def aggregated(self, level: int) -> "CountProcess":
        """The level-M smoothed process X^(M) (block means), bin width M*b."""
        return CountProcess(aggregate(self.counts, level, how="mean"),
                            self.bin_width * level)

    def rebinned(self, level: int) -> "CountProcess":
        """Block *sums*: the same traffic binned at width M*b."""
        return CountProcess(aggregate(self.counts, level, how="sum"),
                            self.bin_width * level)

    def slice_time(self, start: float, end: float) -> "CountProcess":
        """Restrict to bins fully inside [start, end) seconds."""
        i0 = int(np.ceil(start / self.bin_width - 1e-9))
        i1 = int(np.floor(end / self.bin_width + 1e-9))
        i0 = max(i0, 0)
        i1 = min(i1, self.n_bins)
        return CountProcess(self.counts[i0:i1], self.bin_width)
