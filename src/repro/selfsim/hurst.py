"""Unified front-end: estimate H several ways and cross-check.

Section VII judges self-similarity by triangulation — variance-time plots,
Whittle's procedure, and a goodness-of-fit test — because each method fails
differently (nonstationarity mimics LRD on variance-time plots; Whittle
assumes the fGn shape; lull-dominated FTP traffic breaks the Gaussian
marginal).  ``hurst_panel`` runs the whole battery on one series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.selfsim.beran import BeranResult, beran_goodness_of_fit
from repro.selfsim.counts import CountProcess
from repro.selfsim.periodogram_hurst import PeriodogramHurstResult, periodogram_hurst
from repro.selfsim.rs_analysis import RSResult, rs_analysis
from repro.selfsim.variance_time import VarianceTimeCurve, variance_time_curve
from repro.selfsim.whittle import WhittleResult, whittle_estimate


@dataclass(frozen=True)
class HurstPanel:
    """All Section VII diagnostics for one count process."""

    variance_time: VarianceTimeCurve
    vt_hurst: float
    whittle: WhittleResult
    rs: RSResult
    gph: PeriodogramHurstResult
    gof: BeranResult

    @property
    def estimates(self) -> dict[str, float]:
        return {
            "variance_time": self.vt_hurst,
            "whittle": self.whittle.hurst,
            "rs": self.rs.hurst,
            "periodogram": self.gph.hurst,
        }

    @property
    def median_hurst(self) -> float:
        return float(np.median(list(self.estimates.values())))

    @property
    def consistent_with_fgn(self) -> bool:
        """The paper's Section VII-C verdict: does fGn actually fit?"""
        return self.gof.consistent()

    @property
    def long_range_dependent_looking(self) -> bool:
        """Large-scale correlations present: H estimates clearly above 1/2
        even if the fGn goodness-of-fit fails (the paper's distinction
        between 'exhibits large-scale correlations' and 'is well-modeled by
        a simple self-similar process')."""
        return self.median_hurst > 0.6

    def summary_row(self) -> dict:
        row = {f"H_{k}": v for k, v in self.estimates.items()}
        row["gof_p"] = self.gof.p_value
        row["fgn_consistent"] = self.consistent_with_fgn
        return row


def hurst_by_scale(
    process: CountProcess,
    levels=(1, 5, 10, 50, 100),
) -> list[dict]:
    """Whittle H and fGn goodness-of-fit at several aggregation levels.

    Section VII-C judges fGn consistency per time scale ("consistent with
    self-similarity on scales of tens of seconds or more" for TELNET;
    "at time scales of 1 s or greater" for DEC WRL-3): a process can reject
    fGn at fine scales (packet granularity, short-range structure) yet fit
    once aggregated.  Each row reports the scale in seconds, the Whittle
    estimate, and the goodness-of-fit verdict at that scale.
    """
    rows = []
    for level in levels:
        agg = process.rebinned(int(level))
        if agg.n_bins < 128:
            break
        w = whittle_estimate(agg.counts)
        g = beran_goodness_of_fit(agg.counts, hurst=w.hurst)
        rows.append(
            {
                "scale_seconds": agg.bin_width,
                "hurst": w.hurst,
                "gof_p": g.p_value,
                "fgn_consistent": g.consistent(),
                "n_bins": agg.n_bins,
            }
        )
    if not rows:
        raise ValueError("process too short for the requested levels")
    return rows


def hurst_panel(
    process: CountProcess | np.ndarray,
    *,
    vt_min_level: int = 10,
    seed=None,
) -> HurstPanel:
    """Run every estimator + the goodness-of-fit test on one series."""
    if isinstance(process, CountProcess):
        series = process.counts
        cp = process
    else:
        series = np.asarray(process, dtype=float)
        cp = CountProcess(series, 1.0)
    vt = variance_time_curve(cp)
    vt_h = vt.hurst(min_level=min(vt_min_level, int(vt.levels[-1])))
    w = whittle_estimate(series)
    rs = rs_analysis(series, seed=seed)
    gph = periodogram_hurst(series)
    gof = beran_goodness_of_fit(series, hurst=w.hurst)
    return HurstPanel(variance_time=vt, vt_hurst=vt_h, whittle=w, rs=rs,
                      gph=gph, gof=gof)
