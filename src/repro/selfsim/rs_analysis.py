"""Rescaled-range (R/S) analysis.

The classical Hurst estimator (Mandelbrot's pox plot): for blocks of length
n, the rescaled adjusted range R(n)/S(n) grows like n^H.  Included alongside
the variance-time and Whittle estimators so the three can cross-check each
other, as is standard practice in the self-similarity literature the paper
builds on [28].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.segments import block_view
from repro.utils.rng import SeedLike, as_rng


def rescaled_range(block: np.ndarray) -> float:
    """R/S of one block: adjusted range of cumulative deviations over the
    sample standard deviation."""
    x = np.asarray(block, dtype=float)
    if x.size < 2:
        raise ValueError("block must have at least 2 observations")
    dev = x - x.mean()
    cum = np.cumsum(dev)
    r = float(cum.max() - cum.min())
    s = float(x.std())
    if s == 0.0:
        raise ValueError("block has zero variance; R/S undefined")
    return r / s


@dataclass(frozen=True)
class RSResult:
    """Pox-plot data and the regression Hurst estimate."""

    block_sizes: np.ndarray
    rs_values: np.ndarray  # mean R/S at each block size
    hurst: float
    intercept: float


def rs_analysis(
    series: np.ndarray,
    block_sizes=None,
    *,
    min_blocks: int = 4,
    max_samples_per_size: int = 50,
    seed: SeedLike = None,
) -> RSResult:
    """R/S analysis: regress log(R/S) on log(n) over a ladder of block sizes.

    For each block size, up to ``max_samples_per_size`` non-overlapping
    blocks are evaluated (randomly subsampled when there are more) and their
    R/S averaged.  All of one size's blocks are gathered into a single
    (blocks, size) view and reduced along axis 1 — bit-identical to calling
    :func:`rescaled_range` per block, since every axis-1 reduction sees
    exactly the per-block operands.
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if n < 32:
        raise ValueError(f"need at least 32 observations, got {n}")
    if block_sizes is None:
        max_size = n // min_blocks
        block_sizes = np.unique(
            np.round(np.geomspace(8, max_size, 12)).astype(int)
        )
    sizes = np.asarray(block_sizes, dtype=int)
    if np.any(sizes < 2):
        raise ValueError("block sizes must be >= 2")
    rng = as_rng(seed)

    means = []
    kept_sizes = []
    for size in sizes:
        n_blocks = n // size
        if n_blocks < 1:
            continue
        starts = np.arange(n_blocks) * size
        if starts.size > max_samples_per_size:
            starts = rng.choice(starts, size=max_samples_per_size, replace=False)
        rows = block_view(x[: n_blocks * size], size)[starts // size]
        dev = rows - rows.mean(axis=1, keepdims=True)
        cum = np.cumsum(dev, axis=1)
        r = cum.max(axis=1) - cum.min(axis=1)
        s = rows.std(axis=1)
        ok = s != 0.0
        if np.any(ok):
            means.append(float(np.mean(r[ok] / s[ok])))
            kept_sizes.append(int(size))
    if len(kept_sizes) < 3:
        raise ValueError("too few usable block sizes for a regression")
    ks = np.asarray(kept_sizes, dtype=float)
    ms = np.asarray(means, dtype=float)
    slope, intercept = np.polyfit(np.log(ks), np.log(ms), 1)
    return RSResult(
        block_sizes=ks.astype(int),
        rs_values=ms,
        hurst=float(slope),
        intercept=float(intercept),
    )
