"""Log-periodogram (Geweke-Porter-Hudak style) Hurst estimator.

Near zero frequency a long-range dependent process has f(l) ~ c l^(1-2H),
so regressing log I(l_j) on log l_j over the lowest frequencies estimates
1 - 2H as the slope.  A robust, model-light complement to the Whittle
estimator (which assumes the full fGn spectral shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.selfsim.fgn import periodogram
from repro.utils.validation import require_in_range


@dataclass(frozen=True)
class PeriodogramHurstResult:
    hurst: float
    slope: float  # = 1 - 2H
    n_frequencies: int
    std_error: float  # regression SE propagated to H


def periodogram_hurst(
    series: np.ndarray, frequency_fraction: float = 0.1
) -> PeriodogramHurstResult:
    """Estimate H from the lowest ``frequency_fraction`` of the periodogram."""
    require_in_range(frequency_fraction, "frequency_fraction", 0.0, 1.0,
                     inclusive=False)
    lam, spec = periodogram(np.asarray(series, dtype=float))
    m = max(int(np.floor(lam.size * frequency_fraction)), 4)
    lam, spec = lam[:m], spec[:m]
    pos = spec > 0
    if pos.sum() < 4:
        raise ValueError("too few positive periodogram ordinates")
    lx, ly = np.log(lam[pos]), np.log(spec[pos])
    coeffs, cov = np.polyfit(lx, ly, 1, cov=True)
    slope = float(coeffs[0])
    h = (1.0 - slope) / 2.0
    return PeriodogramHurstResult(
        hurst=h,
        slope=slope,
        n_frequencies=int(pos.sum()),
        std_error=float(np.sqrt(cov[0, 0]) / 2.0),
    )
