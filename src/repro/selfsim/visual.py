"""Quantifying "visual self-similarity".

Leland et al.'s famous figure — and this paper's Figs. 14-15 — argue by
eye: the count process "looks the same" at every aggregation level, where
Poisson traffic smooths toward a flat line.  This module makes the argument
quantitative: rescale the process at several aggregation levels to zero
mean and unit variance, and compare the *marginal burst structure* across
levels.

The score is the mean Wasserstein-1 distance between the standardized
marginal distributions at consecutive levels: exactly self-similar traffic
(e.g. fGn) scores near zero at every level, while Poisson traffic's
aggregates sharpen toward a degenerate (smooth) marginal and drift apart
from the fine-scale one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.selfsim.counts import CountProcess


def standardized_aggregate(counts: np.ndarray, level: int) -> np.ndarray:
    """Aggregate by block means, then standardize to zero mean/unit sd."""
    from repro.utils.binning import aggregate

    agg = aggregate(counts, level, how="mean")
    if agg.size < 2:
        raise ValueError(f"level {level} leaves fewer than 2 observations")
    sd = agg.std()
    if sd == 0:
        raise ValueError(f"level {level} aggregate is constant")
    return (agg - agg.mean()) / sd


def _wasserstein(a: np.ndarray, b: np.ndarray, grid: int = 256) -> float:
    """W1 distance between two standardized samples via quantile functions."""
    q = np.linspace(0.005, 0.995, grid)
    return float(np.mean(np.abs(np.quantile(a, q) - np.quantile(b, q))))


@dataclass(frozen=True)
class VisualSimilarityResult:
    """Scale-to-scale marginal distances of a standardized count process."""

    levels: np.ndarray
    pairwise_distances: np.ndarray  # between consecutive levels

    @property
    def score(self) -> float:
        """Mean consecutive-scale distance; smaller = more self-similar."""
        return float(self.pairwise_distances.mean())

    def rows(self) -> list[dict]:
        return [
            {"level_from": int(a), "level_to": int(b), "w1": float(d)}
            for a, b, d in zip(self.levels[:-1], self.levels[1:],
                               self.pairwise_distances)
        ]


def visual_self_similarity(
    process: CountProcess | np.ndarray,
    levels=(1, 4, 16, 64),
) -> VisualSimilarityResult:
    """Score how alike the process looks across aggregation levels.

    Levels must each leave at least ~100 observations for the marginal
    comparison to be meaningful; too-coarse levels raise ``ValueError``.
    """
    counts = process.counts if isinstance(process, CountProcess) else np.asarray(
        process, dtype=float
    )
    lv = [int(x) for x in levels]
    if sorted(lv) != lv or len(lv) < 2:
        raise ValueError("levels must be increasing with at least two entries")
    panels = [standardized_aggregate(counts, level) for level in lv]
    for level, p in zip(lv, panels):
        if p.size < 100:
            raise ValueError(
                f"level {level} leaves only {p.size} observations; "
                "use a longer series or smaller levels"
            )
    dists = np.array([
        _wasserstein(a, b) for a, b in zip(panels[:-1], panels[1:])
    ])
    return VisualSimilarityResult(levels=np.asarray(lv), pairwise_distances=dists)
