"""Self-similarity toolkit (Section VII and Appendices C-E support).

Count processes, variance-time analysis, exact fractional-Gaussian-noise
synthesis, Whittle's Hurst estimator, Beran's goodness-of-fit test, R/S
analysis, and the log-periodogram estimator.
"""

from repro.selfsim.beran import BeranResult, beran_goodness_of_fit, whittle_with_gof
from repro.selfsim.counts import CountProcess
from repro.selfsim.detrend import (
    NonstationarityCheck,
    nonstationarity_check,
    remove_cycle,
)
from repro.selfsim.fgn import (
    fgn_autocovariance,
    fgn_sample,
    fgn_spectral_density,
    fractional_brownian_motion,
    periodogram,
)
from repro.selfsim.farima import (
    FarimaWhittleResult,
    farima_autocovariance,
    farima_sample,
    farima_spectral_density,
    farima_whittle_estimate,
    hurst_from_d,
)
from repro.selfsim.hurst import HurstPanel, hurst_by_scale, hurst_panel
from repro.selfsim.periodogram_hurst import PeriodogramHurstResult, periodogram_hurst
from repro.selfsim.rs_analysis import RSResult, rescaled_range, rs_analysis
from repro.selfsim.variance_time import (
    VarianceTimeCurve,
    default_levels,
    hurst_from_variance_time,
    poisson_reference,
    slope_bootstrap,
    variance_time_curve,
)
from repro.selfsim.visual import (
    VisualSimilarityResult,
    standardized_aggregate,
    visual_self_similarity,
)
from repro.selfsim.whittle import WhittleResult, whittle_estimate

__all__ = [
    "BeranResult",
    "FarimaWhittleResult",
    "CountProcess",
    "HurstPanel",
    "NonstationarityCheck",
    "PeriodogramHurstResult",
    "RSResult",
    "VarianceTimeCurve",
    "VisualSimilarityResult",
    "WhittleResult",
    "beran_goodness_of_fit",
    "default_levels",
    "farima_autocovariance",
    "farima_sample",
    "farima_spectral_density",
    "farima_whittle_estimate",
    "fgn_autocovariance",
    "fgn_sample",
    "fgn_spectral_density",
    "fractional_brownian_motion",
    "hurst_by_scale",
    "hurst_from_d",
    "hurst_from_variance_time",
    "hurst_panel",
    "nonstationarity_check",
    "periodogram",
    "periodogram_hurst",
    "remove_cycle",
    "poisson_reference",
    "rescaled_range",
    "rs_analysis",
    "slope_bootstrap",
    "standardized_aggregate",
    "variance_time_curve",
    "visual_self_similarity",
    "whittle_estimate",
    "whittle_with_gof",
]
