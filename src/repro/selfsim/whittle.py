"""Whittle's maximum-likelihood Hurst estimator for fractional Gaussian noise.

Section VII-C: "we also used Whittle's procedure [21, 28] ... to gauge the
agreement between the traffic and the simplest type of self-similar process,
fractional Gaussian noise."  The discrete Whittle estimator minimizes the
frequency-domain (quasi-)likelihood

    L(H) = log( (1/m) sum_j I(l_j) / f*(l_j; H) ) + (1/m) sum_j log f*(l_j; H)

over H, where f* is the unit-variance fGn spectral density and the scale is
profiled out.  Confidence intervals come from the observed curvature of the
Whittle log-likelihood at the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.selfsim.fgn import fgn_spectral_density, periodogram

_H_LO, _H_HI = 0.01, 0.99


@dataclass(frozen=True)
class WhittleResult:
    """Whittle fit of fGn to one series."""

    hurst: float
    sigma2: float  # profiled innovation-scale estimate
    std_error: float
    n: int
    log_likelihood: float

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """Asymptotic 95% CI for H."""
        half = 1.96 * self.std_error
        return (self.hurst - half, self.hurst + half)

    def contains(self, h: float) -> bool:
        lo, hi = self.confidence_interval
        return lo <= h <= hi


def _profiled_objective(h: float, lam: np.ndarray, spec: np.ndarray) -> float:
    f = fgn_spectral_density(lam, h)
    ratio = spec / f
    return float(np.log(np.mean(ratio)) + np.mean(np.log(f)))


def whittle_estimate(series: np.ndarray) -> WhittleResult:
    """Fit H by discrete Whittle likelihood against the fGn spectrum.

    The input should be a (count) process believed stationary; the paper
    applies it to binned packet counts.
    """
    x = np.asarray(series, dtype=float)
    lam, spec = periodogram(x)
    m = lam.size

    result = optimize.minimize_scalar(
        _profiled_objective,
        bounds=(_H_LO, _H_HI),
        args=(lam, spec),
        method="bounded",
        options={"xatol": 1e-6},
    )
    h_hat = float(result.x)

    # Profiled scale: sigma^2 = mean(I / f*) with f* the unit-scale density.
    f = fgn_spectral_density(lam, h_hat)
    sigma2 = float(np.mean(spec / f))

    # Observed information of the full Whittle likelihood
    #   l(H) = -sum_j [ log f_j(H) + I_j / f_j(H) ]  (with the scale folded
    # into f); estimate the curvature of the profiled objective numerically.
    dh = 1e-4
    h_m = min(max(h_hat, _H_LO + dh), _H_HI - dh)
    l0 = _profiled_objective(h_m, lam, spec)
    lp = _profiled_objective(h_m + dh, lam, spec)
    lmn = _profiled_objective(h_m - dh, lam, spec)
    curvature = (lp - 2.0 * l0 + lmn) / dh**2
    if curvature > 0:
        std_error = float(1.0 / np.sqrt(m * curvature))
    else:  # numerically flat likelihood (boundary solution)
        std_error = float("inf")

    return WhittleResult(
        hurst=h_hat,
        sigma2=sigma2,
        std_error=std_error,
        n=x.size,
        log_likelihood=-float(result.fun) * m,
    )
