"""Flow-level network simulation (fluid flows over a routed topology).

Where :mod:`repro.tcp` simulates every packet through one bottleneck,
:mod:`repro.flowsim` simulates every *flow* through a whole topology:
flows open from the columnar sources, claim bandwidth along their static
shortest path, and close via closed-form TCP models — so 10^5+ sessions
cross a multi-hop network in seconds, and every link exports its count
process straight into the self-similarity battery.
"""

from repro.flowsim.scenario import FlowScenario, run_scenario
from repro.flowsim.simulator import (
    FlowSimResult,
    FlowSimulator,
    FlowTable,
    LinkStats,
)
from repro.flowsim.tcpmodels import MODELS, Csa00, Msmo97, UdpCbr, resolve_model
from repro.flowsim.topology import (
    Link,
    Topology,
    dumbbell_topology,
    line_topology,
    star_topology,
)

__all__ = [
    "Csa00",
    "FlowScenario",
    "FlowSimResult",
    "FlowSimulator",
    "FlowTable",
    "Link",
    "LinkStats",
    "MODELS",
    "Msmo97",
    "Topology",
    "UdpCbr",
    "dumbbell_topology",
    "line_topology",
    "resolve_model",
    "run_scenario",
    "star_topology",
]
