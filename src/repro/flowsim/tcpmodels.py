"""Closed-form TCP throughput/latency models that close flows analytically.

Flow-level simulation replaces per-packet dynamics with a *closure model*:
given a flow's size, round-trip time, and end-to-end loss probability, the
model predicts the steady-state transfer rate and the fixed latency
overhead (handshake, slow-start ramp).  Millions of ftp/telnet transfers
then traverse a multi-hop network in seconds instead of packet-level
hours, while the heavy-tailed size distribution — the paper's actual
driver of long-range dependence — still shapes every link's output.

Three models, selectable per flow:

* :class:`Msmo97` — the Mathis/Semke/Mahdavi/Ott "sqrt-loss" law:
  ``rate = (MSS / RTT) * sqrt(3 / (2p))``, receiver-window capped.
* :class:`Csa00` — Cardwell, Savage & Anderson (INFOCOM 2000), the
  short-flow refinement of PFTK98: expected handshake, initial slow-start
  ramp, slow-start loss cost, and congestion-avoidance tail, so small
  transfers (most of them, under heavy-tailed sizes) are not charged the
  steady-state rate they never reach.
* :class:`UdpCbr` — an unresponsive constant-bit-rate source for
  cross-traffic: it neither backs off on loss nor shares down to a link
  fair share (Section VII-C-2's "the UDP traffic will continue
  unimpeded").

All models are vectorized over numpy arrays and deterministic (the csa00
initial window is pinned rather than drawn), so a simulation is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive

#: Numerical guards: the closed forms divide by ``p`` and ``1 - 2p``;
#: clamping keeps the p -> 0 limit (window-limited rate) and avoids the
#: p >= 1/2 handshake singularity without changing any realistic regime.
#:
#: Clamp *order* is a contract: ``Topology.path_loss`` composes every
#: hop's ambient loss and policer loss on raw probabilities first, and
#: the clamp is applied exactly once here, to each model's composed
#: input.  A policer-dominated path (per-hop drops near or past the
#: ceiling) therefore composes exactly and saturates at ``_P_CEIL``
#: once, instead of each hop being flattened to the ceiling before
#: composition.
_P_FLOOR = 1e-8
_P_CEIL = 0.45


def _clamped(loss) -> np.ndarray:
    p = np.asarray(loss, dtype=float)
    if np.any(p < 0.0) or np.any(p >= 1.0):
        raise ValueError("loss probabilities must lie in [0, 1)")
    return np.clip(p, _P_FLOOR, _P_CEIL)


@dataclass(frozen=True)
class Msmo97:
    """Mathis et al. (1997) sqrt-loss steady-state throughput.

    ``rate = (mss / rtt) * sqrt(3 / (2 b p))`` bytes/second, capped at the
    receiver-window rate ``max_window * mss / rtt``; the latency term is
    the connection handshake (one RTT).  ``b`` is the number of packets
    acknowledged per ACK (2 under delayed ACKs).
    """

    mss: float = 1460.0
    max_window: float = 64.0  # receiver window, packets
    b: float = 1.0
    responsive: bool = True
    name: str = "msmo97"

    def __post_init__(self):
        require_positive(self.mss, "mss")
        require_positive(self.max_window, "max_window")
        require_positive(self.b, "b")

    def __call__(self, sizes, rtt, loss):
        rtt = np.asarray(rtt, dtype=float)
        p = _clamped(loss)
        sqrt_rate = (self.mss / rtt) * np.sqrt(1.5 / (self.b * p))
        window_rate = self.max_window * self.mss / rtt
        rates = np.minimum(sqrt_rate, window_rate)
        return rates, np.broadcast_to(rtt, rates.shape).copy()


@dataclass(frozen=True)
class Csa00:
    """Cardwell-Savage-Anderson (INFOCOM 2000) short-flow latency model.

    Expected transfer time = handshake + initial slow start + slow-start
    loss cost + congestion-avoidance remainder + delayed-ACK tail, with
    the congestion-avoidance rate from PFTK98 (W(p) window law and the
    ``min(1, 3/w)`` timeout-probability approximation).  The model's
    effective rate is ``size / expected_data_time``; the handshake is
    reported as latency.  Deterministic: ``initial_window`` is pinned
    instead of drawn at random.
    """

    mss: float = 1460.0
    rwnd: float = 65535.0  # receiver window, bytes
    initial_window: float = 2.0  # segments, pinned (csa00 draws 1-3)
    gamma: float = 1.5  # slow-start growth per RTT under delayed ACKs
    b: float = 2.0  # packets per ACK
    syn_timeout: float = 3.0
    delack: float = 0.1
    responsive: bool = True
    name: str = "csa00"

    def __post_init__(self):
        require_positive(self.mss, "mss")
        require_positive(self.rwnd, "rwnd")
        require_positive(self.gamma - 1.0, "gamma - 1")

    def __call__(self, sizes, rtt, loss):
        sizes = np.asarray(sizes, dtype=float)
        rtt = np.broadcast_to(np.asarray(rtt, dtype=float), sizes.shape)
        p = np.broadcast_to(_clamped(loss), sizes.shape)
        mss, w1, gamma, b = self.mss, self.initial_window, self.gamma, self.b
        wmax = self.rwnd / mss
        q = 1.0 - p

        # Expected handshake time (csa00 eq. 4), forward/reverse loss equal.
        elh = rtt + self.syn_timeout * (2.0 * q / (1.0 - 2.0 * p) - 2.0)

        # Segments, and the expected number sent in initial slow start
        # (eq. 5), capped at the transfer length.
        d = np.maximum(np.ceil(sizes / mss), 1.0)
        edss = np.minimum(np.floor((1.0 - q**d) * q / p + 1.0), d)

        # Window at the end of slow start (eq. 11) and the ramp time
        # (eq. 15), window-limited when the ramp would exceed rwnd.
        ewss = edss * (gamma - 1.0) / gamma + w1 / gamma
        log_g = np.log(gamma)
        limited = ewss > wmax
        etss_free = rtt * np.log(edss * (gamma - 1.0) / w1 + 1.0) / log_g
        etss_lim = rtt * (
            np.log(np.maximum(wmax / w1, 1.0)) / log_g
            + 1.0
            + (edss - (gamma * wmax - w1) / (gamma - 1.0)) / wmax
        )
        etss = np.where(limited, etss_lim, etss_free)

        # Cost of a slow-start loss (eqs. 16-20): probability the transfer
        # sees a loss, times timeout-vs-fast-recovery expected penalty.
        lss = 1.0 - q**d
        to = 2.0 * rtt
        g_p = 1.0 + p + 2.0 * p**2 + 4.0 * p**3 + 8.0 * p**4 \
            + 16.0 * p**5 + 32.0 * p**6
        ezto = g_p * to / q
        q_ss = np.minimum(1.0, 3.0 / np.maximum(ewss, 1.0))
        etloss = lss * (q_ss * ezto + (1.0 - q_ss) * rtt)

        # Congestion-avoidance remainder at the PFTK98 rate (eqs. 21-24).
        edca = np.maximum(d - edss, 0.0)
        wp = (2.0 + b) / (3.0 * b) + np.sqrt(
            8.0 * q / (3.0 * b * p) + ((2.0 + b) / (3.0 * b)) ** 2
        )
        q_wp = np.minimum(1.0, 3.0 / np.maximum(wp, 1.0))
        q_wm = np.minimum(1.0, 3.0 / np.maximum(wmax, 1.0))
        r_free = (q / p + wp / 2.0 + q_wp) / (
            rtt * (b / 2.0 * wp + 1.0) + q_wp * g_p * to / q
        )
        r_lim = (q / p + wmax / 2.0 + q_wm) / (
            rtt * (b / 8.0 * wmax + q / (p * wmax) + 2.0)
            + q_wm * g_p * to / q
        )
        rate_ca = np.where(wp < wmax, r_free, r_lim)  # packets/second
        etca = edca / rate_ca

        duration = etss + etloss + etca + self.delack
        rates = sizes / np.maximum(duration, 1e-12)
        return rates, elh


@dataclass(frozen=True)
class UdpCbr:
    """Unresponsive constant-bit-rate cross-traffic.

    Sends at ``rate`` bytes/second regardless of loss or link occupancy:
    the simulator neither caps it to a fair share nor backs it off — it
    consumes capacity that the responsive flows then share around.
    """

    rate: float = 1.25e5  # 1 Mbit/s
    responsive: bool = False
    name: str = "udp"

    def __post_init__(self):
        require_positive(self.rate, "rate")

    def __call__(self, sizes, rtt, loss):
        sizes = np.asarray(sizes, dtype=float)
        rates = np.full(sizes.shape, self.rate)
        return rates, np.zeros(sizes.shape)


#: Registry of model constructors by name (CLI / scenario selection).
MODELS = {"msmo97": Msmo97, "csa00": Csa00, "udp": UdpCbr}


def resolve_model(spec):
    """A model instance from a name, a constructor, or an instance."""
    if isinstance(spec, str):
        try:
            return MODELS[spec]()
        except KeyError:
            raise KeyError(
                f"unknown TCP model {spec!r}; known: {sorted(MODELS)}"
            ) from None
    if callable(spec):
        return spec() if isinstance(spec, type) else spec
    raise TypeError(f"cannot resolve TCP model from {spec!r}")
