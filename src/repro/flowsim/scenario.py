"""Canned flow-level experiments: source -> topology -> Hurst per link.

A :class:`FlowScenario` wires the pipeline the tentpole question needs:
synthesize a heavy-tailed ftp workload (or a light-tailed exponential
control) with the columnar sources, route it through a multi-hop
topology, and measure every traversed link's output byte process with the
variance-time estimator.  The paper's prediction — and the scenario's
observable — is that Pareto-sized flows keep H well above 1/2 on *every*
link they cross, while the exponential control stays near 1/2.

Capacities are calibrated to the offered load: each link's capacity is
set so its long-run utilization equals ``utilization`` given the bytes
actually routed over it, which keeps the network busy-but-stable at any
workload scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.ftp import FtpSessionModel
from repro.flowsim.simulator import FlowSimResult, FlowSimulator, FlowTable
from repro.flowsim.topology import (
    Topology,
    dumbbell_topology,
    line_topology,
    star_topology,
)
from repro.selfsim.variance_time import hurst_from_variance_time
from repro.utils.rng import spawn_rngs
from repro.utils.validation import require_positive, require_probability

#: Topology factory registry for CLI / config selection.
TOPOLOGIES = {
    "line": line_topology,
    "star": star_topology,
    "dumbbell": lambda n: dumbbell_topology(n, n),
}


def build_topology(kind: str, n_nodes: int) -> Topology:
    """A named topology sized to ``n_nodes`` principal nodes."""
    if kind == "line":
        return line_topology(n_nodes)
    if kind == "star":
        return star_topology(max(n_nodes - 1, 2))
    if kind == "dumbbell":
        half = max((n_nodes - 2) // 2, 1)
        return dumbbell_topology(half, half)
    raise KeyError(
        f"unknown topology {kind!r}; known: {sorted(TOPOLOGIES)}"
    )


@dataclass(frozen=True)
class FlowScenario:
    """One reproducible flow-level experiment configuration."""

    topology: str = "line"
    n_nodes: int = 10
    duration: float = 3600.0  # seconds of workload
    sessions_per_hour: float = 4000.0
    workload: str = "ftp"  # "ftp" (heavy-tailed) or "exponential" control
    model: str = "msmo97"
    discipline: str = "fair"
    utilization: float = 0.4
    bin_width: float = 1.0
    min_hurst_bins: int = 1000  # below this the level-10+ fit is undefined

    def __post_init__(self):
        require_positive(self.duration, "duration")
        require_positive(self.sessions_per_hour, "sessions_per_hour")
        require_positive(self.bin_width, "bin_width")
        require_probability(self.utilization, "utilization")
        if self.workload not in ("ftp", "exponential"):
            raise ValueError(
                f"workload must be 'ftp' or 'exponential', got {self.workload!r}"
            )

    # ------------------------------------------------------------------
    def synthesize_flows(self, topology: Topology, seed=None,
                         jobs: int = 1) -> FlowTable:
        """The scenario's workload as a :class:`FlowTable`.

        "ftp" synthesizes FTPDATA connections column-natively (Pareto
        burst bytes, the paper's Section V heavy tail) and maps their
        hosts onto nodes.  "exponential" is the matched control: the same
        flow count and mean size over the same span, but Poisson arrivals
        and exponential sizes — the workload under which Poisson-style
        modeling *should* work.
        """
        model = FtpSessionModel(sessions_per_hour=self.sessions_per_hour)
        batch = model.synthesize_columns(self.duration, seed=seed, jobs=jobs)
        flows = FlowTable.from_connections(
            batch, topology, protocols=("FTPDATA",), model=self.model
        )
        if self.workload == "ftp":
            return flows
        rng = spawn_rngs(seed, 2)[1]  # independent of the ftp stream
        n = len(flows)
        starts = np.sort(rng.uniform(0.0, self.duration, n))
        sizes = np.maximum(
            rng.exponential(float(np.mean(flows.sizes)), n), 1.0
        )
        # Shuffle the host pairs: the ftp columns keep session order, so
        # pairing them with fresh sorted starts would hand each link its
        # traffic in heavy-tailed session-length runs — long-range
        # dependence smuggled into the "Poisson" control via routing.
        perm = rng.permutation(n)
        return FlowTable(
            start_times=starts,
            sizes=sizes,
            src=np.asarray(flows.src)[perm],
            dst=np.asarray(flows.dst)[perm],
            models=(self.model,),
        )

    def calibrate(self, topology: Topology, flows: FlowTable) -> None:
        """Set link capacities so routed load sits at ``utilization``.

        Routes the byte demand over each link analytically (no
        simulation) and solves ``capacity = demand / (duration *
        utilization)``, floored at 64 kbit/s so an unused link still has a
        sane capacity.
        """
        demand = np.zeros(topology.n_links)
        src = np.asarray(flows.src)
        dst = np.asarray(flows.dst)
        sizes = np.asarray(flows.sizes, dtype=float)
        codes = src * topology.n_nodes + dst
        for code in np.unique(codes):
            sel = codes == code
            path = topology.path(
                int(code // topology.n_nodes), int(code % topology.n_nodes)
            )
            total = float(sizes[sel].sum())
            for li in path:
                demand[li] += total
        caps = np.maximum(
            demand / (self.duration * self.utilization), 8_000.0
        )
        topology.set_capacities(caps)

    # ------------------------------------------------------------------
    def run(self, seed=None, jobs: int = 1,
            horizon: float | None = None) -> "ScenarioResult":
        """Synthesize, calibrate, simulate, and estimate H per link."""
        topology = build_topology(self.topology, self.n_nodes)
        flows = self.synthesize_flows(topology, seed=seed, jobs=jobs)
        self.calibrate(topology, flows)
        sim = FlowSimulator(topology, discipline=self.discipline)
        result = sim.run(flows, horizon=horizon)
        end = self.duration if horizon is None else min(horizon, self.duration)
        hursts = {}
        for li, stats in enumerate(result.links):
            if stats.n_flows == 0:
                continue
            proc = stats.byte_process(self.bin_width, start=0.0, end=end)
            if proc.n_bins >= self.min_hurst_bins and proc.total > 0:
                hursts[li] = hurst_from_variance_time(proc)
        return ScenarioResult(
            scenario=self, result=result, link_hurst=hursts
        )


@dataclass(frozen=True)
class ScenarioResult:
    """A scenario run plus its per-link self-similarity readout."""

    scenario: FlowScenario
    result: FlowSimResult
    link_hurst: dict[int, float] = field(default_factory=dict)

    @property
    def mean_hurst(self) -> float:
        if not self.link_hurst:
            return float("nan")
        return float(np.mean(list(self.link_hurst.values())))

    def summary(self) -> dict:
        r = self.result
        done = r.completed
        return {
            "topology": self.scenario.topology,
            "n_nodes": r.topology.n_nodes,
            "n_links": r.topology.n_links,
            "workload": self.scenario.workload,
            "discipline": self.scenario.discipline,
            "model": self.scenario.model,
            "n_flows": r.n_flows,
            "n_completed": r.n_completed,
            "bytes_offered": r.bytes_offered(),
            "mean_duration": (
                float(np.nanmean(r.durations[done])) if done.any() else None
            ),
            "link_hurst": {int(k): float(v)
                           for k, v in self.link_hurst.items()},
            "mean_hurst": (self.mean_hurst if self.link_hurst else None),
        }

    def render(self) -> str:
        s = self.summary()
        lines = [
            f"flowsim: {s['workload']} over {s['topology']} "
            f"({s['n_nodes']} nodes, {s['n_links']} links, "
            f"{s['discipline']} discipline, {s['model']} closure)",
            f"  flows: {s['n_completed']}/{s['n_flows']} completed, "
            f"{s['bytes_offered'] / 1e6:.1f} MB offered",
        ]
        if s["mean_duration"] is not None:
            lines.append(f"  mean flow duration: {s['mean_duration']:.3f} s")
        if self.link_hurst:
            hs = ", ".join(
                f"L{li}={h:.2f}" for li, h in sorted(self.link_hurst.items())
            )
            lines.append(f"  variance-time H per link: {hs}")
            lines.append(f"  mean H: {self.mean_hurst:.3f}")
        return "\n".join(lines)


def run_scenario(scenario: FlowScenario | None = None, seed=None,
                 jobs: int = 1, **overrides) -> ScenarioResult:
    """Run a :class:`FlowScenario` (default one if none given)."""
    scenario = scenario or FlowScenario()
    if overrides:
        scenario = replace(scenario, **overrides)
    return scenario.run(seed=seed, jobs=jobs)
