"""Discrete-event flow-level network simulation.

The unit of simulation is a *flow* (one ftp/telnet transfer), not a
packet.  A flow opens at its arrival time, is routed over the static
shortest path, claims bandwidth on every link of its route, and closes at
the time its closure model predicts — so a run's cost is O(flows), and
10^5+ sessions cross a multi-hop topology in seconds.

Two service disciplines:

* ``"fair"`` (default) — fluid fair sharing: at admission a responsive
  flow's rate is ``min(model rate, min over path links of
  capacity / (active + 1))``, held for the flow's lifetime (the same
  admission-time discipline as the `fs` simulator: departures do not
  trigger re-sharing, the closed-form TCP model closes the flow).
  Unresponsive (UDP) flows keep their model rate regardless of shares.
* ``"fifo"`` — store-and-forward whole-flow service: each link serves one
  flow at a time in arrival order, so a single-link topology reduces
  *exactly* to Lindley's recursion (``queueing.fifo_queue``) with service
  times ``size / capacity`` — the degenerate-topology equivalence the
  tests pin.

The event core is a heapq with deterministic tie-breaking (time, then
event kind — closes free bandwidth before same-instant opens claim it —
then FIFO insertion order), the same discipline as
:mod:`repro.tcp.network`.  Every link exports its transmission record as
arrays (:class:`LinkStats`): exact byte-count processes for the
variance-time / R-S / Hurst battery, and per-flow completion events for
the :mod:`repro.stream.sketches` accumulators.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.flowsim.tcpmodels import resolve_model
from repro.flowsim.topology import Link, Topology
from repro.selfsim.counts import CountProcess
from repro.utils.binning import bin_edges
from repro.utils.validation import require_positive


# ----------------------------------------------------------------------
# Flow input
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowTable:
    """Columnar flow workload: parallel arrays, one row per flow.

    Built zero-copy from the columnar sources: ``start_times`` and
    ``sizes`` may be views of a :class:`ConnectionBatch`'s columns.
    ``model_ids`` indexes into ``models`` (per-flow closure selection).
    """

    start_times: np.ndarray  # seconds
    sizes: np.ndarray  # bytes
    src: np.ndarray  # node ids
    dst: np.ndarray  # node ids
    models: tuple = ("msmo97",)
    model_ids: np.ndarray | None = None  # per-flow index into models

    def __post_init__(self):
        n = len(self.start_times)
        for name in ("sizes", "src", "dst"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have length {n}")
        if self.model_ids is not None and len(self.model_ids) != n:
            raise ValueError(f"model_ids must have length {n}")
        object.__setattr__(
            self, "models", tuple(resolve_model(m) for m in self.models)
        )

    def __len__(self) -> int:
        return len(self.start_times)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, start_times, sizes, src, dst,
                    model="msmo97") -> "FlowTable":
        """One-model flow table from plain arrays."""
        return cls(
            start_times=np.asarray(start_times, dtype=float),
            sizes=np.asarray(sizes, dtype=float),
            src=np.asarray(src, dtype=np.int64),
            dst=np.asarray(dst, dtype=np.int64),
            models=(model,),
        )

    @classmethod
    def from_connections(
        cls,
        connections,
        topology: Topology,
        protocols: tuple[str, ...] = ("FTPDATA",),
        model="msmo97",
    ) -> "FlowTable":
        """Flows from a columnar connection container, zero-copy.

        ``connections`` is a :class:`~repro.traces.columns.ConnectionBatch`
        or :class:`~repro.traces.trace.ConnectionTrace`: rows matching
        ``protocols`` become flows whose bytes are ``bytes_orig +
        bytes_resp``.  Hosts map onto topology nodes by modulo; a
        same-node pair shifts its destination to the next node, so every
        flow traverses at least one link.
        """
        names = np.asarray(connections.protocols, dtype=object)
        mask = np.isin(names, np.asarray(protocols, dtype=object))
        n_nodes = topology.n_nodes
        src = np.asarray(connections.orig_hosts)[mask] % n_nodes
        dst = np.asarray(connections.resp_hosts)[mask] % n_nodes
        dst = np.where(dst == src, (dst + 1) % n_nodes, dst)
        sizes = (np.asarray(connections.bytes_orig)[mask]
                 + np.asarray(connections.bytes_resp)[mask]).astype(float)
        return cls(
            start_times=np.asarray(connections.start_times)[mask],
            sizes=np.maximum(sizes, 1.0),
            src=src.astype(np.int64),
            dst=dst.astype(np.int64),
            models=(model,),
        )


# ----------------------------------------------------------------------
# Per-link export
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkStats:
    """One link's transmission record, exported as arrays.

    ``transfer_starts/ends/rates`` describe the fluid occupation windows:
    flow ``flow_indices[k]`` transmitted through this link at
    ``transfer_rates[k]`` bytes/s over ``[transfer_starts[k],
    transfer_ends[k]]`` (propagation-shifted by its upstream hops).  In
    FIFO discipline the windows are the store-and-forward service slots
    and ``departure_times`` additionally holds the discrete whole-flow
    departure instants.

    When the link carries conditioning specs (``link.policer`` /
    ``link.shaper``) the *output*-side exports — :meth:`byte_process`,
    :meth:`bytes_delivered`, :attr:`dropped_bytes` — push the offered
    fluid curve through those elements: the policer clips bytes (fluid
    token bucket, :func:`~repro.shaping.elements.fluid_police_curve`)
    and the shaper re-times them byte-conservingly (min-plus,
    :func:`~repro.shaping.elements.shaped_curve_eval`).  The raw window
    arrays and :meth:`bytes_transferred` stay *offered*-side.
    """

    link: Link
    flow_indices: np.ndarray
    transfer_starts: np.ndarray
    transfer_ends: np.ndarray
    transfer_rates: np.ndarray
    departure_times: np.ndarray | None = None  # fifo discipline only

    @property
    def n_flows(self) -> int:
        return int(self.flow_indices.size)

    def bytes_transferred(self, until: float | None = None) -> float:
        """Exact *offered* bytes through the link (clipped at ``until``).

        Conditioning elements are not applied here; see
        :meth:`bytes_delivered` for the post-policer/post-shaper total.
        """
        if until is None:
            dt = self.transfer_ends - self.transfer_starts
        else:
            dt = np.clip(until, self.transfer_starts, self.transfer_ends) \
                - self.transfer_starts
        return float((self.transfer_rates * dt).sum())

    # ------------------------------------------------------------------
    def offered_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """Cumulative offered-byte curve ``(times, cum_bytes)``.

        The aggregate transmission rate is a step function (flows start
        and stop); its integral — cumulative bytes — is piecewise
        linear, so any instant evaluates with one ``np.interp``.
        """
        if self.n_flows == 0:
            return np.zeros(1), np.zeros(1)
        times = np.concatenate([self.transfer_starts, self.transfer_ends])
        deltas = np.concatenate([self.transfer_rates, -self.transfer_rates])
        order = np.argsort(times, kind="stable")
        times = times[order]
        rate_after = np.cumsum(deltas[order])
        rate_before = np.concatenate([[0.0], rate_after[:-1]])
        cum_bytes = np.concatenate(
            [[0.0], np.cumsum(rate_before[1:] * np.diff(times))]
        )
        return times, cum_bytes

    def conditioned_curve(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Offered curve pushed through this hop's policer, if any:
        ``(times, cum_bytes, dropped_bytes)``.  The shaper stage is
        evaluation-time (min-plus), so it lives in the consumers."""
        # Lazy: repro.shaping's package init reaches repro.stream, whose
        # driver pulls the experiment registry back into flowsim.
        from repro.shaping.elements import fluid_police_curve

        times, cum = self.offered_curve()
        dropped = 0.0
        if self.link.policer is not None and self.n_flows:
            rate, depth = self.link.policer
            times, cum, dropped = fluid_police_curve(times, cum, rate, depth)
        return times, cum, dropped

    @property
    def dropped_bytes(self) -> float:
        """Bytes clipped by this hop's policer (0.0 without one)."""
        return self.conditioned_curve()[2]

    @property
    def policer_loss(self) -> float:
        """This hop's fluid policer byte-drop *fraction* — what the
        simulator's pre-pass installs as ``Link.policer_loss`` so the
        closure models see it through ``Topology.path_loss``."""
        times, cum, dropped = self.conditioned_curve()
        offered = float(cum[-1]) + dropped
        return dropped / offered if offered > 0.0 else 0.0

    def bytes_delivered(self, until: float | None = None) -> float:
        """Bytes past this hop's conditioning elements by ``until``
        (all of them when ``until`` is None — a shaper only delays, so
        its backlog drains and the policed total is conserved)."""
        from repro.shaping.elements import shaped_curve_eval, shaper_drain_end

        times, cum, _ = self.conditioned_curve()
        total = float(cum[-1])
        if self.link.shaper is None:
            if until is None:
                return total
            return float(np.interp(until, times, cum,
                                   left=0.0, right=total))
        rate, depth = self.link.shaper
        if until is None:
            until = shaper_drain_end(times, cum, rate, depth)
        return float(shaped_curve_eval(times, cum, rate, depth,
                                       np.asarray([float(until)]))[0])

    # ------------------------------------------------------------------
    def byte_process(
        self,
        bin_width: float,
        start: float = 0.0,
        end: float | None = None,
    ) -> CountProcess:
        """The link's output byte-count process, integrated exactly.

        Evaluates the cumulative byte curve at the bin edges — through
        the link's policer and shaper when it has them (the default
        ``end`` extends to the shaper's drain point so every conserved
        byte lands in some bin).  The result feeds straight into the
        variance-time / R-S / Hurst battery via
        :class:`~repro.selfsim.counts.CountProcess`.
        """
        from repro.shaping.elements import shaped_curve_eval, shaper_drain_end

        require_positive(bin_width, "bin_width")
        times, cum, _ = self.conditioned_curve()
        shaper = self.link.shaper if self.n_flows else None
        if end is None:
            end = float(times[-1]) if self.n_flows else start
            if shaper is not None:
                rate, depth = shaper
                end = max(end, shaper_drain_end(times, cum, rate, depth))
                # Whole bins only (bin_edges floors): round the drain
                # point up so the conserved tail bytes land in a bin.
                if end > start:
                    end = start + bin_width * np.ceil(
                        (end - start) / bin_width - 1e-9
                    )
        edges = bin_edges(start, end, bin_width)
        if self.n_flows == 0:
            return CountProcess(np.zeros(max(len(edges) - 1, 0)), bin_width)
        if shaper is not None:
            rate, depth = shaper
            at_edges = shaped_curve_eval(times, cum, rate, depth, edges)
        else:
            at_edges = np.interp(edges, times, cum,
                                 left=0.0, right=float(cum[-1]))
        return CountProcess(np.diff(at_edges), bin_width)

    def packet_process(
        self,
        bin_width: float,
        mss: float = 1460.0,
        start: float = 0.0,
        end: float | None = None,
    ) -> CountProcess:
        """The byte process expressed in MSS-sized packets per bin."""
        proc = self.byte_process(bin_width, start=start, end=end)
        return CountProcess(proc.counts / mss, bin_width)

    def departure_process(self, bin_width: float,
                          end: float | None = None) -> CountProcess:
        """Discrete flow-departure counts (FIFO discipline only)."""
        if self.departure_times is None:
            raise ValueError(
                "departure_process requires the fifo discipline; "
                "use byte_process for fluid fair-share runs"
            )
        return CountProcess.from_times(
            self.departure_times, bin_width, start=0.0, end=end
        )

    # ------------------------------------------------------------------
    def completion_ladder(self, bin_width: float, end: float | None = None):
        """Byte-weighted flow-completion events in a mergeable
        :class:`~repro.stream.sketches.CountLadder` (weighted mode): the
        stream-side accumulator for always-on per-link estimation."""
        from repro.stream.sketches import CountLadder

        ladder = CountLadder(bin_width, start=0.0, end=end, weighted=True)
        if self.n_flows:
            bytes_per_flow = self.transfer_rates * (
                self.transfer_ends - self.transfer_starts
            )
            ladder.update(self.transfer_ends, bytes_per_flow)
        return ladder

    def size_topk(self, k: int = 64):
        """Largest per-flow byte totals through this link, as a mergeable
        :class:`~repro.stream.sketches.TopK` tail sketch."""
        from repro.stream.sketches import TopK

        sketch = TopK(k)
        if self.n_flows:
            sketch.update(self.transfer_rates
                          * (self.transfer_ends - self.transfer_starts))
        return sketch


# ----------------------------------------------------------------------
# Simulation result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowSimResult:
    """Everything observable from one run, columnar."""

    topology: Topology
    flows: FlowTable  # in simulation (start-time-sorted) order
    order: np.ndarray  # original row -> simulated row permutation
    rates: np.ndarray  # effective transfer rate per flow (bytes/s)
    fair_shares: np.ndarray  # admission-time fair share per flow
    close_times: np.ndarray  # last byte arrives at the destination (nan: open)
    waits: np.ndarray  # store-and-forward queueing wait (fifo; zeros in fair)
    completed: np.ndarray  # closed before the horizon
    path_ids: np.ndarray
    paths: tuple[tuple[int, ...], ...]
    rtts: np.ndarray
    losses: np.ndarray
    links: list[LinkStats] = field(default_factory=list)
    horizon: float | None = None

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def n_completed(self) -> int:
        return int(self.completed.sum())

    @property
    def durations(self) -> np.ndarray:
        """Flow completion times minus arrival times (nan while open)."""
        return self.close_times - self.flows.start_times

    def bytes_offered(self) -> float:
        return float(np.asarray(self.flows.sizes, dtype=float).sum())

    @property
    def policer_losses(self) -> np.ndarray:
        """Per-link policer byte-drop fractions installed by the
        pre-pass (zeros when no link polices)."""
        return np.array([s.link.policer_loss for s in self.links]) \
            if self.links else np.zeros(0)

    def link(self, index: int) -> LinkStats:
        return self.links[index]


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
class FlowSimulator:
    """Flow-level simulator over a :class:`Topology`.

    Parameters
    ----------
    topology:
        The routed network.  Routes, RTTs, and end-to-end loss are
        computed once per distinct (src, dst) pair.
    discipline:
        ``"fair"`` (fluid fair share, default) or ``"fifo"``
        (store-and-forward whole-flow service).
    """

    def __init__(self, topology: Topology, discipline: str = "fair"):
        if discipline not in ("fair", "fifo"):
            raise ValueError(f"unknown discipline {discipline!r}")
        self.topology = topology
        self.discipline = discipline

    # ------------------------------------------------------------------
    def run(self, flows: FlowTable,
            horizon: float | None = None) -> FlowSimResult:
        """Simulate every flow (or stop the clock at ``horizon``).

        Flows are processed in start-time order (stable sort).  With a
        horizon, events past it never execute: still-open flows report
        ``nan`` close times and ``completed=False``, and the per-link
        exports clip exactly at the horizon when asked to.

        When any link carries a policer, the run is two-phase: a first
        pass with zeroed policer losses yields each policed link's
        offered byte curve, the fluid drop fraction is installed via
        :meth:`Topology.set_policer_losses`, and the second pass re-runs
        so ``Topology.path_loss`` feeds the composed loss (ambient +
        policer, composed *before* the models' ``[1e-8, 0.45]`` clamp)
        to the closed-form TCP models.
        """
        if len(flows) == 0:
            raise ValueError("no flows to simulate")
        order = np.argsort(np.asarray(flows.start_times, dtype=float),
                           kind="stable")
        table = FlowTable(
            start_times=np.asarray(flows.start_times, dtype=float)[order],
            sizes=np.asarray(flows.sizes, dtype=float)[order],
            src=np.asarray(flows.src, dtype=np.int64)[order],
            dst=np.asarray(flows.dst, dtype=np.int64)[order],
            models=flows.models,
            model_ids=(None if flows.model_ids is None
                       else np.asarray(flows.model_ids)[order]),
        )
        if any(link.policer is not None for link in self.topology.links):
            self.topology.set_policer_losses(
                np.zeros(self.topology.n_links)
            )
            pre = self._simulate(table, order, horizon)
            self.topology.set_policer_losses(
                [stats.policer_loss for stats in pre.links]
            )
        return self._simulate(table, order, horizon)

    def _simulate(self, table: FlowTable, order: np.ndarray,
                  horizon: float | None) -> FlowSimResult:
        """One routing + closure + event pass over a prepared table."""
        path_ids, paths, rtts, losses = self._route(table)
        model_rates, latencies, responsive = self._close_flows(
            table, rtts, losses
        )
        if self.discipline == "fair":
            return self._run_fair(table, order, path_ids, paths, rtts,
                                  losses, model_rates, latencies,
                                  responsive, horizon)
        return self._run_fifo(table, order, path_ids, paths, rtts, losses,
                              horizon)

    # ------------------------------------------------------------------
    def _route(self, table: FlowTable):
        """Vectorized routing: one path lookup per distinct (src, dst)."""
        n = self.topology.n_nodes
        pair_codes = table.src * n + table.dst
        unique_codes, path_ids = np.unique(pair_codes, return_inverse=True)
        paths = tuple(
            self.topology.path(int(code // n), int(code % n))
            for code in unique_codes
        )
        pair_rtt = np.array([self.topology.path_rtt(p) for p in paths])
        pair_loss = np.array([self.topology.path_loss(p) for p in paths])
        return path_ids, paths, pair_rtt[path_ids], pair_loss[path_ids]

    def _close_flows(self, table: FlowTable, rtts, losses):
        """Vectorized closure-model evaluation, grouped by model."""
        n = len(table)
        ids = (np.zeros(n, dtype=np.int64) if table.model_ids is None
               else np.asarray(table.model_ids, dtype=np.int64))
        if ids.size and (ids.min() < 0 or ids.max() >= len(table.models)):
            raise ValueError("model_ids index outside the models tuple")
        rates = np.empty(n)
        latencies = np.empty(n)
        responsive = np.empty(n, dtype=bool)
        for mid, model in enumerate(table.models):
            sel = ids == mid
            if not np.any(sel):
                continue
            r, lat = model(table.sizes[sel], rtts[sel], losses[sel])
            rates[sel] = r
            latencies[sel] = np.broadcast_to(lat, r.shape)
            responsive[sel] = getattr(model, "responsive", True)
        return rates, latencies, responsive

    # ------------------------------------------------------------------
    def _run_fair(self, table, order, path_ids, paths, rtts, losses,
                  model_rates, latencies, responsive, horizon):
        n = len(table)
        links = self.topology.links
        caps = [link.capacity for link in links]
        active = [0] * len(links)
        path_links = [tuple(p) for p in paths]

        starts = table.start_times
        sizes = table.sizes
        eff_rate = np.full(n, np.nan)
        fair_share = np.full(n, np.nan)
        t_data = np.full(n, np.nan)  # transmission begins (post-latency)
        close_tx = np.full(n, np.nan)  # last byte leaves the source
        completed = np.zeros(n, dtype=bool)
        opened = np.zeros(n, dtype=bool)

        path_delay = [sum(links[li].delay for li in p) for p in path_links]
        closes: list[tuple[float, int]] = []  # (sender close time, flow)
        i = 0
        while i < n or closes:
            if closes and (i >= n or closes[0][0] <= starts[i]):
                t, j = heapq.heappop(closes)
                if horizon is not None and t > horizon:
                    break
                for li in path_links[path_ids[j]]:
                    active[li] -= 1
                completed[j] = True
                continue
            t = starts[i]
            if horizon is not None and t > horizon:
                break
            p = path_links[path_ids[i]]
            share = min(caps[li] / (active[li] + 1) for li in p)
            rate = min(model_rates[i], share) if responsive[i] \
                else model_rates[i]
            for li in p:
                active[li] += 1
            fair_share[i] = share
            eff_rate[i] = rate
            t_data[i] = t + latencies[i]
            close_tx[i] = t_data[i] + sizes[i] / rate
            opened[i] = True
            heapq.heappush(closes, (close_tx[i], i))
            i += 1

        close_times = close_tx + np.array(
            [path_delay[pid] for pid in path_ids]
        )
        close_times[~completed] = np.nan
        link_stats = self._fair_link_stats(
            table, path_ids, path_links, opened, t_data, close_tx, eff_rate
        )
        return FlowSimResult(
            topology=self.topology,
            flows=table,
            order=order,
            rates=eff_rate,
            fair_shares=fair_share,
            close_times=close_times,
            waits=np.zeros(n),
            completed=completed,
            path_ids=path_ids,
            paths=tuple(path_links),
            rtts=rtts,
            losses=losses,
            links=link_stats,
            horizon=horizon,
        )

    def _fair_link_stats(self, table, path_ids, path_links, opened,
                         t_data, close_tx, eff_rate):
        """Scatter the per-flow transfer windows onto links, vectorized
        per distinct path (windows shift by cumulative upstream delay)."""
        links = self.topology.links
        per_link: list[list[np.ndarray]] = [[] for _ in links]
        per_link_idx: list[list[np.ndarray]] = [[] for _ in links]
        per_link_off: list[list[float]] = [[] for _ in links]
        flow_idx = np.arange(len(table))
        for pid, path in enumerate(path_links):
            sel = (path_ids == pid) & opened
            if not np.any(sel):
                continue
            rows = flow_idx[sel]
            offset = 0.0
            for li in path:
                per_link[li].append(rows)
                per_link_off[li].append(offset)
                offset += links[li].delay
        stats = []
        for li, link in enumerate(links):
            if per_link[li]:
                rows = np.concatenate(per_link[li])
                offs = np.concatenate([
                    np.full(r.size, off)
                    for r, off in zip(per_link[li], per_link_off[li])
                ])
                sort = np.argsort(t_data[rows] + offs, kind="stable")
                rows, offs = rows[sort], offs[sort]
                stats.append(LinkStats(
                    link=link,
                    flow_indices=rows,
                    transfer_starts=t_data[rows] + offs,
                    transfer_ends=close_tx[rows] + offs,
                    transfer_rates=eff_rate[rows],
                ))
            else:
                empty = np.zeros(0)
                stats.append(LinkStats(
                    link=link,
                    flow_indices=np.zeros(0, dtype=np.int64),
                    transfer_starts=empty,
                    transfer_ends=empty,
                    transfer_rates=empty,
                ))
        return stats

    # ------------------------------------------------------------------
    def _run_fifo(self, table, order, path_ids, paths, rtts, losses,
                  horizon):
        n = len(table)
        links = self.topology.links
        path_links = [tuple(p) for p in paths]
        busy_until = [0.0] * len(links)
        starts = table.start_times
        sizes = table.sizes

        waits = np.zeros(n)
        close_times = np.full(n, np.nan)
        completed = np.zeros(n, dtype=bool)
        lk_idx: list[list[int]] = [[] for _ in links]
        lk_begin: list[list[float]] = [[] for _ in links]
        lk_depart: list[list[float]] = [[] for _ in links]

        # (time, seq, flow, hop): seq preserves FIFO order among ties.
        hops: list[tuple[float, int, int, int]] = []
        seq = 0
        i = 0

        def service(j: int, hop: int, arrive: float) -> None:
            nonlocal seq
            li = path_links[path_ids[j]][hop]
            begin = max(arrive, busy_until[li])
            depart = begin + sizes[j] / links[li].capacity
            busy_until[li] = depart
            waits[j] += begin - arrive
            lk_idx[li].append(j)
            lk_begin[li].append(begin)
            lk_depart[li].append(depart)
            path = path_links[path_ids[j]]
            arrive_next = depart + links[li].delay
            if hop + 1 < len(path):
                heapq.heappush(hops, (arrive_next, seq, j, hop + 1))
                seq += 1
            else:
                close_times[j] = arrive_next
                completed[j] = True

        while i < n or hops:
            if hops and (i >= n or hops[0][0] <= starts[i]):
                t, _, j, hop = heapq.heappop(hops)
                if horizon is not None and t > horizon:
                    break
                service(j, hop, t)
                continue
            t = starts[i]
            if horizon is not None and t > horizon:
                break
            service(i, 0, t)
            i += 1

        stats = []
        for li, link in enumerate(links):
            idx = np.asarray(lk_idx[li], dtype=np.int64)
            begin = np.asarray(lk_begin[li])
            depart = np.asarray(lk_depart[li])
            stats.append(LinkStats(
                link=link,
                flow_indices=idx,
                transfer_starts=begin,
                transfer_ends=depart,
                transfer_rates=np.full(idx.size, link.capacity),
                departure_times=depart,
            ))
        return FlowSimResult(
            topology=self.topology,
            flows=table,
            order=order,
            rates=np.where(np.isnan(close_times), np.nan,
                           sizes / np.maximum(close_times - starts, 1e-12)),
            fair_shares=np.full(n, np.nan),
            close_times=close_times,
            waits=waits,
            completed=completed,
            path_ids=path_ids,
            paths=tuple(path_links),
            rtts=rtts,
            losses=losses,
            links=stats,
            horizon=horizon,
        )
