"""Network topologies for the flow-level simulator.

A :class:`Topology` is a set of integer nodes joined by directed
capacitated :class:`Link` s.  Routing is *static* shortest-path (Dijkstra
over propagation delay, deterministic tie-breaking: nodes are settled in
ascending id order among equal distances, and a path is only replaced by a
strictly shorter one), computed once and cached — the regime the paper's
wide-area traces lived in, and the discipline that keeps a simulation
byte-reproducible across runs and worker counts.

Capacities are bytes/second; delays are one-way propagation seconds; the
per-link ``loss`` is the packet-loss probability the closed-form TCP
models (:mod:`repro.flowsim.tcpmodels`) see on that hop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class Link:
    """One directed capacitated edge."""

    index: int
    src: int
    dst: int
    capacity: float  # bytes/second
    delay: float  # one-way propagation, seconds
    loss: float = 0.0  # packet loss probability on this hop
    #: Optional in-network conditioning on this hop, as (rate_Bps,
    #: depth_bytes) token-bucket specs.  A policer drops the bytes its
    #: bucket cannot cover (the drop fraction feeds ``policer_loss``
    #: after a fluid pre-pass); a shaper delays them (byte-conserving).
    policer: tuple[float, float] | None = None
    shaper: tuple[float, float] | None = None
    #: Byte drop probability contributed by this hop's policer — filled
    #: in by the simulator's pre-pass (or set explicitly); composed
    #: into ``Topology.path_loss`` alongside the ambient ``loss``.
    policer_loss: float = 0.0

    def __post_init__(self):
        require_positive(self.capacity, "capacity")
        require_nonnegative(self.delay, "delay")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must lie in [0, 1), got {self.loss}")
        for name in ("policer", "shaper"):
            spec = getattr(self, name)
            if spec is None:
                continue
            rate, depth = spec
            require_positive(float(rate), f"{name} rate")
            require_positive(float(depth), f"{name} depth")
        if not 0.0 <= self.policer_loss < 1.0:
            raise ValueError(
                f"policer_loss must lie in [0, 1), got {self.policer_loss}"
            )


class Topology:
    """Nodes, links, and cached static shortest-path routes."""

    def __init__(self, n_nodes: int):
        if n_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.links: list[Link] = []
        self._out: list[list[int]] = [[] for _ in range(self.n_nodes)]
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def add_link(
        self,
        src: int,
        dst: int,
        capacity: float,
        delay: float = 0.01,
        loss: float = 0.0,
        bidirectional: bool = True,
        policer: tuple[float, float] | None = None,
        shaper: tuple[float, float] | None = None,
    ) -> list[int]:
        """Add a link (by default one in each direction); returns indices."""
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ValueError(f"nodes must lie in [0, {self.n_nodes})")
        if src == dst:
            raise ValueError("self-loops are not allowed")
        indices = []
        ends = [(src, dst), (dst, src)] if bidirectional else [(src, dst)]
        for u, v in ends:
            link = Link(index=len(self.links), src=u, dst=v,
                        capacity=capacity, delay=delay, loss=loss,
                        policer=policer, shaper=shaper)
            self.links.append(link)
            self._out[u].append(link.index)
            indices.append(link.index)
        self._paths.clear()  # routes are stale once the graph changes
        return indices

    @property
    def n_links(self) -> int:
        return len(self.links)

    def set_capacities(self, capacities) -> None:
        """Replace every link's capacity (e.g. after load calibration)."""
        caps = np.asarray(capacities, dtype=float)
        if caps.size != self.n_links:
            raise ValueError(
                f"need {self.n_links} capacities, got {caps.size}"
            )
        self.links = [
            Link(index=l.index, src=l.src, dst=l.dst, capacity=float(c),
                 delay=l.delay, loss=l.loss, policer=l.policer,
                 shaper=l.shaper, policer_loss=l.policer_loss)
            for l, c in zip(self.links, caps)
        ]

    def set_policer_losses(self, losses) -> None:
        """Install per-link policer byte-drop probabilities (pre-pass)."""
        vals = np.asarray(losses, dtype=float)
        if vals.size != self.n_links:
            raise ValueError(
                f"need {self.n_links} policer losses, got {vals.size}"
            )
        self.links = [
            Link(index=l.index, src=l.src, dst=l.dst, capacity=l.capacity,
                 delay=l.delay, loss=l.loss, policer=l.policer,
                 shaper=l.shaper, policer_loss=float(p))
            for l, p in zip(self.links, vals)
        ]

    # ------------------------------------------------------------------
    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Link indices of the static shortest-delay route src -> dst."""
        if src == dst:
            raise ValueError("src and dst must differ")
        key = (src, dst)
        if key not in self._paths:
            self._route_from(src)
        path = self._paths.get(key)
        if path is None:
            raise ValueError(f"no route from node {src} to node {dst}")
        return path

    def _route_from(self, src: int) -> None:
        """Dijkstra from ``src``; ties settle in ascending node id order."""
        dist = np.full(self.n_nodes, np.inf)
        dist[src] = 0.0
        via: list[int | None] = [None] * self.n_nodes  # arriving link index
        prev = np.full(self.n_nodes, -1, dtype=np.int64)
        done = np.zeros(self.n_nodes, dtype=bool)
        heap: list[tuple[float, int]] = [(0.0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            for li in self._out[u]:
                link = self.links[li]
                nd = d + link.delay
                if nd < dist[link.dst]:  # strict: first-found route wins ties
                    dist[link.dst] = nd
                    via[link.dst] = li
                    prev[link.dst] = u
                    heapq.heappush(heap, (nd, link.dst))
        for dst in range(self.n_nodes):
            if dst == src or via[dst] is None:
                continue
            hops = []
            node = dst
            while node != src:
                hops.append(via[node])
                node = int(prev[node])
            self._paths[(src, dst)] = tuple(reversed(hops))

    # ------------------------------------------------------------------
    def path_rtt(self, path: tuple[int, ...], min_rtt: float = 0.001) -> float:
        """Two-way propagation along a route (floored at ``min_rtt``)."""
        return max(2.0 * sum(self.links[li].delay for li in path), min_rtt)

    def path_loss(self, path: tuple[int, ...]) -> float:
        """End-to-end loss probability: 1 - prod(1 - per-hop loss).

        Each hop contributes its ambient ``loss`` *and* its
        ``policer_loss`` as independent drop stages.  The composition
        happens here, on raw probabilities — the closed-form TCP models
        clamp their *input* to ``[1e-8, 0.45]`` only afterwards, inside
        each model's ``__call__`` (see :mod:`repro.flowsim.tcpmodels`),
        so a policer-dominated path composes exactly and is clamped
        once, not per hop.
        """
        keep = 1.0
        for li in path:
            link = self.links[li]
            keep *= (1.0 - link.loss) * (1.0 - link.policer_loss)
        return 1.0 - keep

    def __repr__(self):
        return f"Topology(n_nodes={self.n_nodes}, n_links={self.n_links})"


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def line_topology(
    n_nodes: int,
    capacity: float = 1.25e6,
    delay: float = 0.005,
    loss: float = 0.01,
) -> Topology:
    """A chain 0 - 1 - ... - n-1 (the multi-hop "parking lot" backbone)."""
    topo = Topology(n_nodes)
    for i in range(n_nodes - 1):
        topo.add_link(i, i + 1, capacity, delay=delay, loss=loss)
    return topo


def star_topology(
    n_leaves: int,
    capacity: float = 1.25e6,
    delay: float = 0.005,
    loss: float = 0.01,
) -> Topology:
    """Leaves 1..n around a hub node 0 — every route crosses the hub."""
    topo = Topology(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        topo.add_link(0, leaf, capacity, delay=delay, loss=loss)
    return topo


def dumbbell_topology(
    n_left: int,
    n_right: int,
    access_capacity: float = 1.25e6,
    bottleneck_capacity: float = 2.5e6,
    delay: float = 0.005,
    loss: float = 0.01,
) -> Topology:
    """Left leaves -> router 0 -> router 1 -> right leaves: one shared
    bottleneck, the Section VII topology generalized to flow level."""
    topo = Topology(n_left + n_right + 2)
    topo.add_link(0, 1, bottleneck_capacity, delay=delay, loss=loss)
    for i in range(n_left):
        topo.add_link(2 + i, 0, access_capacity, delay=delay, loss=loss)
    for j in range(n_right):
        topo.add_link(1, 2 + n_left + j, access_capacity, delay=delay,
                      loss=loss)
    return topo
