"""Single-server FIFO queue simulation.

Section IV: "It would not be hard to construct simulations, one using Tcplib
and the other using exponential interarrivals, where making the mistake of
using exponential interarrivals instead of Tcplib significantly
underestimates the average queueing delay for TELNET packets."  This module
constructs exactly those simulations.

For deterministic or i.i.d. service times and a given arrival sequence, the
waiting times follow Lindley's recursion

    W_{k+1} = max(0, W_k + S_k - A_{k+1}),

where S_k is the k-th service time and A_{k+1} the k-th interarrival gap —
computed in closed form by :func:`repro.kernels.lindley_waits` (one cumsum
plus one running minimum; see that module for the identity and the
exactness guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import lindley_waits
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class QueueResult:
    """Per-packet delays of one FIFO simulation."""

    waiting_times: np.ndarray  # time spent queued before service
    service_times: np.ndarray
    utilization: float  # offered load rho = total service / span
    #: One ConditioningResult per ``pre=`` element, in application order
    #: (empty when the queue saw the raw arrivals).
    conditioning: tuple = ()

    @property
    def sojourn_times(self) -> np.ndarray:
        """Waiting plus service: total per-packet delay."""
        return self.waiting_times + self.service_times

    @property
    def mean_delay(self) -> float:
        return float(self.sojourn_times.mean())

    @property
    def mean_wait(self) -> float:
        return float(self.waiting_times.mean())

    @property
    def p99_delay(self) -> float:
        return float(np.quantile(self.sojourn_times, 0.99))

    @property
    def max_queue_wait(self) -> float:
        return float(self.waiting_times.max())


def fifo_queue(
    arrival_times: np.ndarray,
    service_times: np.ndarray | float,
    seed: SeedLike = None,
    *,
    pre=None,
) -> QueueResult:
    """Simulate a FIFO single-server queue via Lindley's recursion.

    Parameters
    ----------
    arrival_times:
        Packet arrival timestamps (sorted or not).
    service_times:
        Per-packet service durations; a scalar means deterministic service
        (the natural model for fixed-size packets on a fixed-rate link).
    pre:
        Optional in-network conditioning ahead of the queue: one element
        (or a sequence applied in order) from :mod:`repro.shaping` — a
        policer drops non-conforming arrivals before they queue, a
        shaper re-times them.  Per-packet service times are filtered
        alongside the arrivals they belong to; the applied
        :class:`~repro.shaping.elements.ConditioningResult` objects are
        returned on ``QueueResult.conditioning``.

    Utilization convention for degenerate spans (explicit and tested):

    * ``n == 1`` — there is no observed span, so the lone packet's own
      service time ``s[0]`` stands in for it (its busy period), whether
      ``service_times`` was scalar or a length-1 array: utilization is
      1.0 when ``s[0] > 0`` and 0.0 when ``s[0] == 0``.
    * ``n > 1`` with zero span (all arrivals simultaneous) — the burst
      demands ``s.sum()`` seconds of work in zero observed time, so
      utilization is reported as ``inf`` when total service is positive;
      when total service is zero too, the queue did no work and
      utilization is 0.0.
    """
    t = np.sort(np.asarray(arrival_times, dtype=float))
    n = t.size
    if n == 0:
        raise ValueError("no arrivals to simulate")
    if np.isscalar(service_times):
        require_positive(float(service_times), "service_times")
        s = np.full(n, float(service_times))
    else:
        s = np.asarray(service_times, dtype=float)
        if s.size != n:
            raise ValueError(
                f"need one service time per arrival ({n}), got {s.size}"
            )
        if np.any(s < 0):
            raise ValueError("service times must be >= 0")
    conditioning: tuple = ()
    if pre is not None:
        elements = pre if isinstance(pre, (list, tuple)) else (pre,)
        applied = []
        for element in elements:
            res = element.apply(t)
            applied.append(res)
            t = res.accepted_times
            s = s[res.accept]
            # A shaper may reorder emissions only across equal-time
            # ties; the queue needs arrival order regardless.
            order = np.argsort(t, kind="stable")
            t = t[order]
            s = s[order]
            if t.size == 0:
                raise ValueError(
                    f"{element!r} dropped every arrival before the queue"
                )
        conditioning = tuple(applied)
        n = t.size
    w = lindley_waits(s, np.diff(t))
    span = float(t[-1] - t[0]) if n > 1 else float(s[0])
    total_service = float(s.sum())
    if span > 0:
        utilization = total_service / span
    elif total_service == 0.0:
        utilization = 0.0
    else:
        utilization = float("inf")
    return QueueResult(waiting_times=w, service_times=s,
                       utilization=utilization, conditioning=conditioning)


def mm1_mean_wait(rate: float, service_mean: float) -> float:
    """Closed-form M/M/1 mean waiting time, for validation:
    W_q = rho * s / (1 - rho) with rho = rate * service_mean."""
    require_positive(rate, "rate")
    require_positive(service_mean, "service_mean")
    rho = rate * service_mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho * service_mean / (1.0 - rho)


def md1_mean_wait(rate: float, service: float) -> float:
    """Closed-form M/D/1 mean waiting time:
    W_q = rho * s / (2 (1 - rho))."""
    require_positive(rate, "rate")
    require_positive(service, "service")
    rho = rate * service
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho * service / (2.0 * (1.0 - rho))
