"""Queueing substrate: the FIFO link simulations behind Section IV's
packet-delay claim."""

from repro.queueing.admission import AdmissionResult, admission_experiment
from repro.queueing.delay import (
    DelayComparison,
    multiplexed_arrival_stream,
    telnet_delay_experiment,
)
from repro.queueing.priority import PriorityResult, strict_priority_queue
from repro.queueing.simulator import (
    QueueResult,
    fifo_queue,
    md1_mean_wait,
    mm1_mean_wait,
)

__all__ = [
    "AdmissionResult",
    "DelayComparison",
    "PriorityResult",
    "admission_experiment",
    "QueueResult",
    "fifo_queue",
    "md1_mean_wait",
    "mm1_mean_wait",
    "multiplexed_arrival_stream",
    "strict_priority_queue",
    "telnet_delay_experiment",
]
