"""The Section IV packet-delay experiment.

Feed a FIFO link with multiplexed TELNET sources whose packet interarrivals
are (a) Tcplib and (b) exponential at the same mean, and compare queueing
delays at matched utilization.  The heavy-tailed source produces the larger
delays — the concrete cost of Poisson mis-modeling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.telnet import EXP_MEAN_SECONDS, Scheme
from repro.distributions import tcplib as tcplib_tables
from repro.distributions.exponential import Exponential
from repro.utils.pool import pool_map
from repro.queueing.simulator import QueueResult, fifo_queue
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class DelayComparison:
    """Matched-load delay results for the two interarrival models."""

    tcplib: QueueResult
    exponential: QueueResult
    utilization_target: float

    @property
    def mean_delay_ratio(self) -> float:
        """How badly the exponential model underestimates mean delay."""
        return self.tcplib.mean_delay / self.exponential.mean_delay

    @property
    def p99_delay_ratio(self) -> float:
        return self.tcplib.p99_delay / self.exponential.p99_delay


def _stream_group(dist, duration: float, rngs) -> list[np.ndarray]:
    """Pool worker: one always-on source's truncated arrival stream per rng."""
    out = []
    for rng in rngs:
        t = 0.0
        parts = []
        while t < duration:
            gaps = dist.sample(2048, seed=rng)
            cum = t + np.cumsum(gaps)
            parts.append(cum)
            t = float(cum[-1])
        s = np.concatenate(parts)
        out.append(s[s < duration])
    return out


def multiplexed_arrival_stream(
    scheme: Scheme,
    n_connections: int,
    duration: float,
    seed: SeedLike = None,
    jobs: int = 1,
) -> np.ndarray:
    """Raw (unbinned) aggregate packet arrival times of N always-on TELNET
    sources under one interarrival scheme.

    Each source owns a spawned child generator, so ``jobs > 1`` fans the
    independent streams over a process pool with bit-identical output.
    """
    if n_connections < 1:
        raise ValueError("n_connections must be >= 1")
    require_positive(duration, "duration")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if scheme is Scheme.TCPLIB:
        dist = tcplib_tables.telnet_packet_interarrival()
    elif scheme is Scheme.EXP:
        dist = Exponential(EXP_MEAN_SECONDS)
    else:
        raise ValueError("the delay experiment is defined for TCPLIB/EXP")
    rngs = spawn_rngs(seed, n_connections)
    if jobs == 1:
        streams = _stream_group(dist, duration, rngs)
    else:
        groups = [
            g for g in np.array_split(np.arange(n_connections), jobs) if g.size
        ]
        outcomes = pool_map(
            _stream_group,
            [(dist, duration, [rngs[i] for i in g]) for g in groups],
            jobs,
        )
        streams = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
            streams.extend(outcome)
    return np.sort(np.concatenate(streams))


def telnet_delay_experiment(
    n_connections: int = 100,
    duration: float = 600.0,
    utilization: float = 0.8,
    seed: SeedLike = None,
    jobs: int = 1,
) -> DelayComparison:
    """Run the Tcplib-vs-exponential queueing comparison.

    The link's deterministic per-packet service time is set from each
    source's own observed arrival rate so both queues run at the same
    offered load ``utilization`` — isolating the effect of the arrival
    *pattern* from the arrival *rate*.
    """
    require_in_range(utilization, "utilization", 0.0, 1.0, inclusive=False)
    rng_tcp, rng_exp = spawn_rngs(seed, 2)
    results = {}
    for scheme, rng in ((Scheme.TCPLIB, rng_tcp), (Scheme.EXP, rng_exp)):
        arrivals = multiplexed_arrival_stream(scheme, n_connections, duration,
                                              seed=rng, jobs=jobs)
        rate = arrivals.size / duration
        service = utilization / rate
        results[scheme] = fifo_queue(arrivals, service)
    return DelayComparison(
        tcplib=results[Scheme.TCPLIB],
        exponential=results[Scheme.EXP],
        utilization_target=utilization,
    )
