"""Two-class strict-priority link (Section VIII implications).

"Consider a link with priority scheduling between classes of traffic, where
the higher priority class has no enforced bandwidth limitations ... If the
higher priority class has long-range dependence and a high degree of
variability over long time scales, then the bursts from the higher priority
traffic could starve the lower priority traffic for long periods of time."

The simulator serves class-0 (high) packets ahead of class-1 (low) packets,
non-preemptively, with deterministic per-packet service.  Starvation is
measured as the longest stretch during which the low class receives no
service while it has work queued.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class PriorityResult:
    """Per-class delay outcomes of one strict-priority simulation."""

    high_delays: np.ndarray
    low_delays: np.ndarray
    longest_low_starvation: float  # longest gap between low-class services
    utilization: float

    @property
    def mean_low_delay(self) -> float:
        return float(self.low_delays.mean()) if self.low_delays.size else 0.0

    @property
    def mean_high_delay(self) -> float:
        return float(self.high_delays.mean()) if self.high_delays.size else 0.0

    @property
    def p99_low_delay(self) -> float:
        return float(np.quantile(self.low_delays, 0.99)) if self.low_delays.size else 0.0


def strict_priority_queue(
    high_arrivals: np.ndarray,
    low_arrivals: np.ndarray,
    service_time: float,
) -> PriorityResult:
    """Simulate a non-preemptive strict-priority FIFO link.

    Both argument arrays hold packet arrival timestamps; ``service_time``
    is the deterministic per-packet transmission time.
    """
    require_positive(service_time, "service_time")
    high = np.sort(np.asarray(high_arrivals, dtype=float))
    low = np.sort(np.asarray(low_arrivals, dtype=float))
    if high.size + low.size == 0:
        raise ValueError("no packets to simulate")

    hq: list[float] = []  # queued high-class arrival times
    lq: list[float] = []
    hi = li = 0
    t = min(
        high[0] if high.size else np.inf,
        low[0] if low.size else np.inf,
    )
    high_delays, low_delays = [], []
    low_service_times = []

    def admit(until: float) -> None:
        nonlocal hi, li
        while hi < high.size and high[hi] <= until:
            heapq.heappush(hq, high[hi])
            hi += 1
        while li < low.size and low[li] <= until:
            heapq.heappush(lq, low[li])
            li += 1

    admit(t)
    while hq or lq or hi < high.size or li < low.size:
        if not hq and not lq:
            # idle: jump to the next arrival
            t = min(
                high[hi] if hi < high.size else np.inf,
                low[li] if li < low.size else np.inf,
            )
            admit(t)
            continue
        if hq:
            arr = heapq.heappop(hq)
            high_delays.append(t - arr + service_time)
        else:
            arr = heapq.heappop(lq)
            low_delays.append(t - arr + service_time)
            low_service_times.append(t)
        t += service_time
        admit(t)

    first = min(high[0] if high.size else np.inf, low[0] if low.size else np.inf)
    span = t - first
    util = (high.size + low.size) * service_time / span if span > 0 else 1.0

    if len(low_service_times) > 1:
        starvation = float(np.max(np.diff(low_service_times)))
    else:
        starvation = 0.0
    return PriorityResult(
        high_delays=np.asarray(high_delays),
        low_delays=np.asarray(low_delays),
        longest_low_starvation=starvation,
        utilization=float(util),
    )
