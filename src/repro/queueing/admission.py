"""Measurement-based admission control under long-range dependence.

Section VIII: "if the measured class has high burstiness consisting of both
a high variance and significant long-range dependence, then an admissions
control procedure that considers only recent traffic could be easily misled
following a long period of fairly low traffic rates.  (This is similar to a
situation in California geology some decades ago...)"

The experiment: an admission controller watches a count process through a
trailing measurement window and admits a new flow whenever the recent mean
leaves enough headroom.  For each admission decision we then look ahead and
record whether the link overflows anyway.  LRD traffic (fGn with high H)
produces far more of these mislead admissions than Poisson traffic with the
same mean and (one-bin) variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of the measurement-based admission experiment."""

    decisions: int  # admission opportunities evaluated
    admitted: int
    misled: int  # admissions followed by overload in the look-ahead window
    capacity: float
    flow_rate: float

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.decisions if self.decisions else 0.0

    @property
    def misled_rate(self) -> float:
        """Fraction of admissions that ran into overload anyway."""
        return self.misled / self.admitted if self.admitted else 0.0


def admission_experiment(
    counts: np.ndarray,
    capacity: float,
    flow_rate: float,
    *,
    window: int = 30,
    lookahead: int = 100,
    stride: int = 10,
) -> AdmissionResult:
    """Replay a count process through a measurement-based admission policy.

    Parameters
    ----------
    counts:
        Background traffic per bin (the "measured class").
    capacity:
        Link capacity per bin.
    flow_rate:
        Demand per bin of the flow requesting admission.
    window:
        Trailing bins averaged to estimate current load.
    lookahead:
        Bins after the decision checked for overload (mean background +
        flow exceeding capacity over any ``window``-bin stretch).
    stride:
        Decision spacing in bins.
    """
    require_positive(capacity, "capacity")
    require_positive(flow_rate, "flow_rate")
    x = np.asarray(counts, dtype=float)
    if x.size < window + lookahead + stride:
        raise ValueError("count process too short for the chosen windows")

    decisions = admitted = misled = 0
    for i in range(window, x.size - lookahead, stride):
        decisions += 1
        recent = float(x[i - window:i].mean())
        if recent + flow_rate > capacity:
            continue  # rejected
        admitted += 1
        future = x[i:i + lookahead]
        # overload: any trailing-window average in the look-ahead exceeding
        # capacity once the flow's demand is added
        kernel = np.convolve(future, np.ones(window) / window, mode="valid")
        if np.any(kernel + flow_rate > capacity):
            misled += 1
    return AdmissionResult(
        decisions=decisions,
        admitted=admitted,
        misled=misled,
        capacity=capacity,
        flow_rate=flow_rate,
    )
