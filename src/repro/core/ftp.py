"""FTPDATA burst structure (Section VI).

Two halves:

1. **Analysis** — coalesce a session's FTPDATA connections into *bursts*
   using the paper's spacing rule ("we somewhat arbitrarily chose a spacing
   of <= 4 s as defining connections belonging to the same burst"), then
   measure the burst-size distribution, whose upper 0.5% tail carries
   30-60% of all FTPDATA bytes.

2. **Generation** — an FTP source model: Poisson session arrivals
   (Section III); each session spawns bursts separated by heavy think-time
   gaps; each burst contains a Pareto-distributed number of back-to-back
   FTPDATA connections ("multiple-get file transfers") and a Pareto-tailed
   byte total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto
from repro.utils.pool import pool_map
from repro.kernels.segments import grouped_sum
from repro.stats.tail import concentration_curve, top_fraction_share
from repro.traces.columns import ConnectionBatch, decode_protocols
from repro.traces.records import ConnectionRecord
from repro.traces.trace import ConnectionTrace
from repro.utils.rng import SeedLike, as_rng, spawn_rngs
from repro.utils.validation import require_positive

#: The paper's burst-coalescing spacing rule (seconds).  Footnoted as robust:
#: "using a cutoff spacing of 2 s instead ... results in virtually identical
#: results".
BURST_SPACING_SECONDS = 4.0


@dataclass(frozen=True)
class Burst:
    """A coalesced run of FTPDATA connections within one FTP session."""

    session_id: int
    start_time: float
    end_time: float
    n_connections: int
    total_bytes: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def coalesce_bursts(
    starts: np.ndarray,
    durations: np.ndarray,
    data_bytes: np.ndarray,
    spacing: float = BURST_SPACING_SECONDS,
    session_id: int = 0,
) -> list[Burst]:
    """Group one session's FTPDATA connections into bursts.

    "Spacing" is "the amount of time between the end of one FTPDATA
    connection within a session and the beginning of the next"; consecutive
    connections with spacing <= ``spacing`` share a burst.

    The gap scan is vectorized (one ``flatnonzero`` over the gap mask, then
    ``maximum.reduceat``/``add.reduceat`` per burst segment — exact, since
    byte totals are int64 and the max picks an element), with an early-exit
    fast path for the common single-burst session in which no gap exceeds
    the spacing rule.
    """
    require_positive(spacing, "spacing")
    s = np.asarray(starts, dtype=float)
    d = np.asarray(durations, dtype=float)
    b = np.asarray(data_bytes, dtype=np.int64)
    if not s.size == d.size == b.size:
        raise ValueError("starts, durations, data_bytes must have equal length")
    if s.size == 0:
        return []
    order = np.argsort(s, kind="stable")
    s, d, b = s[order], d[order], b[order]
    ends = s + d

    boundaries = (
        np.zeros(0, dtype=np.int64)
        if s.size == 1
        else np.flatnonzero(s[1:] - ends[:-1] > spacing) + 1
    )
    if boundaries.size == 0:
        # Fast path: every gap within the spacing rule — one burst.
        return [Burst(
            session_id=session_id,
            start_time=float(s[0]),
            end_time=float(ends.max()),
            n_connections=s.size,
            total_bytes=int(b.sum()),
        )]
    firsts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [s.size]))
    end_times = np.maximum.reduceat(ends, firsts)
    byte_totals = np.add.reduceat(b, firsts)
    return [
        Burst(
            session_id=session_id,
            start_time=float(s[first]),
            end_time=float(end_time),
            n_connections=int(stop - first),
            total_bytes=int(total),
        )
        for first, stop, end_time, total
        in zip(firsts, stops, end_times, byte_totals)
    ]


def trace_bursts(
    trace: ConnectionTrace, spacing: float = BURST_SPACING_SECONDS
) -> list[Burst]:
    """Coalesce every FTP session's FTPDATA connections in a trace."""
    out: list[Burst] = []
    for sid, rows in trace.sessions("FTPDATA").items():
        out.extend(
            coalesce_bursts(
                trace.start_times[rows],
                trace.durations[rows],
                trace.bytes_resp[rows] + trace.bytes_orig[rows],
                spacing=spacing,
                session_id=sid,
            )
        )
    out.sort(key=lambda burst: burst.start_time)
    return out


def intra_session_spacings(trace: ConnectionTrace) -> np.ndarray:
    """All end-to-next-start gaps between FTPDATA connections sharing a
    session — the distribution plotted in Fig. 8 (clamped at >= 0: slightly
    overlapping transfers count as zero spacing)."""
    gaps = []
    for rows in trace.sessions("FTPDATA").values():
        s = trace.start_times[rows]
        e = s + trace.durations[rows]
        if s.size > 1:
            gaps.append(np.maximum(s[1:] - e[:-1], 0.0))
    if not gaps:
        return np.zeros(0)
    return np.concatenate(gaps)


@dataclass(frozen=True)
class BurstTailSummary:
    """Section VI's headline numbers for one trace."""

    n_bursts: int
    total_bytes: int
    share_top_half_percent: float
    share_top_two_percent: float
    tail_shape: float | None  # Pareto fit of the upper 5% tail

    def dominated_by_tail(self) -> bool:
        """The paper's qualitative claim: the top 0.5% of bursts holds a
        large multiple of its 'fair share' (0.5%) of the bytes."""
        return self.share_top_half_percent > 0.10


def burst_tail_summary(bursts: list[Burst]) -> BurstTailSummary:
    """Compute the Fig. 9 / Section VI tail-dominance numbers."""
    if not bursts:
        raise ValueError("no bursts to summarize")
    sizes = np.array([b.total_bytes for b in bursts], dtype=float)
    tail_shape = None
    if sizes.size >= 40 and np.all(sizes > 0):
        from repro.distributions.pareto import tail_fit

        try:
            tail_shape = tail_fit(sizes, tail_fraction=0.05).shape
        except ValueError:
            tail_shape = None
    return BurstTailSummary(
        n_bursts=sizes.size,
        total_bytes=int(sizes.sum()),
        share_top_half_percent=top_fraction_share(sizes, 0.005),
        share_top_two_percent=top_fraction_share(sizes, 0.02),
        tail_shape=tail_shape,
    )


def burst_concentration(bursts: list[Burst]):
    """Fig. 9's curve for a list of bursts."""
    return concentration_curve([b.total_bytes for b in bursts])


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FtpSessionModel:
    """Generative model of FTP sessions and their FTPDATA connections.

    Structure per session:

    * the session (control connection) arrives Poisson at
      ``sessions_per_hour`` (Section III's validated model);
    * it contains ``n_bursts`` ~ 1 + Geometric bursts (directory listings /
      mget groups), separated by log-normal think gaps well above the 4 s
      coalescing cutoff;
    * each burst holds a discrete-Pareto number of connections separated by
      sub-cutoff gaps, and a Pareto(``burst_bytes_shape``) byte total split
      log-normally across its connections;
    * each connection's duration is its bytes over ``transfer_rate`` plus a
      setup overhead.

    Defaults give burst-size tails with shape ~1.1 — the middle of the
    paper's fitted range 0.9 <= beta <= 1.4.
    """

    sessions_per_hour: float = 40.0
    mean_bursts_per_session: float = 2.5
    conns_per_burst_shape: float = 1.3
    burst_bytes_shape: float = 1.1
    burst_bytes_location: float = 20_000.0
    inter_burst_gap_log2_mean: float = 5.0  # median 2^5 = 32 s
    inter_burst_gap_log2_sd: float = 1.5
    intra_burst_gap_mean: float = 0.8  # well under the 4 s cutoff
    transfer_rate: float = 50_000.0  # bytes/second
    setup_overhead: float = 0.4  # seconds per connection
    max_conns_per_burst: int = 1000

    def __post_init__(self):
        require_positive(self.sessions_per_hour, "sessions_per_hour")
        require_positive(self.transfer_rate, "transfer_rate")

    # ------------------------------------------------------------------
    def synthesize(
        self,
        duration: float,
        seed: SeedLike = None,
        first_session_id: int = 0,
        start_offset: float = 0.0,
        session_starts: np.ndarray | None = None,
        jobs: int = 1,
        batch: bool = True,
    ) -> list[ConnectionRecord]:
        """Generate FTP control + FTPDATA connection records.

        ``session_starts`` overrides the Poisson session arrivals (used by
        the trace synthesizer, which draws them from a diurnal profile).

        RNG-stream contract: after the session starts are drawn from the
        seed stream, every session owns an independent child generator
        (``spawn_rngs``) that draws, in order: host pair, burst count, all
        burst connection counts, all burst byte totals, all inter-burst
        gaps, all connection weights, all intra-burst gaps, and the control
        record's byte counts — each as one vectorized call.  Sessions are
        therefore independent (``jobs > 1`` fans them over a process pool
        with identical output), and the default ``batch=True`` assembly
        computes every connection's start time with one ``cumsum`` over the
        session's increments, bit-identical to the scalar accumulation of
        ``batch=False``.

        The batched path assembles columns (:meth:`synthesize_columns` is
        the array-native entry point; :meth:`synthesize_trace` skips record
        objects entirely) and materializes this record list as a view of
        them; ``batch=False`` is the scalar record-path reference.
        """
        if not batch:
            return _records_loop(self, duration, seed, first_session_id,
                                 start_offset, session_starts, jobs)
        cols = self._columns(duration, seed, first_session_id,
                             start_offset, session_starts, jobs)
        starts, durations, codes, b_orig, b_resp, o_hosts, r_hosts, sids = cols
        names = FTP_PROTOCOL_TABLE.tolist()
        return [
            ConnectionRecord(
                start_time=st,
                duration=du,
                protocol=names[c],
                bytes_orig=bo,
                bytes_resp=br,
                orig_host=oh,
                resp_host=rh,
                session_id=si,
            )
            for st, du, c, bo, br, oh, rh, si in zip(
                starts.tolist(), durations.tolist(), codes.tolist(),
                b_orig.tolist(), b_resp.tolist(), o_hosts.tolist(),
                r_hosts.tolist(), sids.tolist(),
            )
        ]

    def synthesize_columns(
        self,
        duration: float,
        seed: SeedLike = None,
        first_session_id: int = 0,
        start_offset: float = 0.0,
        session_starts: np.ndarray | None = None,
        jobs: int = 1,
    ) -> ConnectionBatch:
        """Array-native synthesis: the same stream contract as
        :meth:`synthesize`, assembled directly into a
        :class:`~repro.traces.columns.ConnectionBatch` (bit-identical
        column values; no record objects)."""
        (starts, durations, codes, b_orig, b_resp, o_hosts, r_hosts,
         sids) = self._columns(duration, seed, first_session_id,
                               start_offset, session_starts, jobs)
        return ConnectionBatch(
            start_times=starts,
            durations=durations,
            protocols=decode_protocols(codes, FTP_PROTOCOL_TABLE),
            bytes_orig=b_orig,
            bytes_resp=b_resp,
            orig_hosts=o_hosts,
            resp_hosts=r_hosts,
            session_ids=sids,
        )

    def synthesize_trace(
        self,
        duration: float,
        seed: SeedLike = None,
        name: str = "ftp-model",
        first_session_id: int = 0,
        start_offset: float = 0.0,
        session_starts: np.ndarray | None = None,
        jobs: int = 1,
    ) -> ConnectionTrace:
        """Synthesize straight into a :class:`ConnectionTrace`: columns all
        the way, with the protocol table passed through pre-interned."""
        (starts, durations, codes, b_orig, b_resp, o_hosts, r_hosts,
         sids) = self._columns(duration, seed, first_session_id,
                               start_offset, session_starts, jobs)
        return ConnectionTrace.from_arrays(
            name,
            start_times=starts,
            durations=durations,
            protocol_codes=codes,
            protocol_table=FTP_PROTOCOL_TABLE,
            bytes_orig=b_orig,
            bytes_resp=b_resp,
            orig_hosts=o_hosts,
            resp_hosts=r_hosts,
            session_ids=sids,
        )

    def _columns(self, duration, seed, first_session_id, start_offset,
                 session_starts, jobs):
        """Shared columnar synthesis core (session fan-out + concat)."""
        require_positive(duration, "duration")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        rng = as_rng(seed)
        if session_starts is None:
            session_starts = homogeneous_poisson(
                self.sessions_per_hour / 3600.0, duration, seed=rng
            )
        t0s = np.asarray(session_starts, dtype=float)
        session_rngs = spawn_rngs(rng, t0s.size)

        if jobs == 1 or t0s.size <= 1:
            cols = _session_group_columns(self, first_session_id, t0s,
                                          session_rngs)
        else:
            groups = [
                g for g in np.array_split(np.arange(t0s.size), jobs)
                if g.size
            ]
            tasks = [
                (self, first_session_id + int(g[0]), t0s[g],
                 [session_rngs[i] for i in g])
                for g in groups
            ]
            outcomes = pool_map(_session_group_columns, tasks, jobs)
            parts = []
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise outcome
                parts.append(outcome)
            cols = tuple(
                np.concatenate([p[j] for p in parts])
                for j in range(len(parts[0]))
            )
        if start_offset:
            cols = (cols[0] + start_offset,) + cols[1:]
        return cols


#: The model's protocol category table (sorted, as interning requires).
FTP_PROTOCOL_TABLE = np.array(["FTP", "FTPDATA"], dtype=object)
_FTP_CODE = 0
_FTPDATA_CODE = 1


def _records_loop(model, duration, seed, first_session_id, start_offset,
                  session_starts, jobs):
    """The ``batch=False`` scalar record path (the stream reference)."""
    require_positive(duration, "duration")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    rng = as_rng(seed)
    if session_starts is None:
        session_starts = homogeneous_poisson(
            model.sessions_per_hour / 3600.0, duration, seed=rng
        )
    t0s = np.asarray(session_starts, dtype=float)
    session_rngs = spawn_rngs(rng, t0s.size)

    if jobs == 1 or t0s.size <= 1:
        records = _session_group_records(model, first_session_id, t0s,
                                         session_rngs)
    else:
        groups = [
            g for g in np.array_split(np.arange(t0s.size), jobs)
            if g.size
        ]
        tasks = [
            (model, first_session_id + int(g[0]), t0s[g],
             [session_rngs[i] for i in g])
            for g in groups
        ]
        outcomes = pool_map(_session_group_records, tasks, jobs)
        records = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
            records.extend(outcome)
    if start_offset:
        records = [
            ConnectionRecord(
                start_time=r.start_time + start_offset,
                duration=r.duration,
                protocol=r.protocol,
                bytes_orig=r.bytes_orig,
                bytes_resp=r.bytes_resp,
                orig_host=r.orig_host,
                resp_host=r.resp_host,
                session_id=r.session_id,
            )
            for r in records
        ]
    return records


def _session_distributions(model):
    gap_dist = Log2Normal(model.inter_burst_gap_log2_mean,
                          model.inter_burst_gap_log2_sd)
    conn_count = Pareto(1.0, model.conns_per_burst_shape)
    burst_bytes = Pareto(model.burst_bytes_location, model.burst_bytes_shape)
    return gap_dist, conn_count, burst_bytes


def _session_draws(model, rng, gap_dist, conn_count, burst_bytes):
    """One session's stochastic draws, in the frozen per-session stream
    order (host pair, burst count, counts, totals, gaps, weights, intra
    gaps, control bytes) — shared by every assembly path."""
    # per-session host pair, so periodic-source detection and
    # host-level analyses see realistic structure
    orig = int(rng.integers(0, 500))
    resp = int(rng.integers(500, 1000))
    n_bursts = 1 + int(rng.geometric(1.0 / model.mean_bursts_per_session))
    conn_raw = conn_count.sample(n_bursts, seed=rng)
    totals = burst_bytes.sample(n_bursts, seed=rng)
    inter_gaps = gap_dist.sample(n_bursts, seed=rng)
    # Pareto(1, shape) floored gives a discrete power-law count >= 1.
    n_conns = np.minimum(
        np.floor(conn_raw).astype(np.int64), model.max_conns_per_burst
    )
    total_conns = int(n_conns.sum())
    weights = rng.lognormal(0.0, 1.0, size=total_conns)
    intra = rng.exponential(model.intra_burst_gap_mean, size=total_conns)
    ctrl_orig = int(rng.integers(200, 2000))
    ctrl_resp = int(rng.integers(500, 5000))
    return (orig, resp, n_conns, totals, inter_gaps, weights, intra,
            ctrl_orig, ctrl_resp)


def _session_group_columns(model: FtpSessionModel, sid0, t0s, rngs):
    """Pool worker: columns for a contiguous group of sessions.

    Per session the row order is the FTPDATA connections in start order
    followed by the FTP control row — the same order the record paths
    emit, so the concatenated columns are bit-identical to them.
    """
    gap_dist, conn_count, burst_bytes = _session_distributions(model)
    parts = []
    for k, (t0, rng) in enumerate(zip(t0s, rngs)):
        t0 = float(t0)
        (orig, resp, n_conns, totals, inter_gaps, weights, intra,
         ctrl_orig, ctrl_resp) = _session_draws(
            model, rng, gap_dist, conn_count, burst_bytes)
        shares, durs, conn_starts, session_end = _assemble_batched(
            model, t0, n_conns, totals, inter_gaps, weights, intra
        )
        n = conn_starts.size
        starts = np.append(conn_starts, t0)
        durations = np.append(durs, max(session_end - t0, 1.0))
        codes = np.full(n + 1, _FTPDATA_CODE, dtype=np.int8)
        codes[-1] = _FTP_CODE
        b_orig = np.zeros(n + 1, dtype=np.int64)
        b_orig[-1] = ctrl_orig
        b_resp = np.append(shares, np.int64(ctrl_resp))
        parts.append((
            starts, durations, codes, b_orig, b_resp,
            np.full(n + 1, orig, dtype=np.int64),
            np.full(n + 1, resp, dtype=np.int64),
            np.full(n + 1, sid0 + k, dtype=np.int64),
        ))
    if not parts:
        return (np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int8),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64))
    if len(parts) == 1:
        return parts[0]
    return tuple(
        np.concatenate([p[j] for p in parts]) for j in range(len(parts[0]))
    )


def _session_group_records(model: FtpSessionModel, sid0, t0s, rngs):
    """Pool worker: scalar-assembly records for a group of sessions."""
    gap_dist, conn_count, burst_bytes = _session_distributions(model)
    records: list[ConnectionRecord] = []
    for k, (t0, rng) in enumerate(zip(t0s, rngs)):
        records.extend(
            _one_session_records(model, sid0 + k, float(t0), rng,
                                 gap_dist, conn_count, burst_bytes)
        )
    return records


def _one_session_records(model, sid, t0, rng, gap_dist, conn_count,
                         burst_bytes):
    """One session's records via the scalar assembly reference."""
    (orig, resp, n_conns, totals, inter_gaps, weights, intra,
     ctrl_orig, ctrl_resp) = _session_draws(
        model, rng, gap_dist, conn_count, burst_bytes)
    records, session_end = _assemble_loop(
        model, sid, t0, n_conns, totals, inter_gaps, weights, intra,
        orig, resp,
    )
    records.append(
        ConnectionRecord(
            start_time=t0,
            duration=max(session_end - t0, 1.0),
            protocol="FTP",
            bytes_orig=ctrl_orig,
            bytes_resp=ctrl_resp,
            orig_host=orig,
            resp_host=resp,
            session_id=sid,
        )
    )
    return records


def _assemble_batched(model, t0, n_conns, totals, inter_gaps, weights, intra):
    """Vectorized assembly: one ``cumsum`` over the session's interleaved
    increments (connection ``duration + intra gap``, then burst
    ``inter gap + spacing``).  ``cumsum`` accumulates sequentially, so every
    start time is bit-identical to the scalar ``t += inc`` walk of
    :func:`_assemble_loop`."""
    wsum = grouped_sum(weights, n_conns)
    shares = np.maximum(
        (np.repeat(totals, n_conns) * weights
         / np.repeat(wsum, n_conns)).astype(np.int64),
        1,
    )
    durs = model.setup_overhead + shares / model.transfer_rate
    seg_len = n_conns + 1
    total_len = int(seg_len.sum())
    gap_pos = np.cumsum(seg_len) - 1
    conn_mask = np.ones(total_len, dtype=bool)
    conn_mask[gap_pos] = False
    incs = np.empty(total_len)
    incs[conn_mask] = durs + intra
    incs[gap_pos] = inter_gaps + BURST_SPACING_SECONDS
    full = np.cumsum(np.concatenate(([t0], incs)))
    conn_starts = full[:-1][conn_mask]
    session_end = float(full[-2])
    return shares, durs, conn_starts, session_end


def _assemble_loop(model, sid, t0, n_conns, totals, inter_gaps, weights,
                   intra, orig, resp):
    """Scalar reference assembly over the same pre-drawn variates."""
    records = []
    t = t0
    session_end = t0
    pos = 0
    for bi in range(n_conns.size):
        k = int(n_conns[bi])
        w = weights[pos: pos + k]
        shares = np.maximum(
            (float(totals[bi]) * w / w.sum()).astype(np.int64), 1
        )
        for j in range(k):
            share = shares[j]
            dur = model.setup_overhead + float(share) / model.transfer_rate
            records.append(
                ConnectionRecord(
                    start_time=float(t),
                    duration=float(dur),
                    protocol="FTPDATA",
                    bytes_orig=0,
                    bytes_resp=int(share),
                    orig_host=orig,
                    resp_host=resp,
                    session_id=sid,
                )
            )
            t = t + (dur + float(intra[pos + j]))
        pos += k
        session_end = t
        t = t + (float(inter_gaps[bi]) + BURST_SPACING_SECONDS)
    return records, session_end
