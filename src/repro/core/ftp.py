"""FTPDATA burst structure (Section VI).

Two halves:

1. **Analysis** — coalesce a session's FTPDATA connections into *bursts*
   using the paper's spacing rule ("we somewhat arbitrarily chose a spacing
   of <= 4 s as defining connections belonging to the same burst"), then
   measure the burst-size distribution, whose upper 0.5% tail carries
   30-60% of all FTPDATA bytes.

2. **Generation** — an FTP source model: Poisson session arrivals
   (Section III); each session spawns bursts separated by heavy think-time
   gaps; each burst contains a Pareto-distributed number of back-to-back
   FTPDATA connections ("multiple-get file transfers") and a Pareto-tailed
   byte total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto
from repro.stats.tail import concentration_curve, top_fraction_share
from repro.traces.records import ConnectionRecord
from repro.traces.trace import ConnectionTrace
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

#: The paper's burst-coalescing spacing rule (seconds).  Footnoted as robust:
#: "using a cutoff spacing of 2 s instead ... results in virtually identical
#: results".
BURST_SPACING_SECONDS = 4.0


@dataclass(frozen=True)
class Burst:
    """A coalesced run of FTPDATA connections within one FTP session."""

    session_id: int
    start_time: float
    end_time: float
    n_connections: int
    total_bytes: int

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def coalesce_bursts(
    starts: np.ndarray,
    durations: np.ndarray,
    data_bytes: np.ndarray,
    spacing: float = BURST_SPACING_SECONDS,
    session_id: int = 0,
) -> list[Burst]:
    """Group one session's FTPDATA connections into bursts.

    "Spacing" is "the amount of time between the end of one FTPDATA
    connection within a session and the beginning of the next"; consecutive
    connections with spacing <= ``spacing`` share a burst.
    """
    require_positive(spacing, "spacing")
    s = np.asarray(starts, dtype=float)
    d = np.asarray(durations, dtype=float)
    b = np.asarray(data_bytes, dtype=np.int64)
    if not s.size == d.size == b.size:
        raise ValueError("starts, durations, data_bytes must have equal length")
    if s.size == 0:
        return []
    order = np.argsort(s, kind="stable")
    s, d, b = s[order], d[order], b[order]
    ends = s + d

    bursts: list[Burst] = []
    first = 0
    for i in range(1, s.size):
        gap = s[i] - ends[i - 1]
        if gap > spacing:
            bursts.append(_make_burst(session_id, s, ends, b, first, i))
            first = i
    bursts.append(_make_burst(session_id, s, ends, b, first, s.size))
    return bursts


def _make_burst(sid, starts, ends, data_bytes, first, stop) -> Burst:
    return Burst(
        session_id=sid,
        start_time=float(starts[first]),
        end_time=float(ends[first:stop].max()),
        n_connections=stop - first,
        total_bytes=int(data_bytes[first:stop].sum()),
    )


def trace_bursts(
    trace: ConnectionTrace, spacing: float = BURST_SPACING_SECONDS
) -> list[Burst]:
    """Coalesce every FTP session's FTPDATA connections in a trace."""
    out: list[Burst] = []
    for sid, rows in trace.sessions("FTPDATA").items():
        out.extend(
            coalesce_bursts(
                trace.start_times[rows],
                trace.durations[rows],
                trace.bytes_resp[rows] + trace.bytes_orig[rows],
                spacing=spacing,
                session_id=sid,
            )
        )
    out.sort(key=lambda burst: burst.start_time)
    return out


def intra_session_spacings(trace: ConnectionTrace) -> np.ndarray:
    """All end-to-next-start gaps between FTPDATA connections sharing a
    session — the distribution plotted in Fig. 8 (clamped at >= 0: slightly
    overlapping transfers count as zero spacing)."""
    gaps = []
    for rows in trace.sessions("FTPDATA").values():
        s = trace.start_times[rows]
        e = s + trace.durations[rows]
        if s.size > 1:
            gaps.append(np.maximum(s[1:] - e[:-1], 0.0))
    if not gaps:
        return np.zeros(0)
    return np.concatenate(gaps)


@dataclass(frozen=True)
class BurstTailSummary:
    """Section VI's headline numbers for one trace."""

    n_bursts: int
    total_bytes: int
    share_top_half_percent: float
    share_top_two_percent: float
    tail_shape: float | None  # Pareto fit of the upper 5% tail

    def dominated_by_tail(self) -> bool:
        """The paper's qualitative claim: the top 0.5% of bursts holds a
        large multiple of its 'fair share' (0.5%) of the bytes."""
        return self.share_top_half_percent > 0.10


def burst_tail_summary(bursts: list[Burst]) -> BurstTailSummary:
    """Compute the Fig. 9 / Section VI tail-dominance numbers."""
    if not bursts:
        raise ValueError("no bursts to summarize")
    sizes = np.array([b.total_bytes for b in bursts], dtype=float)
    tail_shape = None
    if sizes.size >= 40 and np.all(sizes > 0):
        from repro.distributions.pareto import tail_fit

        try:
            tail_shape = tail_fit(sizes, tail_fraction=0.05).shape
        except ValueError:
            tail_shape = None
    return BurstTailSummary(
        n_bursts=sizes.size,
        total_bytes=int(sizes.sum()),
        share_top_half_percent=top_fraction_share(sizes, 0.005),
        share_top_two_percent=top_fraction_share(sizes, 0.02),
        tail_shape=tail_shape,
    )


def burst_concentration(bursts: list[Burst]):
    """Fig. 9's curve for a list of bursts."""
    return concentration_curve([b.total_bytes for b in bursts])


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FtpSessionModel:
    """Generative model of FTP sessions and their FTPDATA connections.

    Structure per session:

    * the session (control connection) arrives Poisson at
      ``sessions_per_hour`` (Section III's validated model);
    * it contains ``n_bursts`` ~ 1 + Geometric bursts (directory listings /
      mget groups), separated by log-normal think gaps well above the 4 s
      coalescing cutoff;
    * each burst holds a discrete-Pareto number of connections separated by
      sub-cutoff gaps, and a Pareto(``burst_bytes_shape``) byte total split
      log-normally across its connections;
    * each connection's duration is its bytes over ``transfer_rate`` plus a
      setup overhead.

    Defaults give burst-size tails with shape ~1.1 — the middle of the
    paper's fitted range 0.9 <= beta <= 1.4.
    """

    sessions_per_hour: float = 40.0
    mean_bursts_per_session: float = 2.5
    conns_per_burst_shape: float = 1.3
    burst_bytes_shape: float = 1.1
    burst_bytes_location: float = 20_000.0
    inter_burst_gap_log2_mean: float = 5.0  # median 2^5 = 32 s
    inter_burst_gap_log2_sd: float = 1.5
    intra_burst_gap_mean: float = 0.8  # well under the 4 s cutoff
    transfer_rate: float = 50_000.0  # bytes/second
    setup_overhead: float = 0.4  # seconds per connection
    max_conns_per_burst: int = 1000

    def __post_init__(self):
        require_positive(self.sessions_per_hour, "sessions_per_hour")
        require_positive(self.transfer_rate, "transfer_rate")

    # ------------------------------------------------------------------
    def synthesize(
        self,
        duration: float,
        seed: SeedLike = None,
        first_session_id: int = 0,
        start_offset: float = 0.0,
        session_starts: np.ndarray | None = None,
    ) -> list[ConnectionRecord]:
        """Generate FTP control + FTPDATA connection records.

        ``session_starts`` overrides the Poisson session arrivals (used by
        the trace synthesizer, which draws them from a diurnal profile).
        """
        require_positive(duration, "duration")
        rng = as_rng(seed)
        if session_starts is None:
            session_starts = homogeneous_poisson(
                self.sessions_per_hour / 3600.0, duration, seed=rng
            )
        gap_dist = Log2Normal(self.inter_burst_gap_log2_mean,
                              self.inter_burst_gap_log2_sd)
        conn_count = Pareto(1.0, self.conns_per_burst_shape)
        burst_bytes = Pareto(self.burst_bytes_location, self.burst_bytes_shape)

        records: list[ConnectionRecord] = []
        for k, t0 in enumerate(np.asarray(session_starts, dtype=float)):
            sid = first_session_id + k
            # per-session host pair, so periodic-source detection and
            # host-level analyses see realistic structure
            orig = int(rng.integers(0, 500))
            resp = int(rng.integers(500, 1000))
            n_bursts = 1 + rng.geometric(1.0 / self.mean_bursts_per_session)
            t = t0
            session_end = t0
            for _ in range(n_bursts):
                t, burst_records = self._one_burst(t, sid, conn_count,
                                                   burst_bytes, rng,
                                                   orig, resp)
                records.extend(burst_records)
                session_end = t
                t += float(gap_dist.sample(1, seed=rng)[0]) + BURST_SPACING_SECONDS
            records.append(
                ConnectionRecord(
                    start_time=t0,
                    duration=max(session_end - t0, 1.0),
                    protocol="FTP",
                    bytes_orig=int(rng.integers(200, 2000)),
                    bytes_resp=int(rng.integers(500, 5000)),
                    orig_host=orig,
                    resp_host=resp,
                    session_id=sid,
                )
            )
        if start_offset:
            records = [
                ConnectionRecord(
                    start_time=r.start_time + start_offset,
                    duration=r.duration,
                    protocol=r.protocol,
                    bytes_orig=r.bytes_orig,
                    bytes_resp=r.bytes_resp,
                    orig_host=r.orig_host,
                    resp_host=r.resp_host,
                    session_id=r.session_id,
                )
                for r in records
            ]
        return records

    def _one_burst(self, t, sid, conn_count, burst_bytes, rng,
                   orig_host=0, resp_host=0):
        # Pareto(1, shape) floored gives a discrete power-law count >= 1.
        n_conns = min(
            int(np.floor(float(conn_count.sample(1, seed=rng)[0]))),
            self.max_conns_per_burst,
        )
        total = float(burst_bytes.sample(1, seed=rng)[0])
        weights = rng.lognormal(0.0, 1.0, size=n_conns)
        shares = np.maximum((total * weights / weights.sum()).astype(np.int64), 1)
        records = []
        for share in shares:
            dur = self.setup_overhead + float(share) / self.transfer_rate
            records.append(
                ConnectionRecord(
                    start_time=float(t),
                    duration=dur,
                    protocol="FTPDATA",
                    bytes_orig=0,
                    bytes_resp=int(share),
                    orig_host=orig_host,
                    resp_host=resp_host,
                    session_id=sid,
                )
            )
            t = float(t) + dur + float(rng.exponential(self.intra_burst_gap_mean))
        return t, records
