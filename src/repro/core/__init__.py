"""The paper's traffic models.

* :mod:`repro.core.telnet` — Section IV's TCPLIB / EXP / VAR-EXP synthesis
  schemes and the 100-connection multiplexing experiment.
* :mod:`repro.core.fulltel` — Section V's FULL-TEL source model.
* :mod:`repro.core.ftp` — Section VI's FTPDATA burst coalescing, tail
  analytics, and generative FTP session model.
"""

from repro.core.ftp import (
    BURST_SPACING_SECONDS,
    Burst,
    BurstTailSummary,
    FtpSessionModel,
    burst_concentration,
    burst_tail_summary,
    coalesce_bursts,
    intra_session_spacings,
    trace_bursts,
)
from repro.core.fulltel import FullTelModel
from repro.core.responder import TelnetResponderModel
from repro.core.telnet import (
    EXP_MEAN_SECONDS,
    ConnectionSpec,
    MultiplexResult,
    Scheme,
    clustering_score,
    connection_packet_times,
    multiplexed_telnet,
    synthesize_packet_arrivals,
)

__all__ = [
    "BURST_SPACING_SECONDS",
    "EXP_MEAN_SECONDS",
    "Burst",
    "BurstTailSummary",
    "ConnectionSpec",
    "FtpSessionModel",
    "FullTelModel",
    "MultiplexResult",
    "TelnetResponderModel",
    "Scheme",
    "burst_concentration",
    "burst_tail_summary",
    "clustering_score",
    "coalesce_bursts",
    "connection_packet_times",
    "intra_session_spacings",
    "multiplexed_telnet",
    "synthesize_packet_arrivals",
    "trace_bursts",
]
