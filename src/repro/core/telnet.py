"""TELNET packet-arrival synthesis schemes (Section IV).

Section IV builds three synthetic counterparts of a traced set of TELNET
connections, sharing each connection's start time and size in packets:

* **TCPLIB** — i.i.d. interarrivals from the empirical Tcplib distribution
  (heavy-tailed; the scheme that preserves burstiness, Fig. 5);
* **EXP** — i.i.d. exponential interarrivals with mean 1.1 s;
* **VAR-EXP** — each connection's packets spread uniformly over the
  connection's *actual traced duration*, i.e. "exponential interarrivals
  with the mean adjusted to reflect the connection's actual observed packet
  rate".

Plus the multiplexing experiment: 100 active connections for 10 minutes,
where Tcplib interarrivals keep an aggregate 1 s-bin variance ~2.5x that of
exponential interarrivals at equal mean.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.arrivals.poisson import poisson_fixed_count
from repro.distributions import tcplib
from repro.distributions.exponential import Exponential
from repro.utils.pool import pool_map
from repro.kernels.segments import grouped_cumsum, grouped_sort
from repro.selfsim.counts import CountProcess
from repro.utils.rng import SeedLike, as_rng, spawn_rngs
from repro.utils.validation import require_positive

#: The paper's exponential comparator mean: "an exponential distribution
#: with a mean of 1.1 s (to give roughly the same number of packets as the
#: Tcplib distribution)".
EXP_MEAN_SECONDS = 1.1


class Scheme(enum.Enum):
    """Packet interarrival synthesis scheme."""

    TCPLIB = "TCPLIB"
    EXP = "EXP"
    VAR_EXP = "VAR-EXP"


@dataclass(frozen=True)
class ConnectionSpec:
    """What the synthesizer preserves from a traced connection."""

    start_time: float
    n_packets: int
    duration: float | None = None  # required by VAR-EXP only

    def __post_init__(self):
        if self.start_time < 0:
            raise ValueError("start_time must be >= 0")
        if self.n_packets < 0:
            raise ValueError("n_packets must be >= 0")


def connection_packet_times(
    spec: ConnectionSpec, scheme: Scheme, seed: SeedLike = None
) -> np.ndarray:
    """Synthesize one connection's originator packet timestamps."""
    rng = as_rng(seed)
    n = spec.n_packets
    if n == 0:
        return np.zeros(0)
    if scheme is Scheme.TCPLIB:
        gaps = tcplib.telnet_packet_interarrival().sample(n, seed=rng)
        return spec.start_time + np.cumsum(gaps)
    if scheme is Scheme.EXP:
        gaps = Exponential(EXP_MEAN_SECONDS).sample(n, seed=rng)
        return spec.start_time + np.cumsum(gaps)
    if scheme is Scheme.VAR_EXP:
        if spec.duration is None:
            raise ValueError("VAR-EXP requires the connection's traced duration")
        require_positive(spec.duration, "duration")
        return spec.start_time + poisson_fixed_count(n, spec.duration, seed=rng)
    raise ValueError(f"unknown scheme {scheme!r}")


def synthesize_packet_arrivals(
    specs: list[ConnectionSpec],
    scheme: Scheme,
    seed: SeedLike = None,
    horizon: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthesize a whole trace's TELNET packets under one scheme.

    Returns ``(timestamps, connection_ids)`` sorted by time.  ``horizon``
    truncates packets beyond the observation window (TCPLIB/EXP connections
    "perhaps [have] different durations" than their traced counterparts).

    All connections' draws come from a *single* batched pass over one
    shared stream — bit-identical to the historical per-connection loop
    (``repro.kernels.reference.synthesize_packet_arrivals_loop``), because
    ``Generator.random``/``exponential`` produce the same bit stream
    whether drawn in per-connection blocks or in one call, and the
    per-connection ``cumsum``/``sort`` assembly uses the bit-exact
    segmented kernels of :mod:`repro.kernels`.
    """
    rng = as_rng(seed)
    if not specs:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    counts = np.array([spec.n_packets for spec in specs], dtype=np.int64)
    starts = np.array([spec.start_time for spec in specs], dtype=float)
    total = int(counts.sum())
    if scheme is Scheme.VAR_EXP:
        for spec in specs:
            if spec.n_packets == 0:
                continue  # zero-packet connections never sampled a duration
            if spec.duration is None:
                raise ValueError(
                    "VAR-EXP requires the connection's traced duration"
                )
            require_positive(spec.duration, "duration")
        durations = np.array(
            [spec.duration if spec.duration is not None else 1.0
             for spec in specs],
            dtype=float,
        )
        # uniform(0, d, n) == d * random(n) bit for bit
        raw = np.repeat(durations, counts) * rng.random(total)
        times = np.repeat(starts, counts) + grouped_sort(raw, counts)
    else:
        if scheme is Scheme.TCPLIB:
            gaps = tcplib.telnet_packet_interarrival().ppf(rng.random(total))
        elif scheme is Scheme.EXP:
            gaps = rng.exponential(EXP_MEAN_SECONDS, total)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        times = grouped_cumsum(gaps, counts, offsets=starts)
    ids = np.repeat(np.arange(len(specs), dtype=np.int64), counts)
    if horizon is not None:
        keep = times < horizon
        times, ids = times[keep], ids[keep]
    order = np.argsort(times, kind="stable")
    return times[order], ids[order]


@dataclass(frozen=True)
class MultiplexResult:
    """Aggregate 1 s-bin count statistics of the multiplexing experiment."""

    scheme: Scheme
    counts: CountProcess

    @property
    def mean(self) -> float:
        return self.counts.mean

    @property
    def variance(self) -> float:
        return self.counts.variance


def _connection_stream(dist, duration: float, rng) -> np.ndarray:
    """One always-on source's packet times: draw gap blocks past the horizon."""
    t = 0.0
    gaps_needed = max(16, int(duration / 0.5))
    conn_times = []
    while t < duration:
        gaps = dist.sample(gaps_needed, seed=rng)
        cum = t + np.cumsum(gaps)
        conn_times.append(cum)
        t = float(cum[-1])
    ct = np.concatenate(conn_times)
    return ct[ct < duration]


def _connection_stream_group(dist, duration: float, rngs) -> list[np.ndarray]:
    """Pool worker: synthesize a contiguous group of connections."""
    return [_connection_stream(dist, duration, rng) for rng in rngs]


def multiplexed_telnet(
    n_connections: int = 100,
    duration: float = 600.0,
    scheme: Scheme = Scheme.TCPLIB,
    bin_width: float = 1.0,
    seed: SeedLike = None,
    jobs: int = 1,
) -> MultiplexResult:
    """Section IV's multiplexing experiment.

    ``n_connections`` sources are active for the whole ``duration``; each
    emits packets with i.i.d. interarrivals under ``scheme`` (packet streams
    are truncated at the horizon rather than sized in advance).  The paper's
    result: mean ~92 packets/s for both schemes, variance ~240 (Tcplib)
    vs ~97 (exponential) — "even a high degree of statistical multiplexing
    failed to smooth away the difference."

    ``jobs > 1`` fans the independent per-connection streams over a process
    pool; every connection owns a spawned child generator, so the result is
    bit-identical for any ``jobs``.
    """
    if n_connections < 1:
        raise ValueError("n_connections must be >= 1")
    require_positive(duration, "duration")
    if scheme is Scheme.VAR_EXP:
        raise ValueError("the multiplexing experiment is defined for TCPLIB/EXP")
    dist = (
        tcplib.telnet_packet_interarrival()
        if scheme is Scheme.TCPLIB
        else Exponential(EXP_MEAN_SECONDS)
    )
    rngs = spawn_rngs(seed, n_connections)
    if jobs == 1:
        times = _connection_stream_group(dist, duration, rngs)
    else:
        groups = [
            g for g in np.array_split(np.arange(n_connections), jobs) if g.size
        ]
        outcomes = pool_map(
            _connection_stream_group,
            [(dist, duration, [rngs[i] for i in g]) for g in groups],
            jobs,
        )
        times = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
            times.extend(outcome)
    all_times = np.concatenate(times)
    counts = CountProcess.from_times(all_times, bin_width, start=0.0, end=duration)
    return MultiplexResult(scheme=scheme, counts=counts)


def clustering_score(times: np.ndarray, window: float = 1.0) -> float:
    """Fraction of interarrivals shorter than ``window`` seconds.

    A scalar summary of the visual clustering in Fig. 4's dot plots: Tcplib
    connections pack far more of their gaps below 1 s than exponential
    connections of the same mean rate.
    """
    t = np.sort(np.asarray(times, dtype=float))
    if t.size < 2:
        raise ValueError("need at least 2 packet times")
    gaps = np.diff(t)
    return float(np.mean(gaps < window))
