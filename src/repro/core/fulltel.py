"""FULL-TEL: the paper's complete TELNET originator source model (Section V).

"Putting all of this together, we have a complete model for TELNET traffic,
FULL-TEL, parameterized only by the TELNET connection arrival rate.
FULL-TEL uses Poisson connection arrivals, log-normal connection sizes (in
packets), and Tcplib packet interarrivals."

The model reproduces traced TELNET burstiness across time scales (Fig. 7),
"except to be a bit burstier on time scales above 10 s."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson
from repro.core.responder import TelnetResponderModel
from repro.distributions import tcplib
from repro.selfsim.counts import CountProcess
from repro.traces.trace import PacketTrace
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

#: Cap on packets per connection when synthesizing finite traces: the
#: log2-normal size law has enormous upper quantiles (log2-sd 2.24), and a
#: single 10^6-packet draw would dominate any two-hour synthesis the way a
#: month-long trace's largest connection would — which is precisely what the
#: paper trims away by fitting sizes to a two-hour trace.
DEFAULT_MAX_PACKETS = 100_000


@dataclass(frozen=True)
class FullTelModel:
    """The FULL-TEL source model.

    Parameters
    ----------
    connections_per_hour:
        The model's single parameter.  The paper's Fig. 7 experiment uses
        273 connections per 2 hours = 136.5 per hour.
    max_packets:
        Truncation of the per-connection packet count (see
        :data:`DEFAULT_MAX_PACKETS`).
    """

    connections_per_hour: float
    max_packets: int = DEFAULT_MAX_PACKETS

    def __post_init__(self):
        require_positive(self.connections_per_hour, "connections_per_hour")
        if self.max_packets < 1:
            raise ValueError("max_packets must be >= 1")

    # ------------------------------------------------------------------
    def sample_connection_sizes(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Packets per connection: log2-normal, rounded to >= 1, capped."""
        raw = tcplib.telnet_connection_packets().sample(n, seed=seed)
        return np.clip(np.round(raw), 1, self.max_packets).astype(np.int64)

    def synthesize(
        self,
        duration: float,
        seed: SeedLike = None,
        trim_warmup: float = 0.0,
        include_responder: bool = False,
    ) -> PacketTrace:
        """Generate a TELNET packet trace.

        ``trim_warmup`` drops the first seconds of the synthesized trace
        (connections started but packets not yet flowing at steady state):
        the paper trims its 2 h syntheses to their second hour "because such
        traces start off with no traffic and build up to a steady-state".
        Packets are truncated at ``duration``.

        ``include_responder=True`` adds the responder side (echoes +
        command-output bursts) via :class:`TelnetResponderModel` — the
        extension the paper lists as remaining work.  Responder packets
        carry ``Direction.RESPONDER`` and realistic sizes.
        """
        require_positive(duration, "duration")
        if trim_warmup < 0 or trim_warmup >= duration:
            raise ValueError("trim_warmup must lie in [0, duration)")
        rng = as_rng(seed)
        rate_per_sec = self.connections_per_hour / 3600.0
        starts = homogeneous_poisson(rate_per_sec, duration, seed=rng)
        sizes = self.sample_connection_sizes(starts.size, seed=rng)
        interarrival = tcplib.telnet_packet_interarrival()
        responder = TelnetResponderModel() if include_responder else None

        times_parts, id_parts, dir_parts, size_parts, ud_parts = \
            [], [], [], [], []
        for cid, (t0, n_pkts) in enumerate(zip(starts, sizes)):
            gaps = interarrival.sample(int(n_pkts), seed=rng)
            t = t0 + np.cumsum(gaps)
            t = t[t < duration]
            if t.size == 0:
                continue
            times_parts.append(t)
            id_parts.append(np.full(t.size, cid, dtype=np.int64))
            dir_parts.append(np.zeros(t.size, dtype=np.int8))
            # keystrokes, Nagle coalescing, line mode: ~1.6 bytes/packet
            pkt_bytes = np.round(
                tcplib.telnet_packet_bytes().sample(t.size, seed=rng)
            ).astype(np.int64)
            size_parts.append(np.maximum(pkt_bytes, 1))
            ud_parts.append(np.ones(t.size, dtype=bool))
            if responder is not None:
                rt, rs = responder.respond(t, seed=rng)
                keep_r = rt < duration
                rt, rs = rt[keep_r], rs[keep_r]
                if rt.size:
                    times_parts.append(rt)
                    id_parts.append(np.full(rt.size, cid, dtype=np.int64))
                    dir_parts.append(np.ones(rt.size, dtype=np.int8))
                    size_parts.append(rs)
                    ud_parts.append(np.ones(rt.size, dtype=bool))
                    # Originator pure acks for the bulk output (delayed-ack
                    # style: one ack per two data packets).  These are the
                    # packets Section IV's analysis filters out ("except
                    # those consisting of no user data ('pure ack')").
                    bulk = rt[rs > responder.echo_bytes]
                    acks = bulk[::2] + 0.02
                    acks = acks[acks < duration]
                    if acks.size:
                        times_parts.append(acks)
                        id_parts.append(np.full(acks.size, cid, dtype=np.int64))
                        dir_parts.append(np.zeros(acks.size, dtype=np.int8))
                        size_parts.append(np.zeros(acks.size, dtype=np.int64))
                        ud_parts.append(np.zeros(acks.size, dtype=bool))

        if times_parts:
            timestamps = np.concatenate(times_parts)
            conn_ids = np.concatenate(id_parts)
            directions = np.concatenate(dir_parts)
            pkt_sizes = np.concatenate(size_parts)
            user_data = np.concatenate(ud_parts)
        else:
            timestamps = np.zeros(0)
            conn_ids = np.zeros(0, dtype=np.int64)
            directions = np.zeros(0, dtype=np.int8)
            pkt_sizes = np.zeros(0, dtype=np.int64)
            user_data = np.zeros(0, dtype=bool)

        keep = timestamps >= trim_warmup
        return PacketTrace(
            name=f"FULL-TEL({self.connections_per_hour}/h)",
            timestamps=timestamps[keep] - trim_warmup,
            protocols=np.full(int(keep.sum()), "TELNET", dtype=object),
            connection_ids=conn_ids[keep],
            directions=directions[keep],
            sizes=pkt_sizes[keep],
            user_data=user_data[keep],
        )

    def count_process(
        self,
        duration: float,
        bin_width: float = 0.1,
        seed: SeedLike = None,
        trim_warmup: float = 0.0,
    ) -> CountProcess:
        """Synthesize and bin in one call (the Fig. 7 workflow)."""
        trace = self.synthesize(duration, seed=seed, trim_warmup=trim_warmup)
        return CountProcess.from_times(
            trace.timestamps, bin_width, start=0.0, end=duration - trim_warmup
        )
