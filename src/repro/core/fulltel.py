"""FULL-TEL: the paper's complete TELNET originator source model (Section V).

"Putting all of this together, we have a complete model for TELNET traffic,
FULL-TEL, parameterized only by the TELNET connection arrival rate.
FULL-TEL uses Poisson connection arrivals, log-normal connection sizes (in
packets), and Tcplib packet interarrivals."

The model reproduces traced TELNET burstiness across time scales (Fig. 7),
"except to be a bit burstier on time scales above 10 s."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson
from repro.core.responder import TelnetResponderModel
from repro.distributions import tcplib
from repro.utils.pool import pool_map
from repro.kernels.segments import grouped_cumsum
from repro.selfsim.counts import CountProcess
from repro.traces.trace import PacketTrace
from repro.utils.rng import SeedLike, as_rng, spawn_rngs
from repro.utils.validation import require_positive

#: Cap on packets per connection when synthesizing finite traces: the
#: log2-normal size law has enormous upper quantiles (log2-sd 2.24), and a
#: single 10^6-packet draw would dominate any two-hour synthesis the way a
#: month-long trace's largest connection would — which is precisely what the
#: paper trims away by fitting sizes to a two-hour trace.
DEFAULT_MAX_PACKETS = 100_000


@dataclass(frozen=True)
class FullTelModel:
    """The FULL-TEL source model.

    Parameters
    ----------
    connections_per_hour:
        The model's single parameter.  The paper's Fig. 7 experiment uses
        273 connections per 2 hours = 136.5 per hour.
    max_packets:
        Truncation of the per-connection packet count (see
        :data:`DEFAULT_MAX_PACKETS`).
    """

    connections_per_hour: float
    max_packets: int = DEFAULT_MAX_PACKETS

    def __post_init__(self):
        require_positive(self.connections_per_hour, "connections_per_hour")
        if self.max_packets < 1:
            raise ValueError("max_packets must be >= 1")

    # ------------------------------------------------------------------
    def sample_connection_sizes(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Packets per connection: log2-normal, rounded to >= 1, capped."""
        raw = tcplib.telnet_connection_packets().sample(n, seed=seed)
        return np.clip(np.round(raw), 1, self.max_packets).astype(np.int64)

    def synthesize(
        self,
        duration: float,
        seed: SeedLike = None,
        trim_warmup: float = 0.0,
        include_responder: bool = False,
        jobs: int = 1,
        batch: bool = True,
    ) -> PacketTrace:
        """Generate a TELNET packet trace.

        ``trim_warmup`` drops the first seconds of the synthesized trace
        (connections started but packets not yet flowing at steady state):
        the paper trims its 2 h syntheses to their second hour "because such
        traces start off with no traffic and build up to a steady-state".
        Packets are truncated at ``duration``.

        ``include_responder=True`` adds the responder side (echoes +
        command-output bursts) via :class:`TelnetResponderModel` — the
        extension the paper lists as remaining work.  Responder packets
        carry ``Direction.RESPONDER`` and realistic sizes.

        RNG-stream contract: after the connection starts and sizes are
        drawn from the seed stream, every connection owns an independent
        child generator (``spawn_rngs``) consuming, in order, one uniform
        per candidate packet gap and one per surviving packet's byte size
        (plus the responder draws when enabled).  This makes connections
        independent — so ``jobs > 1`` fans them over a process pool with
        bit-identical output — and lets the default ``batch=True`` path
        draw all connections' gaps and sizes in single vectorized passes
        that are bit-identical to the per-connection loop (``batch=False``,
        also used by the responder path, which stays per-connection).
        """
        require_positive(duration, "duration")
        if trim_warmup < 0 or trim_warmup >= duration:
            raise ValueError("trim_warmup must lie in [0, duration)")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        rng = as_rng(seed)
        rate_per_sec = self.connections_per_hour / 3600.0
        starts = homogeneous_poisson(rate_per_sec, duration, seed=rng)
        sizes = self.sample_connection_sizes(starts.size, seed=rng)
        conn_rngs = spawn_rngs(rng, starts.size)

        if jobs == 1 or starts.size <= 1:
            parts = _connection_group(
                self, 0, starts, sizes, conn_rngs, duration,
                include_responder, batch,
            )
        else:
            groups = [
                g for g in np.array_split(np.arange(starts.size), jobs)
                if g.size
            ]
            tasks = [
                (self, int(g[0]), starts[g], sizes[g],
                 [conn_rngs[i] for i in g], duration,
                 include_responder, batch)
                for g in groups
            ]
            outcomes = pool_map(_connection_group, tasks, jobs)
            merged = []
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    raise outcome
                merged.append(outcome)
            parts = tuple(
                np.concatenate([m[i] for m in merged]) for i in range(5)
            )

        timestamps, conn_ids, directions, pkt_sizes, user_data = parts
        keep = timestamps >= trim_warmup
        return PacketTrace(
            name=f"FULL-TEL({self.connections_per_hour}/h)",
            timestamps=timestamps[keep] - trim_warmup,
            protocols=np.full(int(keep.sum()), "TELNET", dtype=object),
            connection_ids=conn_ids[keep],
            directions=directions[keep],
            sizes=pkt_sizes[keep],
            user_data=user_data[keep],
        )

    def count_process(
        self,
        duration: float,
        bin_width: float = 0.1,
        seed: SeedLike = None,
        trim_warmup: float = 0.0,
        jobs: int = 1,
    ) -> CountProcess:
        """Synthesize and bin in one call (the Fig. 7 workflow)."""
        trace = self.synthesize(duration, seed=seed, trim_warmup=trim_warmup,
                                jobs=jobs)
        return CountProcess.from_times(
            trace.timestamps, bin_width, start=0.0, end=duration - trim_warmup
        )


def _empty_parts():
    return (np.zeros(0), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int8), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=bool))


def _connection_group(model, cid0, starts, sizes, rngs, duration,
                      include_responder, batch):
    """Pool worker: synthesize connections ``cid0 .. cid0+len(starts)-1``.

    Returns the five conn-major packet arrays
    ``(timestamps, conn_ids, directions, sizes, user_data)``.
    """
    if include_responder or not batch:
        return _connection_group_loop(model, cid0, starts, sizes, rngs,
                                      duration, include_responder)
    return _connection_group_batched(model, cid0, starts, sizes, rngs,
                                     duration)


def _connection_group_batched(model, cid0, starts, sizes, rngs, duration):
    """All connections' draws in two vectorized passes.

    Bit-identical to :func:`_connection_group_loop` (without responder):
    per-connection uniforms are drawn from each child stream exactly as the
    loop would (``random(n)`` then ``random(n_surviving)``), concatenated,
    and pushed through the distributions' ppf in one call; the
    per-connection ``cumsum`` uses the bit-exact segmented kernel.
    """
    interarrival = tcplib.telnet_packet_interarrival()
    bytes_dist = tcplib.telnet_packet_bytes()
    counts = np.asarray(sizes, dtype=np.int64)
    n_conns = counts.size
    if n_conns == 0:
        return _empty_parts()
    gap_u = [rng.random(int(n)) for rng, n in zip(rngs, counts)]
    gaps = interarrival.ppf(
        np.concatenate(gap_u) if gap_u else np.zeros(0)
    )
    times = grouped_cumsum(gaps, counts,
                           offsets=np.asarray(starts, dtype=float))
    conn_ids = np.repeat(cid0 + np.arange(n_conns, dtype=np.int64), counts)
    keep = times < duration
    seg = np.repeat(np.arange(n_conns), counts)
    kept_counts = np.bincount(seg[keep], minlength=n_conns)
    byte_u = [rng.random(int(k)) for rng, k in zip(rngs, kept_counts)]
    raw_bytes = bytes_dist.ppf(
        np.concatenate(byte_u) if byte_u else np.zeros(0)
    )
    # keystrokes, Nagle coalescing, line mode: ~1.6 bytes/packet
    pkt_sizes = np.maximum(np.round(raw_bytes).astype(np.int64), 1)
    timestamps = times[keep]
    conn_ids = conn_ids[keep]
    return (timestamps, conn_ids, np.zeros(timestamps.size, dtype=np.int8),
            pkt_sizes, np.ones(timestamps.size, dtype=bool))


def _connection_group_loop(model, cid0, starts, sizes, rngs, duration,
                           include_responder):
    """Per-connection reference path (same child-stream contract); carries
    the responder branch, whose draws are data-dependent."""
    interarrival = tcplib.telnet_packet_interarrival()
    bytes_dist = tcplib.telnet_packet_bytes()
    responder = TelnetResponderModel() if include_responder else None
    times_parts, id_parts, dir_parts, size_parts, ud_parts = \
        [], [], [], [], []
    for k, (t0, n_pkts) in enumerate(zip(starts, sizes)):
        rng = rngs[k]
        cid = cid0 + k
        gaps = interarrival.sample(int(n_pkts), seed=rng)
        t = t0 + np.cumsum(gaps)
        t = t[t < duration]
        if t.size == 0:
            continue
        times_parts.append(t)
        id_parts.append(np.full(t.size, cid, dtype=np.int64))
        dir_parts.append(np.zeros(t.size, dtype=np.int8))
        # keystrokes, Nagle coalescing, line mode: ~1.6 bytes/packet
        pkt_bytes = np.round(
            bytes_dist.sample(t.size, seed=rng)
        ).astype(np.int64)
        size_parts.append(np.maximum(pkt_bytes, 1))
        ud_parts.append(np.ones(t.size, dtype=bool))
        if responder is not None:
            rt, rs = responder.respond(t, seed=rng)
            keep_r = rt < duration
            rt, rs = rt[keep_r], rs[keep_r]
            if rt.size:
                times_parts.append(rt)
                id_parts.append(np.full(rt.size, cid, dtype=np.int64))
                dir_parts.append(np.ones(rt.size, dtype=np.int8))
                size_parts.append(rs)
                ud_parts.append(np.ones(rt.size, dtype=bool))
                # Originator pure acks for the bulk output (delayed-ack
                # style: one ack per two data packets).  These are the
                # packets Section IV's analysis filters out ("except
                # those consisting of no user data ('pure ack')").
                bulk = rt[rs > responder.echo_bytes]
                acks = bulk[::2] + 0.02
                acks = acks[acks < duration]
                if acks.size:
                    times_parts.append(acks)
                    id_parts.append(np.full(acks.size, cid, dtype=np.int64))
                    dir_parts.append(np.zeros(acks.size, dtype=np.int8))
                    size_parts.append(np.zeros(acks.size, dtype=np.int64))
                    ud_parts.append(np.zeros(acks.size, dtype=bool))
    if not times_parts:
        return _empty_parts()
    return (np.concatenate(times_parts), np.concatenate(id_parts),
            np.concatenate(dir_parts), np.concatenate(size_parts),
            np.concatenate(ud_parts))
