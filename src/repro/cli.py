"""Command-line entry point: run any experiment from the registry.

Usage::

    python -m repro list                  # show available experiments
    python -m repro run fig09             # regenerate one table/figure
    python -m repro run fig02 --seed 7
    python -m repro run all               # the whole battery
    python -m repro run all --jobs 4      # ... on a process pool
    python -m repro run all --json        # machine-readable metrics
    python -m repro run all --out bench/  # write BENCH_*.json files
    python -m repro cache clear           # drop the on-disk result cache

    # out-of-core streaming analytics (repro.stream):
    python -m repro stream synth big.txt.gz --packets 2000000 --seed 1
    python -m repro stream scan big.txt.gz --jobs 4 --bin-width 0.01
    python -m repro stream scan day1.txt day2.txt.gz   # merged in order

    # flow-level network simulation (repro.flowsim):
    python -m repro flowsim run --topology line --nodes 10
    python -m repro flowsim run --workload both --json --out bench/

    # always-on online estimation (repro.monitor):
    python -m repro monitor run --source pareto --window 60
    python -m repro monitor run --source hurst-step --duration 600 --json

    # batched superposition phase diagram (repro.kernels.superpose):
    python -m repro superpose run --replications 192 --json
    python -m repro superpose run --battery-sources 100000 --out bench/

    # in-network conditioning & policing detection (repro.shaping):
    python -m repro shaping run --json --out bench/
    python -m repro shaping run --rate-factors 0.5 --burst-seconds 0.25,1
    python -m repro replay loopback --packets 50000 --police-rate 30000

    # live traffic replay & load generation (repro.replay):
    python -m repro replay loopback --packets 100000 --validate
    python -m repro replay loopback --trace big.txt --speed 60 --flows 4
    python -m repro replay recv --port 9900 --capture cap.txt
    python -m repro replay send big.txt --port 9900 --speed 0
    python -m repro replay validate big.txt cap.txt

``-v`` on any subcommand turns on structured progress logging (per-
experiment start/finish with wall time and cache hit/miss, per-chunk scan
throughput); the default output stays byte-identical to the quiet path.

Each experiment prints the rows/series the paper's table or figure reports
(see EXPERIMENTS.md for the paper-vs-measured record).  Runs go through
:mod:`repro.engine`: results are cached on disk keyed on (experiment, seed,
source digest), so an unchanged experiment replays instantly; the per-
experiment footer always shows *compute* time, making a warm replay
byte-identical to the cold run that produced it.  ``--no-cache`` forces
recomputation, ``--jobs N`` spreads cache misses over N worker processes
(outputs are independent of N), and ``--spawn-seeds`` derives statistically
independent per-experiment streams from the master seed instead of handing
every experiment the same integer.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

import repro
from repro.engine import ResultCache, run_experiments, write_bench_files
from repro.experiments import REGISTRY


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_float_list(text: str) -> tuple[float, ...]:
    try:
        values = tuple(float(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None
    if not values or any(v <= 0 for v in values):
        raise argparse.ArgumentTypeError(
            f"expected positive comma-separated numbers, got {text!r}"
        )
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of Paxson & Floyd (1994).",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="store_true",
                        help="structured progress logging on stderr "
                             "(off by default)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments", parents=[common])
    cache = sub.add_parser("cache", help="manage the on-disk result cache",
                           parents=[common])
    cache.add_argument("action", choices=["clear", "dir"],
                       help="clear entries or print the cache directory")
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    run = sub.add_parser("run", help="run one experiment (or 'all')",
                         parents=[common])
    run.add_argument("experiment", help="registry name, e.g. fig09, or 'all'")
    run.add_argument("--seed", type=int, default=0, help="master RNG seed")
    run.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="worker processes for cache misses (default 1)")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print BENCH-shaped JSON metrics instead of tables")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything; skip cache reads and writes")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="write per-experiment BENCH_*.json files into DIR")
    run.add_argument("--cache-dir", default=None,
                     help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    run.add_argument("--spawn-seeds", action="store_true",
                     help="independent per-experiment streams spawned from "
                          "the master seed (changes outputs vs. the legacy "
                          "same-integer-everywhere seeding)")

    stream = sub.add_parser(
        "stream", help="out-of-core streaming trace analytics"
    )
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)
    scan = stream_sub.add_parser(
        "scan", help="sharded bounded-memory scan of a v1 trace file",
        parents=[common],
    )
    scan.add_argument("paths", nargs="+", metavar="path",
                      help="trace file(s) (.gz transparently handled); "
                           "several files are scanned separately and their "
                           "sketches merged in argument order")
    scan.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="worker processes for chunk scans (default 1; "
                           "results are independent of N)")
    scan.add_argument("--bin-width", type=_positive_float, default=0.01,
                      metavar="SECONDS",
                      help="count-process bin width (default 0.01s, the "
                           "paper's aggregate-traffic resolution)")
    scan.add_argument("--chunk-mb", type=_positive_int, default=32,
                      metavar="MB", help="target shard chunk size (default 32)")
    scan.add_argument("--quantile-k", type=_positive_int, default=1024,
                      help="quantile sketch capacity (default 1024)")
    scan.add_argument("--tail-k", type=_positive_int, default=4096,
                      help="tail reservoir capacity (default 4096)")
    scan.add_argument("--tail-fraction", type=_positive_float, default=0.03,
                      help="upper tail fraction for the β fit (default 0.03)")
    scan.add_argument("--per-protocol", action="store_true",
                      help="also keep one summary per protocol")
    scan.add_argument("--json", action="store_true", dest="as_json",
                      help="print the BENCH-shaped scan metrics as JSON")
    scan.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_stream_scan.json into DIR")
    synth = stream_sub.add_parser(
        "synth", help="generate a large synthetic packet trace out-of-core",
        parents=[common],
    )
    synth.add_argument("path", help="output file (.gz compresses on the fly)")
    synth.add_argument("--packets", type=_positive_int, required=True,
                       help="number of packet records to write")
    synth.add_argument("--seed", type=int, default=0, help="master RNG seed")
    synth.add_argument("--base", default="LBL PKT-1",
                       help="Table-II recipe per window (default 'LBL PKT-1')")
    synth.add_argument("--hours", type=_positive_float, default=2.0,
                       help="nominal trace span in hours (default 2)")
    synth.add_argument("--window-hours", type=_positive_float, default=0.25,
                       help="synthesis window granularity (default 0.25)")
    synth.add_argument("--scale", type=_positive_float, default=None,
                       help="traffic intensity multiplier (default: "
                            "auto-calibrated to hit --packets)")

    flowsim = sub.add_parser(
        "flowsim", help="flow-level network simulation"
    )
    flowsim_sub = flowsim.add_subparsers(dest="flowsim_command", required=True)
    frun = flowsim_sub.add_parser(
        "run",
        help="route a synthesized workload over a topology and report "
             "per-link Hurst estimates",
        parents=[common],
    )
    frun.add_argument("--topology", choices=["line", "star", "dumbbell"],
                      default="line", help="topology family (default line)")
    frun.add_argument("--nodes", type=_positive_int, default=10, metavar="N",
                      help="principal node count (default 10)")
    frun.add_argument("--duration", type=_positive_float, default=3600.0,
                      metavar="SECONDS",
                      help="workload span in seconds (default 3600)")
    frun.add_argument("--sessions-per-hour", type=_positive_float,
                      default=4000.0, metavar="RATE",
                      help="ftp session arrival rate (default 4000)")
    frun.add_argument("--workload", choices=["ftp", "exponential", "both"],
                      default="ftp",
                      help="heavy-tailed ftp, its exponential control, or "
                           "both back to back (default ftp)")
    frun.add_argument("--model", choices=["msmo97", "csa00"],
                      default="msmo97",
                      help="TCP closure model for responsive flows "
                           "(default msmo97)")
    frun.add_argument("--discipline", choices=["fair", "fifo"],
                      default="fair",
                      help="link sharing discipline (default fair)")
    frun.add_argument("--utilization", type=_positive_float, default=0.4,
                      metavar="RHO",
                      help="per-link target utilization for capacity "
                           "calibration (default 0.4)")
    frun.add_argument("--bin-width", type=_positive_float, default=1.0,
                      metavar="SECONDS",
                      help="byte-process bin width for the Hurst battery "
                           "(default 1.0)")
    frun.add_argument("--horizon", type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="stop the simulation clock early (default: run "
                           "every flow to completion)")
    frun.add_argument("--seed", type=int, default=0, help="master RNG seed")
    frun.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="worker processes for workload synthesis "
                           "(default 1; outputs independent of N)")
    frun.add_argument("--json", action="store_true", dest="as_json",
                      help="print BENCH-shaped run metrics as JSON")
    frun.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_flowsim_run.json into DIR")

    monitor = sub.add_parser(
        "monitor", help="always-on online estimation service"
    )
    monitor_sub = monitor.add_subparsers(dest="monitor_command",
                                         required=True)
    mrun = monitor_sub.add_parser(
        "run",
        help="stream a synthetic scenario or a trace file through the "
             "sliding-window Hurst/tail/change-point monitor",
        parents=[common],
    )
    mrun.add_argument(
        "--source", default="pareto", metavar="NAME|PATH",
        help="scenario (poisson, pareto, hurst-step, markov-onoff, "
             "diurnal-ramp) or a v1/gz trace file path (default pareto)")
    mrun.add_argument("--window", type=_positive_float, default=60.0,
                      metavar="SECONDS",
                      help="sliding-window span (default 60)")
    mrun.add_argument("--bin-width", type=_positive_float, default=0.05,
                      metavar="SECONDS",
                      help="count-ladder bin width (default 0.05)")
    mrun.add_argument("--snapshot-every", type=_positive_float, default=2.0,
                      metavar="SECONDS",
                      help="stream seconds between snapshots (default 2)")
    mrun.add_argument("--rate-tick", type=_positive_float, default=0.5,
                      metavar="SECONDS",
                      help="rate-series sample spacing for the "
                           "change-point detectors (default 0.5)")
    mrun.add_argument("--duration", type=_positive_float, default=400.0,
                      metavar="SECONDS",
                      help="synthetic scenario span (default 400; ignored "
                           "for trace files)")
    mrun.add_argument("--rate", type=_positive_float, default=50.0,
                      metavar="EVENTS_PER_S",
                      help="synthetic scenario mean rate (default 50)")
    mrun.add_argument("--batch-seconds", type=_positive_float, default=1.0,
                      metavar="SECONDS",
                      help="scenario feed granularity, one observe() per "
                           "batch (default 1)")
    mrun.add_argument("--seed", type=int, default=0,
                      help="scenario RNG seed")
    mrun.add_argument("--json", action="store_true", dest="as_json",
                      help="print BENCH-shaped monitor metrics as JSON")
    mrun.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_monitor.json into DIR")

    superpose = sub.add_parser(
        "superpose", help="batched ON/OFF superposition phase diagram"
    )
    superpose_sub = superpose.add_subparsers(dest="superpose_command",
                                             required=True)
    srun = superpose_sub.add_parser(
        "run",
        help="sweep the Gaussian-vs-stable phase diagram over source "
             "count x connection-growth cells and run the Hurst battery",
        parents=[common],
    )
    srun.add_argument("--replications", type=_positive_int, default=192,
                      metavar="N",
                      help="independent aggregates per cell (default 192)")
    srun.add_argument("--shape", type=_positive_float, default=1.2,
                      metavar="BETA",
                      help="Pareto shape of the ON/OFF period laws "
                           "(default 1.2)")
    srun.add_argument("--battery-sources", type=_positive_int,
                      default=50_000, metavar="N",
                      help="sources in the Hurst-battery aggregate "
                           "(default 50000)")
    srun.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="worker processes for the shared-memory fan-out "
                           "(default 1; outputs independent of N)")
    srun.add_argument("--chunk", type=_positive_int, default=8192,
                      metavar="N",
                      help="sources per batched chunk (default 8192)")
    srun.add_argument("--seed", type=int, default=0, help="RNG seed")
    srun.add_argument("--json", action="store_true", dest="as_json",
                      help="print the phase-diagram summary as JSON")
    srun.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_superpose_run.json into DIR")

    shaping = sub.add_parser(
        "shaping",
        help="in-network policers/shapers & closed-loop policing detection",
    )
    shaping_sub = shaping.add_subparsers(dest="shaping_command",
                                         required=True)
    shrun = shaping_sub.add_parser(
        "run",
        help="synthesize -> police at a known rate -> detect from the "
             "trace alone; report rate recovery over a rate x burst grid "
             "plus the shaping Hurst-impact battery",
        parents=[common],
    )
    shrun.add_argument("--model", default="ftp",
                       help="synthesis model (default ftp)")
    shrun.add_argument("--packets", type=_positive_int, default=60_000,
                       metavar="N",
                       help="synthesized packets (default 60000)")
    shrun.add_argument("--source-rate", type=_positive_float, default=240.0,
                       metavar="X",
                       help="source intensity (sessions/hour for ftp; "
                            "default 240 — dense enough to police)")
    shrun.add_argument("--rate-factors", type=_positive_float_list,
                       default=(0.3, 0.5, 0.8), metavar="F,F,...",
                       help="policed rate as fractions of the mean byte "
                            "rate (default 0.3,0.5,0.8)")
    shrun.add_argument("--burst-seconds", type=_positive_float_list,
                       default=(0.25, 1.0, 4.0), metavar="S,S,...",
                       help="bucket depths in seconds of credit at the "
                            "policed rate (default 0.25,1.0,4.0)")
    shrun.add_argument("--shaper-rate-factors", type=_positive_float_list,
                       default=(1.0, 1.5, 3.0), metavar="F,F,...",
                       help="lossless shaper rates for the Hurst battery, "
                            "as mean-rate factors >= 1 (default 1.0,1.5,3.0)")
    shrun.add_argument("--seed", type=int, default=7, help="RNG seed")
    shrun.add_argument("--json", action="store_true", dest="as_json",
                       help="print the closed-loop report as JSON")
    shrun.add_argument("--out", default=None, metavar="DIR",
                       help="write BENCH_shaping_run.json into DIR")

    replay = sub.add_parser(
        "replay", help="live traffic replay & load generation"
    )
    replay_sub = replay.add_subparsers(dest="replay_command", required=True)

    pacing_common = argparse.ArgumentParser(add_help=False)
    pacing_common.add_argument(
        "--speed", type=_nonnegative_float, default=0.0, metavar="X",
        help="time-compression factor: 1 is real time, 60 is a minute per "
             "second, 0 (default) is as fast as possible")
    pacing_common.add_argument(
        "--rate-cap", type=_positive_float, default=None, metavar="PPS",
        help="token-bucket packet-rate ceiling (default: uncapped)")
    pacing_common.add_argument(
        "--bucket-depth", type=_positive_float, default=64.0, metavar="PKTS",
        help="token-bucket burst allowance in packets (default 64)")
    pacing_common.add_argument(
        "--flows", type=_positive_int, default=1, metavar="N",
        help="concurrent multiplexed flows, records routed by "
             "connection id (default 1)")
    pacing_common.add_argument(
        "--transport", choices=["tcp", "udp"], default="tcp",
        help="wire transport (default tcp)")

    source_common = argparse.ArgumentParser(add_help=False)
    source_common.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a v1/gz packet trace file (out-of-core)")
    source_common.add_argument(
        "--packets", type=_positive_int, default=None, metavar="N",
        help="synthesize N packets live instead of reading a trace")
    source_common.add_argument(
        "--model", default="fulltel",
        help="synthesis model for --packets: fulltel, ftp, poisson, "
             "pareto, or mix (default fulltel)")
    source_common.add_argument(
        "--seed", type=int, default=0, help="synthesis RNG seed")
    source_common.add_argument(
        "--rate", type=_positive_float, default=None,
        help="synthesis arrival rate override (model-dependent)")

    collector_common = argparse.ArgumentParser(add_help=False)
    collector_common.add_argument(
        "--policy", choices=["block", "drop"], default="block",
        help="backpressure policy when the capture queue fills: block the "
             "sender (lossless, default) or drop records (lossy, counted)")
    collector_common.add_argument(
        "--queue-depth", type=_positive_int, default=256, metavar="BATCHES",
        help="bounded capture-queue depth (default 256)")

    loop = replay_sub.add_parser(
        "loopback",
        help="send through localhost and capture on the same process",
        parents=[common, pacing_common, source_common, collector_common],
    )
    loop.add_argument("--capture", default=None, metavar="PATH",
                      help="capture file (default: temp file, deleted)")
    loop.add_argument("--validate", action="store_true",
                      help="run the closed-loop statistical battery "
                           "(Poisson sessions, Pareto tail, variance-time) "
                           "on source vs. capture")
    loop.add_argument("--json", action="store_true", dest="as_json",
                      help="print BENCH-shaped replay metrics as JSON")
    loop.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_replay.json into DIR")
    loop.add_argument("--police-rate", type=_positive_float, default=None,
                      metavar="BPS",
                      help="in-path token-bucket policer: byte rate; "
                           "non-conforming records are dropped before "
                           "they reach the wire")
    loop.add_argument("--police-burst", type=_positive_float, default=None,
                      metavar="BYTES",
                      help="policer bucket depth in bytes "
                           "(default: 0.25s of credit at --police-rate)")
    loop.add_argument("--shape-rate", type=_positive_float, default=None,
                      metavar="BPS",
                      help="in-path leaky-bucket shaper: byte rate; "
                           "record timestamps are re-paced losslessly")
    loop.add_argument("--shape-burst", type=_positive_float, default=None,
                      metavar="BYTES",
                      help="shaper bucket depth in bytes "
                           "(default: 0.25s of credit at --shape-rate)")

    send = replay_sub.add_parser(
        "send", help="replay a source to a remote collector",
        parents=[common, pacing_common, source_common],
    )
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument("--port", type=_positive_int, required=True)
    send.add_argument("--json", action="store_true", dest="as_json",
                      help="print per-flow send metrics as JSON")

    recv = replay_sub.add_parser(
        "recv", help="collect replayed traffic into a capture file",
        parents=[common, collector_common],
    )
    recv.add_argument("--host", default="127.0.0.1")
    recv.add_argument("--port", type=_positive_int, default=0,
                      help="listen port (default: ephemeral, printed)")
    recv.add_argument("--transport", choices=["tcp", "udp"], default="tcp")
    recv.add_argument("--capture", required=True, metavar="PATH",
                      help="capture file to write")
    recv.add_argument("--json", action="store_true", dest="as_json",
                      help="print collector metrics as JSON")

    val = replay_sub.add_parser(
        "validate",
        help="statistically compare a capture against its source trace",
        parents=[common],
    )
    val.add_argument("source", help="source trace file")
    val.add_argument("capture", help="capture file from a replay run")
    val.add_argument("--json", action="store_true", dest="as_json",
                     help="print the validation report as JSON")

    scenario = sub.add_parser(
        "scenario", help="declarative TOML scenario specs"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)
    scrun = scenario_sub.add_parser(
        "run", help="execute scenario spec file(s) through the cached engine",
        parents=[common],
    )
    scrun.add_argument("specs", nargs="+", metavar="spec.toml",
                       help="scenario spec file(s), executed in order")
    scrun.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="shard workers (default 1; sketch-merge algebra "
                            "keeps results independent of N)")
    scrun.add_argument("--seed", type=int, default=None,
                       help="override the spec's [scenario].seed")
    scrun.add_argument("--json", action="store_true", dest="as_json",
                       help="print BENCH-shaped scenario payloads as JSON")
    scrun.add_argument("--out", default=None, metavar="DIR",
                       help="write per-scenario BENCH_scenario_*.json into DIR")
    scrun.add_argument("--no-cache", action="store_true",
                       help="recompute; skip cache reads and writes")
    scrun.add_argument("--cache-dir", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    scval = scenario_sub.add_parser(
        "validate", help="strictly resolve spec file(s); print normalized form",
        parents=[common],
    )
    scval.add_argument("specs", nargs="+", metavar="spec.toml",
                       help="scenario spec file(s) to validate")
    return parser


def run_experiment(name: str, seed: int) -> int:
    """Back-compat single-experiment entry point (serial, uncached)."""
    if name not in REGISTRY:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    report = run_experiments([name], master_seed=seed, use_cache=False,
                             derive_seeds=False)
    _print_runs(report)
    return 0 if report.ok else 1


def _print_runs(report, *, headers: bool = False) -> None:
    for run in report.runs:
        if headers:
            print(f"=== {run.name} ===")
        if run.ok:
            print(run.rendered)
            print(f"[{run.name}: {run.metrics.compute_time_s:.1f}s]")
        else:
            print(f"{run.name} failed: {run.metrics.error}", file=sys.stderr)
        if headers:
            print()


def _run_command(args) -> int:
    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; try 'list'", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    report = run_experiments(
        names,
        master_seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        use_cache=not args.no_cache,
        derive_seeds=args.spawn_seeds,
    )
    summary = report.summary()
    if args.out:
        write_bench_files(summary, args.out)
    if args.as_json:
        print(json.dumps(summary, indent=2))
        for run in report.runs:
            if not run.ok:
                print(f"{run.name} failed: {run.metrics.error}",
                      file=sys.stderr)
    else:
        _print_runs(report, headers=args.experiment == "all")
    return 0 if report.ok else 1


def _stream_command(args) -> int:
    from repro.stream import ScanReport, SummaryConfig, scan_traces
    from repro.stream import write_stream_trace

    if args.stream_command == "synth":
        info = write_stream_trace(
            args.path,
            n_packets=args.packets,
            seed=args.seed,
            base=args.base,
            hours=args.hours,
            window_hours=args.window_hours,
            scale=args.scale,
        )
        print(
            f"wrote {info.n_packets:,d} packets to {info.path} "
            f"({info.file_bytes:,d} bytes, {info.duration:.1f}s span, "
            f"scale {info.scale:.3g}, {info.n_windows} windows)"
        )
        return 0
    report: ScanReport = scan_traces(
        args.paths,
        jobs=args.jobs,
        config=SummaryConfig(
            bin_width=args.bin_width,
            quantile_capacity=args.quantile_k,
            tail_capacity=args.tail_k,
        ),
        per_protocol=args.per_protocol,
        target_chunk_bytes=args.chunk_mb * 1024 * 1024,
    )
    if args.out:
        report.write_bench(args.out)
    if args.as_json:
        print(json.dumps(report.bench_payload(), indent=2))
    else:
        print(report.render(tail_fraction=args.tail_fraction))
    return 0


def _write_bench_json(payload: dict, out_dir: str, name: str) -> str:
    import os

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def _flowsim_command(args) -> int:
    import time

    from repro.flowsim.scenario import FlowScenario

    workloads = (
        ["ftp", "exponential"] if args.workload == "both"
        else [args.workload]
    )
    payload: dict = {"scenarios": {}}
    renders = []
    for workload in workloads:
        scenario = FlowScenario(
            topology=args.topology,
            n_nodes=args.nodes,
            duration=args.duration,
            sessions_per_hour=args.sessions_per_hour,
            workload=workload,
            model=args.model,
            discipline=args.discipline,
            utilization=args.utilization,
            bin_width=args.bin_width,
        )
        t0 = time.perf_counter()
        out = scenario.run(seed=args.seed, jobs=args.jobs,
                           horizon=args.horizon)
        elapsed = time.perf_counter() - t0
        summary = out.summary()
        summary["wall_time_s"] = elapsed
        summary["flows_per_second"] = out.result.n_flows / elapsed
        payload["scenarios"][workload] = summary
        renders.append(out.render()
                       + f"\n  [{elapsed:.2f}s wall, "
                         f"{summary['flows_per_second']:,.0f} flows/s]")
    if args.out:
        _write_bench_json(payload, args.out, "BENCH_flowsim_run.json")
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print("\n\n".join(renders))
    return 0


#: Named synthetic scenarios for ``repro monitor run --source``.
MONITOR_SCENARIOS = ("poisson", "pareto", "hurst-step", "markov-onoff",
                     "diurnal-ramp")


def _monitor_command(args) -> int:
    from repro.monitor import (
        MonitorConfig,
        MonitorService,
        diurnal_ramp_stream,
        hurst_step_stream,
        iter_batches,
        markov_onoff_stream,
        pareto_stream,
        poisson_stream,
    )

    config = MonitorConfig(
        window=args.window,
        bin_width=args.bin_width,
        snapshot_every=args.snapshot_every,
        rate_tick=args.rate_tick,
    )
    service = MonitorService(config)
    source = args.source
    if source in MONITOR_SCENARIOS:
        duration, rate, seed = args.duration, args.rate, args.seed
        times = {
            "poisson": lambda: poisson_stream(duration, rate, seed=seed),
            "pareto": lambda: pareto_stream(duration, rate, seed=seed),
            "hurst-step": lambda: hurst_step_stream(
                duration, rate, duration / 2.0, seed=seed),
            "markov-onoff": lambda: markov_onoff_stream(
                duration, rate * 4.0, seed=seed),
            "diurnal-ramp": lambda: diurnal_ramp_stream(
                duration, rate, seed=seed),
        }[source]()
        for batch in iter_batches(times, args.batch_seconds):
            service.observe(batch)
        report = service.finalize()
    else:
        import os

        if not os.path.exists(source):
            raise SystemExit(
                f"--source must be one of {', '.join(MONITOR_SCENARIOS)} "
                f"or an existing trace file, got {source!r}")
        report = service.run_file(source)
    payload = {"source": source, **report.bench_payload(),
               "config": config.payload()}
    if args.out:
        _write_bench_json(payload, args.out, "BENCH_monitor.json")
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
    return 0


def _superpose_command(args) -> int:
    import time

    from repro.experiments.superpose_exp import superpose

    t0 = time.perf_counter()
    result = superpose(
        seed=args.seed,
        replications=args.replications,
        pareto_shape=args.shape,
        battery_sources=args.battery_sources,
        jobs=args.jobs,
        chunk=args.chunk,
    )
    elapsed = time.perf_counter() - t0
    payload = result.payload()
    payload["wall_time_s"] = round(elapsed, 3)
    if args.out:
        _write_bench_json(payload, args.out, "BENCH_superpose_run.json")
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.render())
        print(f"  [{elapsed:.1f}s wall]")
    return 0


def _shaping_command(args) -> int:
    import time

    from repro.shaping import ShapingScenario
    from repro.shaping.scenario import run_scenario as run_shaping

    scenario = ShapingScenario(
        model=args.model,
        n_packets=args.packets,
        source_rate=args.source_rate,
        rate_factors=args.rate_factors,
        burst_seconds=args.burst_seconds,
        shaper_rate_factors=args.shaper_rate_factors,
        seed=args.seed,
    )
    t0 = time.perf_counter()
    report = run_shaping(scenario)
    elapsed = time.perf_counter() - t0
    payload = report.payload()
    payload["wall_time_s"] = round(elapsed, 3)
    if args.out:
        _write_bench_json(payload, args.out, "BENCH_shaping_run.json")
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        print(f"  [{elapsed:.1f}s wall]")
    return 0 if report.recovery_ok else 1


def _build_replay_source(args):
    """``--trace PATH`` (streamed from disk) or ``--packets N --model M``."""
    from repro.replay import model_help, synthesize_packets

    if args.trace is not None and args.packets is not None:
        raise SystemExit("--trace and --packets are mutually exclusive")
    if args.trace is not None:
        return args.trace
    if args.packets is None:
        raise SystemExit("one of --trace PATH or --packets N is required")
    try:
        return synthesize_packets(
            args.model, args.packets, seed=args.seed, rate=args.rate
        )
    except KeyError:
        raise SystemExit(
            f"unknown model {args.model!r}; available:\n{model_help()}"
        ) from None


def _replay_pacing(args):
    from repro.replay import PacingConfig

    return PacingConfig(
        speed=args.speed,
        rate_cap=args.rate_cap,
        bucket_depth=args.bucket_depth,
    )


def _loopback_element(args):
    """Optional in-path conditioning element from the loopback flags."""
    if args.police_rate is not None and args.shape_rate is not None:
        raise SystemExit("--police-rate and --shape-rate are mutually "
                         "exclusive (chain elements via the API)")
    from repro.shaping import LeakyBucketShaper, TokenBucketPolicer

    if args.police_rate is not None:
        burst = args.police_burst or 0.25 * args.police_rate
        return TokenBucketPolicer(args.police_rate, burst)
    if args.shape_rate is not None:
        burst = args.shape_burst or 0.25 * args.shape_rate
        return LeakyBucketShaper(args.shape_rate, burst)
    return None


def _replay_loopback_command(args) -> int:
    import os
    import tempfile

    from repro.replay import run_loopback

    source = _build_replay_source(args)
    capture = args.capture
    tmp_dir = None
    if capture is None:
        tmp_dir = tempfile.mkdtemp(prefix="repro-replay-")
        capture = os.path.join(tmp_dir, "capture.txt")
    try:
        result = run_loopback(
            source,
            capture_path=capture,
            pacing=_replay_pacing(args),
            flows=args.flows,
            transport=args.transport,
            policy=args.policy,
            queue_depth=args.queue_depth,
            validate=args.validate,
            element=_loopback_element(args),
        )
    finally:
        if tmp_dir is not None:
            import shutil

            shutil.rmtree(tmp_dir, ignore_errors=True)
    if args.out:
        _write_bench_json(result.bench_payload(), args.out,
                          "BENCH_replay.json")
    if args.as_json:
        print(json.dumps(result.bench_payload(), indent=2))
    else:
        print(result.render())
    ok = result.zero_loss if args.policy == "block" else True
    if args.validate and result.validation is not None:
        ok = ok and result.validation.ok
    return 0 if ok else 1


def _replay_send_command(args) -> int:
    import asyncio

    from repro.replay import (
        file_source,
        merged_pacing,
        replay_source,
        trace_source,
    )
    from repro.traces.trace import PacketTrace

    source = _build_replay_source(args)
    batches = (
        trace_source(source) if isinstance(source, PacketTrace)
        else file_source(source)
    )
    results = asyncio.run(replay_source(
        batches, args.host, args.port,
        flows=args.flows,
        pacing=_replay_pacing(args),
        transport=args.transport,
    ))
    payload = {
        "n_flows": len(results),
        "n_sent": sum(f.n_packets for f in results),
        "wire_bytes": sum(f.wire_bytes for f in results),
        "pacing": merged_pacing(results),
        "flows": [f.payload() for f in results],
    }
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"sent {payload['n_sent']:,d} packets "
              f"({payload['wire_bytes']:,d} wire bytes) over "
              f"{payload['n_flows']} {args.transport.upper()} flow(s) "
              f"to {args.host}:{args.port}")
        pacing = payload["pacing"]
        if pacing.get("n_paced"):
            print(f"pacing error p50={pacing['error_p50_s'] * 1e3:.3f}ms "
                  f"p99={pacing['error_p99_s'] * 1e3:.3f}ms "
                  f"({pacing['n_late']:,d} late)")
    return 0


def _replay_recv_command(args) -> int:
    import asyncio

    from repro.replay import Collector

    async def _serve():
        collector = Collector(
            capture_path=args.capture,
            policy=args.policy,
            queue_depth=args.queue_depth,
        )
        port = await collector.start(
            host=args.host, port=args.port, transport=args.transport
        )
        print(f"listening on {args.host}:{port} ({args.transport}); "
              f"capture -> {args.capture}", flush=True)
        # Wait for the first sender, then drain to completion and stop.
        while not collector.flows:
            await asyncio.sleep(0.05)
        return await collector.stop()

    report = asyncio.run(_serve())
    if args.as_json:
        print(json.dumps(report.payload(), indent=2))
    else:
        print(f"captured {report.n_packets:,d} packets "
              f"({report.trace_bytes:,d} trace bytes) from "
              f"{len(report.flows)} flow(s); "
              f"dropped {report.dropped_records:,d}")
    return 0 if report.dropped_records == 0 else 1


def _replay_validate_command(args) -> int:
    from repro.replay import validate_replay

    report = validate_replay(args.source, args.capture)
    if args.as_json:
        print(json.dumps(report.payload(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _replay_command(args) -> int:
    handler = {
        "loopback": _replay_loopback_command,
        "send": _replay_send_command,
        "recv": _replay_recv_command,
        "validate": _replay_validate_command,
    }[args.replay_command]
    return handler(args)


def _scenario_command(args) -> int:
    from repro.scenario import SpecError, dump_spec, load_spec

    if args.scenario_command == "validate":
        status = 0
        for path in args.specs:
            try:
                text = dump_spec(load_spec(path))
            except (OSError, SpecError) as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                status = 2
                continue
            print(f"# {path}: valid")
            print(text)
        return status

    from repro.scenario import run_spec_cached

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    failures = 0
    for path in args.specs:
        try:
            doc = load_spec(path)
        except (OSError, SpecError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        try:
            outcome, status = run_spec_cached(
                doc, jobs=args.jobs, seed=args.seed,
                cache=cache, use_cache=not args.no_cache,
            )
        except SpecError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        except Exception as exc:  # noqa: BLE001 - report, keep batch going
            print(f"{path}: {outcome_name(doc)} failed: {exc}",
                  file=sys.stderr)
            failures += 1
            continue
        if args.out:
            _write_bench_json(outcome.payload(), args.out,
                              f"BENCH_scenario_{outcome.name}.json")
        if args.as_json:
            print(json.dumps(outcome.payload(), indent=2))
        else:
            print(outcome.rendered)
            print(f"[{outcome.name} ({outcome.kind}): "
                  f"{outcome.compute_time_s:.1f}s, cache {status}]")
    return 1 if failures else 0


def outcome_name(doc: dict) -> str:
    scenario = doc.get("scenario")
    if isinstance(scenario, dict):
        return str(scenario.get("name", "<unnamed>"))
    return "<unnamed>"


#: ``repro list`` groups, matched against the registry entry's module
#: basename.  Every family with a spec kind carries the [spec] marker:
#: those experiments are expressible as ``repro scenario run`` documents.
_LIST_GROUPS: tuple[tuple[str, str], ...] = (
    ("fig", "paper tables & figures"),
    ("tables", "paper tables & figures"),
    ("appendix_b", "appendices"),
    ("appendices", "appendices"),
    ("implications", "modeling implications"),
    ("sessions", "session structure"),
    ("telnet_scales", "session structure"),
    ("flowsim_exp", "subsystem scenarios"),
    ("monitor_exp", "subsystem scenarios"),
    ("shaping_exp", "subsystem scenarios"),
    ("superpose_exp", "subsystem scenarios"),
)
_SPEC_KINDS = {"flowsim_exp": "flowsim", "monitor_exp": "monitor",
               "shaping_exp": "shaping", "superpose_exp": "superpose"}


def _list_command() -> int:
    from repro.experiments import registry_modules

    modules = registry_modules()
    groups: dict[str, list[str]] = {}
    for name in sorted(REGISTRY):
        base = modules[name].rpartition(".")[2]
        group = next((g for prefix, g in _LIST_GROUPS
                      if base.startswith(prefix)), "other experiments")
        groups.setdefault(group, []).append(name)
    width = max(len(name) for name in REGISTRY) + 2
    order = ["paper tables & figures", "appendices",
             "modeling implications", "session structure",
             "subsystem scenarios", "other experiments"]
    first = True
    for group in order:
        if group not in groups:
            continue
        if not first:
            print()
        first = False
        print(f"# {group}")
        for name in groups[group]:
            doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
            summary = doc[0].strip() if doc and doc[0].strip() else (
                "(no description)"
            )
            base = modules[name].rpartition(".")[2]
            if base in _SPEC_KINDS:
                summary = f"[spec:{_SPEC_KINDS[base]}] {summary}"
            print(f"{name:<{width}} {summary}")
    print()
    print('# every entry also runs as a kind="experiment" scenario spec; '
          "see examples/specs/")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", False):
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    if args.command == "stream":
        return _stream_command(args)
    if args.command == "flowsim":
        return _flowsim_command(args)
    if args.command == "monitor":
        return _monitor_command(args)
    if args.command == "superpose":
        return _superpose_command(args)
    if args.command == "shaping":
        return _shaping_command(args)
    if args.command == "replay":
        return _replay_command(args)
    if args.command == "scenario":
        return _scenario_command(args)
    if args.command == "list":
        return _list_command()
    if args.command == "cache":
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
        if args.action == "dir":
            print(cache.root)
        else:
            print(f"removed {cache.clear()} cached results from {cache.root}")
        return 0
    return _run_command(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
