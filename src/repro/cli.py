"""Command-line entry point: run any experiment from the registry.

Usage::

    python -m repro list                  # show available experiments
    python -m repro run fig09             # regenerate one table/figure
    python -m repro run fig02 --seed 7
    python -m repro run all               # the whole battery
    python -m repro run all --jobs 4      # ... on a process pool
    python -m repro run all --json        # machine-readable metrics
    python -m repro run all --out bench/  # write BENCH_*.json files
    python -m repro cache clear           # drop the on-disk result cache

    # out-of-core streaming analytics (repro.stream):
    python -m repro stream synth big.txt.gz --packets 2000000 --seed 1
    python -m repro stream scan big.txt.gz --jobs 4 --bin-width 0.01

``-v`` on any subcommand turns on structured progress logging (per-
experiment start/finish with wall time and cache hit/miss, per-chunk scan
throughput); the default output stays byte-identical to the quiet path.

Each experiment prints the rows/series the paper's table or figure reports
(see EXPERIMENTS.md for the paper-vs-measured record).  Runs go through
:mod:`repro.engine`: results are cached on disk keyed on (experiment, seed,
source digest), so an unchanged experiment replays instantly; the per-
experiment footer always shows *compute* time, making a warm replay
byte-identical to the cold run that produced it.  ``--no-cache`` forces
recomputation, ``--jobs N`` spreads cache misses over N worker processes
(outputs are independent of N), and ``--spawn-seeds`` derives statistically
independent per-experiment streams from the master seed instead of handing
every experiment the same integer.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.engine import ResultCache, run_experiments, write_bench_files
from repro.experiments import REGISTRY


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of Paxson & Floyd (1994).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="store_true",
                        help="structured progress logging on stderr "
                             "(off by default)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments", parents=[common])
    cache = sub.add_parser("cache", help="manage the on-disk result cache",
                           parents=[common])
    cache.add_argument("action", choices=["clear", "dir"],
                       help="clear entries or print the cache directory")
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    run = sub.add_parser("run", help="run one experiment (or 'all')",
                         parents=[common])
    run.add_argument("experiment", help="registry name, e.g. fig09, or 'all'")
    run.add_argument("--seed", type=int, default=0, help="master RNG seed")
    run.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="worker processes for cache misses (default 1)")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print BENCH-shaped JSON metrics instead of tables")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything; skip cache reads and writes")
    run.add_argument("--out", default=None, metavar="DIR",
                     help="write per-experiment BENCH_*.json files into DIR")
    run.add_argument("--cache-dir", default=None,
                     help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    run.add_argument("--spawn-seeds", action="store_true",
                     help="independent per-experiment streams spawned from "
                          "the master seed (changes outputs vs. the legacy "
                          "same-integer-everywhere seeding)")

    stream = sub.add_parser(
        "stream", help="out-of-core streaming trace analytics"
    )
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)
    scan = stream_sub.add_parser(
        "scan", help="sharded bounded-memory scan of a v1 trace file",
        parents=[common],
    )
    scan.add_argument("path", help="trace file (.gz transparently handled)")
    scan.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                      help="worker processes for chunk scans (default 1; "
                           "results are independent of N)")
    scan.add_argument("--bin-width", type=_positive_float, default=0.01,
                      metavar="SECONDS",
                      help="count-process bin width (default 0.01s, the "
                           "paper's aggregate-traffic resolution)")
    scan.add_argument("--chunk-mb", type=_positive_int, default=32,
                      metavar="MB", help="target shard chunk size (default 32)")
    scan.add_argument("--quantile-k", type=_positive_int, default=1024,
                      help="quantile sketch capacity (default 1024)")
    scan.add_argument("--tail-k", type=_positive_int, default=4096,
                      help="tail reservoir capacity (default 4096)")
    scan.add_argument("--tail-fraction", type=_positive_float, default=0.03,
                      help="upper tail fraction for the β fit (default 0.03)")
    scan.add_argument("--per-protocol", action="store_true",
                      help="also keep one summary per protocol")
    scan.add_argument("--json", action="store_true", dest="as_json",
                      help="print the BENCH-shaped scan metrics as JSON")
    scan.add_argument("--out", default=None, metavar="DIR",
                      help="write BENCH_stream_scan.json into DIR")
    synth = stream_sub.add_parser(
        "synth", help="generate a large synthetic packet trace out-of-core",
        parents=[common],
    )
    synth.add_argument("path", help="output file (.gz compresses on the fly)")
    synth.add_argument("--packets", type=_positive_int, required=True,
                       help="number of packet records to write")
    synth.add_argument("--seed", type=int, default=0, help="master RNG seed")
    synth.add_argument("--base", default="LBL PKT-1",
                       help="Table-II recipe per window (default 'LBL PKT-1')")
    synth.add_argument("--hours", type=_positive_float, default=2.0,
                       help="nominal trace span in hours (default 2)")
    synth.add_argument("--window-hours", type=_positive_float, default=0.25,
                       help="synthesis window granularity (default 0.25)")
    synth.add_argument("--scale", type=_positive_float, default=None,
                       help="traffic intensity multiplier (default: "
                            "auto-calibrated to hit --packets)")
    return parser


def run_experiment(name: str, seed: int) -> int:
    """Back-compat single-experiment entry point (serial, uncached)."""
    if name not in REGISTRY:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    report = run_experiments([name], master_seed=seed, use_cache=False,
                             derive_seeds=False)
    _print_runs(report)
    return 0 if report.ok else 1


def _print_runs(report, *, headers: bool = False) -> None:
    for run in report.runs:
        if headers:
            print(f"=== {run.name} ===")
        if run.ok:
            print(run.rendered)
            print(f"[{run.name}: {run.metrics.compute_time_s:.1f}s]")
        else:
            print(f"{run.name} failed: {run.metrics.error}", file=sys.stderr)
        if headers:
            print()


def _run_command(args) -> int:
    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; try 'list'", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    report = run_experiments(
        names,
        master_seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        use_cache=not args.no_cache,
        derive_seeds=args.spawn_seeds,
    )
    summary = report.summary()
    if args.out:
        write_bench_files(summary, args.out)
    if args.as_json:
        print(json.dumps(summary, indent=2))
        for run in report.runs:
            if not run.ok:
                print(f"{run.name} failed: {run.metrics.error}",
                      file=sys.stderr)
    else:
        _print_runs(report, headers=args.experiment == "all")
    return 0 if report.ok else 1


def _stream_command(args) -> int:
    from repro.stream import ScanReport, SummaryConfig, scan_trace
    from repro.stream import write_stream_trace

    if args.stream_command == "synth":
        info = write_stream_trace(
            args.path,
            n_packets=args.packets,
            seed=args.seed,
            base=args.base,
            hours=args.hours,
            window_hours=args.window_hours,
            scale=args.scale,
        )
        print(
            f"wrote {info.n_packets:,d} packets to {info.path} "
            f"({info.file_bytes:,d} bytes, {info.duration:.1f}s span, "
            f"scale {info.scale:.3g}, {info.n_windows} windows)"
        )
        return 0
    report: ScanReport = scan_trace(
        args.path,
        jobs=args.jobs,
        config=SummaryConfig(
            bin_width=args.bin_width,
            quantile_capacity=args.quantile_k,
            tail_capacity=args.tail_k,
        ),
        per_protocol=args.per_protocol,
        target_chunk_bytes=args.chunk_mb * 1024 * 1024,
    )
    if args.out:
        report.write_bench(args.out)
    if args.as_json:
        print(json.dumps(report.bench_payload(), indent=2))
    else:
        print(report.render(tail_fraction=args.tail_fraction))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", False):
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    if args.command == "stream":
        return _stream_command(args)
    if args.command == "list":
        for name in sorted(REGISTRY):
            doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:18s} {summary}")
        return 0
    if args.command == "cache":
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
        if args.action == "dir":
            print(cache.root)
        else:
            print(f"removed {cache.clear()} cached results from {cache.root}")
        return 0
    return _run_command(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
