"""Command-line entry point: run any experiment from the registry.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig09            # regenerate one table/figure
    python -m repro run fig02 --seed 7
    python -m repro run all              # the whole battery

Each experiment prints the rows/series the paper's table or figure reports
(see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of Paxson & Floyd (1994).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="registry name, e.g. fig09, or 'all'")
    run.add_argument("--seed", type=int, default=0, help="master RNG seed")
    return parser


def run_experiment(name: str, seed: int) -> int:
    if name not in REGISTRY:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    fn = REGISTRY[name]
    t0 = time.perf_counter()
    result = fn(seed=seed)
    elapsed = time.perf_counter() - t0
    print(result.render())
    print(f"[{name}: {elapsed:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(REGISTRY):
            doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name:18s} {summary}")
        return 0
    if args.experiment == "all":
        status = 0
        for name in sorted(REGISTRY):
            print(f"=== {name} ===")
            status |= run_experiment(name, args.seed)
            print()
        return status
    return run_experiment(args.experiment, args.seed)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
