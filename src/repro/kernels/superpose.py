"""Batched superposition of heavy-tailed sources (Section VII-B at scale).

The paper's second self-similarity construction multiplexes many ON/OFF
sources; the López-Oliveros & Resnick phase diagram needs 10^5–10^6 of
them, which the per-source ``arrivals.onoff.multiplex_onoff`` loop cannot
reach.  This module synthesizes whole *chunks* of sources at once:

* period lengths are drawn as ``(n_alive, SUPER_ROUNDS * PERIOD_BLOCK)``
  arrays — one ``Generator`` call per source per *eight* rounds instead of
  one ``sample`` per half-block.  PCG64's uniform/exponential fills are
  call-size invariant (``random(16)`` eight times equals ``random(128)``
  on the same stream), and over-drawing a source that dies mid-super-block
  is invisible because its stream is never consumed again — so each child
  stream yields exactly the variates :meth:`OnOffSource.intervals` would
  see (phase coin first, then per round the current phase's half-block
  followed by the other's), and the batched aggregate is bit-identical to
  the frozen per-source loop
  (:func:`repro.kernels.reference.multiplex_onoff_loop`) on the same seed;
* interval→bin overlap is accumulated without materializing interval
  lists: fractional edge-bin contributions go through ``np.add.at`` on a
  flattened per-source work matrix in slot-major order (preserving the
  reference's per-cell add sequence), while interior fully-covered bins —
  each covered by exactly one ON interval, since intervals are disjoint —
  are marked in an int16 coverage-diff array and paid with a single
  ``+= bin_width`` after a cumsum;
* chunks fan out through :func:`repro.utils.pool.pool_map_shared`, each
  worker writing its partial aggregate into a slot of one shared buffer
  and returning only metadata — no count arrays ride through pickle.

Reduction contract: sources are partitioned into fixed ``chunk``-sized
ranges, each chunk's partial is accumulated fully-left in source order,
and the total is accumulated fully-left over chunk partials in chunk
order.  The chunk grid — not ``jobs`` — defines the float-addition tree,
so ``jobs=N`` is bit-identical to serial for any ``N``, and with
``chunk >= n_sources`` the tree degenerates to the frozen loop's
fully-left sum, making the kernel bit-identical to it.  (The one
theoretical exception: if a float quotient ``t / bin_width`` rounds
across a bin boundary, an edge add and an interior ``+= bin_width`` can
land on the same cell in a different order than the reference — a
sub-ulp-probability event per interval that the equivalence tests pin
down empirically.)

:func:`superpose_renewal` is the Pareto-renewal sibling: counts are
integers, so its aggregation is exact and order-free — bit-identical to
:func:`repro.kernels.reference.superpose_renewal_loop` for *any* chunking
and ``jobs``, provided the per-stream draw protocol (``gap_block`` gaps
per round) matches.
"""

from __future__ import annotations

import operator
from collections import deque
from functools import partial

import numpy as np

from repro.arrivals.onoff import (
    PERIOD_BLOCK,
    OnOffSource,
    _require_bin_count,
)
from repro.distributions.exponential import Exponential
from repro.distributions.pareto import Pareto
from repro.utils.pool import pool_map_shared
from repro.utils.rng import SeedLike
from repro.utils.validation import require_positive

#: Sources synthesized per batched chunk.  The chunk grid is the reduction
#: unit (see the module docstring), so changing it changes the float-sum
#: association of the ON/OFF aggregate (never the renewal counts).
DEFAULT_CHUNK = 1024

#: Gaps drawn per source per round in :func:`superpose_renewal`.  Part of
#: the RNG-stream protocol: both the batched kernel and the frozen
#: reference must use the same value to consume streams identically.
DEFAULT_GAP_BLOCK = 256

#: Rounds of :data:`PERIOD_BLOCK` periods drawn per ``Generator`` call on
#: the merged ON/OFF fast path.  Purely an amortization knob: PCG64 fills
#: are call-size invariant, so any value consumes the streams identically.
SUPER_ROUNDS = 8

_DRAWERS = {
    "uniform": lambda rng, out: rng.random(out=out),
    "stdexp": lambda rng, out: rng.standard_exponential(out=out),
}


def _raw_spec(dist):
    """Split a distribution into (raw-draw kind, params, elementwise map).

    For the two distribution families the superposition experiments use,
    ``dist.sample(k, seed=rng)`` decomposes into a raw generator call that
    consumes the stream (``rng.random`` / ``rng.standard_exponential``)
    plus a deterministic elementwise map — which lets one merged
    ``(n, block)`` raw draw replace two half-block ``sample`` calls while
    consuming each stream identically.  Returns ``(None, None, None)`` for
    anything else; callers then fall back to per-source ``sample`` calls.
    """
    if type(dist) is Pareto:
        loc, expo = dist.location, -1.0 / dist.shape
        return "uniform", (loc, expo), lambda raw: loc * np.power(raw, expo)
    if type(dist) is Exponential:
        mean = dist.mean
        return "stdexp", (mean,), lambda raw: mean * raw
    return None, None, None


def _seed_info(seed: SeedLike, n_sources: int, jobs: int):
    """Resolve ``seed`` into per-source child-stream instructions.

    Returns either a list of already-spawned Generators (serial Generator
    seeds only) or a picklable ``(entropy, spawn_key, first)`` triple from
    which any process reconstructs child ``i`` as
    ``SeedSequence(entropy, spawn_key=(*spawn_key, first + i))`` — exactly
    the children ``utils.rng.spawn_rngs`` would hand the reference loop.
    """
    if isinstance(seed, np.random.Generator):
        if jobs > 1:
            raise ValueError(
                "jobs > 1 requires an int / SeedSequence / None seed; a "
                "live Generator cannot be split across processes "
                "reproducibly"
            )
        return seed.spawn(n_sources)
    if isinstance(seed, np.random.SeedSequence):
        first = seed.n_children_spawned
        seed.spawn(n_sources)  # advance the counter exactly like spawn_rngs
        return (seed.entropy, seed.spawn_key, first)
    seq = np.random.SeedSequence(seed)
    return (seq.entropy, seq.spawn_key, 0)


def _child_rngs(seed_info, lo: int, hi: int) -> list[np.random.Generator]:
    if isinstance(seed_info, list):
        return seed_info[lo:hi]
    entropy, spawn_key, first = seed_info
    return [
        np.random.default_rng(
            np.random.SeedSequence(entropy, spawn_key=(*spawn_key, first + i))
        )
        for i in range(lo, hi)
    ]


# ----------------------------------------------------------------------
# ON/OFF fluid superposition
# ----------------------------------------------------------------------
def _onoff_chunk(out, lo, hi, source, n_bins, bin_width, seed_info,
                 group_size=None):
    """Synthesize sources ``[lo, hi)`` and accumulate their fluid count
    rows fully-left into ``out``.

    With ``group_size=None`` (the :func:`superpose_onoff` path) ``out`` has
    shape ``(n_bins,)`` and receives every source.  Otherwise ``out`` has
    shape ``(groups_per_chunk, n_bins)`` and local source ``j`` accumulates
    into row ``j // group_size`` — the :func:`superpose_onoff_groups` path,
    which requires ``lo`` to sit on a group boundary."""
    m = hi - lo
    duration = n_bins * bin_width
    block = PERIOD_BLOCK
    half = block // 2
    rngs = _child_rngs(seed_info, lo, hi)
    on_kind, on_args, on_tf = _raw_spec(source.on_dist)
    off_kind, off_args, off_tf = _raw_spec(source.off_dist)
    fast = on_kind is not None and off_kind is not None
    # Identical ON/OFF laws draw and transform the whole block uniformly,
    # with no phase split at all.
    same = fast and on_kind == off_kind and on_args == off_args
    merged = fast and on_kind == off_kind
    # Rounds per iteration: the merged path draws SUPER_ROUNDS rounds with
    # one Generator call per source (PCG64 fills are call-size invariant;
    # over-draw past a source's death never gets consumed), the per-source
    # draw paths keep one round per iteration.
    n_rounds = SUPER_ROUNDS if merged else 1
    S = block * n_rounds  # periods per iteration
    shalf = S // 2  # ON slots per iteration

    phase_on = np.empty(m, dtype=bool)
    for i, rng in enumerate(rngs):
        phase_on[i] = rng.random() < 0.5

    work = np.zeros((m, n_bins))
    work_flat = work.ravel()
    cover = np.zeros((m, n_bins + 1), dtype=np.int16)
    cover_flat = cover.ravel()
    used_cover = False

    raw = np.empty((m, S))
    lengths = np.empty((m, S))
    trans = np.empty((m, S))
    take_buf = np.empty((m, S))
    bounds_buf = np.empty((m, S + 1))
    cum_buf = np.empty((m, S + 1))
    cols_off = 2 * np.arange(shalf)  # ON-slot column offsets
    a_rows = np.arange(m)  # global chunk-row index per alive slot
    a_phase = phase_on
    a_t = np.zeros(m)
    a_rngs = rngs
    a_idx = None  # original raw-row index per alive slot; None = identity
    if merged:
        # One raw call covers the whole super-block.  Pre-bind each
        # source's draw to its fixed row of ``raw`` as a no-argument
        # partial, so the per-iteration draw loop runs at C speed via
        # deque(map(...)).
        attr = "random" if on_kind == "uniform" else "standard_exponential"
        a_draw = [
            partial(getattr(rng, attr), out=row)
            for rng, row in zip(rngs, raw)
        ]
    n_alive = m
    rounds = 0
    while n_alive:
        rounds += n_rounds
        L = lengths[:n_alive]
        if merged:
            deque(map(operator.call, a_draw), maxlen=0)
            if a_idx is None:
                R = raw[:n_alive]
            else:
                R = take_buf[:n_alive]
                np.take(raw, a_idx, axis=0, out=R)
            # Raw layout per super-block row: [r0 cur(8), r0 oth(8),
            # r1 cur(8), ...]; lengths interleave cur/oth within each round.
            R4 = R.reshape(n_alive, n_rounds, 2, half)
            L4 = L.reshape(n_alive, n_rounds, half, 2)
            if same:
                T = trans[:n_alive]
                if on_kind == "uniform":
                    loc, expo = on_args
                    np.power(R, expo, out=T)
                    np.multiply(loc, T, out=T)
                else:
                    np.multiply(on_args[0], R, out=T)
                T4 = T.reshape(n_alive, n_rounds, 2, half)
                L4[:, :, :, 0] = T4[:, :, 0, :]
                L4[:, :, :, 1] = T4[:, :, 1, :]
            else:
                onr = a_phase
                offr = ~a_phase
                if onr.any():
                    L4[onr, :, :, 0] = on_tf(R4[onr, :, 0, :])
                    L4[onr, :, :, 1] = off_tf(R4[onr, :, 1, :])
                if offr.any():
                    L4[offr, :, :, 0] = off_tf(R4[offr, :, 0, :])
                    L4[offr, :, :, 1] = on_tf(R4[offr, :, 1, :])
        elif fast:
            R = raw[:n_alive]
            d_on, d_off = _DRAWERS[on_kind], _DRAWERS[off_kind]
            for i, rng in enumerate(a_rngs):
                if a_phase[i]:
                    d_on(rng, R[i, :half])
                    d_off(rng, R[i, half:])
                else:
                    d_off(rng, R[i, :half])
                    d_on(rng, R[i, half:])
            onr = a_phase
            offr = ~a_phase
            if onr.any():
                L[onr, 0::2] = on_tf(R[onr, :half])
                L[onr, 1::2] = off_tf(R[onr, half:])
            if offr.any():
                L[offr, 0::2] = off_tf(R[offr, :half])
                L[offr, 1::2] = on_tf(R[offr, half:])
        else:
            for i, rng in enumerate(a_rngs):
                cur, oth = (
                    (source.on_dist, source.off_dist)
                    if a_phase[i]
                    else (source.off_dist, source.on_dist)
                )
                L[i, 0::2] = cur.sample(half, seed=rng)
                L[i, 1::2] = oth.sample(half, seed=rng)

        B = bounds_buf[:n_alive]
        B[:, 0] = a_t
        B[:, 1:] = L
        bounds = cum_buf[:n_alive]
        np.cumsum(B, axis=1, out=bounds)
        bounds_flat = bounds.ravel()
        n_live = np.count_nonzero(bounds[:, :-1] < duration, axis=1)
        flat0 = np.arange(n_alive) * (S + 1)
        wbase = a_rows * n_bins
        cbase = a_rows * (n_bins + 1)

        # ON slots are every other period starting at the phase offset.
        # All slot planes are computed at once on (shalf, n_alive) matrices
        # (slot-major layout, so each plane below is a contiguous row);
        # the scatter loop then walks slots in time order, preserving the
        # reference's per-cell add sequence.  Within one slot each source
        # contributes at most one interval, so every scatter hits unique
        # cells and a fancy-indexed `+=` is exact (and much faster than
        # ``np.add.at``).
        cols = np.where(a_phase, 0, 1)[None, :] + cols_off[:, None]
        gidx = flat0[None, :] + cols
        sv = bounds_flat[gidx]
        ev = np.minimum(bounds_flat[gidx + 1], duration)
        first = (sv / bin_width).astype(np.int64)
        np.minimum(first, n_bins - 1, out=first)
        last = (ev / bin_width).astype(np.int64)
        np.minimum(last, n_bins - 1, out=last)
        live = cols < n_live[None, :]
        single = first == last
        widx_f = wbase[None, :] + first
        widx_l = wbase[None, :] + last
        val_s = ev - sv
        val_l = (first + 1) * bin_width - sv
        val_r = ev - last * bin_width
        cidx_f = cbase[None, :] + first
        cidx_l = cbase[None, :] + last
        for s in range(shalf):
            lv = live[s]
            if lv.all():
                sgl = single[s]
                mlt = ~sgl
            else:
                if not lv.any():
                    break  # cols grow with s: no later slot is live either
                sgl = single[s] & lv
                mlt = lv & ~single[s]
            if sgl.any():
                work_flat[widx_f[s][sgl]] += val_s[s][sgl]
            if mlt.any():
                used_cover = True
                work_flat[widx_f[s][mlt]] += val_l[s][mlt]
                work_flat[widx_l[s][mlt]] += val_r[s][mlt]
                cover_flat[cidx_f[s][mlt] + 1] += np.int16(1)
                cover_flat[cidx_l[s][mlt]] -= np.int16(1)

        cont = (n_live == S) & (bounds[:, -1] < duration)
        if cont.all():
            a_t = bounds[:, -1]
            continue
        keep = np.flatnonzero(cont)
        n_alive = keep.size
        if n_alive == 0:
            break
        a_rows = a_rows[keep]
        a_phase = a_phase[keep]
        a_t = bounds[keep, -1]
        if merged:
            a_draw = [a_draw[k] for k in keep]
            a_idx = keep if a_idx is None else a_idx[keep]
        else:
            a_rngs = [a_rngs[k] for k in keep]

    # Interior bins: disjoint ON intervals mean a fully-covered bin is
    # covered by exactly one interval, so each marked cell receives exactly
    # one += bin_width — same value sequence as the reference's slice add.
    if used_cover:
        covered = np.cumsum(cover[:, :-1], axis=1, dtype=np.int16)
        work[covered == 1] += bin_width
    work *= source.rate
    if group_size is None:
        for row in work:
            out += row
    else:
        for j, row in enumerate(work):
            out[j // group_size] += row
    return {"sources": m, "rounds": rounds}


def superpose_onoff(
    n_sources: int,
    n_bins: int,
    bin_width: float,
    source: OnOffSource | None = None,
    seed: SeedLike = None,
    *,
    jobs: int = 1,
    chunk: int = DEFAULT_CHUNK,
    scratch_dir: str | None = None,
    meta: list | None = None,
) -> np.ndarray:
    """Batched aggregate fluid count process of ``n_sources`` ON/OFF sources.

    Bit-identical to :func:`repro.arrivals.onoff.multiplex_onoff` (and the
    frozen :func:`repro.kernels.reference.multiplex_onoff_loop`) on the
    same seed when ``chunk >= n_sources``; for smaller chunks the fixed
    chunk grid defines the float-sum association, so results are
    bit-identical across any ``jobs`` but differ from the monolithic sum
    by float-addition reordering (~1e-15 relative).  Worker failures raise
    :class:`repro.utils.pool.PoolTaskError` with the failing chunk index.

    ``meta``, if a list, receives one ``{"sources", "rounds"}`` dict per
    chunk — the only data workers return across the process boundary.
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    n_bins = _require_bin_count(n_bins)
    require_positive(bin_width, "bin_width")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if n_bins == 0:
        return np.zeros(0)
    src = source if source is not None else OnOffSource.pareto()
    seed_info = _seed_info(seed, n_sources, jobs)
    tasks = [
        (lo, min(lo + chunk, n_sources), src, n_bins, bin_width, seed_info)
        for lo in range(0, n_sources, chunk)
    ]
    buffer, metas = pool_map_shared(
        _onoff_chunk, tasks, jobs, shape=(n_bins,), scratch_dir=scratch_dir
    )
    if meta is not None:
        meta.extend(metas)
    total = np.zeros(n_bins)
    for row in buffer:
        total += row
    return total


def superpose_onoff_groups(
    n_groups: int,
    group_size: int,
    n_bins: int,
    bin_width: float,
    source: OnOffSource | None = None,
    seed: SeedLike = None,
    *,
    jobs: int = 1,
    chunk: int = DEFAULT_CHUNK,
    scratch_dir: str | None = None,
    meta: list | None = None,
) -> np.ndarray:
    """``n_groups`` independent ON/OFF aggregates of ``group_size`` sources.

    Synthesizes ``n_groups * group_size`` sources in one batched sweep and
    reduces them group-wise, returning a ``(n_groups, n_bins)`` array whose
    row ``g`` is the aggregate of sources ``[g * group_size,
    (g+1) * group_size)``.  This is how the phase-diagram experiment gets
    hundreds of independent replications per cell without paying the
    per-call batching overhead ``group_size`` times: small groups ride the
    same ``(n_alive, S)`` draw matrices as one giant chunk.

    Row ``g`` is bit-identical to the standalone
    ``superpose_onoff(group_size, ..., chunk >= group_size)`` call that
    consumes the same ``group_size`` child streams (each group's sources
    are accumulated fully-left into a zeroed row, the exact float-addition
    tree of the monolithic call).  Chunk boundaries are snapped to group
    boundaries — ``groups_per_chunk = max(1, chunk // group_size)`` — so a
    group never straddles two workers.
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    n_bins = _require_bin_count(n_bins)
    require_positive(bin_width, "bin_width")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if n_bins == 0:
        return np.zeros((n_groups, 0))
    src = source if source is not None else OnOffSource.pareto()
    n_sources = n_groups * group_size
    groups_per_chunk = max(1, chunk // group_size)
    chunk_sources = groups_per_chunk * group_size
    seed_info = _seed_info(seed, n_sources, jobs)
    tasks = [
        (lo, min(lo + chunk_sources, n_sources), src, n_bins, bin_width,
         seed_info, group_size)
        for lo in range(0, n_sources, chunk_sources)
    ]
    buffer, metas = pool_map_shared(
        _onoff_chunk, tasks, jobs, shape=(groups_per_chunk, n_bins),
        scratch_dir=scratch_dir,
    )
    if meta is not None:
        meta.extend(metas)
    return buffer.reshape(-1, n_bins)[:n_groups].copy()


# ----------------------------------------------------------------------
# Pareto-renewal superposition
# ----------------------------------------------------------------------
def _renewal_chunk(out, lo, hi, gap_dist, n_bins, bin_width, gap_block,
                   seed_info):
    """Arrival counts of renewal sources ``[lo, hi)`` summed into ``out``
    (shape ``(n_bins,)``, int64)."""
    rngs = _child_rngs(seed_info, lo, hi)
    horizon = n_bins * bin_width
    counts = np.zeros(n_bins, dtype=np.int64)
    kind, _args, tf = _raw_spec(gap_dist)

    raw = np.empty((len(rngs), gap_block))
    a_rngs = [rng for rng in rngs if horizon > 0]
    a_t = np.zeros(len(a_rngs))
    rounds = 0
    while a_rngs:
        rounds += 1
        n_alive = len(a_rngs)
        R = raw[:n_alive]
        if kind is not None:
            draw = _DRAWERS[kind]
            for i, rng in enumerate(a_rngs):
                draw(rng, R[i])
            gaps = tf(R)
        else:
            gaps = np.empty((n_alive, gap_block))
            for i, rng in enumerate(a_rngs):
                gaps[i] = gap_dist.sample(gap_block, seed=rng)
        cum = a_t[:, None] + np.cumsum(gaps, axis=1)
        vals = cum[cum < horizon]
        if vals.size:
            idx = (vals / bin_width).astype(np.int64)
            np.minimum(idx, n_bins - 1, out=idx)
            counts += np.bincount(idx, minlength=n_bins)
        a_t = cum[:, -1]
        keep = np.flatnonzero(a_t < horizon)
        a_t = a_t[keep]
        a_rngs = [a_rngs[k] for k in keep]
    out[:] = counts
    return {"sources": hi - lo, "rounds": rounds}


def superpose_renewal(
    n_sources: int,
    n_bins: int,
    bin_width: float,
    gap_dist=None,
    seed: SeedLike = None,
    *,
    jobs: int = 1,
    chunk: int = DEFAULT_CHUNK,
    gap_block: int = DEFAULT_GAP_BLOCK,
    scratch_dir: str | None = None,
    meta: list | None = None,
) -> np.ndarray:
    """Batched aggregate arrival counts of ``n_sources`` renewal sources.

    ``gap_dist`` defaults to the canonical ``Pareto(1.0, 1.2)`` interarrival
    law.  Counts are integers, so the aggregation is exact: the result is
    bit-identical to :func:`repro.kernels.reference.superpose_renewal_loop`
    with the same ``gap_block`` for *any* ``chunk`` and ``jobs``.
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    n_bins = _require_bin_count(n_bins)
    require_positive(bin_width, "bin_width")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if gap_block < 1:
        raise ValueError(f"gap_block must be >= 1, got {gap_block}")
    if n_bins == 0:
        return np.zeros(0, dtype=np.int64)
    dist = gap_dist if gap_dist is not None else Pareto(1.0, 1.2)
    seed_info = _seed_info(seed, n_sources, jobs)
    tasks = [
        (lo, min(lo + chunk, n_sources), dist, n_bins, bin_width, gap_block,
         seed_info)
        for lo in range(0, n_sources, chunk)
    ]
    buffer, metas = pool_map_shared(
        _renewal_chunk, tasks, jobs, shape=(n_bins,), dtype=np.int64,
        scratch_dir=scratch_dir,
    )
    if meta is not None:
        meta.extend(metas)
    return buffer.sum(axis=0)
