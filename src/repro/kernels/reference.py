"""Frozen pre-vectorization loop implementations.

These are the Python-loop versions of the hot paths as they existed before
the kernel PR, kept verbatim so that

* ``tests/test_kernels.py`` can assert the vectorized kernels reproduce
  them bit for bit (where the RNG-stream contract is unchanged), and
* ``benchmarks/bench_kernels.py`` can record honest before/after timings
  in ``BENCH_kernels.json``.

Do not "fix" or optimize anything here: the whole point is that this module
does not change when the production code does.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.arrivals.poisson import homogeneous_poisson
from repro.core.ftp import BURST_SPACING_SECONDS, Burst
from repro.core.telnet import connection_packet_times
from repro.distributions import tcplib
from repro.selfsim.rs_analysis import rescaled_range
from repro.traces.io import (
    CONN_HEADER,
    PKT_HEADER,
    _expect_header,
    _name_from,
    format_connection_line,
    format_packet_line,
    open_trace,
)
from repro.traces.records import ConnectionRecord, Direction, PacketRecord
from repro.traces.trace import ConnectionTrace, PacketTrace
from repro.utils.rng import as_rng, spawn_rngs


# ----------------------------------------------------------------------
# queueing/simulator.py
# ----------------------------------------------------------------------
def lindley_waits_loop(service, gaps):
    """Per-packet Lindley recursion, exactly as ``fifo_queue`` ran it."""
    s = np.asarray(service, dtype=float)
    a = np.asarray(gaps, dtype=float)
    n = s.size
    w = np.empty(n)
    if n == 0:
        return w
    w[0] = 0.0
    for k in range(n - 1):
        w[k + 1] = max(0.0, w[k] + s[k] - a[k])
    return w


# ----------------------------------------------------------------------
# selfsim/farima.py
# ----------------------------------------------------------------------
def farima_autocovariance_loop(d, max_lag, sigma2=1.0):
    """The per-lag ratio recursion."""
    g0 = sigma2 * special.gamma(1.0 - 2.0 * d) / special.gamma(1.0 - d) ** 2
    out = np.empty(max_lag + 1)
    out[0] = g0
    for k in range(max_lag):
        out[k + 1] = out[k] * (k + d) / (k + 1.0 - d)
    return out


# ----------------------------------------------------------------------
# core/telnet.py
# ----------------------------------------------------------------------
def synthesize_packet_arrivals_loop(specs, scheme, seed=None, horizon=None):
    """Per-connection synthesis loop (shared-stream contract)."""
    rng = as_rng(seed)
    all_times, all_ids = [], []
    for cid, spec in enumerate(specs):
        t = connection_packet_times(spec, scheme, seed=rng)
        all_times.append(t)
        all_ids.append(np.full(t.size, cid, dtype=np.int64))
    if not all_times:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    times = np.concatenate(all_times)
    ids = np.concatenate(all_ids)
    if horizon is not None:
        keep = times < horizon
        times, ids = times[keep], ids[keep]
    order = np.argsort(times, kind="stable")
    return times[order], ids[order]


# ----------------------------------------------------------------------
# core/fulltel.py (originator side; pre-PR single shared stream)
# ----------------------------------------------------------------------
def fulltel_synthesize_loop(model, duration, seed=None):
    """Pre-PR FULL-TEL originator synthesis: one shared RNG stream threaded
    through every connection, one ``sample()`` call per connection.
    Returns ``(timestamps, connection_ids, sizes)`` unsorted (conn-major)."""
    rng = as_rng(seed)
    rate_per_sec = model.connections_per_hour / 3600.0
    starts = homogeneous_poisson(rate_per_sec, duration, seed=rng)
    sizes = model.sample_connection_sizes(starts.size, seed=rng)
    interarrival = tcplib.telnet_packet_interarrival()
    times_parts, id_parts, size_parts = [], [], []
    for cid, (t0, n_pkts) in enumerate(zip(starts, sizes)):
        gaps = interarrival.sample(int(n_pkts), seed=rng)
        t = t0 + np.cumsum(gaps)
        t = t[t < duration]
        if t.size == 0:
            continue
        times_parts.append(t)
        id_parts.append(np.full(t.size, cid, dtype=np.int64))
        pkt_bytes = np.round(
            tcplib.telnet_packet_bytes().sample(t.size, seed=rng)
        ).astype(np.int64)
        size_parts.append(np.maximum(pkt_bytes, 1))
    if not times_parts:
        return (np.zeros(0), np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64))
    return (np.concatenate(times_parts), np.concatenate(id_parts),
            np.concatenate(size_parts))


# ----------------------------------------------------------------------
# core/ftp.py
# ----------------------------------------------------------------------
def coalesce_bursts_loop(starts, durations, data_bytes,
                         spacing=BURST_SPACING_SECONDS, session_id=0):
    """Per-connection gap scan building bursts one at a time."""
    s = np.asarray(starts, dtype=float)
    d = np.asarray(durations, dtype=float)
    b = np.asarray(data_bytes, dtype=np.int64)
    if s.size == 0:
        return []
    order = np.argsort(s, kind="stable")
    s, d, b = s[order], d[order], b[order]
    ends = s + d

    def make(first, stop):
        return Burst(
            session_id=session_id,
            start_time=float(s[first]),
            end_time=float(ends[first:stop].max()),
            n_connections=stop - first,
            total_bytes=int(b[first:stop].sum()),
        )

    bursts = []
    first = 0
    for i in range(1, s.size):
        if s[i] - ends[i - 1] > spacing:
            bursts.append(make(first, i))
            first = i
    bursts.append(make(first, s.size))
    return bursts


def ftp_synthesize_loop(model, duration, seed=None, first_session_id=0,
                        session_starts=None):
    """Pre-PR FTP session synthesis: one shared stream, ``sample(1)`` per
    burst quantity and a scalar ``rng.exponential()`` per connection."""
    from repro.distributions.lognormal import Log2Normal
    from repro.distributions.pareto import Pareto

    rng = as_rng(seed)
    if session_starts is None:
        session_starts = homogeneous_poisson(
            model.sessions_per_hour / 3600.0, duration, seed=rng
        )
    gap_dist = Log2Normal(model.inter_burst_gap_log2_mean,
                          model.inter_burst_gap_log2_sd)
    conn_count = Pareto(1.0, model.conns_per_burst_shape)
    burst_bytes = Pareto(model.burst_bytes_location, model.burst_bytes_shape)

    records = []
    for k, t0 in enumerate(np.asarray(session_starts, dtype=float)):
        sid = first_session_id + k
        orig = int(rng.integers(0, 500))
        resp = int(rng.integers(500, 1000))
        n_bursts = 1 + rng.geometric(1.0 / model.mean_bursts_per_session)
        t = t0
        session_end = t0
        for _ in range(n_bursts):
            n_conns = min(
                int(np.floor(float(conn_count.sample(1, seed=rng)[0]))),
                model.max_conns_per_burst,
            )
            total = float(burst_bytes.sample(1, seed=rng)[0])
            weights = rng.lognormal(0.0, 1.0, size=n_conns)
            shares = np.maximum(
                (total * weights / weights.sum()).astype(np.int64), 1
            )
            for share in shares:
                dur = model.setup_overhead + float(share) / model.transfer_rate
                records.append(
                    ConnectionRecord(
                        start_time=float(t),
                        duration=dur,
                        protocol="FTPDATA",
                        bytes_orig=0,
                        bytes_resp=int(share),
                        orig_host=orig,
                        resp_host=resp,
                        session_id=sid,
                    )
                )
                t = float(t) + dur + float(rng.exponential(model.intra_burst_gap_mean))
            session_end = t
            t += float(gap_dist.sample(1, seed=rng)[0]) + BURST_SPACING_SECONDS
        records.append(
            ConnectionRecord(
                start_time=t0,
                duration=max(session_end - t0, 1.0),
                protocol="FTP",
                bytes_orig=int(rng.integers(200, 2000)),
                bytes_resp=int(rng.integers(500, 5000)),
                orig_host=orig,
                resp_host=resp,
                session_id=sid,
            )
        )
    return records


# ----------------------------------------------------------------------
# selfsim/rs_analysis.py
# ----------------------------------------------------------------------
def rs_means_loop(series, sizes, max_samples_per_size=50, seed=None):
    """Pre-PR inner loops of ``rs_analysis``: per-block R/S, averaged per
    size.  Returns ``(kept_sizes, means)``."""
    x = np.asarray(series, dtype=float)
    n = x.size
    rng = as_rng(seed)
    means, kept_sizes = [], []
    for size in sizes:
        n_blocks = n // size
        if n_blocks < 1:
            continue
        starts = np.arange(n_blocks) * size
        if starts.size > max_samples_per_size:
            starts = rng.choice(starts, size=max_samples_per_size,
                                replace=False)
        values = []
        for s in starts:
            block = x[s: s + size]
            if block.std() == 0.0:
                continue
            values.append(rescaled_range(block))
        if values:
            means.append(float(np.mean(values)))
            kept_sizes.append(int(size))
    return kept_sizes, means


# ----------------------------------------------------------------------
# arrivals/cluster.py
# ----------------------------------------------------------------------
def compound_poisson_cluster_loop(session_rate, duration, cluster_size_dist,
                                  within_gap_dist, seed=None):
    """Pre-PR per-trigger loop (interleaved size/gap draws)."""
    rng = as_rng(seed)
    triggers = homogeneous_poisson(session_rate, duration, seed=rng)
    if triggers.size == 0:
        return triggers
    times = []
    for t in triggers:
        n = max(1, int(np.ceil(float(cluster_size_dist.sample(1, seed=rng)[0]))))
        gaps = within_gap_dist.sample(n - 1, seed=rng) if n > 1 else np.zeros(0)
        offsets = np.concatenate([[0.0], np.cumsum(gaps)])
        times.append(t + offsets)
    all_times = np.sort(np.concatenate(times))
    return all_times[all_times < duration]


# ----------------------------------------------------------------------
# arrivals/onoff.py
# ----------------------------------------------------------------------
def onoff_intervals_loop(source, duration, seed=None, start_on=None):
    """Pre-PR ON/OFF interval loop: one ``sample(1)`` call per period."""
    rng = as_rng(seed)
    on = bool(rng.random() < 0.5) if start_on is None else start_on
    t = 0.0
    out = []
    while t < duration:
        length = float(
            (source.on_dist if on else source.off_dist).sample(1, seed=rng)[0]
        )
        if on:
            out.append((t, min(t + length, duration)))
        t += length
        on = not on
    return out


def multiplex_onoff_loop(n_sources, n_bins, bin_width, source, seed=None):
    """Pre-superpose-kernel aggregation: one ``source.counts`` call per
    spawned child stream, accumulated left to right.

    Frozen as of the superpose PR, i.e. *with* the first-bin clamp
    (``min(int(start / bin_width), n_bins - 1)``) that guards against a
    float quotient rounding up to ``n_bins`` for a start just inside the
    horizon — the batched kernel freezes the fixed convention.
    """
    total = np.zeros(n_bins, dtype=float)
    for rng in spawn_rngs(seed, n_sources):
        duration = n_bins * bin_width
        work = np.zeros(n_bins, dtype=float)
        for start, end in source.intervals(duration, seed=rng):
            first = min(int(start / bin_width), n_bins - 1)
            last = min(int(end / bin_width), n_bins - 1)
            if first == last:
                work[first] += end - start
                continue
            work[first] += (first + 1) * bin_width - start
            work[first + 1:last] += bin_width
            work[last] += end - last * bin_width
        total += work * source.rate
    return total


def superpose_renewal_loop(n_sources, n_bins, bin_width, gap_dist, seed=None,
                           gap_block=256):
    """Per-source Pareto-renewal superposition: the
    ``arrivals.pareto_renewal`` streaming protocol (blocked gap draws, one
    cumsum per block, bincount of in-window arrivals) applied source by
    source.  Counts are integers, so the sum is exact and order-free; only
    the per-stream draw protocol (``gap_block`` gaps per round) must match
    the batched kernel's.
    """
    horizon = n_bins * bin_width
    counts = np.zeros(n_bins, dtype=np.int64)
    for rng in spawn_rngs(seed, n_sources):
        t = 0.0
        while t < horizon:
            gaps = gap_dist.sample(gap_block, seed=rng)
            cum = t + np.cumsum(gaps)
            t = float(cum[-1])
            in_window = cum[cum < horizon]
            if in_window.size:
                idx = (in_window / bin_width).astype(np.int64)
                np.minimum(idx, n_bins - 1, out=idx)
                counts += np.bincount(idx, minlength=n_bins)
    return counts


# ----------------------------------------------------------------------
# traces/io.py
# ----------------------------------------------------------------------
def write_connection_trace_loop(trace, path):
    """Pre-columnar writer: one ``trace.record(i)`` + format call per row."""
    with open_trace(path, "wt") as fh:
        fh.write(CONN_HEADER + "\n")
        for i in range(len(trace)):
            fh.write(format_connection_line(trace.record(i)) + "\n")


def read_connection_trace_loop(path, name=None):
    """Pre-columnar reader: one ``ConnectionRecord`` per line."""
    with open_trace(path, "rt") as fh:
        _expect_header(fh, CONN_HEADER, path)
        records = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 8:
                raise ValueError(
                    f"{path}:{lineno}: expected 8 fields, got {len(parts)}"
                )
            sid = int(parts[7])
            records.append(
                ConnectionRecord(
                    start_time=float(parts[0]),
                    duration=float(parts[1]),
                    protocol=parts[2],
                    bytes_orig=int(parts[3]),
                    bytes_resp=int(parts[4]),
                    orig_host=int(parts[5]),
                    resp_host=int(parts[6]),
                    session_id=None if sid < 0 else sid,
                )
            )
    return ConnectionTrace(name or _name_from(path), records)


def write_packet_trace_loop(trace, path):
    """Pre-columnar writer: one ``trace.record(i)`` + format call per row."""
    with open_trace(path, "wt") as fh:
        fh.write(PKT_HEADER + "\n")
        for i in range(len(trace)):
            fh.write(format_packet_line(trace.record(i)) + "\n")


def read_packet_trace_loop(path, name=None):
    """Pre-columnar reader: one ``PacketRecord`` per line."""
    with open_trace(path, "rt") as fh:
        _expect_header(fh, PKT_HEADER, path)
        packets = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 6:
                raise ValueError(
                    f"{path}:{lineno}: expected 6 fields, got {len(parts)}"
                )
            packets.append(
                PacketRecord(
                    timestamp=float(parts[0]),
                    protocol=parts[1],
                    connection_id=int(parts[2]),
                    direction=Direction(int(parts[3])),
                    size=int(parts[4]),
                    user_data=bool(int(parts[5])),
                )
            )
    return PacketTrace(name or _name_from(path), packets)
