"""Closed-form Lindley waiting times.

Lindley's recursion for a FIFO single-server queue,

    W_1 = 0,   W_{k+1} = max(0, W_k + S_k - A_k),

where ``S_k`` is the k-th service time and ``A_k = t_{k+1} - t_k`` the k-th
interarrival gap, unrolls exactly.  With ``X_k = S_k - A_k`` and the prefix
sums ``U_k = X_1 + ... + X_k`` (``U_0 = 0``),

    W_{k+1} = max(0, X_k, X_k + X_{k-1}, ..., X_k + ... + X_1)
            = U_k - min(U_0, U_1, ..., U_k)
            = U_k - min(0, running-min(U)_k),

the last step because ``W_{k+1} = 0`` exactly when ``U_k`` is itself the
running minimum (and below 0).  One ``cumsum`` plus one
``minimum.accumulate`` therefore replace the per-packet Python loop.

Exactness: under exact arithmetic the closed form and the recursion are the
same number, so for inputs on which float64 arithmetic is exact (integer
values below 2**53 — what the equivalence tests and benchmark use) the two
are bit-identical.  For general floats they differ only by reassociation of
the same sums (the loop computes ``(W + S) - A``; the closed form a prefix
sum), and the closed form is still exactly nonnegative by construction —
no clamp is applied.
"""

from __future__ import annotations

import numpy as np


def lindley_waits(service: np.ndarray, gaps: np.ndarray) -> np.ndarray:
    """Waiting times of every packet in a FIFO queue, vectorized.

    Parameters
    ----------
    service:
        Per-packet service times ``S_1 .. S_n``.
    gaps:
        Interarrival gaps ``A_1 .. A_{n-1}`` (``A_k = t_{k+1} - t_k``) of
        the already-sorted arrival sequence.
    """
    s = np.asarray(service, dtype=float)
    a = np.asarray(gaps, dtype=float)
    n = s.size
    if a.size != max(n - 1, 0):
        raise ValueError(
            f"need n-1 gaps for n={n} service times, got {a.size}"
        )
    if n <= 1:
        return np.zeros(n)
    # One temp (u) plus the output; every other step reuses a buffer.  At
    # multi-million-packet sizes the kernel is memory-bound, so avoiding the
    # zeros() memset and the three intermediate allocations of the naive
    # spelling is worth ~1.5x.  The arithmetic (and hence bitness) is
    # unchanged: each out= writes the same value the expression form would.
    w = np.empty(n)
    w[0] = 0.0
    u = np.subtract(s[:-1], a)
    np.cumsum(u, out=u)
    tail = w[1:]
    np.minimum.accumulate(u, out=tail)   # running-min(U)
    np.minimum(tail, 0.0, out=tail)      # min(0, running-min(U))
    np.subtract(u, tail, out=tail)       # W_{k+1} = U_k - min(0, ...)
    return w
