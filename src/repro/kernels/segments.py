"""Bit-exact segmented (per-connection) array kernels.

The source synthesizers all share one shape of work: a flat array of draws
partitioned into variable-length segments (one per connection / cluster /
burst), with a per-segment ``cumsum`` / ``sort`` / ``sum`` applied to each.
The naive vectorization — a global ``cumsum`` minus per-segment offsets —
is *not* bit-identical to the per-segment loop, because float addition is
not associative.

These kernels are.  They group segments by length, gather each group into a
contiguous ``(n_segments, length)`` 2-D block, and reduce along ``axis=1``:
numpy evaluates an axis-1 reduction over a contiguous row with exactly the
same pairwise summation (or sort network) as the 1-D call on that row, so
every segment's result matches ``np.cumsum(segment)`` / ``np.sort(segment)``
/ ``segment.sum()`` bit for bit.  Total work stays O(total elements) plus
one small numpy dispatch per *distinct* segment length.
"""

from __future__ import annotations

import numpy as np


def segment_starts(lengths: np.ndarray) -> np.ndarray:
    """Flat start index of each segment (exclusive prefix sum of lengths)."""
    lens = np.asarray(lengths, dtype=np.int64)
    starts = np.zeros(lens.size, dtype=np.int64)
    if lens.size > 1:
        np.cumsum(lens[:-1], out=starts[1:])
    return starts


def block_view(x: np.ndarray, size: int) -> np.ndarray:
    """Leading non-overlapping blocks of ``size`` as an ``(n_blocks, size)``
    view (trailing remainder dropped).  Zero-copy for contiguous input."""
    if size < 1:
        raise ValueError(f"block size must be >= 1, got {size}")
    x = np.ascontiguousarray(x)
    n_blocks = x.size // size
    return x[: n_blocks * size].reshape(n_blocks, size)


def _checked(values, lengths):
    values = np.asarray(values)
    lens = np.asarray(lengths, dtype=np.int64)
    if np.any(lens < 0):
        raise ValueError("segment lengths must be >= 0")
    total = int(lens.sum())
    if total != values.size:
        raise ValueError(
            f"segment lengths sum to {total}, but got {values.size} values"
        )
    return values, lens


def _length_groups(lens: np.ndarray, starts: np.ndarray):
    """Yield ``(segment_rows, gather)`` per distinct positive length, where
    ``gather`` is the ``(len(segment_rows), length)`` flat-index matrix."""
    for length in np.unique(lens):
        if length == 0:
            continue
        rows = np.flatnonzero(lens == length)
        gather = starts[rows][:, None] + np.arange(length, dtype=np.int64)
        yield rows, gather


def grouped_cumsum(
    values: np.ndarray,
    lengths: np.ndarray,
    offsets: np.ndarray | None = None,
) -> np.ndarray:
    """Per-segment ``cumsum``, optionally shifted by a per-segment scalar.

    Equivalent to ``offsets[i] + np.cumsum(segment_i)`` for every segment,
    bit for bit.
    """
    values, lens = _checked(values, lengths)
    starts = segment_starts(lens)
    out = np.empty(values.size, dtype=float)
    offs = None if offsets is None else np.asarray(offsets, dtype=float)
    for rows, gather in _length_groups(lens, starts):
        acc = np.cumsum(values[gather], axis=1)
        if offs is not None:
            acc = offs[rows][:, None] + acc
        out[gather.reshape(-1)] = acc.reshape(-1)
    return out


def grouped_sort(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment ascending sort: ``np.sort(segment_i)`` for every segment."""
    values, lens = _checked(values, lengths)
    starts = segment_starts(lens)
    out = np.empty(values.size, dtype=values.dtype)
    for rows, gather in _length_groups(lens, starts):
        out[gather.reshape(-1)] = np.sort(values[gather], axis=1).reshape(-1)
    return out


#: Below this many segments, a plain slice loop beats the group-by-length
#: gather machinery (``np.unique`` + index-matrix setup per distinct length).
_FEW_SEGMENTS = 8


def grouped_sum(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment total: ``segment_i.sum()`` for every segment (0.0 for
    empty segments), bit-identical to the per-segment call."""
    values, lens = _checked(values, lengths)
    starts = segment_starts(lens)
    if lens.size <= _FEW_SEGMENTS:
        # Same slice ``.sum()`` the caller's loop would run — still bit-exact.
        return np.array([
            values[s: s + ln].sum() if ln else 0.0
            for s, ln in zip(starts, lens)
        ])
    out = np.zeros(lens.size, dtype=float)
    for rows, gather in _length_groups(lens, starts):
        out[rows] = values[gather].sum(axis=1)
    return out
