"""Vectorized hot-path kernels.

Every kernel in this package replaces a per-packet / per-connection Python
loop elsewhere in the library with an O(n) numpy formulation that is
*bit-identical* to the loop it replaced (under exact arithmetic — see each
kernel's docstring for the precise claim).  The frozen pre-PR loop
implementations live in :mod:`repro.kernels.reference` and back both the
equivalence tests (``tests/test_kernels.py``) and the before/after timings
recorded in ``benchmarks/BENCH_kernels.json``.

Contents:

* :func:`lindley_waits` — closed-form FIFO waiting times,
  ``W = U - min(0, running-min(U))`` over ``U = cumsum(S - A)``;
* :func:`grouped_cumsum`, :func:`grouped_sort`, :func:`grouped_sum` —
  segmented (per-connection) operations that group segments by length and
  reduce along axis 1 of a contiguous 2-D view, which numpy evaluates with
  the same pairwise summation / sort network as the per-segment 1-D call —
  so results match a per-segment Python loop bit for bit;
* :func:`segment_starts`, :func:`block_view` — index plumbing for the above;
* :func:`superpose_onoff`, :func:`superpose_onoff_groups`,
  :func:`superpose_renewal` — batched superposition of 10^5+ heavy-tailed
  ON/OFF / Pareto-renewal sources with shared-memory process fan-out
  (:mod:`repro.kernels.superpose`), bit-identical to the frozen per-source
  loops on the same spawned RNG streams; the grouped entry reduces one
  sweep into many independent replication aggregates.
"""

from repro.kernels.lindley import lindley_waits
from repro.kernels.segments import (
    block_view,
    grouped_cumsum,
    grouped_sort,
    grouped_sum,
    segment_starts,
)
from repro.kernels.superpose import (
    DEFAULT_CHUNK,
    DEFAULT_GAP_BLOCK,
    superpose_onoff,
    superpose_onoff_groups,
    superpose_renewal,
)

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_GAP_BLOCK",
    "block_view",
    "grouped_cumsum",
    "grouped_sort",
    "grouped_sum",
    "lindley_waits",
    "segment_starts",
    "superpose_onoff",
    "superpose_onoff_groups",
    "superpose_renewal",
]
