"""Out-of-core streaming trace analytics with mergeable sketches.

The in-memory path (``traces.io`` → ``PacketTrace`` → estimators) holds
the whole trace; this subsystem computes the same battery — count-process
ladder / variance-time, interarrival and size distributions, Pareto tail
fits — in one bounded-memory pass, shard-parallel over line-aligned byte
chunks, with partial sketches merged exactly.

Entry points::

    from repro.stream import scan_trace, write_stream_trace

    info = write_stream_trace("big.txt.gz", n_packets=2_000_000, seed=1)
    report = scan_trace("big.txt.gz", jobs=4)
    print(report.render())
    report.summary.counts.variance_time().hurst(min_level=10)
"""

from repro.stream.chunks import DEFAULT_CHUNK_BYTES, Chunk, plan_chunks
from repro.stream.driver import (
    ChunkMetrics,
    ScanConfig,
    ScanReport,
    scan_chunk,
    scan_trace,
    scan_traces,
)
from repro.stream.reader import (
    ConnectionBatch,
    PacketBatch,
    iter_chunk_batches,
    iter_trace_batches,
    sniff_kind,
)
from repro.stream.sketches import (
    CountLadder,
    Log2Histogram,
    QuantileSketch,
    StreamingMoments,
    TopK,
)
from repro.stream.summary import StreamSummary, SummaryConfig
from repro.stream.synth import StreamTraceInfo, write_stream_trace

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "Chunk",
    "ChunkMetrics",
    "ConnectionBatch",
    "CountLadder",
    "Log2Histogram",
    "PacketBatch",
    "QuantileSketch",
    "ScanConfig",
    "ScanReport",
    "StreamSummary",
    "StreamTraceInfo",
    "StreamingMoments",
    "SummaryConfig",
    "TopK",
    "iter_chunk_batches",
    "iter_trace_batches",
    "plan_chunks",
    "scan_chunk",
    "scan_trace",
    "scan_traces",
    "sniff_kind",
    "write_stream_trace",
]
