"""Composite per-stream accumulator: everything one pass can measure.

A :class:`StreamSummary` bundles the mergeable sketches of
:mod:`repro.stream.sketches` into the paper's standard battery for one
event stream (packets, or connection starts):

* packet/event count process at a base bin width, with its dyadic
  aggregation ladder and variance-time curve (Figs. 4-5, 12-13);
* an optional byte (size-weighted) count process (Figs. 10-11);
* interarrival quantile sketch + moments + Pareto tail reservoir
  (Figs. 3, 6, 8; Section IV's β fits);
* size moments, log2-size histogram, and size tail reservoir
  (Section V-VI's size/burst distributions).

Order contract: within a chunk, ``update`` sees time-sorted batches; across
chunks, ``merge`` is called left-to-right in chunk order.  That lets the
summary chain interarrivals exactly across every boundary — the gap between
chunk A's last packet and chunk B's first is fed to the interarrival
sketches during the merge, so a sharded scan sees the *identical* multiset
of interarrivals as a sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stream.sketches import (
    CountLadder,
    Log2Histogram,
    QuantileSketch,
    StreamingMoments,
    TopK,
)


@dataclass(frozen=True)
class SummaryConfig:
    """Sketch sizing for a :class:`StreamSummary` (picklable, hashable)."""

    bin_width: float = 0.01
    start: float = 0.0
    end: float | None = None
    quantile_capacity: int = 1024
    tail_capacity: int = 4096
    byte_process: bool = True


class StreamSummary:
    """Single-pass, mergeable summary of one event stream."""

    def __init__(self, config: SummaryConfig):
        self.config = config
        self.n = 0
        self.first_time: float | None = None
        self.last_time: float | None = None
        self.counts = CountLadder(config.bin_width, start=config.start,
                                  end=config.end)
        self.bytes = (
            CountLadder(config.bin_width, start=config.start, end=config.end,
                        weighted=True)
            if config.byte_process else None
        )
        self.size_moments = StreamingMoments()
        self.size_log2 = Log2Histogram()
        self.size_tail = TopK(config.tail_capacity)
        self.gap_moments = StreamingMoments()
        self.gap_quantiles = QuantileSketch(config.quantile_capacity)
        self.gap_tail = TopK(config.tail_capacity)

    # ------------------------------------------------------------------
    def update(self, times, sizes=None) -> None:
        """Fold in one time-sorted batch (times ascending within/between
        batches of the same stream segment)."""
        t = np.asarray(times, dtype=float)
        if t.size == 0:
            return
        sz = None if sizes is None else np.asarray(sizes, dtype=float)
        self.counts.update(t)
        if self.bytes is not None:
            self.bytes.update(t, sz if sz is not None else np.ones_like(t))
        if sz is not None:
            self.size_moments.update(sz)
            self.size_log2.update(sz)
            self.size_tail.update(sz)
        gaps = np.diff(t)
        if self.last_time is not None:
            gaps = np.concatenate([[t[0] - self.last_time], gaps])
        if gaps.size:
            self.gap_moments.update(gaps)
            self.gap_quantiles.update(gaps)
            self.gap_tail.update(gaps)
        if self.first_time is None:
            self.first_time = float(t[0])
        self.last_time = float(t[-1])
        self.n += int(t.size)

    # ------------------------------------------------------------------
    def merge(self, other: "StreamSummary") -> None:
        """Absorb ``other``, which must cover the *later* stream segment."""
        if other.config != self.config:
            raise ValueError("cannot merge summaries with different configs")
        if other.n == 0:
            return
        if self.n and other.first_time is not None:
            boundary = other.first_time - self.last_time
            self.gap_moments.update([boundary])
            self.gap_quantiles.update([boundary])
            self.gap_tail.update([boundary])
        self.counts.merge(other.counts)
        if self.bytes is not None:
            self.bytes.merge(other.bytes)
        self.size_moments.merge(other.size_moments)
        self.size_log2.merge(other.size_log2)
        self.size_tail.merge(other.size_tail)
        self.gap_moments.merge(other.gap_moments)
        self.gap_quantiles.merge(other.gap_quantiles)
        self.gap_tail.merge(other.gap_tail)
        if self.first_time is None:
            self.first_time = other.first_time
        self.last_time = other.last_time
        self.n += other.n

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        if self.first_time is None:
            return 0.0
        return self.last_time - self.first_time

    @property
    def total_bytes(self) -> float:
        return self.size_moments.total

    @property
    def nbytes(self) -> int:
        """Peak accumulator footprint — bounded by sketch sizing + window,
        independent of how many records streamed through."""
        total = self.counts.nbytes
        if self.bytes is not None:
            total += self.bytes.nbytes
        for sk in (self.size_moments, self.size_log2, self.size_tail,
                   self.gap_moments, self.gap_quantiles, self.gap_tail):
            total += sk.nbytes
        return int(total)

    # -- headline estimates -------------------------------------------
    def interarrival_tail_beta(self, tail_fraction: float = 0.03):
        """Streamed Pareto β of the upper interarrival tail (Section IV).

        Bit-identical to ``pareto.tail_fit`` on the full interarrival set
        while the reservoir holds the needed order statistics; fractions the
        reservoir cannot cover exactly raise ``ValueError``.
        """
        return self.gap_tail.tail_fit(tail_fraction)

    def size_tail_beta(self, tail_fraction: float = 0.05):
        """Streamed Pareto β of the upper size tail (Section VI)."""
        return self.size_tail.tail_fit(tail_fraction)

    def best_tail_fraction(self, requested: float, which: str = "gap") -> float:
        """Largest fraction <= ``requested`` the reservoir covers exactly."""
        reservoir = self.gap_tail if which == "gap" else self.size_tail
        return min(requested, reservoir.max_tail_fraction())
