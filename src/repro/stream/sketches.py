"""Mergeable bounded-memory accumulators for single-pass trace analytics.

Every estimator the paper runs over a trace — count processes and the
variance-time curve (Figs. 4-5, 12-13), interarrival/size CDFs (Figs. 3,
6, 8), Pareto tail fits (Sections IV and VI) — is a single-pass statistic,
so it admits an accumulator that (a) consumes record batches with memory
bounded by the sketch, never by the trace, and (b) supports an associative
``merge`` so shard-parallel scans of byte-range chunks reduce to the same
answer as one sequential pass.

Exactness contract (relied on by the shard-determinism tests):

* :class:`CountLadder` bin counts and :class:`TopK` tail samples are
  *bit-identical* to the in-memory path (``CountProcess.from_times`` /
  ``stats.tail`` helpers) — integer counts and order statistics are exact
  under any partition of the input.
* :class:`StreamingMoments` merges are mathematically associative (Chan's
  parallel update); floating-point rounding differs from a single-pass mean
  only at machine precision, and is *deterministic* for a fixed chunk plan
  because the driver always merges partials in chunk order.
* :class:`QuantileSketch` is a deterministic compactor sketch: its rank
  error is bounded by :meth:`QuantileSketch.max_rank_error`, an exact
  count of the weight discarded by the compactions that actually happened.
"""

from __future__ import annotations

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.utils.binning import bin_edges
from repro.utils.validation import require_positive

__all__ = [
    "CountLadder",
    "Log2Histogram",
    "QuantileSketch",
    "StreamingMoments",
    "TopK",
]


# ----------------------------------------------------------------------
# Streaming mean / variance (Welford / Chan)
# ----------------------------------------------------------------------
class StreamingMoments:
    """Streaming count / mean / variance / extremes (Welford-Chan).

    ``update`` folds a batch in via Chan et al.'s pairwise combination of
    (n, mean, M2) triples; ``merge`` applies the same combination to two
    accumulators, so the merge is associative and a sharded scan matches a
    sequential one up to float rounding.
    """

    __slots__ = ("n", "mean", "m2", "min", "max", "total")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = np.inf
        self.max = -np.inf
        self.total = 0.0

    def update(self, values) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self._combine(arr.size, float(arr.mean()),
                      float(((arr - arr.mean()) ** 2).sum()),
                      float(arr.min()), float(arr.max()), float(arr.sum()))

    def merge(self, other: "StreamingMoments") -> None:
        self._combine(other.n, other.mean, other.m2, other.min, other.max,
                      other.total)

    def _combine(self, n, mean, m2, lo, hi, total) -> None:
        if n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
            self.min, self.max, self.total = lo, hi, total
            return
        delta = mean - self.mean
        combined = self.n + n
        self.m2 = self.m2 + m2 + delta * delta * (self.n * n / combined)
        self.mean = self.mean + delta * (n / combined)
        self.n = combined
        self.min = min(self.min, lo)
        self.max = max(self.max, hi)
        self.total += total

    @property
    def variance(self) -> float:
        """Population variance (ddof=0, matching ``np.var``)."""
        return self.m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def nbytes(self) -> int:
        return 6 * 8

    def __repr__(self):
        return (f"StreamingMoments(n={self.n}, mean={self.mean:.6g}, "
                f"var={self.variance:.6g})")


# ----------------------------------------------------------------------
# log2-size histogram
# ----------------------------------------------------------------------
class Log2Histogram:
    """Counts of values by ``floor(log2(v))`` bucket (plus a zero bucket).

    The paper characterizes size distributions on log2 axes (log2-normal
    packet sizes, Section V); this is the streaming raw material for those
    plots.  Merging adds the integer bucket counts — exact.

    Bucket convention (pinned, inherited by the windowed variants):

    * values ``<= 0`` (zero and negative) never enter a log bucket; they
      accumulate in the separate :attr:`zeros` counter;
    * sub-unity positives (``0 < v < 1``, exponent < 0) clamp into
      bucket 0 together with ``1 <= v < 2`` — the histogram's domain is
      sizes in whole units (bytes, packets), so fractions below one unit
      are not resolved;
    * values at or above ``2 ** max_exponent`` clamp into the last
      bucket.

    So bucket 0 counts ``0 < v < 2``, bucket ``i`` (0 < i < last) counts
    ``2**i <= v < 2**(i+1)``, and the last bucket is open-ended.
    """

    __slots__ = ("counts", "zeros")

    def __init__(self, max_exponent: int = 64):
        self.counts = np.zeros(max_exponent, dtype=np.int64)
        self.zeros = 0

    def update(self, values) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        positive = arr[arr > 0]
        self.zeros += int(arr.size - positive.size)
        if positive.size:
            exps = np.floor(np.log2(positive)).astype(np.int64)
            # Clamp both ends per the bucket convention above: negative
            # exponents (sub-unity values) land in bucket 0, oversized
            # values in the open-ended last bucket.
            exps = np.clip(exps, 0, self.counts.size - 1)
            self.counts += np.bincount(exps, minlength=self.counts.size)

    def merge(self, other: "Log2Histogram") -> None:
        if other.counts.size != self.counts.size:
            size = max(self.counts.size, other.counts.size)
            merged = np.zeros(size, dtype=np.int64)
            merged[: self.counts.size] += self.counts
            merged[: other.counts.size] += other.counts
            self.counts = merged
        else:
            self.counts = self.counts + other.counts
        self.zeros += other.zeros

    @property
    def n(self) -> int:
        return int(self.counts.sum()) + self.zeros

    def nonzero_buckets(self) -> list[tuple[int, int]]:
        """(exponent, count) pairs for occupied buckets."""
        idx = np.flatnonzero(self.counts)
        return [(int(i), int(self.counts[i])) for i in idx]

    @property
    def nbytes(self) -> int:
        return int(self.counts.nbytes) + 8


# ----------------------------------------------------------------------
# top-k tail reservoir
# ----------------------------------------------------------------------
class TopK:
    """Exact reservoir of the ``k`` largest values seen.

    Because the Hill estimator and :func:`repro.distributions.pareto.tail_fit`
    consume only the upper order statistics, a top-k reservoir with
    ``capacity >= k_tail + 1`` reproduces the batch tail fit *bit-for-bit*
    while storing O(k) floats.  ``merge`` keeps the combined top-k, which is
    exactly the top-k of the union — order statistics are partition-proof.
    """

    __slots__ = ("capacity", "values", "n_seen")

    def __init__(self, capacity: int):
        require_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self.values = np.empty(0, dtype=float)  # sorted ascending
        self.n_seen = 0

    def update(self, values) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self.n_seen += int(arr.size)
        merged = np.concatenate([self.values, arr])
        if merged.size > self.capacity:
            merged = np.partition(merged, merged.size - self.capacity)[
                merged.size - self.capacity:
            ]
        self.values = np.sort(merged)

    def merge(self, other: "TopK") -> None:
        self.n_seen += other.n_seen - other.values.size
        self.update(other.values)

    def tail_samples(self, k: int) -> np.ndarray:
        """The ``k`` largest values, ascending (exact)."""
        if not 0 <= k <= self.values.size:
            raise ValueError(
                f"k must be in [0, {self.values.size}] (reservoir holds "
                f"{self.values.size} of {self.n_seen} seen), got {k}"
            )
        return self.values[self.values.size - k:].copy()

    def max_tail_fraction(self) -> float:
        """The largest ``tail_fraction`` :meth:`tail_fit` can serve.

        The fit for fraction ``f`` needs ``k = floor(n_seen * f)`` tail
        values *plus one* as the threshold, all resident in the
        reservoir, so the feasible ceiling is ``(stored - 1) / n_seen``.
        Streaming callers use this to degrade the requested fraction
        instead of guessing after a failure.
        """
        if self.n_seen == 0 or self.values.size < 2:
            return 0.0
        return (self.values.size - 1) / self.n_seen

    def hill(self, k: int) -> float:
        """Hill estimate of the Pareto tail index from the k largest values.

        Identical to ``repro.distributions.pareto.hill_estimator`` on the
        full sample whenever ``k + 1 <= capacity``.
        """
        if not 1 <= k < self.n_seen:
            raise ValueError(f"k must satisfy 1 <= k < n (= {self.n_seen}), got {k}")
        if k + 1 > self.values.size:
            raise ValueError(
                f"reservoir capacity {self.capacity} too small for k={k}; "
                "need the (k+1)-th largest value as the tail threshold; "
                f"largest feasible tail fraction is "
                f"{self.max_tail_fraction():.6g}"
            )
        threshold = self.values[self.values.size - k - 1]
        if threshold <= 0:
            raise ValueError("Hill estimator requires a positive tail threshold")
        logs = np.log(self.values[self.values.size - k:] / threshold)
        total = float(np.sum(logs))
        if total <= 0:
            raise ValueError("degenerate upper tail")
        return k / total

    def tail_fit(self, tail_fraction: float = 0.05) -> tuple[float, float, int]:
        """Pareto (location, shape, k) for the upper ``tail_fraction``.

        Mirrors :func:`repro.distributions.pareto.tail_fit` exactly — same
        ``k = max(2, floor(n * fraction))`` and the same order statistics —
        so the streamed β estimate equals the batch one bit-for-bit.
        Raises when the reservoir is too small for the requested fraction;
        the error names the largest feasible fraction
        (:meth:`max_tail_fraction`) so callers can degrade instead of
        guessing.
        """
        n = self.n_seen
        k = max(2, int(np.floor(n * tail_fraction)))
        if k >= n:
            raise ValueError("tail fraction leaves no body below the threshold")
        shape = self.hill(k)
        location = float(self.values[self.values.size - k - 1])
        return location, shape, k

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes) + 16


# ----------------------------------------------------------------------
# deterministic mergeable quantile sketch
# ----------------------------------------------------------------------
class QuantileSketch:
    """Deterministic compactor (GK/KLL-style) quantile sketch.

    Items live in level buffers; an item at level ``l`` stands for ``2**l``
    originals.  When a buffer exceeds ``capacity`` it is sorted and every
    other item is promoted to the next level with doubled weight — the
    survivors' parity alternates between compactions, so successive
    compaction errors partially cancel.  Total weight is conserved exactly
    (an odd item stays behind), so ``total_weight == n`` always.

    Error bound: each compaction at level ``l`` perturbs any rank query by
    at most ``2**l``; :meth:`max_rank_error` returns the exact sum over the
    compactions that occurred — roughly ``n * log2(n/capacity) / capacity``
    — and the property tests assert observed rank error stays within it.
    ``merge`` concatenates level buffers and re-compacts; the bound adds.
    """

    __slots__ = ("capacity", "_levels", "_counts", "_parity", "_error", "n")

    def __init__(self, capacity: int = 1024):
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        self.capacity = int(capacity)
        self._levels: list[list[np.ndarray]] = [[]]
        self._counts: list[int] = [0]
        self._parity: list[int] = [0]
        self._error = 0  # sum of 2**l over performed compactions
        self.n = 0

    # -- updates -------------------------------------------------------
    def update(self, values) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        self.n += int(arr.size)
        # Feed in capacity-sized slices so level-0 memory stays bounded
        # even for batches much larger than the sketch.
        for lo in range(0, arr.size, self.capacity):
            self._push(0, arr[lo: lo + self.capacity])

    def _push(self, level: int, chunk: np.ndarray) -> None:
        while level >= len(self._levels):
            self._levels.append([])
            self._counts.append(0)
            self._parity.append(0)
        self._levels[level].append(chunk)
        self._counts[level] += chunk.size
        if self._counts[level] > self.capacity:
            self._compact(level)

    def _compact(self, level: int) -> None:
        arr = np.sort(np.concatenate(self._levels[level]))
        if arr.size % 2:
            # hold the largest item back so total weight is conserved
            leftover, arr = arr[-1:], arr[:-1]
        else:
            leftover = arr[:0]
        survivors = arr[self._parity[level]:: 2]
        self._parity[level] ^= 1
        self._levels[level] = [leftover] if leftover.size else []
        self._counts[level] = int(leftover.size)
        self._error += 2 ** level
        if survivors.size:
            self._push(level + 1, survivors)

    # -- merge ---------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        if other.capacity != self.capacity:
            raise ValueError(
                f"cannot merge sketches of different capacity "
                f"({self.capacity} vs {other.capacity})"
            )
        self.n += other.n
        self._error += other._error
        for level, parts in enumerate(other._levels):
            for chunk in parts:
                if chunk.size:
                    self._push(level, chunk)

    # -- queries -------------------------------------------------------
    def _items(self) -> tuple[np.ndarray, np.ndarray]:
        values, weights = [], []
        for level, parts in enumerate(self._levels):
            for chunk in parts:
                if chunk.size:
                    values.append(chunk)
                    weights.append(np.full(chunk.size, 2 ** level, dtype=np.int64))
        if not values:
            return np.empty(0), np.empty(0, dtype=np.int64)
        v = np.concatenate(values)
        w = np.concatenate(weights)
        order = np.argsort(v, kind="stable")
        return v[order], w[order]

    @property
    def total_weight(self) -> int:
        """Conserved exactly: always equals ``n``."""
        return int(sum(
            chunk.size * 2 ** level
            for level, parts in enumerate(self._levels)
            for chunk in parts
        ))

    def max_rank_error(self) -> int:
        """Exact worst-case rank error of any quantile query (in items)."""
        return int(self._error)

    def quantile(self, q: float) -> float:
        """Smallest stored value whose cumulative weight reaches ``q * n``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        values, weights = self._items()
        if values.size == 0:
            raise ValueError("empty sketch")
        cum = np.cumsum(weights)
        target = q * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        return float(values[min(idx, values.size - 1)])

    def quantiles(self, qs) -> np.ndarray:
        return np.array([self.quantile(float(q)) for q in np.asarray(qs)])

    def cdf(self, x: float) -> float:
        """Approximate P(X <= x)."""
        values, weights = self._items()
        if values.size == 0:
            raise ValueError("empty sketch")
        idx = int(np.searchsorted(values, x, side="right"))
        return float(weights[:idx].sum() / weights.sum())

    @property
    def nbytes(self) -> int:
        return int(sum(
            chunk.nbytes for parts in self._levels for chunk in parts
        )) + 24 * len(self._levels)

    def __repr__(self):
        return (f"QuantileSketch(capacity={self.capacity}, n={self.n}, "
                f"levels={len(self._levels)}, "
                f"max_rank_error={self.max_rank_error()})")


# ----------------------------------------------------------------------
# hierarchical count-process accumulator
# ----------------------------------------------------------------------
class CountLadder:
    """Count-process accumulator yielding a dyadic aggregation ladder.

    Maintains per-bin event counts (optionally size-weighted, for byte
    processes) over an observation window in a single pass; the dyadic
    ladder — the same counts at bin widths ``w, 2w, 4w, ...`` — and the
    full variance-time curve are then derived without revisiting the trace.
    Memory is ``O(window / bin_width)``: fixed by the window, independent
    of how many events (packets) the trace holds.

    Binning is bit-identical to ``CountProcess.from_times`` /
    ``PacketTrace.count_process`` on the same window: batches are
    histogrammed against the *same* edge array the batch path builds
    (``bin_edges``), and integer partial histograms sum exactly, so any
    partition of the input — batches within a chunk, chunks across shards —
    reproduces the sequential counts bit-for-bit.

    Two modes:

    * **windowed** (``end`` given): edges are fixed up front; events outside
      ``[start, end]`` are dropped and an event exactly at the final edge
      lands in the last bin (the numpy closed-right convention) — exactly
      the batch semantics.
    * **open** (``end=None``): the bin array grows geometrically as later
      events arrive (gzip streams, unknown horizon); :meth:`finalize` then
      trims to the whole-bin window ending at the max event seen, again
      matching ``from_times(times, w)`` with its default ``end=max(times)``.
    """

    def __init__(
        self,
        bin_width: float,
        *,
        start: float = 0.0,
        end: float | None = None,
        weighted: bool = False,
    ):
        require_positive(bin_width, "bin_width")
        self.bin_width = float(bin_width)
        self.start = float(start)
        self.end = None if end is None else float(end)
        self.weighted = bool(weighted)
        dtype = float if weighted else np.int64
        if self.end is not None:
            self._edges = bin_edges(self.start, self.end, self.bin_width)
            n = max(len(self._edges) - 1, 0)
            self.counts = np.zeros(n, dtype=dtype)
            self._edge_hits = np.zeros(0, dtype=dtype)
        else:
            self._edges = self._make_edges(64)
            self.counts = np.zeros(64, dtype=dtype)
            # Events whose time exactly equals their slot's left edge, per
            # slot.  Needed at finalize: numpy's last bin is closed on the
            # right, so events sitting exactly on what turns out to be the
            # final edge must fold into the last bin, while the rest of that
            # slot (a partial trailing bin) is dropped.
            self._edge_hits = np.zeros(64, dtype=dtype)
        self.n_events = 0          # events accumulated (in-window)
        self.max_time = -np.inf    # largest event time seen (open mode)

    def _make_edges(self, n_bins: int) -> np.ndarray:
        # Identical arithmetic to utils.binning.bin_edges so edge values are
        # bit-equal to the batch path's for any prefix length.
        return self.start + self.bin_width * np.arange(n_bins + 1)

    # -- updates -------------------------------------------------------
    def update(self, times, weights=None) -> None:
        arr = np.asarray(times, dtype=float)
        if arr.size == 0:
            return
        if self.weighted:
            if weights is None:
                raise ValueError("weighted ladder requires weights")
            w = np.asarray(weights, dtype=float)
        else:
            if weights is not None:
                raise ValueError("unweighted ladder got weights")
            w = None
        if self.end is not None:
            if self.counts.size == 0:
                return
            hist, _ = np.histogram(arr, bins=self._edges, weights=w)
            in_window = (arr >= self._edges[0]) & (arr <= self._edges[-1])
            self.n_events += int(np.count_nonzero(in_window))
            if self.weighted:
                self.counts += hist
            else:
                self.counts += hist.astype(np.int64)
            return
        # Open mode: half-open interior binning against edges that always
        # extend strictly beyond the largest event, so no closed-last-edge
        # special case can fire mid-stream.
        hi = float(arr.max())
        self.max_time = max(self.max_time, hi)
        needed = int(np.floor((hi - self.start) / self.bin_width)) + 2
        if needed > self.counts.size:
            # Next power of two: amortized O(1) growth, and the final
            # footprint is a deterministic function of the span alone (not
            # of the batch pattern that grew it) — which is what makes the
            # "memory independent of trace length" bench assertable.
            grown = 1 << (needed - 1).bit_length()
            for attr in ("counts", "_edge_hits"):
                new = np.zeros(grown, dtype=self.counts.dtype)
                old = getattr(self, attr)
                new[: old.size] = old
                setattr(self, attr, new)
            self._edges = self._make_edges(grown)
        idx = np.searchsorted(self._edges, arr, side="right") - 1
        valid = idx >= 0  # drops events before ``start``
        idx = idx[valid]
        vals = arr[valid]
        self.n_events += int(idx.size)
        wv = None if w is None else w[valid]
        on_edge = vals == self._edges[idx]
        if self.weighted:
            self.counts += np.bincount(idx, weights=wv,
                                       minlength=self.counts.size)
            if np.any(on_edge):
                self._edge_hits += np.bincount(
                    idx[on_edge], weights=wv[on_edge],
                    minlength=self.counts.size,
                )
        else:
            self.counts += np.bincount(idx, minlength=self.counts.size)
            if np.any(on_edge):
                self._edge_hits += np.bincount(
                    idx[on_edge], minlength=self.counts.size
                )

    # -- merge ---------------------------------------------------------
    def merge(self, other: "CountLadder") -> None:
        if (other.bin_width != self.bin_width or other.start != self.start
                or other.end != self.end or other.weighted != self.weighted):
            raise ValueError("cannot merge ladders with different layouts")
        if other.counts.size > self.counts.size:
            for attr in ("counts", "_edge_hits"):
                grown = np.zeros(other.counts.size, dtype=self.counts.dtype)
                old = getattr(self, attr)
                grown[: old.size] = old
                setattr(self, attr, grown)
            self._edges = other._edges
        self.counts[: other.counts.size] += other.counts
        self._edge_hits[: other._edge_hits.size] += other._edge_hits
        self.n_events += other.n_events
        self.max_time = max(self.max_time, other.max_time)

    # -- results -------------------------------------------------------
    def finalize(self) -> np.ndarray:
        """Per-bin counts over the whole-bin window (exact batch semantics)."""
        if self.end is not None:
            return self.counts.copy()
        if self.n_events == 0 or self.max_time < self.start:
            return self.counts[:0].copy()
        edges = bin_edges(self.start, self.max_time, self.bin_width)
        n_bins = len(edges) - 1
        if n_bins < 1:
            # Zero-span window — every event sits exactly at ``start``; the
            # batch path (``bin_counts``) widens to a single bin there.
            return self.counts[:1].copy()
        out = self.counts[:n_bins].copy()
        if 0 < n_bins < self.counts.size:
            # Fold events sitting exactly on the final edge into the last
            # (closed-right) bin; the remainder of that slot is the partial
            # trailing bin the batch path drops.
            out[-1] += self._edge_hits[n_bins]
        return out

    def as_count_process(self) -> CountProcess:
        return CountProcess(self.finalize(), self.bin_width)

    def ladder(self, max_levels: int | None = None, min_bins: int = 2) -> list[CountProcess]:
        """The dyadic aggregation ladder: block means at widths ``w * 2**l``.

        Level 0 is the base process; level ``l`` is ``aggregated(2**l)``.
        Stops when fewer than ``min_bins`` aggregated bins remain.
        """
        base = self.as_count_process()
        out = [base]
        level = 1
        while max_levels is None or level < max_levels:
            step = 2 ** level
            if base.n_bins // step < min_bins:
                break
            out.append(base.aggregated(step))
            level += 1
        return out

    def variance_time(self, levels=None, *, normalized: bool = True):
        """Variance-time curve of the accumulated process (Figs. 5, 12-13)."""
        from repro.selfsim.variance_time import variance_time_curve

        return variance_time_curve(self.as_count_process(), levels,
                                   normalized=normalized)

    @property
    def nbytes(self) -> int:
        return (int(self.counts.nbytes) + int(self._edges.nbytes)
                + int(self._edge_hits.nbytes))
