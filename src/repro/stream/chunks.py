"""Chunk planning: split a trace file into line-aligned byte ranges.

A *chunk* is a half-open byte range ``[start, end)`` of an uncompressed v1
trace file whose boundaries fall exactly on line starts, so every chunk is
a self-contained run of whole records and the chunks tile the file.  Shard
workers each scan one chunk and the driver merges their sketches; because
chunk ownership is byte-exact, the union of the chunks' records is the
file's records with no duplication or loss, for any chunk count.

Gzip streams have no random access, so a ``.gz`` path always plans as a
single sequential chunk (the sketches still bound memory; only scan
parallelism is lost).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.traces.io import is_gzip_path

#: Default shard granularity: large enough to amortize process dispatch,
#: small enough that a multi-hundred-MB trace fans out over many workers.
DEFAULT_CHUNK_BYTES = 32 * 1024 * 1024

_ALIGN_PROBE = 1 << 16  # bytes read while hunting for the next newline


@dataclass(frozen=True)
class Chunk:
    """One line-aligned byte range of a trace file.

    ``start`` is the offset of the first byte of the chunk's first line;
    ``end`` is the offset one past the chunk's final newline (equivalently,
    the ``start`` of the next chunk, or the file size for the last one).
    ``has_header`` marks the chunk holding the one-line v1 header.
    """

    path: str
    index: int
    start: int
    end: int
    compressed: bool = False
    has_header: bool = False

    @property
    def n_bytes(self) -> int:
        return self.end - self.start


def _align_to_line_start(fh, offset: int, size: int) -> int:
    """Smallest line-start offset >= ``offset`` (file size if none)."""
    if offset <= 0:
        return 0
    if offset >= size:
        return size
    fh.seek(offset - 1)
    # The byte *before* offset decides: if it is a newline, ``offset``
    # already starts a line.
    while True:
        block = fh.read(_ALIGN_PROBE)
        if not block:
            return size
        nl = block.find(b"\n")
        if nl >= 0:
            return min(fh.tell() - len(block) + nl + 1, size)


def plan_chunks(
    path: str | os.PathLike,
    *,
    target_bytes: int = DEFAULT_CHUNK_BYTES,
    max_chunks: int | None = None,
) -> list[Chunk]:
    """Split ``path`` into line-aligned chunks of roughly ``target_bytes``.

    Returns at least one chunk.  ``max_chunks`` caps the count (useful to
    match a worker pool).  Compressed traces yield a single chunk.
    """
    if target_bytes < 1:
        raise ValueError(f"target_bytes must be >= 1, got {target_bytes}")
    path = os.fspath(path)
    size = os.path.getsize(path)
    if is_gzip_path(path):
        return [Chunk(path, 0, 0, size, compressed=True, has_header=True)]
    n = max(1, -(-size // target_bytes))  # ceil
    if max_chunks is not None:
        n = max(1, min(n, max_chunks))
    if n == 1:
        return [Chunk(path, 0, 0, size, has_header=True)]
    with open(path, "rb") as fh:
        raw = [round(i * size / n) for i in range(1, n)]
        bounds = [0]
        for offset in raw:
            aligned = _align_to_line_start(fh, offset, size)
            if aligned > bounds[-1]:
                bounds.append(aligned)
        bounds.append(size)
    return [
        Chunk(path, i, lo, hi, has_header=(i == 0))
        for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
        if hi > lo
    ]
