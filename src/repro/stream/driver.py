"""Shard-parallel out-of-core trace scan: plan → fan out → merge.

``scan_trace`` splits a trace into line-aligned byte chunks
(:mod:`repro.stream.chunks`), scans each chunk into a
:class:`~repro.stream.summary.StreamSummary` — fanning out over the
engine's :func:`~repro.engine.runner.pool_map` when ``jobs > 1`` — and
merges the partial sketches *in chunk order*.

Determinism: the chunk plan depends only on the file and ``target_bytes``
(never on ``jobs``), every sketch merge is applied left-to-right in chunk
order, and the integer sketches are partition-exact, so ``--jobs N``
produces identical results to a single-process scan — bin counts and tail
estimates bit-for-bit, floating merges (means/variances) bit-for-bit too
because the merge *order* is fixed.

Per-chunk metrics (rows/s, bytes/s, peak RSS, worker pid) flow into the
``BENCH_*.json`` machinery via :meth:`ScanReport.bench_payload`.
"""

from __future__ import annotations

import logging
import os
import resource
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.engine.metrics import write_bench_files
from repro.utils.pool import pool_map
from repro.stream.chunks import DEFAULT_CHUNK_BYTES, Chunk, plan_chunks
from repro.stream.reader import (
    DEFAULT_BLOCK_BYTES,
    iter_chunk_batches,
    sniff_kind,
)
from repro.stream.summary import StreamSummary, SummaryConfig

logger = logging.getLogger("repro.stream")


def _peak_rss_kb() -> int:
    """Process-lifetime peak resident set size, in KiB."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


@dataclass(frozen=True)
class ScanConfig:
    """Everything a chunk worker needs (picklable)."""

    kind: str = "packet"
    summary: SummaryConfig = field(default_factory=SummaryConfig)
    per_protocol: bool = False
    block_bytes: int = DEFAULT_BLOCK_BYTES


@dataclass(frozen=True)
class ChunkMetrics:
    """Throughput record for one scanned chunk."""

    index: int
    n_records: int
    n_bytes: int
    wall_s: float
    rows_per_s: float
    bytes_per_s: float
    peak_rss_kb: int
    worker: str

    def payload(self) -> dict:
        return asdict(self)


def scan_chunk(
    chunk: Chunk, config: ScanConfig
) -> tuple[StreamSummary, dict[str, StreamSummary], ChunkMetrics]:
    """Scan one chunk into partial sketches (module-level: pickles to
    pool workers)."""
    t0 = time.perf_counter()
    total = StreamSummary(config.summary)
    per_proto: dict[str, StreamSummary] = {}
    n_records = 0
    for batch in iter_chunk_batches(chunk, config.kind,
                                    block_bytes=config.block_bytes):
        times = batch.times
        sizes = batch.sizes.astype(float)
        total.update(times, sizes)
        n_records += len(batch)
        if config.per_protocol:
            protos = batch.protocols
            for proto in np.unique(protos.astype(str)):
                mask = protos == proto
                per_proto.setdefault(
                    str(proto), StreamSummary(config.summary)
                ).update(times[mask], sizes[mask])
    wall = time.perf_counter() - t0
    metrics = ChunkMetrics(
        index=chunk.index,
        n_records=n_records,
        n_bytes=chunk.n_bytes,
        wall_s=wall,
        rows_per_s=n_records / wall if wall > 0 else 0.0,
        bytes_per_s=chunk.n_bytes / wall if wall > 0 else 0.0,
        peak_rss_kb=_peak_rss_kb(),
        worker=f"pid-{os.getpid()}",
    )
    return total, per_proto, metrics


@dataclass(frozen=True)
class ScanReport:
    """Merged result of one sharded scan."""

    path: str
    kind: str
    summary: StreamSummary
    per_protocol: dict[str, StreamSummary]
    chunk_metrics: list[ChunkMetrics]
    jobs: int
    total_wall_s: float

    @property
    def n_records(self) -> int:
        return self.summary.n

    @property
    def accumulator_nbytes(self) -> int:
        """Merged-sketch footprint: the memory bound the scan guarantees."""
        total = self.summary.nbytes
        for s in self.per_protocol.values():
            total += s.nbytes
        return total

    def bench_payload(self) -> dict:
        """A ``BENCH_*``-family record for the whole scan."""
        n_bytes = sum(m.n_bytes for m in self.chunk_metrics)
        return {
            "bench": "stream_scan",
            "unit": "s",
            "path": self.path,
            "kind": self.kind,
            "jobs": self.jobs,
            "n_chunks": len(self.chunk_metrics),
            "n_records": self.n_records,
            "n_bytes": n_bytes,
            "total_wall_s": self.total_wall_s,
            "rows_per_s": self.n_records / self.total_wall_s
            if self.total_wall_s > 0 else 0.0,
            "bytes_per_s": n_bytes / self.total_wall_s
            if self.total_wall_s > 0 else 0.0,
            "accumulator_nbytes": self.accumulator_nbytes,
            "peak_rss_kb": max(
                (m.peak_rss_kb for m in self.chunk_metrics), default=0
            ),
            "chunks": [m.payload() for m in self.chunk_metrics],
        }

    def write_bench(self, out_dir) -> list:
        """Write ``BENCH_stream_scan.json`` (+ summary) into ``out_dir``."""
        payload = self.bench_payload()
        summary = {
            "bench": "repro-stream",
            "unit": "s",
            "jobs": self.jobs,
            "total_wall_s": self.total_wall_s,
            "n_experiments": 1,
            "cache_hits": 0,
            "failures": 0,
            "experiments": [payload],
        }
        return write_bench_files(summary, out_dir)

    # ------------------------------------------------------------------
    def render(self, tail_fraction: float = 0.03) -> str:
        """Human-readable scan summary (the ``stream scan`` CLI output)."""
        s = self.summary
        lines = [
            f"stream scan: {self.path} ({self.kind} trace)",
            f"  records        {s.n:>14,d}",
            f"  span           {s.duration:>14.3f} s"
            f"   [{s.first_time if s.first_time is not None else 0.0:.3f}"
            f" .. {s.last_time if s.last_time is not None else 0.0:.3f}]",
            f"  bytes          {s.total_bytes:>14,.0f}",
            f"  mean rate      {s.n / s.duration if s.duration else 0.0:>14.1f}"
            " records/s",
            f"  size mean/std  {s.size_moments.mean:>10.1f} /"
            f" {s.size_moments.std:.1f}",
        ]
        if s.n >= 2:
            qs = [0.5, 0.9, 0.99]
            vals = s.gap_quantiles.quantiles(qs)
            lines.append(
                "  interarrival   "
                + "  ".join(f"p{int(q * 100)}={v:.6g}s"
                            for q, v in zip(qs, vals))
            )
            frac = s.best_tail_fraction(tail_fraction, "gap")
            if frac > 0 and s.n * frac >= 2:
                _, beta, k = s.gap_tail.tail_fit(frac)
                lines.append(
                    f"  gap tail beta  {beta:>14.3f}"
                    f"   (upper {100 * frac:.2g}% tail, k={k})"
                )
            sfrac = s.best_tail_fraction(0.05, "size")
            if sfrac > 0 and s.n * sfrac >= 2 and s.size_moments.max > 0:
                try:
                    _, sbeta, sk = s.size_tail.tail_fit(sfrac)
                    lines.append(
                        f"  size tail beta {sbeta:>14.3f}"
                        f"   (upper {100 * sfrac:.2g}% tail, k={sk})"
                    )
                except ValueError:
                    pass
            process = s.counts.as_count_process()
            if process.n_bins >= 100 and process.mean > 0:
                curve = s.counts.variance_time()
                top = int(curve.levels[-1])
                mid = max(min(10, top // 2), 1)
                slope = curve.slope(min_level=mid, max_level=top)
                lines.append(
                    f"  var-time slope {slope:>14.3f}"
                    f"   (H = {1.0 + slope / 2.0:.3f}, "
                    f"bin {s.config.bin_width}s, levels {mid}..{top})"
                )
        lines.append(
            f"  sketch memory  {self.accumulator_nbytes:>14,d} bytes"
            f"   ({len(self.chunk_metrics)} chunk(s), jobs={self.jobs}, "
            f"{self.total_wall_s:.2f}s, "
            f"{self.n_records / self.total_wall_s if self.total_wall_s else 0.0:,.0f} rows/s)"
        )
        for proto in sorted(self.per_protocol):
            p = self.per_protocol[proto]
            lines.append(
                f"  [{proto:<8s}] n={p.n:<12,d} bytes={p.total_bytes:>14,.0f}"
                f" mean-gap={p.gap_moments.mean if p.n > 1 else 0.0:.6g}s"
            )
        return "\n".join(lines)


def scan_trace(
    path: str | os.PathLike,
    *,
    kind: str | None = None,
    jobs: int = 1,
    config: SummaryConfig | None = None,
    per_protocol: bool = False,
    target_chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> ScanReport:
    """Scan a v1 trace file out-of-core, optionally sharded over workers.

    Results are independent of ``jobs``; see the module docstring for the
    determinism argument.
    """
    path = os.fspath(path)
    kind = sniff_kind(path) if kind is None else kind
    cfg = ScanConfig(
        kind=kind,
        summary=config if config is not None else SummaryConfig(),
        per_protocol=per_protocol,
        block_bytes=block_bytes,
    )
    t0 = time.perf_counter()
    chunks = plan_chunks(path, target_bytes=target_chunk_bytes)
    logger.info("scan %s: %d chunk(s), jobs=%d", path, len(chunks), jobs)

    def progress(i: int, outcome, wall_s: float) -> None:
        if isinstance(outcome, Exception):
            logger.info("chunk %d FAILED after %.2fs: %s", i, wall_s, outcome)
        else:
            m = outcome[2]
            logger.info(
                "chunk %d done: %d records in %.2fs (%.0f rows/s, %s)",
                i, m.n_records, m.wall_s, m.rows_per_s, m.worker,
            )

    outcomes = pool_map(
        scan_chunk, [(c, cfg) for c in chunks], jobs, on_result=progress
    )
    for chunk, outcome in zip(chunks, outcomes):
        if isinstance(outcome, Exception):
            raise RuntimeError(
                f"chunk {chunk.index} [{chunk.start}, {chunk.end}) of "
                f"{path} failed"
            ) from outcome

    # Merge in chunk order — the order contract the sketches rely on.
    total, per_proto, metrics = outcomes[0]
    all_metrics = [metrics]
    for part_total, part_proto, part_metrics in outcomes[1:]:
        total.merge(part_total)
        for proto, part in part_proto.items():
            if proto in per_proto:
                per_proto[proto].merge(part)
            else:
                per_proto[proto] = part
        all_metrics.append(part_metrics)

    return ScanReport(
        path=path,
        kind=kind,
        summary=total,
        per_protocol=per_proto,
        chunk_metrics=all_metrics,
        jobs=jobs,
        total_wall_s=time.perf_counter() - t0,
    )


def scan_traces(
    paths,
    *,
    kind: str | None = None,
    jobs: int = 1,
    config: SummaryConfig | None = None,
    per_protocol: bool = False,
    target_chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> ScanReport:
    """Scan several trace files and merge their sketches in argument order.

    File boundaries behave exactly like chunk boundaries: the merge chains
    the interarrival between file A's last record and file B's first, so
    scanning a trace split across files is bit-identical to scanning the
    concatenated trace (the accumulators' ``merge()`` is exact and
    associative).  All files must be the same trace kind.
    """
    paths = [os.fspath(p) for p in paths]
    if not paths:
        raise ValueError("need at least one trace path")
    cfg = config if config is not None else SummaryConfig()
    reports = []
    for path in paths:
        report = scan_trace(
            path, kind=kind, jobs=jobs, config=cfg,
            per_protocol=per_protocol,
            target_chunk_bytes=target_chunk_bytes,
            block_bytes=block_bytes,
        )
        if reports and report.kind != reports[0].kind:
            raise ValueError(
                f"{path}: is a {report.kind} trace, but "
                f"{paths[0]} is a {reports[0].kind} trace"
            )
        reports.append(report)
    if len(reports) == 1:
        return reports[0]
    total = reports[0].summary
    per_proto = dict(reports[0].per_protocol)
    all_metrics = list(reports[0].chunk_metrics)
    for report in reports[1:]:
        total.merge(report.summary)
        for proto, part in report.per_protocol.items():
            if proto in per_proto:
                per_proto[proto].merge(part)
            else:
                per_proto[proto] = part
        all_metrics.extend(report.chunk_metrics)
    return ScanReport(
        path=",".join(paths),
        kind=reports[0].kind,
        summary=total,
        per_protocol=per_proto,
        chunk_metrics=all_metrics,
        jobs=jobs,
        total_wall_s=sum(r.total_wall_s for r in reports),
    )
