"""Streaming multi-million-packet synthetic trace generation.

The stream subsystem needs traces far larger than anything the test suite
ships as a fixture.  ``write_stream_trace`` builds them out-of-core on top
of :mod:`repro.traces.synthesis`: it synthesizes the paper's Table-II
packet mix *window by window* (each window an independent child stream of
one master seed, time-shifted into place) and appends each window's
records to disk immediately, so generation memory is bounded by one window
regardless of target size — the write-side mirror of the scan side's
bounded-memory guarantee.

The traffic keeps the per-window structure the paper measures (FULL-TEL
TELNET packets, heavy-tailed FTPDATA bursts, cluster background); the
window seams add no artifacts beyond those of any trace boundary.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.traces.io import PKT_HEADER, format_packet_columns, open_trace
from repro.traces.synthesis import PACKET_TRACE_CONFIGS, synthesize_packet_trace
from repro.utils.rng import SeedLike, spawn_rngs


def _assign_packet_sizes(protocols: np.ndarray, rng) -> np.ndarray:
    """Per-packet sizes by protocol (Section V's bimodal mix).

    Table-II synthesis models arrival *times*; for the stream path we also
    want non-degenerate size columns: small log2-normal TELNET keystroke
    packets, full 512-byte FTPDATA segments, mid-size background.
    """
    sizes = np.ones(protocols.size, dtype=np.int64)
    mask = protocols == "TELNET"
    if np.any(mask):
        sizes[mask] = np.clip(
            np.exp2(rng.normal(2.0, 1.5, int(mask.sum()))), 1, 512
        ).astype(np.int64)
    mask = protocols == "FTPDATA"
    sizes[mask] = 512
    mask = ~np.isin(protocols.astype(str), ("TELNET", "FTPDATA"))
    if np.any(mask):
        sizes[mask] = np.clip(
            np.exp2(rng.normal(7.0, 1.8, int(mask.sum()))), 40, 1460
        ).astype(np.int64)
    return sizes


@dataclass(frozen=True)
class StreamTraceInfo:
    """What ``write_stream_trace`` actually wrote."""

    path: str
    n_packets: int
    duration: float     # last timestamp written
    n_windows: int
    scale: float
    file_bytes: int


def _estimate_rate(base: str, window_hours: float, seed) -> float:
    """Packets/sec of the base config at scale 1 (one probe window)."""
    probe = synthesize_packet_trace(base, seed=seed, hours=window_hours,
                                    scale=1.0)
    return max(len(probe) / (window_hours * 3600.0), 1e-9)


def write_stream_trace(
    path: str | os.PathLike,
    *,
    n_packets: int,
    seed: SeedLike = 0,
    base: str = "LBL PKT-1",
    hours: float = 2.0,
    window_hours: float = 0.25,
    scale: float | None = None,
) -> StreamTraceInfo:
    """Write a v1 packet trace of ~``n_packets`` rows, out-of-core.

    Parameters
    ----------
    n_packets:
        Target row count; the final window is truncated so the file holds
        exactly this many records (unless the configured rate runs out, in
        which case extra windows extend past ``hours``).
    base:
        Which Table-II recipe drives each window.
    hours, window_hours:
        Nominal trace span and the per-window synthesis granularity.
        More packets at fixed ``hours`` means a denser trace — the
        "more users, same busy period" scaling of the ROADMAP — via
        ``scale``, auto-calibrated from a probe window when not given.
    """
    if n_packets < 1:
        raise ValueError(f"n_packets must be >= 1, got {n_packets}")
    if base not in PACKET_TRACE_CONFIGS:
        raise KeyError(f"unknown packet trace {base!r}")
    if window_hours <= 0 or hours <= 0:
        raise ValueError("hours and window_hours must be positive")
    path = os.fspath(path)
    n_windows = max(1, int(round(hours / window_hours)))
    # One spare child per window beyond the nominal span, plus the probe.
    rngs = spawn_rngs(seed, 4 * n_windows + 2)
    if scale is None:
        rate1 = _estimate_rate(base, window_hours, rngs[-1])
        scale = max(n_packets / (hours * 3600.0) / rate1, 1e-6)

    window_s = window_hours * 3600.0
    written = 0
    last_time = 0.0
    windows_used = 0
    with open_trace(path, "wt") as fh:
        fh.write(PKT_HEADER + "\n")
        for w, rng in enumerate(rngs[:-2]):
            if written >= n_packets:
                break
            trace = synthesize_packet_trace(base, seed=rng,
                                            hours=window_hours, scale=scale)
            take = min(len(trace), n_packets - written)
            if take == 0:
                continue
            sizes = _assign_packet_sizes(trace.protocols, rng)
            offset = w * window_s
            ts = trace.timestamps[:take] + offset
            # Keep connection ids unique across windows (sentinels < 0 are
            # shared background/unattributed streams and stay as-is).
            cids = trace.connection_ids[:take].copy()
            cids[cids >= 0] += w * 10_000_000
            fh.write(format_packet_columns(
                ts, trace.protocols[:take], cids, trace.directions[:take],
                sizes[:take], trace.user_data[:take],
            ))
            written += take
            if take:
                last_time = float(ts[-1])
            windows_used = w + 1
    if written < n_packets:
        raise RuntimeError(
            f"generated only {written} of {n_packets} packets; "
            "increase scale or hours"
        )
    return StreamTraceInfo(
        path=path,
        n_packets=written,
        duration=last_time,
        n_windows=windows_used,
        scale=float(scale),
        file_bytes=os.path.getsize(path),
    )
