"""Batched out-of-core readers for the v1 text trace formats.

``iter_chunk_batches`` walks one :class:`~repro.stream.chunks.Chunk` and
yields column-oriented record batches (numpy arrays), holding at most one
read block (~``block_bytes``) of text plus one batch of arrays in memory —
never the trace.  The fast path parses a whole block with a single
``str.split`` and strided array construction instead of per-line splitting,
which is what makes a pure-python scan run at millions of rows per second.

Batches are intentionally *not* :class:`PacketTrace` objects: they are flat
columns fed straight into the mergeable accumulators of
:mod:`repro.stream.sketches`.
"""

from __future__ import annotations

import gzip
import os
import warnings
from typing import Iterator

import numpy as np

from repro.stream.chunks import Chunk, plan_chunks
from repro.traces.columns import (
    MAX_PROTOCOLS,
    PROTOCOL_CODE_DTYPE,
    ConnectionBatch,
    PacketBatch,
    concat_connection_batches,
    concat_packet_batches,
)
from repro.traces.io import CONN_HEADER, PKT_HEADER

__all__ = [
    "ConnectionBatch", "PacketBatch", "DEFAULT_BLOCK_BYTES", "sniff_kind",
    "iter_chunk_batches", "iter_trace_batches",
    "read_connection_columns", "read_packet_columns",
]

#: Bytes of text parsed per yielded batch.
DEFAULT_BLOCK_BYTES = 8 * 1024 * 1024

_PKT_FIELDS = 6
_CONN_FIELDS = 8

#: Fixed protocol-token width of the whole-file fast path.  Tokens that
#: fill the field completely may have been truncated, and drop that read
#: onto the width-agnostic batched path instead.
_TOKEN_BYTES = 32

#: One v1 text line per kind, as a structured row for ``np.loadtxt``'s
#: C tokenizer — the whole-file fast path parses every field in C.
_PKT_ROW_DTYPE = np.dtype([
    ("timestamp", "f8"),
    ("protocol", f"S{_TOKEN_BYTES}"),
    ("connection_id", "i8"),
    ("direction", "i1"),
    ("size", "i8"),
    ("user_data", "i1"),
])
_CONN_ROW_DTYPE = np.dtype([
    ("start_time", "f8"),
    ("duration", "f8"),
    ("protocol", f"S{_TOKEN_BYTES}"),
    ("bytes_orig", "i8"),
    ("bytes_resp", "i8"),
    ("orig_host", "i8"),
    ("resp_host", "i8"),
    ("session_id", "i8"),
])


def sniff_kind(path: str | os.PathLike) -> str:
    """Return ``"packet"`` or ``"connection"`` from the file's v1 header."""
    from repro.traces.io import open_trace

    with open_trace(path, "rt") as fh:
        header = fh.readline().rstrip("\n")
    if header == PKT_HEADER:
        return "packet"
    if header == CONN_HEADER:
        return "connection"
    raise ValueError(f"{path}: unrecognized trace header {header!r}")


def _parse_packet_blob(blob: str, where: str) -> PacketBatch:
    flat = blob.split()
    if len(flat) % _PKT_FIELDS:
        raise ValueError(
            f"{where}: malformed packet records "
            f"({len(flat)} fields, not a multiple of {_PKT_FIELDS})"
        )
    return PacketBatch(
        timestamps=np.array(flat[0::_PKT_FIELDS], dtype=float),
        protocols=np.array(flat[1::_PKT_FIELDS], dtype=object),
        connection_ids=np.array(flat[2::_PKT_FIELDS], dtype=np.int64),
        directions=np.array(flat[3::_PKT_FIELDS], dtype=np.int64).astype(np.int8),
        sizes=np.array(flat[4::_PKT_FIELDS], dtype=np.int64),
        user_data=np.array(flat[5::_PKT_FIELDS], dtype=np.int64).astype(bool),
    )


def _parse_connection_blob(blob: str, where: str) -> ConnectionBatch:
    flat = blob.split()
    if len(flat) % _CONN_FIELDS:
        raise ValueError(
            f"{where}: malformed connection records "
            f"({len(flat)} fields, not a multiple of {_CONN_FIELDS})"
        )
    return ConnectionBatch(
        start_times=np.array(flat[0::_CONN_FIELDS], dtype=float),
        durations=np.array(flat[1::_CONN_FIELDS], dtype=float),
        protocols=np.array(flat[2::_CONN_FIELDS], dtype=object),
        bytes_orig=np.array(flat[3::_CONN_FIELDS], dtype=np.int64),
        bytes_resp=np.array(flat[4::_CONN_FIELDS], dtype=np.int64),
        orig_hosts=np.array(flat[5::_CONN_FIELDS], dtype=np.int64),
        resp_hosts=np.array(flat[6::_CONN_FIELDS], dtype=np.int64),
        session_ids=np.array(flat[7::_CONN_FIELDS], dtype=np.int64),
    )


_PARSERS = {"packet": _parse_packet_blob, "connection": _parse_connection_blob}
_HEADERS = {"packet": PKT_HEADER, "connection": CONN_HEADER}


def _iter_text_blocks(chunk: Chunk, block_bytes: int) -> Iterator[str]:
    """Yield whole-line text blocks covering exactly the chunk's bytes."""
    if chunk.compressed:
        fh = gzip.open(chunk.path, "rb")
    else:
        fh = open(chunk.path, "rb")
        fh.seek(chunk.start)
    remaining = None if chunk.compressed else chunk.n_bytes
    carry = b""
    try:
        while True:
            want = block_bytes if remaining is None else min(block_bytes, remaining)
            if want == 0:
                break
            block = fh.read(want)
            if not block:
                break
            if remaining is not None:
                remaining -= len(block)
            data = carry + block
            cut = data.rfind(b"\n")
            if cut < 0:
                carry = data
                continue
            carry = data[cut + 1:]
            yield data[: cut + 1].decode("ascii")
        if carry:
            # A chunk's final line always ends in a newline (chunks end at
            # line starts); a trailing fragment can only be an unterminated
            # final line of the file itself.
            yield carry.decode("ascii")
    finally:
        fh.close()


def iter_chunk_batches(
    chunk: Chunk,
    kind: str = "packet",
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[PacketBatch | ConnectionBatch]:
    """Yield record batches for one chunk, validating the header if present."""
    try:
        parse = _PARSERS[kind]
    except KeyError:
        raise ValueError(f"kind must be 'packet' or 'connection', got {kind!r}")
    first = chunk.has_header
    for block_no, text in enumerate(_iter_text_blocks(chunk, block_bytes)):
        if first:
            first = False
            nl = text.find("\n")
            header = text[:nl] if nl >= 0 else text
            if header != _HEADERS[kind]:
                raise ValueError(
                    f"{chunk.path}: bad header {header!r}; "
                    f"expected {_HEADERS[kind]!r}"
                )
            text = text[nl + 1:] if nl >= 0 else ""
            if not text.strip():
                continue
        where = f"{chunk.path}[chunk {chunk.index}, block {block_no}]"
        batch = parse(text, where)
        if len(batch):
            yield batch


def iter_trace_batches(
    path: str | os.PathLike,
    kind: str | None = None,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    target_chunk_bytes: int | None = None,
) -> Iterator[PacketBatch | ConnectionBatch]:
    """Sequentially stream a whole trace as record batches.

    The single-process convenience entry point; sharded scans go through
    :func:`repro.stream.driver.scan_trace` instead.
    """
    kind = sniff_kind(path) if kind is None else kind
    kwargs = {} if target_chunk_bytes is None else {"target_bytes": target_chunk_bytes}
    for chunk in plan_chunks(path, **kwargs):
        yield from iter_chunk_batches(chunk, kind, block_bytes=block_bytes)


# ----------------------------------------------------------------------
# Whole-file fast path
# ----------------------------------------------------------------------
def _load_rows(path, header: str, dtype: np.dtype) -> np.ndarray:
    """Header-checked one-shot parse of a whole trace file in C."""
    from repro.traces.io import is_gzip_path, open_trace

    with open_trace(path, "rt") as fh:
        first = fh.readline().rstrip("\n")
        if first != header:
            raise ValueError(
                f"{path}: bad header {first!r}; expected {header!r}"
            )
        with warnings.catch_warnings():
            # A header-only file is a valid empty trace, not a warning.
            warnings.simplefilter("ignore")
            if is_gzip_path(path):
                return np.loadtxt(fh, dtype=dtype, comments=None, ndmin=1)
    # Plain files: hand loadtxt the path, not the text handle — its own
    # buffered reader skips the Python text layer (~25% faster).
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return np.loadtxt(os.fspath(path), dtype=dtype, comments=None,
                          ndmin=1, skiprows=1)


def _intern_tokens(col: np.ndarray):
    """``(codes, table)`` from a fixed-width byte token column, or None
    when any token fills the field (possibly truncated) or is not decodable
    — the caller then retries on the width-agnostic batched path."""
    col = np.ascontiguousarray(col)
    if col.size and col.view(np.uint8).reshape(col.size, -1)[:, -1].any():
        return None
    if col.size == 0:
        return (np.zeros(0, dtype=PROTOCOL_CODE_DTYPE),
                np.zeros(0, dtype=object))
    # Vocabulary from a sparse sample, verified exactly: when the sample
    # already saw every token (the overwhelmingly common case — a handful
    # of protocols over millions of rows) one binary search + compare pass
    # encodes the column; a miss falls back to a full hash dedup.
    names = sorted(set(col[::max(col.size // 2048, 1)].tolist()))
    table_s = np.array(names, dtype=col.dtype)
    codes = np.minimum(np.searchsorted(table_s, col), len(names) - 1)
    if not np.array_equal(table_s[codes], col):
        names = sorted(set(col.tolist()))
        table_s = np.array(names, dtype=col.dtype)
        codes = np.searchsorted(table_s, col)
    if len(names) > MAX_PROTOCOLS:
        raise ValueError(
            f"{len(names)} distinct protocols exceed the int8 code space "
            f"({MAX_PROTOCOLS})"
        )
    try:
        table = np.array([b.decode("ascii") for b in names], dtype=object)
    except UnicodeDecodeError:
        return None
    return codes.astype(PROTOCOL_CODE_DTYPE), table


def read_packet_columns(path: str | os.PathLike) -> dict:
    """Read a whole v1 packet trace as ``PacketTrace.from_arrays`` kwargs.

    All six fields are parsed by numpy's C tokenizer in one pass (~10x the
    per-record loop at 1M rows) and the protocol column arrives already
    interned; traces with protocol names past :data:`_TOKEN_BYTES` bytes
    fall back to the batched block reader.
    """
    cells = _load_rows(path, PKT_HEADER, _PKT_ROW_DTYPE)
    interned = _intern_tokens(cells["protocol"])
    if interned is None:
        batch = concat_packet_batches(list(iter_trace_batches(path, "packet")))
        return {
            "timestamps": batch.timestamps,
            "protocols": batch.protocols,
            "connection_ids": batch.connection_ids,
            "directions": batch.directions,
            "sizes": batch.sizes,
            "user_data": batch.user_data,
        }
    codes, table = interned
    return {
        "timestamps": np.ascontiguousarray(cells["timestamp"]),
        "protocol_codes": codes,
        "protocol_table": table,
        "connection_ids": np.ascontiguousarray(cells["connection_id"]),
        "directions": np.ascontiguousarray(cells["direction"]),
        "sizes": np.ascontiguousarray(cells["size"]),
        "user_data": cells["user_data"].astype(bool),
    }


def read_connection_columns(path: str | os.PathLike) -> dict:
    """Read a whole v1 connection trace as ``ConnectionTrace.from_arrays``
    kwargs (see :func:`read_packet_columns`)."""
    cells = _load_rows(path, CONN_HEADER, _CONN_ROW_DTYPE)
    interned = _intern_tokens(cells["protocol"])
    if interned is None:
        batch = concat_connection_batches(
            list(iter_trace_batches(path, "connection"))
        )
        return {
            "start_times": batch.start_times,
            "durations": batch.durations,
            "protocols": batch.protocols,
            "bytes_orig": batch.bytes_orig,
            "bytes_resp": batch.bytes_resp,
            "orig_hosts": batch.orig_hosts,
            "resp_hosts": batch.resp_hosts,
            "session_ids": batch.session_ids,
        }
    codes, table = interned
    return {
        "start_times": np.ascontiguousarray(cells["start_time"]),
        "durations": np.ascontiguousarray(cells["duration"]),
        "protocol_codes": codes,
        "protocol_table": table,
        "bytes_orig": np.ascontiguousarray(cells["bytes_orig"]),
        "bytes_resp": np.ascontiguousarray(cells["bytes_resp"]),
        "orig_hosts": np.ascontiguousarray(cells["orig_host"]),
        "resp_hosts": np.ascontiguousarray(cells["resp_host"]),
        "session_ids": np.ascontiguousarray(cells["session_id"]),
    }
