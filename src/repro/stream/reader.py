"""Batched out-of-core readers for the v1 text trace formats.

``iter_chunk_batches`` walks one :class:`~repro.stream.chunks.Chunk` and
yields column-oriented record batches (numpy arrays), holding at most one
read block (~``block_bytes``) of text plus one batch of arrays in memory —
never the trace.  The fast path parses a whole block with a single
``str.split`` and strided array construction instead of per-line splitting,
which is what makes a pure-python scan run at millions of rows per second.

Batches are intentionally *not* :class:`PacketTrace` objects: they are flat
columns fed straight into the mergeable accumulators of
:mod:`repro.stream.sketches`.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.stream.chunks import Chunk, plan_chunks
from repro.traces.io import CONN_HEADER, PKT_HEADER

#: Bytes of text parsed per yielded batch.
DEFAULT_BLOCK_BYTES = 8 * 1024 * 1024

_PKT_FIELDS = 6
_CONN_FIELDS = 8


@dataclass(frozen=True)
class PacketBatch:
    """A run of consecutive packet records as parallel columns."""

    timestamps: np.ndarray    # float64
    protocols: np.ndarray     # object (str)
    connection_ids: np.ndarray  # int64
    directions: np.ndarray    # int8
    sizes: np.ndarray         # int64
    user_data: np.ndarray     # bool

    def __len__(self) -> int:
        return int(self.timestamps.size)

    @property
    def times(self) -> np.ndarray:
        return self.timestamps


@dataclass(frozen=True)
class ConnectionBatch:
    """A run of consecutive connection records as parallel columns."""

    start_times: np.ndarray   # float64
    durations: np.ndarray     # float64
    protocols: np.ndarray     # object (str)
    bytes_orig: np.ndarray    # int64
    bytes_resp: np.ndarray    # int64
    orig_hosts: np.ndarray    # int64
    resp_hosts: np.ndarray    # int64
    session_ids: np.ndarray   # int64 (-1 = none)

    def __len__(self) -> int:
        return int(self.start_times.size)

    @property
    def times(self) -> np.ndarray:
        return self.start_times

    @property
    def sizes(self) -> np.ndarray:
        """Total bytes per connection (the Section VI 'burst size')."""
        return self.bytes_orig + self.bytes_resp


def sniff_kind(path: str | os.PathLike) -> str:
    """Return ``"packet"`` or ``"connection"`` from the file's v1 header."""
    from repro.traces.io import open_trace

    with open_trace(path, "rt") as fh:
        header = fh.readline().rstrip("\n")
    if header == PKT_HEADER:
        return "packet"
    if header == CONN_HEADER:
        return "connection"
    raise ValueError(f"{path}: unrecognized trace header {header!r}")


def _parse_packet_blob(blob: str, where: str) -> PacketBatch:
    flat = blob.split()
    if len(flat) % _PKT_FIELDS:
        raise ValueError(
            f"{where}: malformed packet records "
            f"({len(flat)} fields, not a multiple of {_PKT_FIELDS})"
        )
    return PacketBatch(
        timestamps=np.array(flat[0::_PKT_FIELDS], dtype=float),
        protocols=np.array(flat[1::_PKT_FIELDS], dtype=object),
        connection_ids=np.array(flat[2::_PKT_FIELDS], dtype=np.int64),
        directions=np.array(flat[3::_PKT_FIELDS], dtype=np.int64).astype(np.int8),
        sizes=np.array(flat[4::_PKT_FIELDS], dtype=np.int64),
        user_data=np.array(flat[5::_PKT_FIELDS], dtype=np.int64).astype(bool),
    )


def _parse_connection_blob(blob: str, where: str) -> ConnectionBatch:
    flat = blob.split()
    if len(flat) % _CONN_FIELDS:
        raise ValueError(
            f"{where}: malformed connection records "
            f"({len(flat)} fields, not a multiple of {_CONN_FIELDS})"
        )
    return ConnectionBatch(
        start_times=np.array(flat[0::_CONN_FIELDS], dtype=float),
        durations=np.array(flat[1::_CONN_FIELDS], dtype=float),
        protocols=np.array(flat[2::_CONN_FIELDS], dtype=object),
        bytes_orig=np.array(flat[3::_CONN_FIELDS], dtype=np.int64),
        bytes_resp=np.array(flat[4::_CONN_FIELDS], dtype=np.int64),
        orig_hosts=np.array(flat[5::_CONN_FIELDS], dtype=np.int64),
        resp_hosts=np.array(flat[6::_CONN_FIELDS], dtype=np.int64),
        session_ids=np.array(flat[7::_CONN_FIELDS], dtype=np.int64),
    )


_PARSERS = {"packet": _parse_packet_blob, "connection": _parse_connection_blob}
_HEADERS = {"packet": PKT_HEADER, "connection": CONN_HEADER}


def _iter_text_blocks(chunk: Chunk, block_bytes: int) -> Iterator[str]:
    """Yield whole-line text blocks covering exactly the chunk's bytes."""
    if chunk.compressed:
        fh = gzip.open(chunk.path, "rb")
    else:
        fh = open(chunk.path, "rb")
        fh.seek(chunk.start)
    remaining = None if chunk.compressed else chunk.n_bytes
    carry = b""
    try:
        while True:
            want = block_bytes if remaining is None else min(block_bytes, remaining)
            if want == 0:
                break
            block = fh.read(want)
            if not block:
                break
            if remaining is not None:
                remaining -= len(block)
            data = carry + block
            cut = data.rfind(b"\n")
            if cut < 0:
                carry = data
                continue
            carry = data[cut + 1:]
            yield data[: cut + 1].decode("ascii")
        if carry:
            # A chunk's final line always ends in a newline (chunks end at
            # line starts); a trailing fragment can only be an unterminated
            # final line of the file itself.
            yield carry.decode("ascii")
    finally:
        fh.close()


def iter_chunk_batches(
    chunk: Chunk,
    kind: str = "packet",
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[PacketBatch | ConnectionBatch]:
    """Yield record batches for one chunk, validating the header if present."""
    try:
        parse = _PARSERS[kind]
    except KeyError:
        raise ValueError(f"kind must be 'packet' or 'connection', got {kind!r}")
    first = chunk.has_header
    for block_no, text in enumerate(_iter_text_blocks(chunk, block_bytes)):
        if first:
            first = False
            nl = text.find("\n")
            header = text[:nl] if nl >= 0 else text
            if header != _HEADERS[kind]:
                raise ValueError(
                    f"{chunk.path}: bad header {header!r}; "
                    f"expected {_HEADERS[kind]!r}"
                )
            text = text[nl + 1:] if nl >= 0 else ""
            if not text.strip():
                continue
        where = f"{chunk.path}[chunk {chunk.index}, block {block_no}]"
        batch = parse(text, where)
        if len(batch):
            yield batch


def iter_trace_batches(
    path: str | os.PathLike,
    kind: str | None = None,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    target_chunk_bytes: int | None = None,
) -> Iterator[PacketBatch | ConnectionBatch]:
    """Sequentially stream a whole trace as record batches.

    The single-process convenience entry point; sharded scans go through
    :func:`repro.stream.driver.scan_trace` instead.
    """
    kind = sniff_kind(path) if kind is None else kind
    kwargs = {} if target_chunk_bytes is None else {"target_bytes": target_chunk_bytes}
    for chunk in plan_chunks(path, **kwargs):
        yield from iter_chunk_batches(chunk, kind, block_bytes=block_bytes)
