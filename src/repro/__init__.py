"""repro — a reproduction of Paxson & Floyd, "Wide-Area Traffic: The Failure
of Poisson Modeling" (SIGCOMM 1994 / IEEE/ACM ToN 3(3), 1995).

Subpackages
-----------
``repro.distributions``
    Exponential, Pareto, log2-normal, log-extreme, Weibull, discrete-Pareto
    and empirical (Tcplib-style) distributions, plus tail fitting.
``repro.traces``
    Connection/packet trace data model, I/O, and the synthetic 24-trace
    suite standing in for the paper's measurement datasets.
``repro.arrivals``
    Arrival-process generators: (non)homogeneous Poisson, i.i.d. Pareto
    renewal (Appendix C), heavy-tailed ON/OFF, M/G/infinity (Appendices D-E),
    and clustered/cascade arrivals.
``repro.stats``
    Appendix A's Poisson-testing methodology (Anderson-Darling + independence
    tests + binomial roll-ups) and tail diagnostics.
``repro.selfsim``
    Variance-time analysis, fractional Gaussian noise synthesis, Whittle's
    Hurst estimator, Beran's goodness-of-fit test, R/S and periodogram
    estimators.
``repro.queueing``
    Event-driven FIFO queue for the packet-delay comparisons of Section IV.
``repro.core``
    The paper's models: TELNET synthesis schemes (TCPLIB / EXP / VAR-EXP),
    the FULL-TEL source model, and the FTPDATA burst model.
``repro.experiments``
    One module per table/figure; each returns the printed rows/series.
``repro.engine``
    Process-pool experiment runner with per-experiment seed derivation,
    a content-keyed on-disk result cache, and BENCH_*.json metrics.
``repro.stream``
    Out-of-core streaming trace analytics with mergeable sketches.
``repro.kernels``
    Vectorized hot-path kernels behind tested equivalence contracts.
``repro.replay``
    Live traffic replay & load generation over asyncio TCP/UDP with
    drift-corrected pacing and closed-loop statistical validation.
"""

from importlib import metadata as _metadata

#: Fallback for source checkouts run via PYTHONPATH (not pip-installed);
#: keep in sync with pyproject.toml.
_FALLBACK_VERSION = "1.2.0"

try:
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover - env-dependent
    __version__ = _FALLBACK_VERSION

__all__ = [
    "__version__",
    "arrivals",
    "core",
    "distributions",
    "engine",
    "experiments",
    "kernels",
    "queueing",
    "replay",
    "selfsim",
    "stats",
    "stream",
    "traces",
    "utils",
]
