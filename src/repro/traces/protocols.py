"""TCP protocol registry.

The paper analyzes seven application protocols plus two supporting cases
(RLOGIN and X11, used in Section III's session-vs-connection discussion).
Each protocol carries the classification the paper's analysis hinges on:
whether its *connection* arrivals reflect user-initiated sessions
(expected Poisson) or machine/within-session activity (expected clustered).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ArrivalNature(Enum):
    """Why connections of a protocol arrive when they do."""

    USER_SESSION = "user-session"  # a human starting to use the network
    WITHIN_SESSION = "within-session"  # a user doing something new mid-session
    MACHINE = "machine"  # timer- or flooding-driven


@dataclass(frozen=True)
class Protocol:
    """One TCP application protocol as treated by the paper."""

    name: str
    port: int
    nature: ArrivalNature
    bulk: bool  # bulk-transfer (vs interactive) payload

    @property
    def expected_poisson_sessions(self) -> bool:
        """Section III's finding: only user-session arrivals are Poisson."""
        return self.nature is ArrivalNature.USER_SESSION


TELNET = Protocol("TELNET", 23, ArrivalNature.USER_SESSION, bulk=False)
RLOGIN = Protocol("RLOGIN", 513, ArrivalNature.USER_SESSION, bulk=False)
FTP = Protocol("FTP", 21, ArrivalNature.USER_SESSION, bulk=False)  # control conn
FTPDATA = Protocol("FTPDATA", 20, ArrivalNature.WITHIN_SESSION, bulk=True)
SMTP = Protocol("SMTP", 25, ArrivalNature.MACHINE, bulk=True)
NNTP = Protocol("NNTP", 119, ArrivalNature.MACHINE, bulk=True)
WWW = Protocol("WWW", 80, ArrivalNature.WITHIN_SESSION, bulk=True)
X11 = Protocol("X11", 6000, ArrivalNature.WITHIN_SESSION, bulk=False)
OTHER = Protocol("OTHER", 0, ArrivalNature.MACHINE, bulk=True)

#: All protocols, keyed by name.
REGISTRY: dict[str, Protocol] = {
    p.name: p
    for p in (TELNET, RLOGIN, FTP, FTPDATA, SMTP, NNTP, WWW, X11, OTHER)
}

#: The six protocols whose connection arrivals Fig. 2 tests (FTPDATA bursts
#: are tested as a seventh, derived process).
FIG2_PROTOCOLS = ("TELNET", "FTP", "FTPDATA", "SMTP", "NNTP", "WWW")


def lookup(name: str) -> Protocol:
    """Resolve a protocol by (case-insensitive) name."""
    key = name.upper()
    if key not in REGISTRY:
        raise KeyError(f"unknown protocol {name!r}; known: {sorted(REGISTRY)}")
    return REGISTRY[key]
