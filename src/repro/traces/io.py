"""Plain-text trace I/O.

A simple whitespace-delimited format, one record per line with a one-line
header, in the spirit of the reduced ASCII traces distributed by the
Internet Traffic Archive.  Round-tripping is exact: times are written with
``repr``'s shortest-round-trip float formatting, so epoch-magnitude
timestamps survive a write/read cycle bit-for-bit (a ``%.6f`` format would
collapse the sub-microsecond interarrivals of closely spaced packets).

Paths ending in ``.gz`` are transparently compressed/decompressed by both
the writers and the readers (and by the chunked readers in
:mod:`repro.stream`, which share :func:`open_trace`).

Both directions are columnar: the readers stream the file through
:mod:`repro.stream.reader`'s batched block parser (whole-block ``str.split``
+ strided column construction — the same code path as the out-of-core
scanners) straight into ``from_arrays``, and the writers format whole
column blocks at a time instead of materializing a record object per row.
The per-line ``format_*_line`` helpers remain the format's row-level
definition (and the frozen reference loops in :mod:`repro.kernels.reference`
still exercise them).

Connection trace format::

    #repro-connections v1
    start duration protocol bytes_orig bytes_resp orig_host resp_host session

Packet trace format::

    #repro-packets v1
    timestamp protocol connection direction size user_data
"""

from __future__ import annotations

import gzip
import os
from typing import IO, TextIO

import numpy as np

from repro.traces.records import ConnectionRecord, PacketRecord
from repro.traces.trace import ConnectionTrace, PacketTrace

CONN_HEADER = "#repro-connections v1"
PKT_HEADER = "#repro-packets v1"

# Back-compat aliases (pre-stream-subsystem private names).
_CONN_HEADER = CONN_HEADER
_PKT_HEADER = PKT_HEADER

#: Rows formatted per writer block (bounds transient formatting memory).
WRITE_BLOCK_ROWS = 131072


def is_gzip_path(path: str | os.PathLike) -> bool:
    """Whether ``path`` names a gzip-compressed trace (by suffix)."""
    return os.fspath(path).endswith(".gz")


def open_trace(path: str | os.PathLike, mode: str = "rt") -> IO:
    """Open a trace file, transparently gunzipping ``.gz`` paths.

    Accepts text (``"rt"``/``"wt"``) and binary (``"rb"``/``"wb"``) modes;
    the shared entry point for both the whole-trace readers below and the
    chunked readers in :mod:`repro.stream`.
    """
    if is_gzip_path(path):
        return gzip.open(path, mode)
    if mode in ("rt", "wt"):
        mode = mode[0]
    return open(path, mode)


def format_connection_line(r: ConnectionRecord) -> str:
    """One v1 text line for a connection record (no trailing newline)."""
    sid = -1 if r.session_id is None else r.session_id
    return (
        f"{float(r.start_time)!r} {float(r.duration)!r} {r.protocol} "
        f"{r.bytes_orig} {r.bytes_resp} {r.orig_host} {r.resp_host} {sid}"
    )


def format_packet_line(p: PacketRecord) -> str:
    """One v1 text line for a packet record (no trailing newline)."""
    return (
        f"{float(p.timestamp)!r} {p.protocol} {p.connection_id} "
        f"{int(p.direction)} {p.size} {int(p.user_data)}"
    )


def format_connection_columns(
    start_times, durations, protocols, bytes_orig, bytes_resp,
    orig_hosts, resp_hosts, session_ids,
) -> str:
    """v1 text (newline-terminated lines) for a block of connection columns.

    Byte-identical to joining :func:`format_connection_line` over the
    equivalent records: ``tolist()`` yields Python floats, whose ``repr``
    is exactly what the per-record path writes.
    """
    return "".join(
        f"{t!r} {d!r} {p} {bo} {br} {oh} {rh} {sid}\n"
        for t, d, p, bo, br, oh, rh, sid in zip(
            np.asarray(start_times, dtype=float).tolist(),
            np.asarray(durations, dtype=float).tolist(),
            protocols,
            np.asarray(bytes_orig).tolist(),
            np.asarray(bytes_resp).tolist(),
            np.asarray(orig_hosts).tolist(),
            np.asarray(resp_hosts).tolist(),
            np.asarray(session_ids).tolist(),
        )
    )


def format_packet_columns(
    timestamps, protocols, connection_ids, directions, sizes, user_data,
) -> str:
    """v1 text (newline-terminated lines) for a block of packet columns."""
    return "".join(
        f"{t!r} {p} {c} {d} {s} {u}\n"
        for t, p, c, d, s, u in zip(
            np.asarray(timestamps, dtype=float).tolist(),
            protocols,
            np.asarray(connection_ids).tolist(),
            np.asarray(directions).tolist(),
            np.asarray(sizes).tolist(),
            np.asarray(user_data).astype(np.int64).tolist(),
        )
    )


def write_connection_trace(trace: ConnectionTrace, path: str | os.PathLike) -> None:
    """Write a connection trace to ``path`` (gzipped when it ends in .gz)."""
    protocols = trace.protocols
    with open_trace(path, "wt") as fh:
        fh.write(CONN_HEADER + "\n")
        for lo in range(0, len(trace), WRITE_BLOCK_ROWS):
            sl = slice(lo, lo + WRITE_BLOCK_ROWS)
            fh.write(format_connection_columns(
                trace.start_times[sl], trace.durations[sl], protocols[sl],
                trace.bytes_orig[sl], trace.bytes_resp[sl],
                trace.orig_hosts[sl], trace.resp_hosts[sl],
                trace.session_ids[sl],
            ))


def read_connection_trace(path: str | os.PathLike, name: str | None = None) -> ConnectionTrace:
    """Read a connection trace written by :func:`write_connection_trace`."""
    # Deferred import: repro.stream builds on this module.
    from repro.stream.reader import read_connection_columns

    return ConnectionTrace.from_arrays(
        name or _name_from(path), **read_connection_columns(path)
    )


def write_packet_trace(trace: PacketTrace, path: str | os.PathLike) -> None:
    """Write a packet trace to ``path`` (gzipped when it ends in .gz)."""
    protocols = trace.protocols
    with open_trace(path, "wt") as fh:
        fh.write(PKT_HEADER + "\n")
        for lo in range(0, len(trace), WRITE_BLOCK_ROWS):
            sl = slice(lo, lo + WRITE_BLOCK_ROWS)
            fh.write(format_packet_columns(
                trace.timestamps[sl], protocols[sl],
                trace.connection_ids[sl], trace.directions[sl],
                trace.sizes[sl], trace.user_data[sl],
            ))


def read_packet_trace(path: str | os.PathLike, name: str | None = None) -> PacketTrace:
    """Read a packet trace written by :func:`write_packet_trace`."""
    # Deferred import: repro.stream builds on this module.
    from repro.stream.reader import read_packet_columns

    return PacketTrace.from_arrays(
        name or _name_from(path), **read_packet_columns(path)
    )


def _expect_header(fh: TextIO, expected: str, path) -> None:
    header = fh.readline().rstrip("\n")
    if header != expected:
        raise ValueError(
            f"{path}: bad header {header!r}; expected {expected!r}"
        )


def _name_from(path) -> str:
    base = os.path.basename(os.fspath(path))
    if base.endswith(".gz"):
        base = base[: -len(".gz")]
    return os.path.splitext(base)[0]
