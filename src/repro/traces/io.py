"""Plain-text trace I/O.

A simple whitespace-delimited format, one record per line with a one-line
header, in the spirit of the reduced ASCII traces distributed by the
Internet Traffic Archive.  Round-tripping is exact: times are written with
``repr``'s shortest-round-trip float formatting, so epoch-magnitude
timestamps survive a write/read cycle bit-for-bit (a ``%.6f`` format would
collapse the sub-microsecond interarrivals of closely spaced packets).

Paths ending in ``.gz`` are transparently compressed/decompressed by both
the writers and the readers (and by the chunked readers in
:mod:`repro.stream`, which share :func:`open_trace`).

Connection trace format::

    #repro-connections v1
    start duration protocol bytes_orig bytes_resp orig_host resp_host session

Packet trace format::

    #repro-packets v1
    timestamp protocol connection direction size user_data
"""

from __future__ import annotations

import gzip
import os
from typing import IO, TextIO

from repro.traces.records import ConnectionRecord, Direction, PacketRecord
from repro.traces.trace import ConnectionTrace, PacketTrace

CONN_HEADER = "#repro-connections v1"
PKT_HEADER = "#repro-packets v1"

# Back-compat aliases (pre-stream-subsystem private names).
_CONN_HEADER = CONN_HEADER
_PKT_HEADER = PKT_HEADER


def is_gzip_path(path: str | os.PathLike) -> bool:
    """Whether ``path`` names a gzip-compressed trace (by suffix)."""
    return os.fspath(path).endswith(".gz")


def open_trace(path: str | os.PathLike, mode: str = "rt") -> IO:
    """Open a trace file, transparently gunzipping ``.gz`` paths.

    Accepts text (``"rt"``/``"wt"``) and binary (``"rb"``/``"wb"``) modes;
    the shared entry point for both the whole-trace readers below and the
    chunked readers in :mod:`repro.stream`.
    """
    if is_gzip_path(path):
        return gzip.open(path, mode)
    if mode in ("rt", "wt"):
        mode = mode[0]
    return open(path, mode)


def format_connection_line(r: ConnectionRecord) -> str:
    """One v1 text line for a connection record (no trailing newline)."""
    sid = -1 if r.session_id is None else r.session_id
    return (
        f"{float(r.start_time)!r} {float(r.duration)!r} {r.protocol} "
        f"{r.bytes_orig} {r.bytes_resp} {r.orig_host} {r.resp_host} {sid}"
    )


def format_packet_line(p: PacketRecord) -> str:
    """One v1 text line for a packet record (no trailing newline)."""
    return (
        f"{float(p.timestamp)!r} {p.protocol} {p.connection_id} "
        f"{int(p.direction)} {p.size} {int(p.user_data)}"
    )


def write_connection_trace(trace: ConnectionTrace, path: str | os.PathLike) -> None:
    """Write a connection trace to ``path`` (gzipped when it ends in .gz)."""
    with open_trace(path, "wt") as fh:
        fh.write(CONN_HEADER + "\n")
        for i in range(len(trace)):
            fh.write(format_connection_line(trace.record(i)) + "\n")


def read_connection_trace(path: str | os.PathLike, name: str | None = None) -> ConnectionTrace:
    """Read a connection trace written by :func:`write_connection_trace`."""
    with open_trace(path, "rt") as fh:
        _expect_header(fh, CONN_HEADER, path)
        records = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 8:
                raise ValueError(f"{path}:{lineno}: expected 8 fields, got {len(parts)}")
            sid = int(parts[7])
            records.append(
                ConnectionRecord(
                    start_time=float(parts[0]),
                    duration=float(parts[1]),
                    protocol=parts[2],
                    bytes_orig=int(parts[3]),
                    bytes_resp=int(parts[4]),
                    orig_host=int(parts[5]),
                    resp_host=int(parts[6]),
                    session_id=None if sid < 0 else sid,
                )
            )
    return ConnectionTrace(name or _name_from(path), records)


def write_packet_trace(trace: PacketTrace, path: str | os.PathLike) -> None:
    """Write a packet trace to ``path`` (gzipped when it ends in .gz)."""
    with open_trace(path, "wt") as fh:
        fh.write(PKT_HEADER + "\n")
        for i in range(len(trace)):
            fh.write(format_packet_line(trace.record(i)) + "\n")


def read_packet_trace(path: str | os.PathLike, name: str | None = None) -> PacketTrace:
    """Read a packet trace written by :func:`write_packet_trace`."""
    with open_trace(path, "rt") as fh:
        _expect_header(fh, PKT_HEADER, path)
        packets = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 6:
                raise ValueError(f"{path}:{lineno}: expected 6 fields, got {len(parts)}")
            packets.append(
                PacketRecord(
                    timestamp=float(parts[0]),
                    protocol=parts[1],
                    connection_id=int(parts[2]),
                    direction=Direction(int(parts[3])),
                    size=int(parts[4]),
                    user_data=bool(int(parts[5])),
                )
            )
    return PacketTrace(name or _name_from(path), packets)


def _expect_header(fh: TextIO, expected: str, path) -> None:
    header = fh.readline().rstrip("\n")
    if header != expected:
        raise ValueError(
            f"{path}: bad header {header!r}; expected {expected!r}"
        )


def _name_from(path) -> str:
    base = os.path.basename(os.fspath(path))
    if base.endswith(".gz"):
        base = base[: -len(".gz")]
    return os.path.splitext(base)[0]
