"""Plain-text trace I/O.

A simple whitespace-delimited format, one record per line with a one-line
header, in the spirit of the reduced ASCII traces distributed by the
Internet Traffic Archive.  Round-tripping is exact up to float formatting.

Connection trace format::

    #repro-connections v1
    start duration protocol bytes_orig bytes_resp orig_host resp_host session

Packet trace format::

    #repro-packets v1
    timestamp protocol connection direction size user_data
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.traces.records import ConnectionRecord, Direction, PacketRecord
from repro.traces.trace import ConnectionTrace, PacketTrace

_CONN_HEADER = "#repro-connections v1"
_PKT_HEADER = "#repro-packets v1"


def write_connection_trace(trace: ConnectionTrace, path: str | os.PathLike) -> None:
    """Write a connection trace to ``path``."""
    with open(path, "w") as fh:
        fh.write(_CONN_HEADER + "\n")
        for i in range(len(trace)):
            r = trace.record(i)
            sid = -1 if r.session_id is None else r.session_id
            fh.write(
                f"{r.start_time:.6f} {r.duration:.6f} {r.protocol} "
                f"{r.bytes_orig} {r.bytes_resp} {r.orig_host} {r.resp_host} {sid}\n"
            )


def read_connection_trace(path: str | os.PathLike, name: str | None = None) -> ConnectionTrace:
    """Read a connection trace written by :func:`write_connection_trace`."""
    with open(path) as fh:
        _expect_header(fh, _CONN_HEADER, path)
        records = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 8:
                raise ValueError(f"{path}:{lineno}: expected 8 fields, got {len(parts)}")
            sid = int(parts[7])
            records.append(
                ConnectionRecord(
                    start_time=float(parts[0]),
                    duration=float(parts[1]),
                    protocol=parts[2],
                    bytes_orig=int(parts[3]),
                    bytes_resp=int(parts[4]),
                    orig_host=int(parts[5]),
                    resp_host=int(parts[6]),
                    session_id=None if sid < 0 else sid,
                )
            )
    return ConnectionTrace(name or _name_from(path), records)


def write_packet_trace(trace: PacketTrace, path: str | os.PathLike) -> None:
    """Write a packet trace to ``path``."""
    with open(path, "w") as fh:
        fh.write(_PKT_HEADER + "\n")
        for i in range(len(trace)):
            p = trace.record(i)
            fh.write(
                f"{p.timestamp:.6f} {p.protocol} {p.connection_id} "
                f"{int(p.direction)} {p.size} {int(p.user_data)}\n"
            )


def read_packet_trace(path: str | os.PathLike, name: str | None = None) -> PacketTrace:
    """Read a packet trace written by :func:`write_packet_trace`."""
    with open(path) as fh:
        _expect_header(fh, _PKT_HEADER, path)
        packets = []
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 6:
                raise ValueError(f"{path}:{lineno}: expected 6 fields, got {len(parts)}")
            packets.append(
                PacketRecord(
                    timestamp=float(parts[0]),
                    protocol=parts[1],
                    connection_id=int(parts[2]),
                    direction=Direction(int(parts[3])),
                    size=int(parts[4]),
                    user_data=bool(int(parts[5])),
                )
            )
    return PacketTrace(name or _name_from(path), packets)


def _expect_header(fh: TextIO, expected: str, path) -> None:
    header = fh.readline().rstrip("\n")
    if header != expected:
        raise ValueError(
            f"{path}: bad header {header!r}; expected {expected!r}"
        )


def _name_from(path) -> str:
    return os.path.splitext(os.path.basename(os.fspath(path)))[0]
