"""Trace containers: column-oriented storage with record-level access.

Wide-area traces are large (the paper's LBL SYN/FIN traces hold hundreds of
thousands of connections; the packet traces millions of packets), so both
containers store parallel numpy arrays and materialize
:class:`ConnectionRecord` / :class:`PacketRecord` objects only on demand.

Columns are the primary representation end-to-end: the synthesis models in
:mod:`repro.core`, the text readers/writers in :mod:`repro.traces.io`, and
the replay sources all build or consume these arrays directly (see
:mod:`repro.traces.columns`).  Both constructors accept either a record
list (sorted with the same stable order as the array path — ties keep
input order) or ready-made columns via ``from_arrays``; already-sorted
input skips the sort entirely.

Protocol names are interned per trace as ``int8`` ``protocol_codes``
indexing a sorted ``protocol_table`` — 1 byte/row instead of an object
pointer — and ``protocol_mask``/``select`` are integer compares.  The
``.protocols`` object-dtype column of earlier versions remains available
as a lazily materialized (and cached) property.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.selfsim.counts import CountProcess
import repro.traces.columns as tc
from repro.traces.records import ConnectionRecord, Direction, PacketRecord


def _column(values, n: int, default, dtype) -> np.ndarray:
    if values is None:
        return np.full(n, default, dtype=dtype)
    return np.asarray(values, dtype=dtype)


def _intern(n: int, protocols, protocol_codes, protocol_table,
            default: str) -> tuple[np.ndarray, np.ndarray]:
    """Resolve the two ways of passing the protocol column to (codes, table)."""
    if protocol_codes is not None:
        if protocol_table is None:
            raise ValueError("protocol_codes requires protocol_table")
        return (
            np.asarray(protocol_codes, dtype=tc.PROTOCOL_CODE_DTYPE),
            np.asarray(protocol_table, dtype=object),
        )
    if protocols is None:
        protocols = np.full(n, default, dtype=object)
    return tc.encode_protocols(protocols)


class ConnectionTrace:
    """A SYN/FIN-style trace: one row per TCP connection."""

    def __init__(self, name: str, records: Iterable[ConnectionRecord]):
        cols = tc.connection_records_to_columns(records)
        self._init_columns(
            name,
            start_times=cols.start_times,
            durations=cols.durations,
            protocols=cols.protocols,
            bytes_orig=cols.bytes_orig,
            bytes_resp=cols.bytes_resp,
            orig_hosts=cols.orig_hosts,
            resp_hosts=cols.resp_hosts,
            session_ids=cols.session_ids,
        )

    @classmethod
    def from_arrays(
        cls,
        name: str,
        *,
        start_times,
        durations=None,
        protocols=None,
        protocol_codes=None,
        protocol_table=None,
        bytes_orig=None,
        bytes_resp=None,
        orig_hosts=None,
        resp_hosts=None,
        session_ids=None,
    ) -> "ConnectionTrace":
        """Build a trace directly from column arrays (no record objects).

        The protocol column is either ``protocols`` (names, interned here)
        or pre-interned ``protocol_codes`` + sorted ``protocol_table``.
        Missing columns default to zeros (``session_ids`` to -1 = none).
        Rows are stable-sorted by ``start_times``; sorted input is stored
        as-is.
        """
        out = cls.__new__(cls)
        out._init_columns(
            name,
            start_times=start_times,
            durations=durations,
            protocols=protocols,
            protocol_codes=protocol_codes,
            protocol_table=protocol_table,
            bytes_orig=bytes_orig,
            bytes_resp=bytes_resp,
            orig_hosts=orig_hosts,
            resp_hosts=resp_hosts,
            session_ids=session_ids,
        )
        return out

    def _init_columns(
        self,
        name: str,
        *,
        start_times,
        durations=None,
        protocols=None,
        protocol_codes=None,
        protocol_table=None,
        bytes_orig=None,
        bytes_resp=None,
        orig_hosts=None,
        resp_hosts=None,
        session_ids=None,
    ) -> None:
        self.name = name
        t = np.asarray(start_times, dtype=float)
        n = t.size
        codes, table = _intern(n, protocols, protocol_codes, protocol_table,
                               "OTHER")
        cols = (
            _column(durations, n, 0.0, float),
            codes,
            _column(bytes_orig, n, 0, np.int64),
            _column(bytes_resp, n, 0, np.int64),
            _column(orig_hosts, n, 0, np.int64),
            _column(resp_hosts, n, 0, np.int64),
            _column(session_ids, n, -1, np.int64),
        )
        order = tc.stable_time_order(t)
        if order is not None:
            t = t[order]
            cols = tuple(c[order] for c in cols)
        self.start_times = t
        (self.durations, self.protocol_codes, self.bytes_orig,
         self.bytes_resp, self.orig_hosts, self.resp_hosts,
         self.session_ids) = cols
        self.protocol_table = table
        self._protocols_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.start_times.size)

    def __iter__(self) -> Iterator[ConnectionRecord]:
        return (self.record(i) for i in range(len(self)))

    def record(self, i: int) -> ConnectionRecord:
        """Materialize row ``i`` as a :class:`ConnectionRecord`."""
        sid = int(self.session_ids[i])
        return ConnectionRecord(
            start_time=float(self.start_times[i]),
            duration=float(self.durations[i]),
            protocol=str(self.protocol_table[self.protocol_codes[i]]),
            bytes_orig=int(self.bytes_orig[i]),
            bytes_resp=int(self.bytes_resp[i]),
            orig_host=int(self.orig_hosts[i]),
            resp_host=int(self.resp_hosts[i]),
            session_id=None if sid < 0 else sid,
        )

    # ------------------------------------------------------------------
    @property
    def protocols(self) -> np.ndarray:
        """Object-dtype protocol names, materialized from the interned
        codes on first access and cached (the record-view column)."""
        if self._protocols_cache is None:
            self._protocols_cache = tc.decode_protocols(
                self.protocol_codes, self.protocol_table
            )
        return self._protocols_cache

    @property
    def duration(self) -> float:
        """Span from trace start (time 0) to the last connection start."""
        return float(self.start_times[-1]) if len(self) else 0.0

    @property
    def protocol_names(self) -> list[str]:
        present = np.unique(self.protocol_codes)
        return [str(p) for p in self.protocol_table[present]]

    def protocol_mask(self, protocol: str) -> np.ndarray:
        code = tc.protocol_code(self.protocol_table, protocol.upper())
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self.protocol_codes == code

    def arrival_times(self, protocol: str | None = None) -> np.ndarray:
        """Connection start times, optionally for one protocol."""
        if protocol is None:
            return self.start_times.copy()
        return self.start_times[self.protocol_mask(protocol)]

    def connection_count(self, protocol: str | None = None) -> int:
        if protocol is None:
            return len(self)
        return int(self.protocol_mask(protocol).sum())

    def total_bytes(self, protocol: str | None = None) -> int:
        mask = slice(None) if protocol is None else self.protocol_mask(protocol)
        return int(self.bytes_orig[mask].sum() + self.bytes_resp[mask].sum())

    def subset(self, mask: np.ndarray, name: str | None = None) -> "ConnectionTrace":
        """A new trace holding the rows selected by a boolean mask."""
        out = ConnectionTrace.__new__(ConnectionTrace)
        out.name = name or self.name
        for attr in ("start_times", "durations", "protocol_codes",
                     "bytes_orig", "bytes_resp", "orig_hosts", "resp_hosts",
                     "session_ids"):
            setattr(out, attr, getattr(self, attr)[mask])
        out.protocol_table = self.protocol_table
        out._protocols_cache = None
        return out

    def sessions(self, protocol: str) -> dict[int, np.ndarray]:
        """Group one protocol's connections by session id.

        Returns session_id -> sorted row indices; rows without a session id
        are excluded.  Used to analyze FTPDATA connections within FTP
        sessions (Section VI).
        """
        mask = self.protocol_mask(protocol) & (self.session_ids >= 0)
        idx = np.flatnonzero(mask)
        out: dict[int, np.ndarray] = {}
        for sid in np.unique(self.session_ids[idx]):
            rows = idx[self.session_ids[idx] == sid]
            out[int(sid)] = rows[np.argsort(self.start_times[rows])]
        return out

    def hourly_counts(self, protocol: str | None = None) -> np.ndarray:
        """Connections per hour-of-day (24 values), the raw data of Fig. 1."""
        times = self.arrival_times(protocol)
        hours = (times // 3600.0).astype(int) % 24
        return np.bincount(hours, minlength=24)[:24]


class PacketTrace:
    """A packet-level trace stored as parallel arrays."""

    def __init__(self, name: str, packets: Iterable[PacketRecord] | None = None,
                 **arrays):
        if packets is not None:
            cols = tc.packet_records_to_columns(packets)
            arrays = dict(
                timestamps=cols.timestamps,
                protocols=cols.protocols,
                connection_ids=cols.connection_ids,
                directions=cols.directions,
                sizes=cols.sizes,
                user_data=cols.user_data,
            )
        self._init_columns(name, **arrays)

    @classmethod
    def from_arrays(
        cls,
        name: str,
        *,
        timestamps,
        protocols=None,
        protocol_codes=None,
        protocol_table=None,
        connection_ids=None,
        directions=None,
        sizes=None,
        user_data=None,
    ) -> "PacketTrace":
        """Build a trace directly from column arrays (no record objects).

        Same contract as :meth:`ConnectionTrace.from_arrays`; packet-column
        defaults are protocol ``OTHER``, connection 0, direction
        ``ORIGINATOR``, size 1, ``user_data`` True.
        """
        out = cls.__new__(cls)
        out._init_columns(
            name,
            timestamps=timestamps,
            protocols=protocols,
            protocol_codes=protocol_codes,
            protocol_table=protocol_table,
            connection_ids=connection_ids,
            directions=directions,
            sizes=sizes,
            user_data=user_data,
        )
        return out

    def _init_columns(
        self,
        name: str,
        *,
        timestamps,
        protocols=None,
        protocol_codes=None,
        protocol_table=None,
        connection_ids=None,
        directions=None,
        sizes=None,
        user_data=None,
    ) -> None:
        self.name = name
        t = np.asarray(timestamps, dtype=float)
        n = t.size
        codes, table = _intern(n, protocols, protocol_codes, protocol_table,
                               "OTHER")
        cols = (
            codes,
            _column(connection_ids, n, 0, np.int64),
            _column(directions, n, 0, np.int8),
            _column(sizes, n, 1, np.int64),
            _column(user_data, n, True, bool),
        )
        order = tc.stable_time_order(t)
        if order is not None:
            t = t[order]
            cols = tuple(c[order] for c in cols)
        self.timestamps = t
        (self.protocol_codes, self.connection_ids, self.directions,
         self.sizes, self.user_data) = cols
        self.protocol_table = table
        self._protocols_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.timestamps.size)

    def record(self, i: int) -> PacketRecord:
        return PacketRecord(
            timestamp=float(self.timestamps[i]),
            protocol=str(self.protocol_table[self.protocol_codes[i]]),
            connection_id=int(self.connection_ids[i]),
            direction=Direction(int(self.directions[i])),
            size=int(self.sizes[i]),
            user_data=bool(self.user_data[i]),
        )

    @property
    def protocols(self) -> np.ndarray:
        """Object-dtype protocol names, materialized from the interned
        codes on first access and cached (the record-view column)."""
        if self._protocols_cache is None:
            self._protocols_cache = tc.decode_protocols(
                self.protocol_codes, self.protocol_table
            )
        return self._protocols_cache

    @property
    def duration(self) -> float:
        return float(self.timestamps[-1]) if len(self) else 0.0

    def protocol_mask(self, protocol: str) -> np.ndarray:
        code = tc.protocol_code(self.protocol_table, protocol.upper())
        if code < 0:
            return np.zeros(len(self), dtype=bool)
        return self.protocol_codes == code

    def select(
        self,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
    ) -> np.ndarray:
        """Boolean mask for the requested packet subset."""
        mask = np.ones(len(self), dtype=bool)
        if protocol is not None:
            mask &= self.protocol_mask(protocol)
        if direction is not None:
            mask &= self.directions == int(direction)
        if user_data_only:
            mask &= self.user_data
        return mask

    def packet_times(
        self,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
    ) -> np.ndarray:
        return self.timestamps[self.select(protocol, direction, user_data_only)]

    def connection_packet_times(self, connection_id: int) -> np.ndarray:
        return self.timestamps[self.connection_ids == connection_id]

    def count_process(
        self,
        bin_width: float,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
        start: float = 0.0,
        end: float | None = None,
        weight_by_size: bool = False,
    ) -> CountProcess:
        """Bin the selected packets into a :class:`CountProcess`.

        ``weight_by_size=True`` produces a *byte* process (bytes per bin)
        instead of a packet-count process — the quantity Figs. 10-11 plot.
        """
        mask = self.select(protocol, direction, user_data_only)
        times = self.timestamps[mask]
        stop = self.duration if end is None else end
        if not weight_by_size:
            return CountProcess.from_times(times, bin_width, start=start,
                                           end=stop)
        from repro.utils.binning import bin_edges

        edges = bin_edges(start, stop, bin_width)
        if len(edges) < 2:
            return CountProcess(np.zeros(0), bin_width)
        totals, _ = np.histogram(times, bins=edges,
                                 weights=self.sizes[mask].astype(float))
        return CountProcess(totals, bin_width)

    def connections(
        self, protocol: str | None = None
    ) -> dict[int, np.ndarray]:
        """Map connection_id -> packet timestamps, optionally per protocol."""
        mask = self.select(protocol)
        out: dict[int, np.ndarray] = {}
        ids = self.connection_ids[mask]
        ts = self.timestamps[mask]
        for cid in np.unique(ids):
            out[int(cid)] = ts[ids == cid]
        return out


def interarrival_times(times: Sequence[float]) -> np.ndarray:
    """Sorted interarrival gaps of a set of event times."""
    t = np.sort(np.asarray(times, dtype=float))
    return np.diff(t)
