"""Trace containers: column-oriented storage with record-level access.

Wide-area traces are large (the paper's LBL SYN/FIN traces hold hundreds of
thousands of connections; the packet traces millions of packets), so both
containers store parallel numpy arrays internally and materialize
:class:`ConnectionRecord` / :class:`PacketRecord` objects only on demand.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.traces.records import ConnectionRecord, Direction, PacketRecord


class ConnectionTrace:
    """A SYN/FIN-style trace: one row per TCP connection."""

    def __init__(self, name: str, records: Iterable[ConnectionRecord]):
        recs = sorted(records, key=lambda r: r.start_time)
        self.name = name
        self.start_times = np.array([r.start_time for r in recs], dtype=float)
        self.durations = np.array([r.duration for r in recs], dtype=float)
        self.protocols = np.array([r.protocol for r in recs], dtype=object)
        self.bytes_orig = np.array([r.bytes_orig for r in recs], dtype=np.int64)
        self.bytes_resp = np.array([r.bytes_resp for r in recs], dtype=np.int64)
        self.orig_hosts = np.array([r.orig_host for r in recs], dtype=np.int64)
        self.resp_hosts = np.array([r.resp_host for r in recs], dtype=np.int64)
        self.session_ids = np.array(
            [-1 if r.session_id is None else r.session_id for r in recs],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.start_times.size)

    def __iter__(self) -> Iterator[ConnectionRecord]:
        return (self.record(i) for i in range(len(self)))

    def record(self, i: int) -> ConnectionRecord:
        """Materialize row ``i`` as a :class:`ConnectionRecord`."""
        sid = int(self.session_ids[i])
        return ConnectionRecord(
            start_time=float(self.start_times[i]),
            duration=float(self.durations[i]),
            protocol=str(self.protocols[i]),
            bytes_orig=int(self.bytes_orig[i]),
            bytes_resp=int(self.bytes_resp[i]),
            orig_host=int(self.orig_hosts[i]),
            resp_host=int(self.resp_hosts[i]),
            session_id=None if sid < 0 else sid,
        )

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Span from trace start (time 0) to the last connection start."""
        return float(self.start_times[-1]) if len(self) else 0.0

    @property
    def protocol_names(self) -> list[str]:
        return sorted(set(self.protocols.tolist()))

    def protocol_mask(self, protocol: str) -> np.ndarray:
        return self.protocols == protocol.upper()

    def arrival_times(self, protocol: str | None = None) -> np.ndarray:
        """Connection start times, optionally for one protocol."""
        if protocol is None:
            return self.start_times.copy()
        return self.start_times[self.protocol_mask(protocol)]

    def connection_count(self, protocol: str | None = None) -> int:
        if protocol is None:
            return len(self)
        return int(self.protocol_mask(protocol).sum())

    def total_bytes(self, protocol: str | None = None) -> int:
        mask = slice(None) if protocol is None else self.protocol_mask(protocol)
        return int(self.bytes_orig[mask].sum() + self.bytes_resp[mask].sum())

    def subset(self, mask: np.ndarray, name: str | None = None) -> "ConnectionTrace":
        """A new trace holding the rows selected by a boolean mask."""
        out = ConnectionTrace.__new__(ConnectionTrace)
        out.name = name or self.name
        for attr in ("start_times", "durations", "protocols", "bytes_orig",
                     "bytes_resp", "orig_hosts", "resp_hosts", "session_ids"):
            setattr(out, attr, getattr(self, attr)[mask])
        return out

    def sessions(self, protocol: str) -> dict[int, np.ndarray]:
        """Group one protocol's connections by session id.

        Returns session_id -> sorted row indices; rows without a session id
        are excluded.  Used to analyze FTPDATA connections within FTP
        sessions (Section VI).
        """
        mask = self.protocol_mask(protocol) & (self.session_ids >= 0)
        idx = np.flatnonzero(mask)
        out: dict[int, np.ndarray] = {}
        for sid in np.unique(self.session_ids[idx]):
            rows = idx[self.session_ids[idx] == sid]
            out[int(sid)] = rows[np.argsort(self.start_times[rows])]
        return out

    def hourly_counts(self, protocol: str | None = None) -> np.ndarray:
        """Connections per hour-of-day (24 values), the raw data of Fig. 1."""
        times = self.arrival_times(protocol)
        hours = (times // 3600.0).astype(int) % 24
        return np.bincount(hours, minlength=24)[:24]


class PacketTrace:
    """A packet-level trace stored as parallel arrays."""

    def __init__(self, name: str, packets: Iterable[PacketRecord] | None = None,
                 **arrays):
        self.name = name
        if packets is not None:
            pkts = sorted(packets, key=lambda p: p.timestamp)
            self.timestamps = np.array([p.timestamp for p in pkts], dtype=float)
            self.protocols = np.array([p.protocol for p in pkts], dtype=object)
            self.connection_ids = np.array(
                [p.connection_id for p in pkts], dtype=np.int64
            )
            self.directions = np.array(
                [int(p.direction) for p in pkts], dtype=np.int8
            )
            self.sizes = np.array([p.size for p in pkts], dtype=np.int64)
            self.user_data = np.array([p.user_data for p in pkts], dtype=bool)
        else:
            self.timestamps = np.asarray(arrays["timestamps"], dtype=float)
            n = self.timestamps.size
            order = np.argsort(self.timestamps, kind="stable")
            self.timestamps = self.timestamps[order]
            self.protocols = np.asarray(
                arrays.get("protocols", np.full(n, "OTHER", dtype=object)),
                dtype=object,
            )[order]
            self.connection_ids = np.asarray(
                arrays.get("connection_ids", np.zeros(n)), dtype=np.int64
            )[order]
            self.directions = np.asarray(
                arrays.get("directions", np.zeros(n)), dtype=np.int8
            )[order]
            self.sizes = np.asarray(
                arrays.get("sizes", np.ones(n)), dtype=np.int64
            )[order]
            self.user_data = np.asarray(
                arrays.get("user_data", np.ones(n, dtype=bool)), dtype=bool
            )[order]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.timestamps.size)

    def record(self, i: int) -> PacketRecord:
        return PacketRecord(
            timestamp=float(self.timestamps[i]),
            protocol=str(self.protocols[i]),
            connection_id=int(self.connection_ids[i]),
            direction=Direction(int(self.directions[i])),
            size=int(self.sizes[i]),
            user_data=bool(self.user_data[i]),
        )

    @property
    def duration(self) -> float:
        return float(self.timestamps[-1]) if len(self) else 0.0

    def select(
        self,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
    ) -> np.ndarray:
        """Boolean mask for the requested packet subset."""
        mask = np.ones(len(self), dtype=bool)
        if protocol is not None:
            mask &= self.protocols == protocol.upper()
        if direction is not None:
            mask &= self.directions == int(direction)
        if user_data_only:
            mask &= self.user_data
        return mask

    def packet_times(
        self,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
    ) -> np.ndarray:
        return self.timestamps[self.select(protocol, direction, user_data_only)]

    def connection_packet_times(self, connection_id: int) -> np.ndarray:
        return self.timestamps[self.connection_ids == connection_id]

    def count_process(
        self,
        bin_width: float,
        protocol: str | None = None,
        direction: Direction | None = None,
        user_data_only: bool = False,
        start: float = 0.0,
        end: float | None = None,
        weight_by_size: bool = False,
    ) -> CountProcess:
        """Bin the selected packets into a :class:`CountProcess`.

        ``weight_by_size=True`` produces a *byte* process (bytes per bin)
        instead of a packet-count process — the quantity Figs. 10-11 plot.
        """
        mask = self.select(protocol, direction, user_data_only)
        times = self.timestamps[mask]
        stop = self.duration if end is None else end
        if not weight_by_size:
            return CountProcess.from_times(times, bin_width, start=start,
                                           end=stop)
        from repro.utils.binning import bin_edges

        edges = bin_edges(start, stop, bin_width)
        if len(edges) < 2:
            return CountProcess(np.zeros(0), bin_width)
        totals, _ = np.histogram(times, bins=edges,
                                 weights=self.sizes[mask].astype(float))
        return CountProcess(totals, bin_width)

    def connections(
        self, protocol: str | None = None
    ) -> dict[int, np.ndarray]:
        """Map connection_id -> packet timestamps, optionally per protocol."""
        mask = self.select(protocol)
        out: dict[int, np.ndarray] = {}
        ids = self.connection_ids[mask]
        ts = self.timestamps[mask]
        for cid in np.unique(ids):
            out[int(cid)] = ts[ids == cid]
        return out


def interarrival_times(times: Sequence[float]) -> np.ndarray:
    """Sorted interarrival gaps of a set of event times."""
    t = np.sort(np.asarray(times, dtype=float))
    return np.diff(t)
