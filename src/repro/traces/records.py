"""Record types for trace data.

``ConnectionRecord`` mirrors what a TCP SYN/FIN trace yields per connection
(Section II: "SYN/FIN packets are enough to measure connection start times
..., durations, TCP protocol, participating hosts, and data bytes
transferred in each direction").  ``PacketRecord`` mirrors one row of a
packet-level trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Direction(IntEnum):
    """Which side of the connection sent a packet."""

    ORIGINATOR = 0
    RESPONDER = 1


@dataclass(frozen=True)
class ConnectionRecord:
    """One TCP connection as seen in a SYN/FIN trace.

    Attributes
    ----------
    start_time:
        Connection establishment time, seconds from trace start.
    duration:
        Seconds from first SYN to last FIN.
    protocol:
        Application protocol name (see :mod:`repro.traces.protocols`).
    bytes_orig, bytes_resp:
        Data bytes sent by originator / responder.
    orig_host, resp_host:
        Opaque host identifiers.
    session_id:
        Groups connections belonging to one user session — e.g. the FTPDATA
        connections spawned by one FTP control connection.  None when the
        connection *is* the session.
    """

    start_time: float
    duration: float
    protocol: str
    bytes_orig: int = 0
    bytes_resp: int = 0
    orig_host: int = 0
    resp_host: int = 0
    session_id: int | None = None

    def __post_init__(self):
        if not self.start_time >= 0:  # also rejects NaN
            raise ValueError(f"start_time must be >= 0, got {self.start_time}")
        if not self.duration >= 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.bytes_orig < 0 or self.bytes_resp < 0:
            raise ValueError("byte counts must be >= 0")

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def total_bytes(self) -> int:
        return self.bytes_orig + self.bytes_resp


@dataclass(frozen=True)
class PacketRecord:
    """One packet in a packet-level trace.

    ``user_data`` distinguishes payload-carrying packets from pure acks;
    Section IV's TELNET analysis drops originator packets "consisting of no
    user data ('pure ack')".
    """

    timestamp: float
    protocol: str
    connection_id: int
    direction: Direction = Direction.ORIGINATOR
    size: int = 1
    user_data: bool = True

    def __post_init__(self):
        if not self.timestamp >= 0:  # also rejects NaN
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
