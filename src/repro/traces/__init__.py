"""Trace substrate: data model, I/O, diurnal profiles, and the synthetic
24-trace suite standing in for the paper's measurement datasets."""

from repro.traces.diurnal import hourly_fractions, hourly_profile, hourly_rates
from repro.traces.io import (
    read_connection_trace,
    read_packet_trace,
    write_connection_trace,
    write_packet_trace,
)
from repro.traces.protocols import (
    FIG2_PROTOCOLS,
    REGISTRY,
    ArrivalNature,
    Protocol,
    lookup,
)
from repro.traces.records import ConnectionRecord, Direction, PacketRecord
from repro.traces.synthesis import (
    CONNECTION_TRACE_CONFIGS,
    PACKET_TRACE_CONFIGS,
    packet_suite,
    standard_suite,
    synthesize_connection_trace,
    synthesize_packet_trace,
)
from repro.traces.periodic import (
    PeriodicSource,
    detect_periodic_sources,
    remove_periodic_traffic,
)
from repro.traces.summary import (
    ProtocolSummary,
    bulk_vs_interactive_bytes,
    characterize,
    dominant_byte_protocol,
)
from repro.traces.trace import ConnectionTrace, PacketTrace, interarrival_times

__all__ = [
    "CONNECTION_TRACE_CONFIGS",
    "FIG2_PROTOCOLS",
    "PACKET_TRACE_CONFIGS",
    "REGISTRY",
    "ArrivalNature",
    "ConnectionRecord",
    "ConnectionTrace",
    "Direction",
    "PacketRecord",
    "PacketTrace",
    "PeriodicSource",
    "ProtocolSummary",
    "Protocol",
    "bulk_vs_interactive_bytes",
    "characterize",
    "detect_periodic_sources",
    "dominant_byte_protocol",
    "hourly_fractions",
    "hourly_profile",
    "hourly_rates",
    "interarrival_times",
    "lookup",
    "packet_suite",
    "read_connection_trace",
    "read_packet_trace",
    "remove_periodic_traffic",
    "standard_suite",
    "synthesize_connection_trace",
    "synthesize_packet_trace",
    "write_connection_trace",
    "write_packet_trace",
]
