"""Detection and removal of periodic (timer-driven) traffic.

Section III: "Prior to our analysis we removed the periodic 'weather-map'
FTP traffic discussed in [35], to avoid skewing our results."  The LBL site
ran an hourly job fetching a weather map by FTP; left in place, its
clockwork arrivals wreck the Poisson tests for what is otherwise
user-driven FTP traffic.

Detection works per host pair: a (originator, responder) pair whose
interarrival times have a very low coefficient of variation is timer-driven
(a Poisson stream's interarrival CV is 1; a timer's is ~0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import ConnectionTrace
from repro.utils.validation import require_positive

#: Interarrival coefficient of variation below which a host pair is deemed
#: timer-driven.  Poisson gives CV = 1; jittered hourly timers give < 0.2.
DEFAULT_CV_THRESHOLD = 0.3

#: Fewest connections a host pair needs before it can be classified.
DEFAULT_MIN_CONNECTIONS = 6


@dataclass(frozen=True)
class PeriodicSource:
    """One detected timer-driven host pair."""

    orig_host: int
    resp_host: int
    protocol: str
    n_connections: int
    period: float  # median interarrival, seconds
    cv: float  # interarrival coefficient of variation


def detect_periodic_sources(
    trace: ConnectionTrace,
    protocol: str = "FTP",
    *,
    cv_threshold: float = DEFAULT_CV_THRESHOLD,
    min_connections: int = DEFAULT_MIN_CONNECTIONS,
) -> list[PeriodicSource]:
    """Find timer-driven host pairs for one protocol."""
    require_positive(cv_threshold, "cv_threshold")
    if min_connections < 3:
        raise ValueError("min_connections must be >= 3")
    mask = trace.protocol_mask(protocol)
    idx = np.flatnonzero(mask)
    pairs = {}
    for i in idx:
        key = (int(trace.orig_hosts[i]), int(trace.resp_hosts[i]))
        pairs.setdefault(key, []).append(float(trace.start_times[i]))
    out = []
    for (orig, resp), times in pairs.items():
        if len(times) < min_connections:
            continue
        verdict = _phase_folding_test(np.sort(np.asarray(times)), cv_threshold)
        if verdict is None:
            continue
        period, dispersion = verdict
        out.append(
            PeriodicSource(
                orig_host=orig,
                resp_host=resp,
                protocol=protocol.upper(),
                n_connections=len(times),
                period=period,
                cv=dispersion,
            )
        )
    out.sort(key=lambda s: s.n_connections, reverse=True)
    return out


def _phase_folding_test(
    times: np.ndarray, cv_threshold: float
) -> tuple[float, float] | None:
    """Firing-regularity periodicity test, robust to per-firing batches.

    Timer jobs often fetch several files per firing, so raw interarrival
    statistics are bimodal (tiny intra-batch gaps + the period).  The test
    therefore (1) picks a candidate period from the *large* gaps (above the
    90th percentile, so even large batches cannot drown it), (2) coalesces
    arrivals separated by less than a quarter period into single firings,
    and (3) computes the coefficient of variation of the firing
    interarrivals.  A timer's firing gaps cluster
    tightly around the period (CV ~ 0); Poisson firing gaps keep CV near 1.
    Returns (period, cv) when cv is below the threshold, else None.
    """
    gaps = np.diff(times)
    if gaps.size < 3 or gaps.mean() <= 0:
        return None
    big = gaps[gaps >= np.quantile(gaps, 0.9)]
    if big.size < 2:
        return None
    candidate = float(np.median(big))
    if candidate <= 0:
        return None
    # Coalesce batch members into firings.
    firing_starts = [float(times[0])]
    for t, gap in zip(times[1:], gaps):
        if gap > 0.25 * candidate:
            firing_starts.append(float(t))
    if len(firing_starts) < 4:
        return None
    fgaps = np.diff(firing_starts)
    mean = float(fgaps.mean())
    if mean <= 0:
        return None
    cv = float(fgaps.std() / mean)
    if cv < cv_threshold:
        return float(np.median(fgaps)), cv
    return None


def remove_periodic_traffic(
    trace: ConnectionTrace,
    protocol: str = "FTP",
    *,
    cv_threshold: float = DEFAULT_CV_THRESHOLD,
    min_connections: int = DEFAULT_MIN_CONNECTIONS,
) -> tuple[ConnectionTrace, list[PeriodicSource]]:
    """The paper's preprocessing step: drop timer-driven host pairs.

    Returns the filtered trace and the sources removed.  Connections of
    other protocols and of non-periodic host pairs are untouched.
    """
    sources = detect_periodic_sources(
        trace, protocol, cv_threshold=cv_threshold,
        min_connections=min_connections,
    )
    if not sources:
        return trace, []
    bad = {(s.orig_host, s.resp_host) for s in sources}
    keep = np.ones(len(trace), dtype=bool)
    proto_mask = trace.protocol_mask(protocol)
    for i in np.flatnonzero(proto_mask):
        if (int(trace.orig_hosts[i]), int(trace.resp_hosts[i])) in bad:
            keep[i] = False
    return trace.subset(keep, name=f"{trace.name} (periodic removed)"), sources
