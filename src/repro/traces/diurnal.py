"""Diurnal (hour-of-day) rate profiles behind Fig. 1.

Fig. 1 plots, per protocol, the fraction of a day's connections arriving in
each hour.  The shapes the paper describes:

* TELNET: "primarily during normal office hours, with a lunch-related dip
  at noontime";
* FTP sessions: "a similar hourly profile, but ... substantial renewal in
  the evening hours, when presumably users take advantage of lower
  networking delays";
* NNTP: "a fairly constant rate throughout the day, only dipping somewhat
  in the early morning hours";
* SMTP: "a morning bias for the LBL site (west-coast U.S.) and an afternoon
  bias for the Bellcore site (east-coast U.S.)".

Profiles are unit-mean multipliers; multiply by a base hourly rate to get
the piecewise-constant rates for :func:`repro.arrivals.piecewise_poisson`.
"""

from __future__ import annotations

import warnings

import numpy as np

_OFFICE_HOURS = np.array(
    # 0   1    2    3    4    5    6    7    8    9   10   11
    [0.25, 0.2, 0.15, 0.12, 0.12, 0.15, 0.3, 0.6, 1.3, 1.9, 2.2, 2.1,
     # 12  13   14   15   16   17   18   19   20   21   22   23
     1.6, 2.0, 2.2, 2.1, 1.9, 1.5, 0.9, 0.7, 0.6, 0.5, 0.4, 0.3]
)

_FTP_EVENING = np.array(
    [0.35, 0.3, 0.25, 0.2, 0.2, 0.25, 0.4, 0.7, 1.2, 1.7, 1.9, 1.8,
     1.4, 1.7, 1.9, 1.8, 1.6, 1.3, 1.1, 1.2, 1.3, 1.2, 0.9, 0.6]
)

_NNTP_FLAT = np.array(
    [0.95, 0.9, 0.8, 0.7, 0.65, 0.7, 0.8, 0.95, 1.05, 1.1, 1.15, 1.15,
     1.1, 1.15, 1.15, 1.1, 1.1, 1.05, 1.05, 1.05, 1.05, 1.05, 1.0, 1.0]
)

_SMTP_MORNING = np.array(
    [0.3, 0.25, 0.2, 0.2, 0.25, 0.4, 0.8, 1.4, 2.0, 2.3, 2.2, 1.9,
     1.5, 1.6, 1.6, 1.5, 1.4, 1.1, 0.8, 0.7, 0.6, 0.5, 0.45, 0.35]
)

_SMTP_AFTERNOON = np.array(
    [0.3, 0.25, 0.2, 0.2, 0.25, 0.35, 0.6, 0.9, 1.3, 1.6, 1.8, 1.9,
     1.7, 2.0, 2.2, 2.2, 2.0, 1.6, 1.1, 0.9, 0.7, 0.6, 0.5, 0.4]
)

_WWW_OFFICE = np.array(
    [0.3, 0.25, 0.2, 0.18, 0.18, 0.25, 0.4, 0.8, 1.4, 1.9, 2.1, 2.0,
     1.7, 1.9, 2.1, 2.0, 1.8, 1.4, 1.0, 0.8, 0.7, 0.6, 0.5, 0.4]
)

_PROFILES: dict[tuple[str, str], np.ndarray] = {
    ("TELNET", "west"): _OFFICE_HOURS,
    ("RLOGIN", "west"): _OFFICE_HOURS,
    ("X11", "west"): _OFFICE_HOURS,
    ("FTP", "west"): _FTP_EVENING,
    ("FTPDATA", "west"): _FTP_EVENING,
    ("NNTP", "west"): _NNTP_FLAT,
    ("SMTP", "west"): _SMTP_MORNING,
    ("SMTP", "east"): _SMTP_AFTERNOON,
    ("WWW", "west"): _WWW_OFFICE,
}


#: Site labels with defined semantics ("west" = LBL-like, "east" =
#: Bellcore-like).  Anything else is a typo, not a site.
KNOWN_SITES = ("west", "east")


def hourly_profile(
    protocol: str, site: str = "west", *, strict: bool = False
) -> np.ndarray:
    """Unit-mean 24-hour rate multipliers for a protocol at a site.

    ``site`` is "west" (LBL-like) or "east" (Bellcore-like); only SMTP
    differs between the two, per the paper's time-zone observation, so a
    *known* protocol at "east" silently shares the west profile.

    Unknown inputs are no longer silent: a protocol with no profile (e.g.
    the typo ``"TELENT"``) returns a flat all-ones profile with a
    ``UserWarning``, and an unknown site falls back to "west" with a
    ``UserWarning`` — either would otherwise flatten or skew Fig. 1's
    inputs without a trace.  ``strict=True`` raises ``KeyError`` instead.
    """
    if site not in KNOWN_SITES:
        if strict:
            raise KeyError(
                f"unknown site {site!r}; known sites: {KNOWN_SITES}"
            )
        warnings.warn(
            f"unknown site {site!r}: falling back to 'west' "
            f"(known sites: {KNOWN_SITES})",
            stacklevel=2,
        )
        site = "west"
    key = (protocol.upper(), site)
    profile = _PROFILES.get(key)
    if profile is None:
        profile = _PROFILES.get((protocol.upper(), "west"))
    if profile is None:
        known = sorted({proto for proto, _ in _PROFILES})
        if strict:
            raise KeyError(
                f"unknown protocol {protocol!r}; known protocols: {known}"
            )
        warnings.warn(
            f"unknown protocol {protocol!r}: returning a flat all-ones "
            f"profile (known protocols: {known})",
            stacklevel=2,
        )
        profile = np.ones(24)
    return profile / profile.mean()


def hourly_fractions(
    protocol: str, site: str = "west", *, strict: bool = False
) -> np.ndarray:
    """Fraction of a day's connections in each hour — Fig. 1's y-axis."""
    p = hourly_profile(protocol, site, strict=strict)
    return p / p.sum()


def hourly_rates(
    protocol: str, mean_rate: float, n_hours: int, site: str = "west",
    *, strict: bool = False,
) -> np.ndarray:
    """Per-hour arrival rates for ``n_hours`` hours at ``mean_rate``
    events/second on average, tiling the diurnal profile across days."""
    if mean_rate < 0:
        raise ValueError(f"mean_rate must be >= 0, got {mean_rate}")
    if n_hours < 0:
        raise ValueError(f"n_hours must be >= 0, got {n_hours}")
    profile = hourly_profile(protocol, site, strict=strict)
    tiled = np.tile(profile, int(np.ceil(n_hours / 24.0)))[:n_hours]
    return mean_rate * tiled
