"""Columnar record batches: the array-native currency of the data plane.

Every producer and consumer of trace data — the synthetic sources in
:mod:`repro.core`, the text readers/writers in :mod:`repro.traces.io`, the
out-of-core scanners in :mod:`repro.stream`, and the replay wire path —
moves records as the parallel-column batches defined here, never as lists
of per-row :class:`~repro.traces.records.PacketRecord` /
:class:`~repro.traces.records.ConnectionRecord` objects.  The record
dataclasses remain the *view* API (materialized on demand by
``trace.record(i)``); the columns are the storage and transport format.

Protocol interning
------------------
Protocol names are stored as ``int8`` codes plus a sorted category table
(``codes[i]`` indexes ``table``), pandas-Categorical style.  The table is
per-container — derived deterministically from the data with
:func:`encode_protocols` — so encoded containers are self-contained and
pickle across process pools without any global registry.  An interned
column costs 1 byte/row instead of an 8-byte object pointer (plus the
string storage), and protocol selection becomes an integer compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.traces.records import ConnectionRecord, PacketRecord

#: Interned protocol-code dtype; one byte per row.
PROTOCOL_CODE_DTYPE = np.int8

#: ``int8`` codes cap the per-container category table.
MAX_PROTOCOLS = 127


# ----------------------------------------------------------------------
# Protocol interning
# ----------------------------------------------------------------------
def encode_protocols(protocols) -> tuple[np.ndarray, np.ndarray]:
    """Intern a protocol-name column as ``(codes, table)``.

    ``table`` is the sorted unique names (object dtype) and ``codes`` the
    ``int8`` index of each row's name in it, so
    ``table[codes]`` reproduces the input exactly.
    """
    arr = np.asarray(protocols, dtype=object)
    # Hash-dedup + binary search beats ``np.unique``'s object-array sort by
    # ~10x on large columns; the sorted set gives the identical table.
    table = np.array(sorted(set(arr.tolist())), dtype=object)
    if table.size > MAX_PROTOCOLS:
        raise ValueError(
            f"{table.size} distinct protocols exceed the int8 code space "
            f"({MAX_PROTOCOLS})"
        )
    codes = (np.searchsorted(table, arr) if table.size
             else np.zeros(arr.size, dtype=np.intp))
    return codes.astype(PROTOCOL_CODE_DTYPE), table


def decode_protocols(codes: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Materialize the object-dtype name column from interned codes."""
    table = np.asarray(table, dtype=object)
    if table.size == 0:
        return np.zeros(len(codes), dtype=object)
    return table[codes]


def protocol_code(table: np.ndarray, name: str) -> int:
    """The code of ``name`` in ``table``, or -1 when absent."""
    hit = np.flatnonzero(np.asarray(table, dtype=object) == name)
    return int(hit[0]) if hit.size else -1


# ----------------------------------------------------------------------
# Sort fast path
# ----------------------------------------------------------------------
def stable_time_order(times: np.ndarray) -> np.ndarray | None:
    """Stable sort permutation for a time column, or None when already
    non-decreasing.

    Every reader and synthesis path produces time-sorted output, so the
    common case skips both the ``argsort`` and the per-column gather the
    trace constructors would otherwise pay.
    """
    t = np.asarray(times)
    if t.size < 2 or not np.any(t[1:] < t[:-1]):
        return None
    return np.argsort(t, kind="stable")


# ----------------------------------------------------------------------
# Batch types (the transport currency; storage mirrors these columns)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PacketBatch:
    """A run of consecutive packet records as parallel columns."""

    timestamps: np.ndarray    # float64
    protocols: np.ndarray     # object (str)
    connection_ids: np.ndarray  # int64
    directions: np.ndarray    # int8
    sizes: np.ndarray         # int64
    user_data: np.ndarray     # bool
    #: Optional pre-encoded fixed-width byte protocols (``S`` dtype), set
    #: by columnar producers so the replay wire encoder skips the
    #: object-array ``astype("S")`` pass.
    protocols_s: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.timestamps.size)

    @property
    def times(self) -> np.ndarray:
        return self.timestamps


@dataclass(frozen=True)
class ConnectionBatch:
    """A run of consecutive connection records as parallel columns."""

    start_times: np.ndarray   # float64
    durations: np.ndarray     # float64
    protocols: np.ndarray     # object (str)
    bytes_orig: np.ndarray    # int64
    bytes_resp: np.ndarray    # int64
    orig_hosts: np.ndarray    # int64
    resp_hosts: np.ndarray    # int64
    session_ids: np.ndarray   # int64 (-1 = none)

    def __len__(self) -> int:
        return int(self.start_times.size)

    @property
    def times(self) -> np.ndarray:
        return self.start_times

    @property
    def sizes(self) -> np.ndarray:
        """Total bytes per connection (the Section VI 'burst size')."""
        return self.bytes_orig + self.bytes_resp


_PKT_COLUMNS = ("timestamps", "protocols", "connection_ids", "directions",
                "sizes", "user_data")
_CONN_COLUMNS = ("start_times", "durations", "protocols", "bytes_orig",
                 "bytes_resp", "orig_hosts", "resp_hosts", "session_ids")


def empty_packet_columns() -> PacketBatch:
    return PacketBatch(
        timestamps=np.zeros(0),
        protocols=np.zeros(0, dtype=object),
        connection_ids=np.zeros(0, dtype=np.int64),
        directions=np.zeros(0, dtype=np.int8),
        sizes=np.zeros(0, dtype=np.int64),
        user_data=np.zeros(0, dtype=bool),
    )


def empty_connection_columns() -> ConnectionBatch:
    return ConnectionBatch(
        start_times=np.zeros(0),
        durations=np.zeros(0),
        protocols=np.zeros(0, dtype=object),
        bytes_orig=np.zeros(0, dtype=np.int64),
        bytes_resp=np.zeros(0, dtype=np.int64),
        orig_hosts=np.zeros(0, dtype=np.int64),
        resp_hosts=np.zeros(0, dtype=np.int64),
        session_ids=np.zeros(0, dtype=np.int64),
    )


def _concat(batches: Sequence, columns: tuple[str, ...], empty):
    batches = [b for b in batches if len(b)]
    if not batches:
        return empty()
    if len(batches) == 1:
        return batches[0]
    return type(batches[0])(**{
        col: np.concatenate([getattr(b, col) for b in batches])
        for col in columns
    })


def concat_packet_batches(batches: Sequence[PacketBatch]) -> PacketBatch:
    """Concatenate packet batches in order (one batch passes through)."""
    return _concat(batches, _PKT_COLUMNS, empty_packet_columns)


def concat_connection_batches(
    batches: Sequence[ConnectionBatch],
) -> ConnectionBatch:
    """Concatenate connection batches in order (one batch passes through)."""
    return _concat(batches, _CONN_COLUMNS, empty_connection_columns)


# ----------------------------------------------------------------------
# Record-list <-> column conversion (the compatibility shim)
# ----------------------------------------------------------------------
def packet_records_to_columns(
    packets: Iterable[PacketRecord],
) -> PacketBatch:
    """Columns for a record list, in the list's order (no sorting)."""
    pkts = list(packets)
    return PacketBatch(
        timestamps=np.array([p.timestamp for p in pkts], dtype=float),
        protocols=np.array([p.protocol for p in pkts], dtype=object),
        connection_ids=np.array([p.connection_id for p in pkts],
                                dtype=np.int64),
        directions=np.array([int(p.direction) for p in pkts], dtype=np.int8),
        sizes=np.array([p.size for p in pkts], dtype=np.int64),
        user_data=np.array([p.user_data for p in pkts], dtype=bool),
    )


def connection_records_to_columns(
    records: Iterable[ConnectionRecord],
) -> ConnectionBatch:
    """Columns for a record list, in the list's order (no sorting)."""
    recs = list(records)
    return ConnectionBatch(
        start_times=np.array([r.start_time for r in recs], dtype=float),
        durations=np.array([r.duration for r in recs], dtype=float),
        protocols=np.array([r.protocol for r in recs], dtype=object),
        bytes_orig=np.array([r.bytes_orig for r in recs], dtype=np.int64),
        bytes_resp=np.array([r.bytes_resp for r in recs], dtype=np.int64),
        orig_hosts=np.array([r.orig_host for r in recs], dtype=np.int64),
        resp_hosts=np.array([r.resp_host for r in recs], dtype=np.int64),
        session_ids=np.array(
            [-1 if r.session_id is None else r.session_id for r in recs],
            dtype=np.int64,
        ),
    )
