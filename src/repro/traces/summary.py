"""Per-protocol trace characterization.

Section II points readers to companion papers "for details regarding the
characteristics of the traffic in each dataset, including the number of
connections and bytes due to each TCP protocol."  This module produces that
characterization for any trace: connection counts, byte totals, byte
shares, duration statistics — and the paper's headline observation that
"FTPDATA connections currently carry the bulk of the data bytes in wide
area networks" (Section VI, citing [6]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import ConnectionTrace


@dataclass(frozen=True)
class ProtocolSummary:
    """Characterization of one protocol's traffic within a trace."""

    protocol: str
    connections: int
    total_bytes: int
    byte_share: float
    connection_share: float
    median_duration: float
    mean_bytes_per_connection: float

    def row(self) -> dict:
        return {
            "protocol": self.protocol,
            "conns": self.connections,
            "conn_share": self.connection_share,
            "MB": self.total_bytes / 1e6,
            "byte_share": self.byte_share,
            "median_dur_s": self.median_duration,
            "KB_per_conn": self.mean_bytes_per_connection / 1e3,
        }


def characterize(trace: ConnectionTrace) -> list[ProtocolSummary]:
    """Summarize a connection trace per protocol, largest byte share first."""
    if len(trace) == 0:
        raise ValueError("cannot characterize an empty trace")
    grand_bytes = max(trace.total_bytes(), 1)
    grand_conns = len(trace)
    out = []
    for proto in trace.protocol_names:
        mask = trace.protocol_mask(proto)
        n = int(mask.sum())
        b = trace.total_bytes(proto)
        out.append(
            ProtocolSummary(
                protocol=proto,
                connections=n,
                total_bytes=b,
                byte_share=b / grand_bytes,
                connection_share=n / grand_conns,
                median_duration=float(np.median(trace.durations[mask])),
                mean_bytes_per_connection=b / n if n else 0.0,
            )
        )
    out.sort(key=lambda s: s.total_bytes, reverse=True)
    return out


def dominant_byte_protocol(trace: ConnectionTrace) -> str:
    """The protocol carrying the most bytes (FTPDATA, in the paper's era)."""
    return characterize(trace)[0].protocol


def bulk_vs_interactive_bytes(trace: ConnectionTrace) -> tuple[int, int]:
    """(bulk, interactive) byte totals, classified via the protocol
    registry's ``bulk`` flag."""
    from repro.traces.protocols import REGISTRY

    bulk = interactive = 0
    for s in characterize(trace):
        proto = REGISTRY.get(s.protocol)
        if proto is not None and proto.bulk:
            bulk += s.total_bytes
        else:
            interactive += s.total_bytes
    return bulk, interactive
