"""Synthetic stand-ins for the paper's 24 measurement traces.

The original ITA datasets (Table I's SYN/FIN connection traces, Table II's
packet traces) are not redistributable here, so this module *generates*
traces with the same names, the same qualitative composition, and — most
importantly — the same per-protocol arrival structure the paper measures:

* TELNET connections / FTP sessions: nonhomogeneous Poisson with fixed
  hourly (diurnal) rates — the structure Section III validates;
* SMTP: Markov-modulated (timer/queue-driven) arrivals with positively
  correlated interarrivals, plus mailing-list cluster bursts;
* NNTP: flooding cascades on top of timer-driven exchanges;
* WWW and X11: session-clustered connection arrivals;
* FTPDATA: generated *within* FTP sessions by the Section VI burst model,
  with Pareto burst sizes;
* TELNET packets: Tcplib interarrivals via the FULL-TEL model;
* FTPDATA packets: constant-rate within each connection, so packet-level
  traffic inherits the heavy-tailed burst structure (Appendix D's
  M/G/infinity shape).

Durations and counts are scaled down from the month-long originals (a
``scale`` knob re-scales rates); every generated trace records its paper
counterpart's vital statistics in :class:`TraceInfo` so Tables I and II can
be printed side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arrivals.cluster import (
    cascade_arrivals,
    compound_poisson_cluster,
    modulated_poisson,
    timer_driven_arrivals,
)
from repro.arrivals.poisson import piecewise_poisson
from repro.distributions.exponential import Exponential
from repro.distributions.lognormal import Log2Normal
from repro.distributions.logextreme import LogExtreme
from repro.distributions.pareto import Pareto
from repro.traces.columns import (
    ConnectionBatch,
    concat_connection_batches,
    empty_connection_columns,
)
from repro.traces.diurnal import hourly_profile, hourly_rates
from repro.traces.trace import ConnectionTrace, PacketTrace
from repro.utils.rng import SeedLike, as_rng, spawn_rngs


# ----------------------------------------------------------------------
# Configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceInfo:
    """Metadata tying a synthetic trace to its paper counterpart."""

    name: str
    paper_date: str
    paper_duration: str
    paper_contents: str
    kind: str  # "connection" | "packet"


@dataclass(frozen=True)
class ConnectionTraceConfig:
    """Recipe for one Table-I-style SYN/FIN trace."""

    info: TraceInfo
    site: str = "west"
    hours: int = 24
    #: Mean connections/hour for the piecewise-Poisson protocols.
    telnet_per_hour: float = 80.0
    rlogin_per_hour: float = 15.0
    ftp_sessions_per_hour: float = 40.0
    smtp_per_hour: float = 120.0
    nntp_per_hour: float = 150.0
    www_per_hour: float = 0.0
    x11_per_hour: float = 0.0
    #: Inject the hourly 'weather-map' periodic FTP job the paper removes
    #: before its Poisson analysis (Section III / ref. [35]).
    weathermap: bool = False


@dataclass(frozen=True)
class PacketTraceConfig:
    """Recipe for one Table-II-style packet trace."""

    info: TraceInfo
    hours: float = 2.0
    telnet_conns_per_hour: float = 136.5  # the paper's 273 per 2 h
    ftp_sessions_per_hour: float = 25.0
    background_pkts_per_sec: float = 15.0  # SMTP/NNTP/DNS/other mix
    include_non_tcp: bool = False  # "ALL" traces: MBone/UDP/DECnet
    firewall_proxy: bool = False  # DEC WRL: TELNET via one proxy host


def _conn_cfg(name, date, dur, what, **kw) -> ConnectionTraceConfig:
    return ConnectionTraceConfig(
        info=TraceInfo(name, date, dur, what, "connection"), **kw
    )


def _pkt_cfg(name, date, when, what, **kw) -> PacketTraceConfig:
    return PacketTraceConfig(info=TraceInfo(name, date, when, what, "packet"), **kw)


#: Table I.  Hours are scaled down from the originals (the LBL traces span
#: 30 days each); the paper-reported spans live in ``info``.
CONNECTION_TRACE_CONFIGS: dict[str, ConnectionTraceConfig] = {
    "BC": _conn_cfg("BC", "Oct 89", "13 days", "17K TCP conn.",
                    site="east", hours=36, telnet_per_hour=25.0,
                    ftp_sessions_per_hour=12.0, smtp_per_hour=60.0,
                    nntp_per_hour=40.0),
    "UCB": _conn_cfg("UCB", "Oct 89", "24 hours", "38K TCP conn.",
                     hours=24, telnet_per_hour=120.0,
                     ftp_sessions_per_hour=60.0, x11_per_hour=25.0),
    "NC": _conn_cfg("NC", "Dec 91", "several days", "conn. trace",
                    hours=36, telnet_per_hour=60.0),
    "UK": _conn_cfg("UK", "Aug 91", "-", "6K TCP conn.",
                    hours=24, telnet_per_hour=30.0, ftp_sessions_per_hour=20.0,
                    smtp_per_hour=70.0, nntp_per_hour=60.0),
    "DEC-1": _conn_cfg("DEC-1", "1994", "1 day", "wide-area TCP conn.",
                       hours=24, telnet_per_hour=70.0, www_per_hour=20.0),
    "DEC-2": _conn_cfg("DEC-2", "1994", "1 day", "wide-area TCP conn.",
                       hours=24, telnet_per_hour=75.0),
    "DEC-3": _conn_cfg("DEC-3", "1994", "1 day", "wide-area TCP conn.",
                       hours=24, telnet_per_hour=65.0),
    **{
        f"LBL-{i}": _conn_cfg(
            f"LBL-{i}", "1993-94", "30 days", "~460K TCP conn. each",
            hours=48,
            telnet_per_hour=85.0 + 5.0 * i,
            ftp_sessions_per_hour=40.0,
            smtp_per_hour=130.0,
            nntp_per_hour=170.0,
            www_per_hour=25.0 if i >= 7 else 0.0,
            weathermap=True,
        )
        for i in range(1, 9)
    },
}

#: Table II.
PACKET_TRACE_CONFIGS: dict[str, PacketTraceConfig] = {
    "LBL PKT-1": _pkt_cfg("LBL PKT-1", "Fri 17Dec93", "2PM-4PM",
                          "1.7M TCP pkts.", hours=2.0),
    "LBL PKT-2": _pkt_cfg("LBL PKT-2", "Wed 19Jan94", "2PM-4PM",
                          "2.4M TCP pkts.", hours=2.0),
    "LBL PKT-3": _pkt_cfg("LBL PKT-3", "Thu 20Jan94", "2PM-4PM",
                          "1.8M TCP pkts.", hours=2.0),
    "LBL PKT-4": _pkt_cfg("LBL PKT-4", "Fri 21Jan94", "2PM-3PM",
                          "1.3M pkts.", hours=1.0, include_non_tcp=True),
    "LBL PKT-5": _pkt_cfg("LBL PKT-5", "1994", "1 hour",
                          "all link-level pkts.", hours=1.0,
                          include_non_tcp=True),
    **{
        f"DEC WRL-{i}": _pkt_cfg(
            f"DEC WRL-{i}", "1994", "1 hour", "all link-level pkts.",
            hours=1.0, include_non_tcp=True, firewall_proxy=True,
            ftp_sessions_per_hour=60.0,
        )
        for i in range(1, 5)
    },
}


# ----------------------------------------------------------------------
# Connection-trace synthesis
# ----------------------------------------------------------------------
def _user_session_columns(
    protocol: str,
    per_hour: float,
    hours: int,
    site: str,
    rng,
    scale: float,
) -> ConnectionBatch:
    """Poisson-with-fixed-hourly-rates user sessions (TELNET, RLOGIN)."""
    rates = hourly_rates(protocol, scale * per_hour / 3600.0, hours, site)
    starts = piecewise_poisson(rates, 3600.0, seed=rng)
    if starts.size == 0:
        return empty_connection_columns()
    n = starts.size
    durations = Log2Normal(8.0, 1.8).sample(n, seed=rng)  # median 256 s
    bytes_orig = LogExtreme.paxson_telnet_bytes().sample(n, seed=rng)
    # The untruncated log-extreme has infinite mean (beta ln2 > 1); cap it
    # at 100 KB of keystrokes so interactive traffic does not swamp the
    # byte budget the way no real trace's TELNET did.
    bytes_orig = np.clip(bytes_orig, 1, 100_000).astype(np.int64)
    # Host pairs stay scalar draws, interleaved per row (the frozen
    # per-stream draw order of the record-based implementation).
    orig_hosts = np.empty(n, dtype=np.int64)
    resp_hosts = np.empty(n, dtype=np.int64)
    for i in range(n):
        orig_hosts[i] = rng.integers(0, 200)
        resp_hosts[i] = rng.integers(200, 400)
    return ConnectionBatch(
        start_times=starts.astype(float),
        durations=durations.astype(float),
        protocols=np.full(n, protocol, dtype=object),
        bytes_orig=bytes_orig,
        bytes_resp=bytes_orig * 15,  # echoes + command output
        orig_hosts=orig_hosts,
        resp_hosts=resp_hosts,
        session_ids=np.full(n, -1, dtype=np.int64),
    )


def _smtp_columns(per_hour, hours, site, rng, scale) -> ConnectionBatch:
    """Timer/queue-modulated SMTP plus mailing-list explosions."""
    duration = hours * 3600.0
    base = scale * per_hour / 3600.0
    profile = hourly_profile("SMTP", site)
    # Modulated base stream (positively correlated interarrivals) ...
    t_mod = modulated_poisson((0.4 * base, 1.6 * base), (1200.0, 1200.0),
                              duration, seed=rng)
    # ... thinned by the diurnal profile ...
    hour_idx = np.minimum((t_mod / 3600.0).astype(int) % 24, 23)
    keep = rng.random(t_mod.size) < profile[hour_idx] / profile.max()
    t_mod = t_mod[keep]
    # ... plus occasional mailing-list cluster bursts, also diurnal.
    t_burst = compound_poisson_cluster(
        0.08 * base, duration, Pareto(2.0, 1.4), Exponential(1.5), seed=rng
    )
    hour_idx = np.minimum((t_burst / 3600.0).astype(int) % 24, 23)
    keep = rng.random(t_burst.size) < profile[hour_idx] / profile.max()
    t_burst = t_burst[keep]
    times = np.sort(np.concatenate([t_mod, t_burst]))
    sizes = Log2Normal(11.0, 1.5).sample(times.size, seed=rng)  # median 2 KB
    n = times.size
    durations = np.empty(n)
    orig_hosts = np.empty(n, dtype=np.int64)
    resp_hosts = np.empty(n, dtype=np.int64)
    for i in range(n):  # scalar draws interleaved per row (frozen order)
        durations[i] = rng.exponential(20.0)
        orig_hosts[i] = rng.integers(0, 300)
        resp_hosts[i] = rng.integers(300, 600)
    return ConnectionBatch(
        start_times=times,
        durations=durations,
        protocols=np.full(n, "SMTP", dtype=object),
        bytes_orig=np.minimum(sizes, 5e7).astype(np.int64),
        bytes_resp=np.full(n, 300, dtype=np.int64),
        orig_hosts=orig_hosts,
        resp_hosts=resp_hosts,
        session_ids=np.full(n, -1, dtype=np.int64),
    )


def _nntp_columns(per_hour, hours, rng, scale) -> ConnectionBatch:
    """Flooding cascades + timer-driven exchanges."""
    duration = hours * 3600.0
    base = scale * per_hour / 3600.0
    t_cascade = cascade_arrivals(0.55 * base, duration, 0.45,
                                 Exponential(90.0), seed=rng)
    t_timer = timer_driven_arrivals(900.0, duration, jitter_sd=20.0,
                                    batch_size=max(1, int(180.0 * base)),
                                    batch_gap=2.0, seed=rng)
    times = np.sort(np.concatenate([t_cascade, t_timer]))
    sizes = Pareto(500.0, 1.2).sample(times.size, seed=rng)
    n = times.size
    durations = np.empty(n)
    orig_hosts = np.empty(n, dtype=np.int64)
    resp_hosts = np.empty(n, dtype=np.int64)
    for i in range(n):  # scalar draws interleaved per row (frozen order)
        durations[i] = rng.exponential(60.0)
        orig_hosts[i] = rng.integers(0, 50)
        resp_hosts[i] = rng.integers(50, 100)
    return ConnectionBatch(
        start_times=times,
        durations=durations,
        protocols=np.full(n, "NNTP", dtype=object),
        bytes_orig=np.minimum(sizes, 1e8).astype(np.int64),
        bytes_resp=np.full(n, 500, dtype=np.int64),
        orig_hosts=orig_hosts,
        resp_hosts=resp_hosts,
        session_ids=np.full(n, -1, dtype=np.int64),
    )


#: Session-id offset separating X11/WWW sessions from FTP sessions.
_CLUSTER_SESSION_BASE = 1_000_000


def _clustered_session_columns(
    protocol, per_hour, hours, site, rng, scale
) -> ConnectionBatch:
    """WWW / X11: many connections per user session (not Poisson).

    Session *triggers* arrive as a diurnal Poisson process (the paper's
    conjecture: 'we would find the session arrivals to be Poisson'); each
    session spawns a Pareto-count run of connections in quick succession
    and records its session id, so session-vs-connection analyses can
    disambiguate the two processes.
    """
    duration = hours * 3600.0
    base = scale * per_hour / 3600.0
    profile = hourly_profile(protocol, site)
    triggers = piecewise_poisson(
        0.2 * base * np.tile(profile, int(np.ceil(hours / 24.0)))[:hours],
        3600.0, seed=rng,
    )
    row_starts: list[float] = []
    row_durs: list[float] = []
    row_bytes: list[int] = []
    row_orig: list[int] = []
    row_resp: list[int] = []
    row_sids: list[int] = []
    for k, t0 in enumerate(triggers):
        sid = _CLUSTER_SESSION_BASE + k
        n = max(1, int(np.floor(float(Pareto(2.0, 1.3).sample(1, seed=rng)[0]) - 1.0)))
        gaps = rng.exponential(5.0, size=n)
        starts = t0 + np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
        orig = int(rng.integers(0, 400))
        resp = int(rng.integers(400, 500))
        sizes = Pareto(300.0, 1.3).sample(n, seed=rng)
        for t, size in zip(starts, sizes):
            # The early break keeps the duration draw data-dependent (no
            # draw for rows past the horizon), so this inner loop stays.
            if t >= duration:
                break
            row_starts.append(float(t))
            row_durs.append(float(rng.exponential(8.0)))
            row_bytes.append(int(min(size, 1e8)))
            row_orig.append(orig)
            row_resp.append(resp)
            row_sids.append(sid)
    n_rows = len(row_starts)
    return ConnectionBatch(
        start_times=np.array(row_starts, dtype=float),
        durations=np.array(row_durs, dtype=float),
        protocols=np.full(n_rows, protocol, dtype=object),
        bytes_orig=np.full(n_rows, 300, dtype=np.int64),
        bytes_resp=np.array(row_bytes, dtype=np.int64),
        orig_hosts=np.array(row_orig, dtype=np.int64),
        resp_hosts=np.array(row_resp, dtype=np.int64),
        session_ids=np.array(row_sids, dtype=np.int64),
    )


def _weathermap_columns(hours, rng) -> ConnectionBatch:
    """The hourly weather-map FTP job: timer-driven, one host pair."""
    duration = hours * 3600.0
    firings = timer_driven_arrivals(3600.0, duration, jitter_sd=20.0,
                                    phase=120.0, seed=rng)
    n = firings.size
    # Two rows per firing: the FTP control record, then its FTPDATA
    # transfer 2 s later (same interleaved row order as the record path).
    starts = np.empty(2 * n)
    starts[0::2] = firings
    starts[1::2] = firings + 2.0
    durations = np.tile([30.0, 25.0], n)
    protocols = np.tile(np.array(["FTP", "FTPDATA"], dtype=object), n)
    bytes_orig = np.tile(np.array([400, 0], dtype=np.int64), n)
    bytes_resp = np.empty(2 * n, dtype=np.int64)
    bytes_resp[0::2] = 1200
    for k in range(n):  # per-firing scalar draw (frozen order)
        bytes_resp[2 * k + 1] = rng.integers(40_000, 60_000)
    sids = np.repeat(2_000_000 + np.arange(n, dtype=np.int64), 2)
    return ConnectionBatch(
        start_times=starts,
        durations=durations,
        protocols=protocols,
        bytes_orig=bytes_orig,
        bytes_resp=bytes_resp,
        orig_hosts=np.full(2 * n, 990, dtype=np.int64),
        resp_hosts=np.full(2 * n, 991, dtype=np.int64),
        session_ids=sids,
    )


def synthesize_connection_trace(
    name: str,
    seed: SeedLike = None,
    hours: int | None = None,
    scale: float = 1.0,
) -> ConnectionTrace:
    """Generate one Table-I-style SYN/FIN trace by name."""
    if name not in CONNECTION_TRACE_CONFIGS:
        raise KeyError(
            f"unknown connection trace {name!r}; known: "
            f"{sorted(CONNECTION_TRACE_CONFIGS)}"
        )
    cfg = CONNECTION_TRACE_CONFIGS[name]
    h = cfg.hours if hours is None else hours
    rngs = spawn_rngs(seed, 6)
    batches: list[ConnectionBatch] = []

    if cfg.telnet_per_hour:
        batches.append(_user_session_columns("TELNET", cfg.telnet_per_hour, h,
                                             cfg.site, rngs[0], scale))
    if cfg.rlogin_per_hour:
        batches.append(_user_session_columns("RLOGIN", cfg.rlogin_per_hour, h,
                                             cfg.site, rngs[1], scale))
    if cfg.ftp_sessions_per_hour:
        rates = hourly_rates("FTP", scale * cfg.ftp_sessions_per_hour / 3600.0,
                             h, cfg.site)
        session_starts = piecewise_poisson(rates, 3600.0, seed=rngs[2])
        from repro.core.ftp import FtpSessionModel  # deferred: avoids a
        # circular import (core builds on the trace data model)

        model = FtpSessionModel(sessions_per_hour=scale * cfg.ftp_sessions_per_hour)
        batches.append(model.synthesize_columns(h * 3600.0, seed=rngs[2],
                                                session_starts=session_starts))
    if cfg.smtp_per_hour:
        batches.append(_smtp_columns(cfg.smtp_per_hour, h, cfg.site, rngs[3],
                                     scale))
    if cfg.nntp_per_hour:
        batches.append(_nntp_columns(cfg.nntp_per_hour, h, rngs[4], scale))
    if cfg.www_per_hour:
        batches.append(_clustered_session_columns("WWW", cfg.www_per_hour, h,
                                                  cfg.site, rngs[5], scale))
    if cfg.x11_per_hour:
        batches.append(_clustered_session_columns("X11", cfg.x11_per_hour, h,
                                                  cfg.site, rngs[5], scale))
    if cfg.weathermap:
        batches.append(_weathermap_columns(h, rngs[5]))

    cols = concat_connection_batches(batches)
    keep = cols.start_times < h * 3600.0
    return ConnectionTrace.from_arrays(
        name,
        start_times=cols.start_times[keep],
        durations=cols.durations[keep],
        protocols=cols.protocols[keep],
        bytes_orig=cols.bytes_orig[keep],
        bytes_resp=cols.bytes_resp[keep],
        orig_hosts=cols.orig_hosts[keep],
        resp_hosts=cols.resp_hosts[keep],
        session_ids=cols.session_ids[keep],
    )


# ----------------------------------------------------------------------
# Packet-trace synthesis
# ----------------------------------------------------------------------
def _ftpdata_packets(cols: ConnectionBatch, rng, horizon, packet_bytes=512.0):
    """Constant-rate packets across each FTPDATA connection's lifetime.

    Connection ids are the FTPDATA rows' indices in the *full* connection
    column set (control rows included), matching the record-path ids.
    """
    cids = np.flatnonzero(cols.protocols == "FTPDATA")
    times, ids = [], []
    for cid, t0, dur, total in zip(
        cids,
        cols.start_times[cids].tolist(),
        cols.durations[cids].tolist(),
        (cols.bytes_resp[cids] + cols.bytes_orig[cids]).tolist(),
    ):
        n_pkts = max(1, int(round(total / packet_bytes)))
        # Per-row rng.random(n_pkts) keeps the frozen draw order.
        t = t0 + (np.arange(n_pkts) + rng.random(n_pkts) * 0.2) * (
            dur / n_pkts
        )
        t = t[t < horizon]
        times.append(t)
        ids.append(np.full(t.size, cid, dtype=np.int64))
    if not times:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    return np.concatenate(times), np.concatenate(ids)


def _ftpdata_packets_tcp(cols: ConnectionBatch, rng, horizon, bottleneck_rate,
                         buffer_packets, packet_bytes=512.0,
                         max_connections=300):
    """TCP-shaped FTPDATA packets: run the transfers through a shared
    Reno/drop-tail bottleneck instead of assuming constant rate.

    Section VII-C-2's realism upgrade — packet timing then carries the
    self-clocking and window-sawtooth structure of real FTPDATA traffic.
    The ``max_connections`` largest transfers are simulated (the tail
    dominates the bytes; the remainder would add simulation cost without
    changing the traffic's character).
    """
    from repro.tcp.network import BottleneckSimulator, TransferSpec

    idx = np.flatnonzero(cols.protocols == "FTPDATA")
    if idx.size == 0:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    totals = (cols.bytes_orig + cols.bytes_resp)[idx]
    # Stable sorts reproduce the record path's Timsort tie order exactly.
    sel = idx[np.argsort(-totals, kind="stable")[:max_connections]]
    sel = sel[np.argsort(cols.start_times[sel], kind="stable")]
    specs = [
        TransferSpec(
            start_time=t0,
            n_packets=max(1, int(round(total / packet_bytes))),
            rtt=float(rng.uniform(0.03, 0.25)),
            max_window=32.0,
        )
        for t0, total in zip(
            cols.start_times[sel].tolist(),
            (cols.bytes_orig[sel] + cols.bytes_resp[sel]).tolist(),
        )
    ]
    sim = BottleneckSimulator(rate=bottleneck_rate,
                              buffer_packets=buffer_packets)
    res = sim.run(specs, horizon=horizon)
    return res.departure_times, res.departure_conn


def synthesize_packet_trace(
    name: str,
    seed: SeedLike = None,
    hours: float | None = None,
    scale: float = 1.0,
    tcp_shaped_ftp: bool = False,
    bottleneck_rate: float = 800.0,
    buffer_packets: int = 16,
) -> PacketTrace:
    """Generate one Table-II-style packet trace by name.

    ``tcp_shaped_ftp=True`` replaces the constant-rate FTPDATA packet
    placement with a full TCP Reno simulation over a shared bottleneck
    (Section VII-C-2's dynamics); slower, but the resulting FTPDATA stream
    carries self-clocking and congestion-window structure.
    """
    if name not in PACKET_TRACE_CONFIGS:
        raise KeyError(
            f"unknown packet trace {name!r}; known: {sorted(PACKET_TRACE_CONFIGS)}"
        )
    cfg = PACKET_TRACE_CONFIGS[name]
    h = cfg.hours if hours is None else hours
    duration = h * 3600.0
    rngs = spawn_rngs(seed, 4)

    from repro.core.ftp import FtpSessionModel  # deferred: circular import
    from repro.core.fulltel import FullTelModel

    parts = []  # (times, conn_ids, protocol, user_data)

    # TELNET originator packets via FULL-TEL.  Behind the DEC WRL firewall
    # proxy, "the DEC TELNET traffic is dominated by a single,
    # heavily-loaded machine" (Section II) — fewer, much larger
    # connections; the paper excluded these traces from its TELNET
    # analysis for exactly this reason.
    telnet_rate = scale * cfg.telnet_conns_per_hour
    telnet = FullTelModel(connections_per_hour=telnet_rate).synthesize(
        duration, seed=rngs[0]
    )
    telnet_ids = telnet.connection_ids
    if cfg.firewall_proxy and telnet_ids.size:
        # The proxy multiplexes many user sessions onto a handful of
        # long-lived proxy connections: fewer, much busier connections.
        n_proxy = max(1, int(np.unique(telnet_ids).size // 8))
        telnet_ids = telnet_ids % n_proxy
    parts.append((telnet.timestamps, telnet_ids, "TELNET", True))

    # FTPDATA: burst-structured connections expanded into packets.
    ftp_model = FtpSessionModel(
        sessions_per_hour=scale * cfg.ftp_sessions_per_hour
    )
    ftp_cols = ftp_model.synthesize_columns(duration, seed=rngs[1])
    if tcp_shaped_ftp:
        ft, fids = _ftpdata_packets_tcp(ftp_cols, rngs[1], duration,
                                        bottleneck_rate, buffer_packets)
    else:
        ft, fids = _ftpdata_packets(ftp_cols, rngs[1], duration)
    parts.append((ft, fids, "FTPDATA", True))

    # Background TCP (SMTP / NNTP / DNS-like): over-dispersed cluster mix.
    bg_rate = scale * cfg.background_pkts_per_sec
    bg = compound_poisson_cluster(
        bg_rate / 6.0, duration, Pareto(1.0, 1.4), Exponential(0.05),
        seed=rngs[2],
    )
    parts.append((bg, np.full(bg.size, -1, dtype=np.int64), "SMTP", True))

    if cfg.include_non_tcp:
        # MBone audio (UDP, smooth near-CBR) + DNS chatter: "ALL" traces.
        udp = timer_driven_arrivals(0.25 / max(scale, 1e-9), duration,
                                    jitter_sd=0.02, seed=rngs[3])
        parts.append((udp, np.full(udp.size, -2, dtype=np.int64), "OTHER", True))

    times = np.concatenate([p[0] for p in parts])
    conn_ids = np.concatenate([p[1] for p in parts])
    protocols = np.concatenate(
        [np.full(p[0].size, p[2], dtype=object) for p in parts]
    )
    user_data = np.concatenate(
        [np.full(p[0].size, p[3], dtype=bool) for p in parts]
    )
    keep = times < duration
    return PacketTrace(
        name,
        timestamps=times[keep],
        protocols=protocols[keep],
        connection_ids=conn_ids[keep],
        user_data=user_data[keep],
    )


def standard_suite(
    seed: SeedLike = 0, names=None, scale: float = 1.0
) -> dict[str, ConnectionTrace]:
    """Generate the full (or a named subset of the) Table-I trace suite."""
    wanted = list(CONNECTION_TRACE_CONFIGS) if names is None else list(names)
    rngs = spawn_rngs(seed, len(wanted))
    return {
        name: synthesize_connection_trace(name, seed=rng, scale=scale)
        for name, rng in zip(wanted, rngs)
    }


def packet_suite(
    seed: SeedLike = 0, names=None, scale: float = 1.0
) -> dict[str, PacketTrace]:
    """Generate the full (or a named subset of the) Table-II trace suite."""
    wanted = list(PACKET_TRACE_CONFIGS) if names is None else list(names)
    rngs = spawn_rngs(seed, len(wanted))
    return {
        name: synthesize_packet_trace(name, seed=rng, scale=scale)
        for name, rng in zip(wanted, rngs)
    }
