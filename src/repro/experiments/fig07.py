"""Fig. 7: variance-time plot of the complete FULL-TEL model vs the trace.

The paper generates three FULL-TEL traces at 273 connections / 2 h, trims
each to its second hour, and overlays their variance-time curves on the
LBL PKT-2 TELNET trace's: "In general the agreement is quite good, though
the models have slightly higher variance ... for M > 10^2."

Here the reference "trace" is an independently seeded FULL-TEL synthesis
standing in for LBL PKT-2 (the substitution DESIGN.md documents); the
experiment then demonstrates what the figure demonstrates — model
replicates agree with the reference across aggregation levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fulltel import FullTelModel
from repro.experiments.report import format_table
from repro.selfsim.variance_time import VarianceTimeCurve, variance_time_curve
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig7Result:
    trace_curve: VarianceTimeCurve
    model_curves: list[VarianceTimeCurve]
    bin_width: float

    @property
    def levels(self) -> np.ndarray:
        return self.trace_curve.levels

    def model_mean_variances(self) -> np.ndarray:
        return np.mean([c.variances for c in self.model_curves], axis=0)

    def max_log_gap(self, min_level: int = 1, max_level: int = 500) -> float:
        """Largest |log10 model - log10 trace| variance gap over a level
        range — the agreement metric for 'quite good'."""
        sel = (self.levels >= min_level) & (self.levels <= max_level)
        model = np.log10(self.model_mean_variances()[sel])
        trace = np.log10(self.trace_curve.variances[sel])
        return float(np.max(np.abs(model - trace)))

    def rows(self) -> list[dict]:
        model = self.model_mean_variances()
        return [
            {
                "M": int(m),
                "trace_var": float(t),
                "fulltel_mean_var": float(f),
            }
            for m, t, f in zip(self.levels, self.trace_curve.variances, model)
        ]

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Fig. 7: FULL-TEL replicates vs trace "
                  f"(normalized variance, {self.bin_width}s bins)",
        )
        return table + f"\nmax |log10 gap| (M<=500): {self.max_log_gap():.3f}"


def fig07(
    seed: SeedLike = 0,
    connections_per_hour: float = 136.5,
    n_replicates: int = 3,
    bin_width: float = 0.1,
) -> Fig7Result:
    """Regenerate Fig. 7: three trimmed FULL-TEL syntheses vs the trace."""
    model = FullTelModel(connections_per_hour)
    rngs = spawn_rngs(seed, n_replicates + 1)
    # Reference trace: one full 2 h synthesis, second hour only.
    trace_cp = model.count_process(7200.0, bin_width=bin_width, seed=rngs[0],
                                   trim_warmup=3600.0)
    levels = None
    trace_curve = variance_time_curve(trace_cp)
    levels = trace_curve.levels
    model_curves = []
    for rng in rngs[1:]:
        cp = model.count_process(7200.0, bin_width=bin_width, seed=rng,
                                 trim_warmup=3600.0)
        model_curves.append(variance_time_curve(cp, levels=levels))
    return Fig7Result(trace_curve=trace_curve, model_curves=model_curves,
                      bin_width=bin_width)
