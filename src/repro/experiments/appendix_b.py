"""Appendix B: the taxonomy of tails, as measurements.

Appendix B defines heavy tails and separates three regimes by the
conditional mean exceedance (CMEX): decreasing for light tails (uniform —
"the longer you have waited, the sooner you are likely to be done"),
constant for the memoryless exponential, and increasing for heavy tails,
with CMEX(x) = x/(beta-1) exactly linear for the Pareto.  It also proves
two invariances: scale invariance of the Pareto survival ratio and
invariance under truncation from below (eq. 2).

The experiment evaluates all of it numerically on samples, producing the
table a referee would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.exponential import Exponential
from repro.distributions.lognormal import Log2Normal
from repro.distributions.pareto import Pareto
from repro.experiments.report import format_table
from repro.stats.tail import mean_exceedance_curve
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class AppendixBResult:
    rows_: list[dict]
    pareto_cmex_slope: float  # empirical; theory 1/(beta-1)
    pareto_shape: float
    scale_invariance_spread: float  # max/min of S(2x)/S(x) over decades
    truncation_shape_error: float  # |refit shape - original| after x>x0

    def rows(self) -> list[dict]:
        return self.rows_

    @property
    def taxonomy_correct(self) -> bool:
        by_name = {r["distribution"]: r["cmex_trend"] for r in self.rows_}
        return (
            by_name.get("uniform") == "decreasing"
            and by_name.get("exponential") == "flat"
            and by_name.get("pareto") == "increasing"
            and by_name.get("log2-normal") == "increasing"
        )

    def render(self) -> str:
        table = format_table(
            self.rows_, title="Appendix B: conditional-mean-exceedance taxonomy"
        )
        theory = 1.0 / (self.pareto_shape - 1.0)
        return table + (
            f"\nPareto CMEX slope: measured {self.pareto_cmex_slope:.2f}, "
            f"theory 1/(beta-1) = {theory:.2f}"
            f"\nscale-invariance spread of S(2x)/S(x): "
            f"{self.scale_invariance_spread:.4f} (1 = perfectly invariant)"
            f"\ntruncation-from-below shape drift: "
            f"{self.truncation_shape_error:.3f}"
        )


def _trend(thresholds: np.ndarray, cmex: np.ndarray) -> str:
    lo, hi = float(cmex[0]), float(cmex[-1])
    if hi > 1.25 * lo:
        return "increasing"
    if hi < 0.8 * lo:
        return "decreasing"
    return "flat"


def appendix_b(
    seed: SeedLike = 0,
    n_samples: int = 100_000,
    pareto_shape: float = 2.0,
) -> AppendixBResult:
    """Measure the Appendix B tail taxonomy and invariances."""
    rng = as_rng(seed)
    samples = {
        "uniform": rng.uniform(0.0, 2.0, n_samples),
        "exponential": Exponential(1.0).sample(n_samples, seed=rng),
        "pareto": Pareto(1.0, pareto_shape).sample(n_samples, seed=rng),
        "log2-normal": Log2Normal(0.0, 1.5).sample(n_samples, seed=rng),
    }
    rows = []
    pareto_slope = float("nan")
    for name, s in samples.items():
        t, c = mean_exceedance_curve(s)
        rows.append(
            {
                "distribution": name,
                "cmex_at_median": float(np.interp(np.median(s), t, c)),
                "cmex_at_p90": float(c[-1]),
                "cmex_trend": _trend(t, c),
            }
        )
        if name == "pareto":
            pareto_slope = float(np.polyfit(t, c, 1)[0])

    d = Pareto(1.0, pareto_shape)
    xs = np.geomspace(2.0, 2000.0, 12)
    ratios = d.sf(2.0 * xs) / d.sf(xs)
    spread = float(ratios.max() / ratios.min())

    # truncation from below: refit the conditional sample
    s = samples["pareto"]
    x0 = float(np.quantile(s, 0.7))
    refit = Pareto.fit(s[s > x0], location=x0)
    return AppendixBResult(
        rows_=rows,
        pareto_cmex_slope=pareto_slope,
        pareto_shape=pareto_shape,
        scale_invariance_spread=spread,
        truncation_shape_error=abs(refit.shape - pareto_shape),
    )
