"""Section VII-C-1: TELNET self-similarity by time scale.

"All of the results are consistent with self-similarity on scales of tens
of seconds or more."  The experiment runs the Whittle + goodness-of-fit
battery on FULL-TEL TELNET traffic at a ladder of aggregation scales and
reports, per scale, the H estimate and the fGn verdict — H stays high
everywhere; fGn consistency improves with aggregation as packet-level
granularity washes out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fulltel import FullTelModel
from repro.experiments.report import format_table
from repro.selfsim.hurst import hurst_by_scale
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class TelnetScaleResult:
    rows_: list[dict]

    def rows(self) -> list[dict]:
        return self.rows_

    @property
    def hurst_elevated_everywhere(self) -> bool:
        return all(r["hurst"] > 0.6 for r in self.rows_)

    @property
    def coarse_scales_fgn_consistent(self) -> bool:
        """fGn accepted at the coarsest tested scale (tens of seconds)."""
        return bool(self.rows_[-1]["fgn_consistent"])

    def render(self) -> str:
        return format_table(
            self.rows_,
            title="Section VII-C-1: TELNET fGn consistency by time scale",
        )


def telnet_scales(
    seed: SeedLike = 0,
    connections_per_hour: float = 400.0,
    duration: float = 7200.0,
    bin_width: float = 0.1,
    levels=(1, 10, 100, 300),
) -> TelnetScaleResult:
    """Run the per-scale battery on FULL-TEL traffic."""
    cp = FullTelModel(connections_per_hour).count_process(
        duration, bin_width=bin_width, seed=seed, trim_warmup=duration / 4,
    )
    return TelnetScaleResult(rows_=hurst_by_scale(cp, levels=levels))
