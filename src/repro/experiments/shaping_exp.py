"""Closed-loop policing detection: police at a known rate, recover it blind.

No 1994-era study could ask whether traffic *had been* policed — the
paper's traces predate widespread traffic conditioning.  This experiment
closes the loop the modern way: synthesize the paper's ftp workload,
push it through a token-bucket policer at a known rate, hand only the
surviving packet trace to :mod:`repro.shaping.detect`, and score how
well the enforcement rate is recovered across a rate x burst-depth
grid (an unpoliced control must come back clean).  The companion
battery measures what lossless shaping does to the Hurst signature:
fine-scale H is suppressed below the bucket's drain time, the
coarse-scale LRD slope — the paper's actual finding — is conserved.
"""

from __future__ import annotations

from repro.utils.rng import SeedLike


def shaping(seed: SeedLike = 7) -> "ShapingReport":  # noqa: F821
    """Run the synthesize -> police -> detect loop plus the Hurst battery."""
    # Lazy: repro.shaping reaches repro.stream, whose driver imports this
    # registry back — a module-level import here would close the cycle.
    from repro.shaping.scenario import ShapingScenario, run_scenario

    scenario = ShapingScenario(seed=7 if seed is None else int(seed))
    return run_scenario(scenario)
