"""Closed-loop policing detection: police at a known rate, recover it blind.

No 1994-era study could ask whether traffic *had been* policed — the
paper's traces predate widespread traffic conditioning.  This experiment
closes the loop the modern way: synthesize the paper's ftp workload,
push it through a token-bucket policer at a known rate, hand only the
surviving packet trace to :mod:`repro.shaping.detect`, and score how
well the enforcement rate is recovered across a rate x burst-depth
grid (an unpoliced control must come back clean).  The companion
battery measures what lossless shaping does to the Hurst signature:
fine-scale H is suppressed below the bucket's drain time, the
coarse-scale LRD slope — the paper's actual finding — is conserved.
"""

from __future__ import annotations

from repro.scenario import execute
from repro.utils.rng import SeedLike


def run_config(cfg: dict, seed: SeedLike = 7,
               jobs: int = 1) -> "ShapingReport":  # noqa: F821
    """The shaping family runner: one resolved ``[shaping]`` section."""
    # Lazy: repro.shaping reaches repro.stream, whose driver imports this
    # registry back — a module-level import here would close the cycle.
    from repro.shaping.scenario import ShapingScenario, run_scenario

    scenario = ShapingScenario(
        model=cfg.get("model", "ftp"),
        n_packets=cfg.get("n_packets", 60_000),
        source_rate=cfg.get("source_rate", 240.0),
        rate_factors=tuple(cfg.get("rate_factors", (0.3, 0.5, 0.8))),
        burst_seconds=tuple(cfg.get("burst_seconds", (0.25, 1.0, 4.0))),
        shaper_rate_factors=tuple(
            cfg.get("shaper_rate_factors", (1.0, 1.5, 3.0))),
        hurst_bin_s=cfg.get("hurst_bin_s", 0.01),
        hurst_split_level=cfg.get("hurst_split_level", 8),
        seed=7 if seed is None else int(seed),
    )
    return run_scenario(scenario)


def shaping(seed: SeedLike = 7) -> "ShapingReport":  # noqa: F821
    """Run the synthesize -> police -> detect loop plus the Hurst battery."""
    return execute("shaping", seed=seed)
