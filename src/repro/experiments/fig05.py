"""Figs. 5 and 6: variance-time behaviour of TELNET synthesis schemes.

The paper takes the 2-hour LBL PKT-2 TELNET originator packets (273
connections after outlier removal), synthesizes three counterparts sharing
each connection's start time and packet count — TCPLIB, EXP, VAR-EXP — and
compares variance-time plots on 0.1 s bins (Fig. 5).  TCPLIB tracks the
trace; EXP and VAR-EXP lose variance across a wide range of scales.  Fig. 6
zooms to M=50 (5 s bins): trace variance ~672 vs exponential ~260 at mean
~58.

Our "trace" is a FULL-TEL synthesis (the paper's own validated stand-in for
LBL PKT-2; see Fig. 7), so the comparison isolates exactly what the figure
shows: what each *scheme* does to burstiness at matched sizes and starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fulltel import FullTelModel
from repro.core.telnet import ConnectionSpec, Scheme, synthesize_packet_arrivals
from repro.experiments.report import format_table
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import VarianceTimeCurve, variance_time_curve
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig5Result:
    levels: np.ndarray
    curves: dict[str, VarianceTimeCurve]  # TRACE / TCPLIB / EXP / VAR-EXP
    processes: dict[str, CountProcess]
    bin_width: float
    duration: float

    def slopes(self, min_level: int = 10, max_level: int = 1000) -> dict[str, float]:
        return {
            k: c.slope(min_level=min_level, max_level=max_level)
            for k, c in self.curves.items()
        }

    def variance_at(self, level: int) -> dict[str, float]:
        out = {}
        for k, c in self.curves.items():
            i = int(np.argmin(np.abs(c.levels - level)))
            out[k] = float(c.variances[i])
        return out

    def rows(self) -> list[dict]:
        out = []
        for i, m in enumerate(self.levels):
            row = {"M": int(m)}
            for k, c in self.curves.items():
                row[k] = float(c.variances[i])
            out.append(row)
        return out

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Fig. 5: normalized variance of aggregated TELNET counts "
                  f"(bins of {self.bin_width}s)",
        )
        slopes = self.slopes()
        footer = "slopes (M=10..1000): " + ", ".join(
            f"{k}={v:.2f}" for k, v in slopes.items()
        )
        return table + "\n" + footer


def fig05(
    seed: SeedLike = 0,
    duration: float = 7200.0,
    connections_per_hour: float = 136.5,
    bin_width: float = 0.1,
) -> Fig5Result:
    """Regenerate Fig. 5's four variance-time curves."""
    rngs = spawn_rngs(seed, 4)
    trace = FullTelModel(connections_per_hour).synthesize(duration, seed=rngs[0])

    # Extract the per-connection specs the schemes must preserve.
    specs = []
    for times in trace.connections("TELNET").values():
        if times.size == 0:
            continue
        start = float(times[0])
        conn_duration = float(times[-1] - times[0]) if times.size > 1 else 1.0
        specs.append(
            ConnectionSpec(start, int(times.size), max(conn_duration, 1.0))
        )

    processes = {
        "TRACE": CountProcess.from_times(trace.timestamps, bin_width,
                                         start=0.0, end=duration)
    }
    for scheme, rng in zip((Scheme.TCPLIB, Scheme.EXP, Scheme.VAR_EXP),
                           rngs[1:]):
        times, _ = synthesize_packet_arrivals(specs, scheme, seed=rng,
                                              horizon=duration)
        processes[scheme.value] = CountProcess.from_times(
            times, bin_width, start=0.0, end=duration
        )

    curves = {k: variance_time_curve(p) for k, p in processes.items()}
    levels = curves["TRACE"].levels
    return Fig5Result(levels=levels, curves=curves, processes=processes,
                      bin_width=bin_width, duration=duration)


@dataclass(frozen=True)
class Fig6Result:
    """5-second-bin count series statistics (Fig. 6)."""

    trace_mean: float
    trace_variance: float
    exp_mean: float
    exp_variance: float
    trace_series: np.ndarray
    exp_series: np.ndarray

    @property
    def variance_ratio(self) -> float:
        """Paper: 672 / 260 ~= 2.6."""
        return self.trace_variance / self.exp_variance

    def rows(self) -> list[dict]:
        return [
            {"series": "trace (Tcplib)", "mean_per_5s": self.trace_mean,
             "var_per_5s": self.trace_variance},
            {"series": "exponential", "mean_per_5s": self.exp_mean,
             "var_per_5s": self.exp_variance},
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Fig. 6: TELNET packets per 5 s interval — trace vs "
                  "exponential synthesis",
        )


def fig06(seed: SeedLike = 0, duration: float = 7200.0,
          connections_per_hour: float = 136.5,
          precomputed: Fig5Result | None = None) -> Fig6Result:
    """Regenerate Fig. 6 from the Fig. 5 processes at M = 50 (5 s bins)."""
    result = precomputed if precomputed is not None else fig05(
        seed=seed, duration=duration,
        connections_per_hour=connections_per_hour,
    )
    level = int(round(5.0 / result.bin_width))
    trace5 = result.processes["TRACE"].rebinned(level).counts
    exp5 = result.processes["EXP"].rebinned(level).counts
    return Fig6Result(
        trace_mean=float(trace5.mean()),
        trace_variance=float(trace5.var()),
        exp_mean=float(exp5.mean()),
        exp_variance=float(exp5.var()),
        trace_series=trace5,
        exp_series=exp5,
    )
