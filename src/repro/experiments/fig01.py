"""Fig. 1: mean relative hourly connection arrival rate by protocol.

The paper plots, for LBL-1 through LBL-4, "the fraction of an entire day's
connections of that protocol occurring during that hour."  We regenerate the
figure's series from synthesized LBL traces and report the diagnostic
anchors the paper narrates: TELNET's lunch dip, FTP's evening renewal,
NNTP's flatness, and SMTP's morning bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    HOURLY_RATE_PROTOCOLS as PROTOCOLS,
    HOURLY_RATE_TRACES as DEFAULT_TRACES,
)
from repro.experiments.report import ascii_sparkline, format_table
from repro.traces.synthesis import synthesize_connection_trace
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig1Result:
    """Per-protocol 24-hour fraction curves (mean over the LBL traces)."""

    fractions: dict[str, np.ndarray]

    @property
    def telnet_lunch_dip(self) -> bool:
        f = self.fractions["TELNET"]
        return f[12] < f[11] and f[12] < f[13]

    @property
    def ftp_evening_share(self) -> float:
        """FTP's 19:00-22:00 share relative to TELNET's."""
        ftp = self.fractions["FTP"][19:23].sum()
        telnet = self.fractions["TELNET"][19:23].sum()
        return float(ftp / telnet)

    @property
    def nntp_flatness(self) -> float:
        """max/min hourly fraction; NNTP's should be the smallest."""
        f = self.fractions["NNTP"]
        return float(f.max() / max(f.min(), 1e-12))

    @property
    def smtp_peak_hour(self) -> int:
        return int(np.argmax(self.fractions["SMTP"]))

    @property
    def smtp_morning_bias(self) -> bool:
        """West-coast SMTP: more mail 07:00-12:59 than 13:00-18:59.

        More robust than the raw peak hour, which jitters with the
        timer-modulation noise the SMTP generator deliberately includes.
        """
        f = self.fractions["SMTP"]
        return float(f[7:13].sum()) > float(f[13:19].sum())

    def rows(self) -> list[dict]:
        out = []
        for hour in range(24):
            row = {"hour": hour}
            for proto in PROTOCOLS:
                row[proto] = float(self.fractions[proto][hour])
            out.append(row)
        return out

    def render(self) -> str:
        lines = [
            format_table(
                self.rows(),
                title="Fig. 1: fraction of a day's connections per hour "
                      "(mean over LBL-1..4)",
            ),
            "",
        ]
        for proto in PROTOCOLS:
            lines.append(f"{proto:>7}: {ascii_sparkline(self.fractions[proto])}")
        return "\n".join(lines)


def fig01(
    seed: SeedLike = 0,
    traces=DEFAULT_TRACES,
    hours: int = 48,
    scale: float = 1.0,
) -> Fig1Result:
    """Regenerate Fig. 1 from synthesized LBL connection traces."""
    sums = {p: np.zeros(24) for p in PROTOCOLS}
    for name, rng in zip(traces, spawn_rngs(seed, len(traces))):
        trace = synthesize_connection_trace(name, seed=rng, hours=hours,
                                            scale=scale)
        for proto in PROTOCOLS:
            counts = trace.hourly_counts(proto).astype(float)
            total = counts.sum()
            if total > 0:
                sums[proto] += counts / total
    fractions = {p: s / len(traces) for p, s in sums.items()}
    return Fig1Result(fractions=fractions)
