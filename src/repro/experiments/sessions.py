"""Section III side analyses: X11 sessions vs connections, and the
weather-map preprocessing step.

* "We find that RLOGIN does and X11 does not [fit the Poisson session
  model].  We conjecture that the difference is that during a single X11
  session ... a user initiates multiple X11 connections ... If we could
  discern between X11 session arrivals and X11 connection arrivals, then we
  conjecture we would find the session arrivals to be Poisson."  The
  synthetic suite records session ids, so the conjecture can be tested
  directly.

* "Prior to our analysis we removed the periodic 'weather-map' FTP traffic
  ... to avoid skewing our results."  This experiment shows the skew: the
  FTP Poisson verdict with and without the timer-driven job removed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.stats.poisson_tests import PoissonTestResult, evaluate_arrival_process
from repro.traces.periodic import PeriodicSource, remove_periodic_traffic
from repro.traces.synthesis import synthesize_connection_trace
from repro.traces.trace import ConnectionTrace
from repro.utils.rng import SeedLike


def session_arrival_times(trace: ConnectionTrace, protocol: str) -> np.ndarray:
    """First-connection times per session — the *session* arrival process."""
    groups = trace.sessions(protocol)
    if not groups:
        raise ValueError(f"no {protocol} sessions in trace {trace.name!r}")
    return np.sort(
        np.array([float(trace.start_times[rows[0]]) for rows in groups.values()])
    )


@dataclass(frozen=True)
class X11Result:
    connections: PoissonTestResult
    sessions: PoissonTestResult

    @property
    def conjecture_confirmed(self) -> bool:
        """Connections not Poisson, sessions Poisson — the paper's guess."""
        return (not self.connections.poisson_consistent
                and self.sessions.poisson_consistent)

    def rows(self) -> list[dict]:
        return [
            {"process": name, **r.summary_row()}
            for name, r in (("X11 connections", self.connections),
                            ("X11 sessions", self.sessions))
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section III: X11 connection vs session arrivals",
        )


def x11_sessions(
    seed: SeedLike = 0,
    trace_name: str = "UCB",
    hours: int = 48,
    interval: float = 3600.0,
) -> X11Result:
    """Test the paper's X11 conjecture on the synthetic UCB trace."""
    trace = synthesize_connection_trace(trace_name, seed=seed, hours=hours)
    end = hours * 3600.0
    conns = evaluate_arrival_process(trace.arrival_times("X11"), interval,
                                     start=0.0, end=end)
    sess = evaluate_arrival_process(session_arrival_times(trace, "X11"),
                                    interval, start=0.0, end=end)
    return X11Result(connections=conns, sessions=sess)


@dataclass(frozen=True)
class WeathermapResult:
    with_periodic: PoissonTestResult
    without_periodic: PoissonTestResult
    removed: list[PeriodicSource]

    @property
    def removal_matters(self) -> bool:
        """Removing the job must improve the exponential pass rate."""
        return (self.without_periodic.exponential_pass_rate
                > self.with_periodic.exponential_pass_rate)

    def rows(self) -> list[dict]:
        return [
            {"ftp_arrivals": name, **r.summary_row()}
            for name, r in (("with weather-map", self.with_periodic),
                            ("periodic removed", self.without_periodic))
        ]

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Section III: the weather-map preprocessing step",
        )
        detected = ", ".join(
            f"hosts {s.orig_host}->{s.resp_host} ({s.n_connections} conns, "
            f"period {s.period:.0f}s, cv {s.cv:.3f})"
            for s in self.removed
        )
        return table + f"\ndetected periodic sources: {detected or 'none'}"


def weathermap(
    seed: SeedLike = 0,
    hours: int = 48,
    user_sessions_per_hour: float = 15.0,
    job_period: float = 600.0,
    interval: float = 3600.0,
) -> WeathermapResult:
    """Quantify the skew a periodic FTP job adds to the Poisson tests.

    Builds a trace of genuinely Poisson user FTP sessions plus a cron-like
    job firing every ``job_period`` seconds from one host pair — the
    structure of LBL's weather-map fetches.  Left in place, the timer
    component wrecks the hourly exponential-interarrival tests; detected
    and removed (the paper's preprocessing), the user sessions test clean.
    """
    from repro.arrivals.cluster import timer_driven_arrivals
    from repro.arrivals.poisson import homogeneous_poisson
    from repro.traces.records import ConnectionRecord
    from repro.utils.rng import as_rng

    rng = as_rng(seed)
    end = hours * 3600.0
    records = [
        ConnectionRecord(float(t), 60.0, "FTP",
                         orig_host=int(rng.integers(0, 200)),
                         resp_host=int(rng.integers(200, 400)))
        for t in homogeneous_poisson(user_sessions_per_hour / 3600.0, end,
                                     seed=rng)
    ]
    # The job fetches several files per firing (a small batch), the shape
    # that makes timer traffic so damaging to exponentiality tests.
    records += [
        ConnectionRecord(float(t), 30.0, "FTP", orig_host=990, resp_host=991)
        for t in timer_driven_arrivals(job_period, end, jitter_sd=5.0,
                                       phase=90.0, batch_size=3,
                                       batch_gap=2.0, seed=rng)
    ]
    trace = ConnectionTrace("weathermap-demo", records)
    before = evaluate_arrival_process(trace.arrival_times("FTP"), interval,
                                      start=0.0, end=end)
    cleaned, removed = remove_periodic_traffic(trace, "FTP")
    after = evaluate_arrival_process(cleaned.arrival_times("FTP"), interval,
                                     start=0.0, end=end)
    return WeathermapResult(with_periodic=before, without_periodic=after,
                            removed=removed)
