"""Online monitor: LRD-vs-drift discrimination over live streams.

The paper's estimators run post-hoc over finished traces; the monitor
runs them *on the wire*.  This experiment drives the full Clegg stress
battery through one :class:`~repro.monitor.MonitorService` per stream —
Poisson null, true Pareto-renewal LRD, a Hurst step 0.5→0.85,
a Markov-modulated on/off source that fakes LRD, and a compressed
diurnal ramp — and reports each stream's final verdict, the step's
detection, and the online-vs-batch Hurst agreement on the same window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.monitor import (
    MonitorConfig,
    MonitorReport,
    MonitorService,
    diurnal_ramp_stream,
    hurst_step_stream,
    iter_batches,
    markov_onoff_stream,
    pareto_stream,
    poisson_stream,
)
from repro.scenario import execute
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import hurst_from_variance_time
from repro.utils.rng import SeedLike, spawn_rngs


#: Expected final verdict per scenario — the discrimination contract.
EXPECTED = {
    "poisson": ("poisson-like", "indeterminate"),
    "pareto": ("self-similar",),
    "hurst-step": ("self-similar",),
    "markov-onoff": ("nonstationary",),
    "diurnal-ramp": ("nonstationary",),
}


def _test_config(window: float = 60.0) -> MonitorConfig:
    return MonitorConfig(
        window=window, bin_width=0.05, snapshot_every=2.0,
        rate_tick=0.5, rate_warmup=30, hurst_warmup=8,
    )


def _drive(times: np.ndarray, config: MonitorConfig,
           batch_seconds: float = 1.0) -> MonitorReport:
    service = MonitorService(config)
    for batch in iter_batches(times, batch_seconds):
        service.observe(batch)
    return service.finalize()


@dataclass(frozen=True)
class MonitorBatteryResult:
    reports: dict[str, MonitorReport]
    online_hurst: float       # monitor's H at the last hurst-step snapshot
    batch_hurst: float        # batch variance-time H on the same window
    step_alarm_time: float | None  # first hurst alarm after the step
    step_time: float

    def verdict_for(self, name: str) -> str:
        """Battery verdict: the modal settled verdict of the stream.

        The step stream is classified from its post-step history (one
        window past the step, so the sliding window has fully turned
        over into the new regime); the others from their whole run.
        """
        report = self.reports[name]
        if name == "hurst-step":
            return report.modal_verdict(
                after=self.step_time + report.config.window)
        return report.modal_verdict()

    def rows(self) -> list[dict]:
        rows = []
        for name, report in self.reports.items():
            counts = report.verdict_counts()
            hs = [s.hurst.hurst for s in report.snapshots if s.hurst]
            verdict = self.verdict_for(name)
            rows.append({
                "stream": name,
                "events": report.n_events,
                "snapshots": len(report.snapshots),
                "alarms": len(report.alarms),
                "H_final": round(float(np.median(hs[-5:])), 3) if hs
                           else float("nan"),
                "verdict": verdict,
                "expected": "|".join(EXPECTED[name]),
                "ok": verdict in EXPECTED[name],
                "nonstationary_snaps": counts["nonstationary"],
            })
        return rows

    @property
    def discrimination_ok(self) -> bool:
        """Every stream landed on its expected final verdict."""
        return all(row["ok"] for row in self.rows())

    @property
    def step_detected(self) -> bool:
        """A hurst-series alarm fired after the dependence step."""
        return (self.step_alarm_time is not None
                and self.step_alarm_time >= self.step_time)

    @property
    def online_matches_batch(self) -> bool:
        """Online H within ±0.05 of the batch fit on the same window."""
        return abs(self.online_hurst - self.batch_hurst) <= 0.05

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Online monitor: LRD-vs-drift discrimination battery",
        )
        step = ("not detected" if self.step_alarm_time is None else
                f"alarm at t={self.step_alarm_time:.1f}s "
                f"(step at t={self.step_time:.0f}s)")
        lines = [
            table,
            "",
            f"Hurst step 0.5->0.85: {step}",
            f"online H {self.online_hurst:.3f} vs batch H "
            f"{self.batch_hurst:.3f} on the same window "
            f"(|diff| {abs(self.online_hurst - self.batch_hurst):.3f})",
        ]
        return "\n".join(lines)


def run_config(cfg: dict, seed: SeedLike = 0,
               jobs: int = 1) -> MonitorBatteryResult:
    """The monitor family runner: one resolved ``[monitor]`` section.

    ``jobs`` is accepted for runner-signature uniformity; the battery is
    a closed loop over one service per stream and runs serially.
    """
    duration = cfg.get("duration", 400.0)
    rate = cfg.get("rate", 50.0)
    window = cfg.get("window", 60.0)
    rngs = spawn_rngs(seed, 5)
    config = _test_config(window)
    step_duration = max(duration * 1.5, duration + 4 * window)
    step_time = step_duration / 2.0
    streams = {
        "poisson": poisson_stream(duration, rate, seed=rngs[0]),
        "pareto": pareto_stream(duration, rate, seed=rngs[1]),
        "hurst-step": hurst_step_stream(step_duration, rate, step_time,
                                        seed=rngs[2]),
        "markov-onoff": markov_onoff_stream(
            duration, rate * 4.0, mean_on=5.0, mean_off=15.0, seed=rngs[3]
        ),
        "diurnal-ramp": diurnal_ramp_stream(duration, rate, seed=rngs[4]),
    }
    reports = {name: _drive(times, config)
               for name, times in streams.items()}

    # Closed loop on the step stream: the monitor's final H against the
    # batch variance-time fit over the *identical* window of raw times.
    step_report = reports["hurst-step"]
    last = next(s for s in reversed(step_report.snapshots)
                if s.hurst is not None)
    lo, hi = last.hurst.window_start, last.hurst.window_end
    window_times = streams["hurst-step"]
    window_times = window_times[(window_times >= lo) & (window_times < hi)]
    batch = hurst_from_variance_time(
        CountProcess.from_times(window_times, config.bin_width, start=lo),
        min_level=config.min_level,
    )
    step_alarms = [a.time for a in step_report.alarms
                   if a.series == "hurst" and a.time >= step_time]
    return MonitorBatteryResult(
        reports=reports,
        online_hurst=float(last.hurst.hurst),
        batch_hurst=float(batch),
        step_alarm_time=min(step_alarms) if step_alarms else None,
        step_time=float(step_time),
    )


def monitor(
    seed: SeedLike = 0,
    duration: float = 400.0,
    rate: float = 50.0,
    window: float = 60.0,
) -> MonitorBatteryResult:
    """Run the five-stream discrimination battery through live monitors."""
    return execute("monitor", {
        "duration": duration, "rate": rate, "window": window,
    }, seed=seed)
