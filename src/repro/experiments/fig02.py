"""Fig. 2: results of testing connection arrivals for Poisson consistency.

For each trace and protocol, at one-hour and ten-minute fixed-rate
intervals, the figure plots the percentage of intervals passing the
exponential-interarrival test (x) against the percentage passing the
independence test (y); bold letters mark statistical consistency with
Poisson arrivals, and +/- mark consistent correlation sign.

The paper's qualitative result, which this experiment reproduces on the
synthetic suite: TELNET and FTP-session arrivals are Poisson at both time
scales; FTPDATA, NNTP, SMTP and WWW are not (SMTP and FTPDATA *bursts* come
closest at ten minutes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ftp import trace_bursts
from repro.experiments.common import (
    POISSON_TEST_INTERVALS as INTERVALS,
    POISSON_TEST_PROTOCOLS as PROTOCOLS,
    POISSON_TEST_TRACES as DEFAULT_TRACES,
)
from repro.experiments.report import format_table
from repro.stats.poisson_tests import PoissonTestResult, evaluate_arrival_process
from repro.traces.synthesis import synthesize_connection_trace
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig2Cell:
    """One letter of Fig. 2: a (trace, protocol, interval) test outcome."""

    trace: str
    protocol: str
    interval: float
    result: PoissonTestResult

    def row(self) -> dict:
        r = self.result
        return {
            "trace": self.trace,
            "protocol": self.protocol,
            "interval_s": int(self.interval),
            "exp_pass_%": 100.0 * r.exponential_pass_rate,
            "indep_pass_%": 100.0 * r.independence_pass_rate,
            "poisson": r.poisson_consistent,
            "corr": r.correlation_label,
        }


@dataclass(frozen=True)
class Fig2Result:
    cells: list[Fig2Cell]

    def rows(self) -> list[dict]:
        return [c.row() for c in self.cells]

    def verdicts(self, interval: float) -> dict[str, list[bool]]:
        """protocol -> list of per-trace Poisson verdicts at one interval."""
        out: dict[str, list[bool]] = {}
        for c in self.cells:
            if c.interval == interval:
                out.setdefault(c.protocol, []).append(
                    c.result.poisson_consistent
                )
        return out

    def consistency_rate(self, protocol: str, interval: float) -> float:
        flags = self.verdicts(interval).get(protocol, [])
        return float(np.mean(flags)) if flags else float("nan")

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Fig. 2: Poisson-consistency tests per trace x protocol",
        )


def fig02(
    seed: SeedLike = 0,
    traces=DEFAULT_TRACES,
    protocols=PROTOCOLS,
    hours: int = 48,
    scale: float = 1.0,
    include_bursts: bool = True,
    remove_periodic: bool = True,
) -> Fig2Result:
    """Run the Appendix A methodology across the synthetic suite.

    ``remove_periodic`` applies the paper's preprocessing: "Prior to our
    analysis we removed the periodic 'weather-map' FTP traffic ... to avoid
    skewing our results."
    """
    from repro.traces.periodic import remove_periodic_traffic

    cells: list[Fig2Cell] = []
    for name, rng in zip(traces, spawn_rngs(seed, len(traces))):
        trace = synthesize_connection_trace(name, seed=rng, hours=hours,
                                            scale=scale)
        if remove_periodic:
            trace, _ = remove_periodic_traffic(trace, "FTP")
        end = hours * 3600.0
        for proto in protocols:
            times = trace.arrival_times(proto)
            for interval in INTERVALS:
                cells.append(
                    _cell(name, proto, interval, times, end)
                )
        if include_bursts:
            bursts = trace_bursts(trace)
            times = np.array([b.start_time for b in bursts])
            for interval in INTERVALS:
                cells.append(_cell(name, "FTPDATA-BURSTS", interval, times, end))
    return Fig2Result(cells=[c for c in cells if c is not None])


def _cell(name, proto, interval, times, end) -> Fig2Cell | None:
    if times.size < 20:
        return None
    try:
        result = evaluate_arrival_process(times, interval, start=0.0, end=end)
    except ValueError:  # no interval dense enough to test
        return None
    return Fig2Cell(trace=name, protocol=proto, interval=interval,
                    result=result)
