"""Plain-text reporting helpers shared by the experiment modules.

Every experiment returns structured data *and* can render the rows/series
the paper's table or figure reports, as aligned ASCII — the reproduction's
equivalent of regenerating the figure.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_value(v) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x: np.ndarray, y: np.ndarray, x_name: str, y_name: str,
                  title: str | None = None, max_rows: int = 40) -> str:
    """Render an (x, y) series as a two-column table, thinning long series."""
    x = np.asarray(x)
    y = np.asarray(y)
    idx = np.arange(x.size)
    if x.size > max_rows:
        idx = np.unique(np.linspace(0, x.size - 1, max_rows).astype(int))
    rows = [{x_name: float(x[i]), y_name: float(y[i])} for i in idx]
    return format_table(rows, [x_name, y_name], title=title)


def ascii_loglog(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 64,
    height: int = 18,
) -> str:
    """Render one or more (x, y) series as a log-log ASCII scatter.

    The workhorse for variance-time plots in examples: each series gets the
    first letter of its label as its glyph; later series overwrite earlier
    ones where they collide.
    """
    x = np.asarray(x, dtype=float)
    if not series:
        return "(no series)"
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    pos_x = x[x > 0]
    pos_y = all_y[all_y > 0]
    if pos_x.size < 2 or pos_y.size < 2:
        raise ValueError("log-log plot needs positive x and y values")
    lx0, lx1 = np.log10(pos_x.min()), np.log10(pos_x.max())
    ly0, ly1 = np.log10(pos_y.min()), np.log10(pos_y.max())
    if lx1 - lx0 < 1e-12 or ly1 - ly0 < 1e-12:
        raise ValueError("degenerate axis range")
    grid = [[" "] * width for _ in range(height)]
    used: dict[str, str] = {}
    for label in series:
        glyph = next(
            (c for c in (label or "?") if c not in used.values()), "?"
        )
        used[label] = glyph
    for label, y in series.items():
        glyph = used[label]
        yv = np.asarray(y, dtype=float)
        for xi, yi in zip(x, yv):
            if xi <= 0 or yi <= 0:
                continue
            col = int((np.log10(xi) - lx0) / (lx1 - lx0) * (width - 1))
            row = int((ly1 - np.log10(yi)) / (ly1 - ly0) * (height - 1))
            grid[row][col] = glyph
    lines = ["".join(r) for r in grid]
    legend = "  ".join(f"{used[label]}={label}" for label in series)
    axis = (f"x: 10^{lx0:.1f}..10^{lx1:.1f}   "
            f"y: 10^{ly0:.1f}..10^{ly1:.1f}   {legend}")
    return "\n".join(lines + [axis])


def ascii_sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line bar-glyph rendering of a nonnegative series."""
    glyphs = " .:-=+*#%@"
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    if v.size > width:
        chunks = np.array_split(v, width)
        v = np.array([c.mean() for c in chunks])
    top = v.max()
    if top <= 0:
        return " " * v.size
    scaled = np.clip((v / top) * (len(glyphs) - 1), 0, len(glyphs) - 1)
    return "".join(glyphs[int(round(s))] for s in scaled)
