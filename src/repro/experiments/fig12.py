"""Figs. 12 and 13 + the Section VII-C/D estimator battery.

Fig. 12: variance-time plots of all-TCP / all-link packet arrivals for the
LBL PKT traces on 0.01 s bins; Fig. 13: the same for DEC WRL.  Straight
shallow lines indicate (asymptotic) self-similarity.  The paper pairs the
plots with Whittle's procedure and Beran's goodness-of-fit test, finding
every trace exhibits large-scale correlations but only some are consistent
with fractional Gaussian noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import WRL_TRACES
from repro.experiments.report import format_table
from repro.selfsim.beran import beran_goodness_of_fit
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import variance_time_curve
from repro.selfsim.whittle import whittle_estimate
from repro.traces.synthesis import synthesize_packet_trace
from repro.utils.rng import SeedLike, spawn_rngs

LBL_TRACES = ("LBL PKT-1", "LBL PKT-2", "LBL PKT-3", "LBL PKT-4", "LBL PKT-5")


@dataclass(frozen=True)
class AggregateTrafficRow:
    trace: str
    n_packets: int
    vt_slope: float
    vt_hurst: float
    whittle_hurst: float
    whittle_ci: tuple[float, float]
    gof_p_value: float
    fgn_consistent: bool

    def row(self) -> dict:
        return {
            "trace": self.trace,
            "packets": self.n_packets,
            "vt_slope": self.vt_slope,
            "H_vt": self.vt_hurst,
            "H_whittle": self.whittle_hurst,
            "gof_p": self.gof_p_value,
            "fgn_ok": self.fgn_consistent,
        }


@dataclass(frozen=True)
class Fig12Result:
    rows_: list[AggregateTrafficRow]
    title: str
    bin_width: float

    def rows(self) -> list[dict]:
        return [r.row() for r in self.rows_]

    @property
    def all_show_large_scale_correlations(self) -> bool:
        """Every trace's VT slope must be decisively shallower than -1."""
        return all(r.vt_slope > -0.9 for r in self.rows_)

    def render(self) -> str:
        return format_table(self.rows(), title=self.title)


def _analyze(name: str, rng, hours: float, bin_width: float,
             scale: float) -> AggregateTrafficRow:
    trace = synthesize_packet_trace(name, seed=rng, hours=hours, scale=scale)
    duration = hours * 3600.0
    cp = trace.count_process(bin_width, end=duration)
    curve = variance_time_curve(cp)
    slope = curve.slope(min_level=10)
    # Whittle/Beran run on a coarser (1 s) binning to keep the FFT length
    # manageable and the Gaussian approximation reasonable.
    coarse = trace.count_process(1.0, end=duration)
    w = whittle_estimate(coarse.counts)
    g = beran_goodness_of_fit(coarse.counts, hurst=w.hurst)
    return AggregateTrafficRow(
        trace=name,
        n_packets=len(trace),
        vt_slope=slope,
        vt_hurst=1.0 + slope / 2.0,
        whittle_hurst=w.hurst,
        whittle_ci=w.confidence_interval,
        gof_p_value=g.p_value,
        fgn_consistent=g.consistent(),
    )


def fig12(
    seed: SeedLike = 0,
    traces=LBL_TRACES,
    hours: float = 1.0,
    bin_width: float = 0.01,
    scale: float = 1.0,
    title: str = "Fig. 12: aggregate-traffic self-similarity (LBL PKT)",
) -> Fig12Result:
    """Regenerate Fig. 12's variance-time + estimator battery."""
    rows = [
        _analyze(name, rng, hours, bin_width, scale)
        for name, rng in zip(traces, spawn_rngs(seed, len(traces)))
    ]
    return Fig12Result(rows_=rows, title=title, bin_width=bin_width)


def fig13(seed: SeedLike = 1, hours: float = 1.0, bin_width: float = 0.01,
          scale: float = 1.0) -> Fig12Result:
    """Fig. 13: the DEC WRL datasets."""
    return fig12(
        seed=seed,
        traces=WRL_TRACES,
        hours=hours,
        bin_width=bin_width,
        scale=scale,
        title="Fig. 13: aggregate-traffic self-similarity (DEC WRL)",
    )
