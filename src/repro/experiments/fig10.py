"""Figs. 10 and 11: per-minute FTPDATA traffic dominated by the top bursts.

For each packet trace the paper plots FTPDATA bytes/minute and shades the
contribution of the largest 2% (and 0.5%) of connection bursts: for the LBL
PKT traces the 2% tail holds ~50-85% of all FTPDATA traffic; for the DEC
WRL traces 45-70%.  The same rendering serves both figures (Fig. 10 = LBL,
Fig. 11 = DEC WRL).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ftp import FtpSessionModel, coalesce_bursts
from repro.experiments.common import WRL_TRACES
from repro.experiments.report import ascii_sparkline, format_table
from repro.utils.rng import SeedLike, spawn_rngs

LBL_TRACES = ("LBL PKT-1", "LBL PKT-2", "LBL PKT-3", "LBL PKT-5")


@dataclass(frozen=True)
class BurstDominanceRow:
    trace: str
    n_bursts: int
    minutes: np.ndarray  # total FTPDATA bytes per minute
    top2_minutes: np.ndarray  # bytes/minute from the top-2% bursts
    top05_minutes: np.ndarray

    @property
    def top2_share(self) -> float:
        total = self.minutes.sum()
        return float(self.top2_minutes.sum() / total) if total else 0.0

    @property
    def top05_share(self) -> float:
        total = self.minutes.sum()
        return float(self.top05_minutes.sum() / total) if total else 0.0

    def row(self) -> dict:
        return {
            "trace": self.trace,
            "bursts": self.n_bursts,
            "MB_total": float(self.minutes.sum() / 1e6),
            "top2%_share": self.top2_share,
            "top0.5%_share": self.top05_share,
        }


@dataclass(frozen=True)
class Fig10Result:
    rows_: list[BurstDominanceRow]
    title: str

    def rows(self) -> list[dict]:
        return [r.row() for r in self.rows_]

    def render(self) -> str:
        lines = [format_table(self.rows(), title=self.title)]
        for r in self.rows_:
            lines.append(f"{r.trace:>10} all : {ascii_sparkline(r.minutes)}")
            lines.append(f"{r.trace:>10} top2: {ascii_sparkline(r.top2_minutes)}")
        return "\n".join(lines)


def _burst_dominance(
    name: str, rng, duration: float, sessions_per_hour: float
) -> BurstDominanceRow:
    """Synthesize FTPDATA connections, coalesce bursts, attribute traffic."""
    model = FtpSessionModel(sessions_per_hour=sessions_per_hour)
    records = [r for r in model.synthesize(duration, seed=rng)
               if r.protocol == "FTPDATA"]
    n_minutes = int(duration // 60.0)
    minutes = np.zeros(n_minutes)
    # burst membership per record, via per-session coalescing
    by_session: dict[int, list] = {}
    for r in records:
        by_session.setdefault(r.session_id, []).append(r)
    bursts = []
    membership = []  # (record, burst_index)
    for recs in by_session.values():
        recs.sort(key=lambda r: r.start_time)
        starts = np.array([r.start_time for r in recs])
        durs = np.array([r.duration for r in recs])
        sizes = np.array([r.total_bytes for r in recs])
        session_bursts = coalesce_bursts(starts, durs, sizes)
        # map each record to its burst by cumulative connection counts
        i = 0
        for b in session_bursts:
            idx = len(bursts)
            bursts.append(b)
            for _ in range(b.n_connections):
                membership.append((recs[i], idx))
                i += 1
    sizes = np.array([b.total_bytes for b in bursts], dtype=float)
    order = np.argsort(sizes)[::-1]
    k2 = max(1, int(np.ceil(0.02 * sizes.size)))
    k05 = max(1, int(np.ceil(0.005 * sizes.size)))
    top2 = set(order[:k2].tolist())
    top05 = set(order[:k05].tolist())

    top2_minutes = np.zeros(n_minutes)
    top05_minutes = np.zeros(n_minutes)
    for rec, b_idx in membership:
        _spread(minutes, rec, duration)
        if b_idx in top2:
            _spread(top2_minutes, rec, duration)
        if b_idx in top05:
            _spread(top05_minutes, rec, duration)
    return BurstDominanceRow(
        trace=name, n_bursts=sizes.size, minutes=minutes,
        top2_minutes=top2_minutes, top05_minutes=top05_minutes,
    )


def _spread(minutes: np.ndarray, rec, duration: float) -> None:
    """Attribute a connection's bytes uniformly across its lifetime."""
    n = minutes.size
    start = min(rec.start_time, duration - 1e-9)
    end = min(rec.end_time, duration)
    first = int(start // 60.0)
    last = min(int(end // 60.0), n - 1)
    span = max(end - start, 1e-9)
    rate = rec.total_bytes / span
    for m in range(first, last + 1):
        lo = max(start, m * 60.0)
        hi = min(end, (m + 1) * 60.0)
        if hi > lo:
            minutes[m] += rate * (hi - lo)


def fig10(
    seed: SeedLike = 0,
    traces=LBL_TRACES,
    hours: float = 1.0,
    sessions_per_hour: float = 120.0,
    title: str = "Fig. 10: share of FTPDATA traffic from largest bursts (LBL PKT)",
) -> Fig10Result:
    """Regenerate Fig. 10 (pass WRL_TRACES + a new title for Fig. 11)."""
    rows = []
    for name, rng in zip(traces, spawn_rngs(seed, len(traces))):
        rows.append(_burst_dominance(name, rng, hours * 3600.0,
                                     sessions_per_hour))
    return Fig10Result(rows_=rows, title=title)


def fig11(seed: SeedLike = 1, hours: float = 1.0,
          sessions_per_hour: float = 300.0) -> Fig10Result:
    """Fig. 11: the DEC WRL datasets (more bursts, steadier tail shares)."""
    return fig10(
        seed=seed,
        traces=WRL_TRACES,
        hours=hours,
        sessions_per_hour=sessions_per_hour,
        title="Fig. 11: share of FTPDATA traffic from largest bursts (DEC WRL)",
    )
