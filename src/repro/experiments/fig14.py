"""Figs. 14 and 15 + Appendix C: pseudo-self-similar Pareto renewal counts.

Both figures show 1,000-bin count processes of i.i.d. Pareto(beta=1, a=1)
interarrivals under nine seeds — Fig. 14 with bin width b = 10^3, Fig. 15
with b = 10^7.  "To the eye, the two sets of arrivals exhibit the same
general activity"; quantitatively, the paper reports the mean burst length
grows only by a factor ~2.6 across the 10^4x change in scale while the mean
lull length changes by only ~1.2x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.pareto_renewal import (
    BurstLullSummary,
    burst_lull_summary,
    expected_burst_length,
    pareto_renewal_counts,
)
from repro.experiments.report import ascii_sparkline, format_table
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class PanelResult:
    """One seed's count process and run-length summary."""

    seed_index: int
    counts: np.ndarray
    summary: BurstLullSummary


@dataclass(frozen=True)
class Fig14Result:
    bin_width: float
    shape: float
    panels: list[PanelResult]

    @property
    def mean_burst(self) -> float:
        return float(np.mean([p.summary.mean_burst for p in self.panels]))

    @property
    def mean_lull(self) -> float:
        return float(np.mean([p.summary.mean_lull for p in self.panels]))

    @property
    def occupied_fraction(self) -> float:
        return float(np.mean([p.summary.occupied_fraction for p in self.panels]))

    def rows(self) -> list[dict]:
        return [
            {
                "seed": p.seed_index,
                "mean_burst_bins": p.summary.mean_burst,
                "mean_lull_bins": p.summary.mean_lull,
                "occupied_frac": p.summary.occupied_fraction,
                "max_count": int(p.counts.max()) if p.counts.size else 0,
            }
            for p in self.panels
        ]

    def render(self) -> str:
        lines = [
            format_table(
                self.rows(),
                title=f"Fig. {'14' if self.bin_width < 1e5 else '15'}: "
                      f"i.i.d. Pareto(beta={self.shape}) counts, "
                      f"b={self.bin_width:g}",
            )
        ]
        for p in self.panels[:3]:
            lines.append(f"seed {p.seed_index}: {ascii_sparkline(p.counts)}")
        theory = expected_burst_length(self.bin_width, 1.0, self.shape)
        lines.append(f"theory E[burst] ~ log(b/a) = {theory:.2f} bins; "
                     f"measured {self.mean_burst:.2f}")
        return "\n".join(lines)


def fig14(
    seed: SeedLike = 0,
    bin_width: float = 1e3,
    n_bins: int = 1000,
    n_seeds: int = 9,
    shape: float = 1.0,
) -> Fig14Result:
    """Regenerate Fig. 14 (default b = 10^3)."""
    panels = []
    for i, rng in enumerate(spawn_rngs(seed, n_seeds)):
        counts = pareto_renewal_counts(n_bins, bin_width, shape, seed=rng)
        panels.append(PanelResult(seed_index=i, counts=counts,
                                  summary=burst_lull_summary(counts)))
    return Fig14Result(bin_width=bin_width, shape=shape, panels=panels)


def fig15(seed: SeedLike = 1, bin_width: float = 1e7, n_bins: int = 1000,
          n_seeds: int = 9, shape: float = 1.0) -> Fig14Result:
    """Regenerate Fig. 15 (b = 10^7).

    NOTE: at full scale each panel contains hundreds of millions of
    arrivals; the streaming generator handles it, but expect several
    seconds per seed.  Benchmarks use reduced n_bins.
    """
    return fig14(seed=seed, bin_width=bin_width, n_bins=n_bins,
                 n_seeds=n_seeds, shape=shape)


@dataclass(frozen=True)
class ScaleComparison:
    """The Figs. 14-vs-15 quantitative comparison."""

    small: Fig14Result
    large: Fig14Result

    @property
    def burst_ratio(self) -> float:
        """Paper: ~2.6 for b = 10^3 -> 10^7."""
        return self.large.mean_burst / self.small.mean_burst

    @property
    def lull_ratio(self) -> float:
        """Paper: ~1.2 — lulls in bins are scale-invariant."""
        return self.large.mean_lull / self.small.mean_lull

    def render(self) -> str:
        return (
            f"scale comparison b={self.small.bin_width:g} -> "
            f"{self.large.bin_width:g}: burst ratio {self.burst_ratio:.2f} "
            f"(paper ~2.6), lull ratio {self.lull_ratio:.2f} (paper ~1.2)"
        )


def scale_comparison(
    seed: SeedLike = 0,
    small_b: float = 1e3,
    large_b: float = 1e7,
    n_bins: int = 1000,
    n_seeds: int = 5,
) -> ScaleComparison:
    """Run both figures and compare burst/lull scaling."""
    return ScaleComparison(
        small=fig14(seed=seed, bin_width=small_b, n_bins=n_bins,
                    n_seeds=n_seeds),
        large=fig14(seed=seed, bin_width=large_b, n_bins=n_bins,
                    n_seeds=n_seeds),
    )
