"""Fig. 9: percentage of all FTPDATA bytes due to the largest bursts.

For six datasets the paper plots the cumulative byte share of the largest
10% of FTPDATA bursts, with markers at the upper 0.5% and 2% — "the upper
0.5% tail of the FTPDATA bursts holds between 30-60% of all the FTPDATA
bytes" (UK, the lightest, still held 30% / 55% at 0.5% / 2%), versus ~3%
for an exponential.  The upper 5% tail fits a Pareto with 0.9 <= beta <= 1.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ftp import burst_tail_summary, trace_bursts
from repro.experiments.common import (
    BURST_CONCENTRATION_TRACES as DEFAULT_TRACES,
)
from repro.experiments.report import format_table
from repro.stats.tail import concentration_curve, exponential_top_share
from repro.traces.synthesis import synthesize_connection_trace
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig9Row:
    trace: str
    n_bursts: int
    share_top_half_percent: float
    share_top_two_percent: float
    share_top_ten_percent: float
    tail_shape: float | None

    def row(self) -> dict:
        return {
            "trace": self.trace,
            "bursts": self.n_bursts,
            "top0.5%_bytes": self.share_top_half_percent,
            "top2%_bytes": self.share_top_two_percent,
            "top10%_bytes": self.share_top_ten_percent,
            "pareto_beta": self.tail_shape if self.tail_shape else float("nan"),
        }


@dataclass(frozen=True)
class Fig9Result:
    rows_: list[Fig9Row]
    exponential_benchmark: float  # top-0.5% share of any exponential (~3%)

    def rows(self) -> list[dict]:
        return [r.row() for r in self.rows_]

    @property
    def all_dominated_by_tail(self) -> bool:
        return all(
            r.share_top_half_percent > self.exponential_benchmark * 2
            for r in self.rows_
        )

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Fig. 9: FTPDATA byte share of largest bursts",
        )
        return table + (
            f"\nexponential benchmark (top 0.5%): "
            f"{self.exponential_benchmark:.3f}"
        )


def fig09(
    seed: SeedLike = 0,
    traces=DEFAULT_TRACES,
    hours: int = 48,
    scale: float = 1.0,
) -> Fig9Result:
    """Regenerate Fig. 9's concentration numbers for six datasets."""
    rows = []
    for name, rng in zip(traces, spawn_rngs(seed, len(traces))):
        trace = synthesize_connection_trace(name, seed=rng, hours=hours,
                                            scale=scale)
        bursts = trace_bursts(trace)
        if len(bursts) < 50:
            continue
        summary = burst_tail_summary(bursts)
        curve = concentration_curve([b.total_bytes for b in bursts])
        rows.append(
            Fig9Row(
                trace=name,
                n_bursts=summary.n_bursts,
                share_top_half_percent=summary.share_top_half_percent,
                share_top_two_percent=summary.share_top_two_percent,
                share_top_ten_percent=curve.share_at(0.10),
                tail_shape=summary.tail_shape,
            )
        )
    return Fig9Result(rows_=rows,
                      exponential_benchmark=exponential_top_share(0.005))
