"""Fig. 8: distribution of spacing between FTPDATA connections in a session.

For six datasets the paper plots the CDF of the time between the end of one
FTPDATA connection and the start of the next within the same FTP session,
finding (i) upper tails much heavier than exponential, (ii) inflection
points between 2 and 6 s (bimodality), motivating (iii) the 4 s burst
cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ftp import BURST_SPACING_SECONDS, intra_session_spacings
from repro.experiments.common import FTP_SPACING_TRACES as DEFAULT_TRACES
from repro.distributions.exponential import Exponential
from repro.experiments.report import format_table
from repro.traces.synthesis import synthesize_connection_trace
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class Fig8Result:
    grid: np.ndarray  # spacing values (seconds, log-spaced)
    cdfs: dict[str, np.ndarray]
    sub_cutoff_share: dict[str, float]  # CDF at the 4 s burst cutoff
    tail_heavier_than_exponential: dict[str, bool]

    def rows(self) -> list[dict]:
        out = []
        for i, x in enumerate(self.grid):
            row = {"seconds": float(x)}
            for name, cdf in self.cdfs.items():
                row[name] = float(cdf[i])
            out.append(row)
        return out

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Fig. 8: CDF of intra-session FTPDATA connection spacing",
        )
        footer = "share <= 4s cutoff: " + ", ".join(
            f"{k}={v:.2f}" for k, v in self.sub_cutoff_share.items()
        )
        return table + "\n" + footer


def fig08(
    seed: SeedLike = 0,
    traces=DEFAULT_TRACES,
    hours: int = 24,
    scale: float = 1.0,
    n_grid: int = 22,
) -> Fig8Result:
    """Regenerate Fig. 8 across six synthetic datasets."""
    grid = np.geomspace(0.01, 1000.0, n_grid)
    cdfs: dict[str, np.ndarray] = {}
    sub_share: dict[str, float] = {}
    heavier: dict[str, bool] = {}
    for name, rng in zip(traces, spawn_rngs(seed, len(traces))):
        trace = synthesize_connection_trace(name, seed=rng, hours=hours,
                                            scale=scale)
        spacings = intra_session_spacings(trace)
        if spacings.size < 10:
            continue
        s = np.sort(spacings)
        cdfs[name] = np.searchsorted(s, grid, side="right") / s.size
        sub_share[name] = float(np.mean(s <= BURST_SPACING_SECONDS))
        # Heavier-than-exponential upper tail: compare P[S > q90 * 4]
        # against an exponential matched at the mean.
        exp = Exponential(float(np.mean(s)))
        q = float(np.quantile(s, 0.90))
        heavier[name] = bool(np.mean(s > 4 * q) > float(exp.sf(4 * q)))
    return Fig8Result(grid=grid, cdfs=cdfs, sub_cutoff_share=sub_share,
                      tail_heavier_than_exponential=heavier)
