"""Tables I and II: the trace-suite summaries.

The paper's Tables I and II list each dataset's date, span, and contents.
Here each row pairs the paper's reported values with the synthetic
counterpart actually generated (connections / packets, protocols present),
making the substitution explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.traces.synthesis import (
    CONNECTION_TRACE_CONFIGS,
    PACKET_TRACE_CONFIGS,
    synthesize_connection_trace,
    synthesize_packet_trace,
)
from repro.utils.rng import SeedLike, spawn_rngs


@dataclass(frozen=True)
class TableResult:
    rows: list[dict]
    title: str

    def render(self) -> str:
        return format_table(self.rows, title=self.title)


def table1(
    seed: SeedLike = 0,
    names=None,
    hours: int | None = None,
    scale: float = 1.0,
) -> TableResult:
    """Regenerate Table I: summary of wide-area TCP connection traces."""
    wanted = list(CONNECTION_TRACE_CONFIGS) if names is None else list(names)
    rows = []
    for name, rng in zip(wanted, spawn_rngs(seed, len(wanted))):
        cfg = CONNECTION_TRACE_CONFIGS[name]
        trace = synthesize_connection_trace(name, seed=rng, hours=hours,
                                            scale=scale)
        rows.append(
            {
                "dataset": name,
                "paper_date": cfg.info.paper_date,
                "paper_span": cfg.info.paper_duration,
                "paper_contents": cfg.info.paper_contents,
                "synth_hours": hours if hours is not None else cfg.hours,
                "synth_conns": len(trace),
                "protocols": "/".join(trace.protocol_names),
            }
        )
    return TableResult(rows, "Table I: wide-area TCP connection traces (paper vs synthetic)")


def table2(
    seed: SeedLike = 0,
    names=None,
    hours: float | None = None,
    scale: float = 1.0,
) -> TableResult:
    """Regenerate Table II: summary of wide-area packet traces."""
    wanted = list(PACKET_TRACE_CONFIGS) if names is None else list(names)
    rows = []
    for name, rng in zip(wanted, spawn_rngs(seed, len(wanted))):
        cfg = PACKET_TRACE_CONFIGS[name]
        trace = synthesize_packet_trace(name, seed=rng, hours=hours,
                                        scale=scale)
        rows.append(
            {
                "dataset": name,
                "paper_when": cfg.info.paper_duration,
                "paper_contents": cfg.info.paper_contents,
                "synth_hours": hours if hours is not None else cfg.hours,
                "synth_pkts": len(trace),
                "telnet_pkts": int(trace.select("TELNET").sum()),
                "ftpdata_pkts": int(trace.select("FTPDATA").sum()),
                "all_link_level": cfg.include_non_tcp,
            }
        )
    return TableResult(rows, "Table II: wide-area packet traces (paper vs synthetic)")
