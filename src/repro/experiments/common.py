"""Shared trace/protocol constant tables for the figure experiments.

Each figure of the paper works over a named subset of the Table I/II
datasets and protocols.  These tables were once restated per module;
they live here so the synthesis vocabulary is defined exactly once and
every figure imports the subset it reproduces (the figure modules keep
their historical module-level aliases, e.g. ``fig02.DEFAULT_TRACES``).
"""

from __future__ import annotations

#: Fig. 1 — hourly connection-rate curves: the four interactive-era LBL
#: connection traces and the protocols the figure plots.
HOURLY_RATE_TRACES: tuple[str, ...] = ("LBL-1", "LBL-2", "LBL-3", "LBL-4")
HOURLY_RATE_PROTOCOLS: tuple[str, ...] = ("TELNET", "FTP", "NNTP", "SMTP")

#: Fig. 2 — Poisson-consistency battery: one trace per site plus the
#: six protocols tested, at the paper's two fixed-rate intervals.
POISSON_TEST_TRACES: tuple[str, ...] = (
    "LBL-1", "LBL-2", "UCB", "UK", "DEC-1", "BC")
POISSON_TEST_PROTOCOLS: tuple[str, ...] = (
    "TELNET", "FTP", "FTPDATA", "SMTP", "NNTP", "WWW")
POISSON_TEST_INTERVALS: tuple[float, ...] = (3600.0, 600.0)

#: Fig. 8 — FTPDATA intra-session spacing CDFs.
FTP_SPACING_TRACES: tuple[str, ...] = (
    "LBL-1", "LBL-5", "LBL-6", "LBL-7", "DEC-1", "UCB")

#: Fig. 9 — FTPDATA burst byte-concentration curves.
BURST_CONCENTRATION_TRACES: tuple[str, ...] = (
    "LBL-6", "LBL-7", "UCB", "DEC-1", "UK", "NC")

#: Figs. 10-13 — the DEC Western Research Lab packet traces.
WRL_TRACES: tuple[str, ...] = (
    "DEC WRL-1", "DEC WRL-2", "DEC WRL-3", "DEC WRL-4")
