"""Fig. 3: empirical distributions of TELNET packet interarrival times.

The figure overlays (i) the Tcplib interarrival CDF, (ii) the CDF measured
from a traced TELNET packet stream, and (iii) two exponential fits — one
matching the geometric mean, one the arithmetic mean.  The reproduction
measures (ii) from a FULL-TEL-synthesized LBL PKT-1 stand-in and reports
the CDFs on a log-spaced grid plus the paper's quoted anchor comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fulltel import FullTelModel
from repro.distributions import tcplib
from repro.distributions.exponential import Exponential
from repro.distributions.pareto import hill_estimator
from repro.experiments.report import format_table
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class Fig3Result:
    grid: np.ndarray  # log-spaced interarrival values (seconds)
    tcplib_cdf: np.ndarray
    trace_cdf: np.ndarray
    exp_geometric_cdf: np.ndarray  # "fit #1"
    exp_arithmetic_cdf: np.ndarray
    trace_mean: float
    trace_geometric_mean: float
    n_gaps: int
    body_pareto_shape: float  # paper: ~0.9
    tail_pareto_shape: float  # upper 3%; paper: ~0.95

    def rows(self) -> list[dict]:
        return [
            {
                "seconds": float(x),
                "tcplib": float(a),
                "trace": float(b),
                "exp_geo_fit": float(c),
                "exp_mean_fit": float(d),
            }
            for x, a, b, c, d in zip(
                self.grid, self.tcplib_cdf, self.trace_cdf,
                self.exp_geometric_cdf, self.exp_arithmetic_cdf,
            )
        ]

    @property
    def agreement_above_100ms(self) -> float:
        """Max |Tcplib - trace| CDF gap above 0.1 s; the paper: 'Above
        0.1 s, the agreement is quite good, especially in the upper tail'."""
        sel = self.grid >= 0.1
        return float(np.max(np.abs(self.tcplib_cdf[sel] - self.trace_cdf[sel])))

    @property
    def exp_underestimates_tail(self) -> bool:
        """Both exponential fits put less mass beyond 5 s than the trace."""
        i = int(np.searchsorted(self.grid, 5.0))
        i = min(i, self.grid.size - 1)
        return bool(
            (1 - self.exp_geometric_cdf[i]) < (1 - self.trace_cdf[i])
        )

    def render(self) -> str:
        header = (
            f"Fig. 3: TELNET interarrival CDFs "
            f"(trace mean {self.trace_mean:.2f}s, geometric mean "
            f"{self.trace_geometric_mean:.2f}s, n={self.n_gaps})"
        )
        return format_table(self.rows(), title=header)


def fig03(
    seed: SeedLike = 0,
    duration: float = 7200.0,
    connections_per_hour: float = 136.5,
    n_grid: int = 25,
) -> Fig3Result:
    """Regenerate Fig. 3's curves."""
    trace = FullTelModel(connections_per_hour).synthesize(duration, seed=seed)
    gaps = []
    for times in trace.connections("TELNET").values():
        if times.size >= 2:
            gaps.append(np.diff(times))
    all_gaps = np.concatenate(gaps)
    all_gaps = all_gaps[all_gaps > 0]

    mean = float(np.mean(all_gaps))
    geo = float(np.exp(np.mean(np.log(all_gaps))))
    exp_geo = Exponential.fit_geometric(all_gaps)
    exp_mean = Exponential(mean)
    table = tcplib.telnet_packet_interarrival()

    grid = np.geomspace(1e-3, 100.0, n_grid)
    sorted_gaps = np.sort(all_gaps)
    trace_cdf = np.searchsorted(sorted_gaps, grid, side="right") / sorted_gaps.size
    # Section IV's Pareto fits: main body (5th-97th percentile span, fit
    # from its own minimum) and the upper 3% tail via the Hill estimator.
    body = sorted_gaps[int(0.05 * sorted_gaps.size): int(0.97 * sorted_gaps.size)]
    body_shape = hill_estimator(body, k=max(2, body.size // 2))
    tail_shape = hill_estimator(sorted_gaps, k=max(2, int(0.03 * sorted_gaps.size)))
    return Fig3Result(
        grid=grid,
        tcplib_cdf=np.asarray(table.cdf(grid)),
        trace_cdf=trace_cdf,
        exp_geometric_cdf=np.asarray(exp_geo.cdf(grid)),
        exp_arithmetic_cdf=np.asarray(exp_mean.cdf(grid)),
        trace_mean=mean,
        trace_geometric_mean=geo,
        n_gaps=int(all_gaps.size),
        body_pareto_shape=float(body_shape),
        tail_pareto_shape=float(tail_shape),
    )
