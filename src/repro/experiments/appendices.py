"""Appendix experiments: burst/lull scaling (C), M/G/infinity theory (D, E),
and the Section IV queueing-delay comparison.

Appendix C's table of regimes:

    beta = 2   : E[burst] ~ b/a      — aggregation smooths quickly
    beta = 1   : E[burst] ~ log(b/a) — pseudo-self-similar over many scales
    beta = 1/2 : E[burst] = 2        — self-similar over all scales

with lull lengths (in bins) invariant in b for every beta.

Appendix D: M/G/infinity with Pareto(1 < beta < 2) service is
asymptotically self-similar, H = (3 - beta)/2, with Poisson marginals of
mean rho * beta * a / (beta - 1).

Appendix E: the same queue with log-normal service has summable
autocovariance — subexponential is not heavy-tailed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.mg_infinity import (
    MGInfinity,
    asymptotic_hurst,
    pareto_autocovariance,
    pareto_mg_infinity,
)
from repro.arrivals.pareto_renewal import (
    burst_lull_summary,
    expected_burst_length,
    pareto_renewal_counts,
)
from repro.distributions.lognormal import Log2Normal
from repro.experiments.report import format_table
from repro.queueing.delay import DelayComparison, telnet_delay_experiment
from repro.selfsim.whittle import whittle_estimate
from repro.utils.rng import SeedLike, spawn_rngs


# ----------------------------------------------------------------------
# Appendix C
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppendixCResult:
    rows_: list[dict]

    def rows(self) -> list[dict]:
        return self.rows_

    def regime_confirmed(self, shape: float) -> bool:
        """Do the measurements reproduce the shape's scaling regime?"""
        rows = [r for r in self.rows_ if r["beta"] == shape]
        if len(rows) < 2:
            return False
        first, last = rows[0], rows[-1]
        burst_growth = last["measured_burst"] / max(first["measured_burst"], 1e-9)
        scale_growth = last["b"] / first["b"]
        if shape == 2.0:
            return burst_growth > scale_growth / 20.0  # ~linear growth
        if shape == 1.0:
            return burst_growth < 8.0  # logarithmic: tiny growth
        if shape == 0.5:
            return 0.5 < burst_growth < 2.0  # constant
        return False

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Appendix C: burst/lull scaling of i.i.d. Pareto counts",
        )


def appendix_c(
    seed: SeedLike = 0,
    bin_widths=(1e2, 1e3, 1e4),
    shapes=(2.0, 1.0, 0.5),
    n_bins: int = 2000,
) -> AppendixCResult:
    """Measure burst/lull scaling against the Appendix C closed forms."""
    rows = []
    rngs = spawn_rngs(seed, len(shapes) * len(bin_widths))
    i = 0
    for shape in shapes:
        for b in bin_widths:
            counts = pareto_renewal_counts(n_bins, b, shape, seed=rngs[i])
            i += 1
            s = burst_lull_summary(counts)
            median_lull = (
                float(np.median(s.lull_lengths)) if s.lull_lengths.size else 0.0
            )
            rows.append(
                {
                    "beta": shape,
                    "b": b,
                    "theory_burst": expected_burst_length(b, 1.0, shape),
                    "measured_burst": s.mean_burst,
                    "measured_lull": s.mean_lull,
                    "median_lull": median_lull,
                    "occupied": s.occupied_fraction,
                }
            )
    return AppendixCResult(rows_=rows)


# ----------------------------------------------------------------------
# Appendices D and E
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppendixDResult:
    rho: float
    shape: float
    location: float
    lags: np.ndarray
    closed_form: np.ndarray
    simulated: np.ndarray
    marginal_mean_theory: float
    marginal_mean_measured: float
    whittle_hurst: float
    hurst_theory: float

    def rows(self) -> list[dict]:
        return [
            {"lag": float(k), "r_closed_form": float(c), "r_simulated": float(s)}
            for k, c, s in zip(self.lags, self.closed_form, self.simulated)
        ]

    @property
    def hurst_error(self) -> float:
        return abs(self.whittle_hurst - self.hurst_theory)

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title=f"Appendix D: M/G/inf autocovariance, Pareto(beta={self.shape})",
        )
        return table + (
            f"\nmarginal mean: theory {self.marginal_mean_theory:.2f}, "
            f"measured {self.marginal_mean_measured:.2f}"
            f"\nHurst: theory (3-beta)/2 = {self.hurst_theory:.3f}, "
            f"Whittle {self.whittle_hurst:.3f}"
        )


def appendix_d(
    seed: SeedLike = 0,
    rho: float = 5.0,
    shape: float = 1.5,
    location: float = 1.0,
    n_steps: int = 65536,
) -> AppendixDResult:
    """Simulate the Pareto M/G/infinity queue against its closed forms."""
    model = pareto_mg_infinity(rho, location, shape)
    x = model.simulate(n_steps, dt=1.0, seed=seed,
                       warmup=50.0 * location * shape / (shape - 1.0) * 20)
    lags = np.array([1.0, 2.0, 5.0, 10.0, 20.0, 50.0])
    closed = pareto_autocovariance(rho, location, shape, lags)
    xc = x.astype(float) - x.mean()
    simulated = np.array(
        [float(np.mean(xc[:-int(k)] * xc[int(k):])) for k in lags]
    )
    return AppendixDResult(
        rho=rho,
        shape=shape,
        location=location,
        lags=lags,
        closed_form=closed,
        simulated=simulated,
        marginal_mean_theory=model.stationary_mean,
        marginal_mean_measured=float(x.mean()),
        whittle_hurst=whittle_estimate(x.astype(float)).hurst,
        hurst_theory=asymptotic_hurst(shape),
    )


@dataclass(frozen=True)
class AppendixEResult:
    """Decade-by-decade autocovariance mass: Pareto grows, log-normal dies."""

    decades: np.ndarray  # decade upper edges
    pareto_increments: np.ndarray
    lognormal_increments: np.ndarray

    @property
    def lognormal_summable(self) -> bool:
        """Appendix E: increments must vanish (here: fall by > 10x)."""
        return bool(
            self.lognormal_increments[-1]
            < 0.1 * max(self.lognormal_increments[0], 1e-300)
        )

    @property
    def pareto_nonsummable(self) -> bool:
        return bool(
            self.pareto_increments[-1] > 0.3 * self.pareto_increments[0]
        )

    def rows(self) -> list[dict]:
        return [
            {"decade_end": float(d), "pareto_mass": float(p),
             "lognormal_mass": float(l)}
            for d, p, l in zip(self.decades, self.pareto_increments,
                               self.lognormal_increments)
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Appendix E: sum of r(k) per decade — Pareto vs log-normal "
                  "service",
        )


def appendix_e(
    seed: SeedLike = 0,
    shape: float = 1.5,
    log2_mean: float = 2.0,
    log2_sd: float = 1.0,
    k_max: float = 1e6,
) -> AppendixEResult:
    """Compare per-decade autocovariance mass for the two service laws.

    (``seed`` is accepted for registry uniformity; the computation is
    deterministic.)
    """
    del seed
    lognorm_model = MGInfinity(1.0, Log2Normal(log2_mean, log2_sd))
    edges = np.geomspace(1.0, k_max, 7)
    p_inc, l_inc = [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        ks = np.geomspace(lo, hi, 24)
        # Pareto side uses the closed form (the numeric integrator's
        # quantile cap would artificially truncate the nonsummable tail).
        rp = pareto_autocovariance(1.0, 1.0, shape, ks)
        rl = np.atleast_1d(lognorm_model.autocovariance(ks))
        p_inc.append(float(np.trapezoid(rp, ks)))
        l_inc.append(float(np.trapezoid(rl, ks)))
    return AppendixEResult(
        decades=edges[1:],
        pareto_increments=np.asarray(p_inc),
        lognormal_increments=np.asarray(l_inc),
    )


# ----------------------------------------------------------------------
# Section IV delay experiment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelayExperimentResult:
    comparison: DelayComparison

    def rows(self) -> list[dict]:
        c = self.comparison
        return [
            {"model": "Tcplib", "mean_delay": c.tcplib.mean_delay,
             "p99_delay": c.tcplib.p99_delay,
             "max_wait": c.tcplib.max_queue_wait},
            {"model": "exponential", "mean_delay": c.exponential.mean_delay,
             "p99_delay": c.exponential.p99_delay,
             "max_wait": c.exponential.max_queue_wait},
        ]

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title=f"Section IV delay experiment (utilization "
                  f"{self.comparison.utilization_target})",
        )
        return table + (
            f"\nmean-delay ratio (Tcplib/exp): "
            f"{self.comparison.mean_delay_ratio:.2f}"
        )


def delay_experiment(
    seed: SeedLike = 0,
    n_connections: int = 100,
    duration: float = 600.0,
    utilization: float = 0.85,
) -> DelayExperimentResult:
    """Run the matched-load Tcplib-vs-exponential queueing comparison."""
    return DelayExperimentResult(
        comparison=telnet_delay_experiment(
            n_connections=n_connections,
            duration=duration,
            utilization=utilization,
            seed=seed,
        )
    )
