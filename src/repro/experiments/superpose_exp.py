"""Gaussian-vs-stable phase diagram of superposed ON/OFF sources.

Section VII-B builds self-similar traffic by multiplexing many heavy-tailed
ON/OFF sources.  *How* the aggregate converges depends on the order of
limits — the Mikosch/Resnick/Rootzén/Stegeman dichotomy: when the number of
sources grows fast relative to the observation horizon ("slow connection
growth" per horizon unit), per-source contributions are truncated and the
CLT wins, so the cumulative workload over a horizon is asymptotically
*Gaussian* (fractional Brownian motion limit); when the horizon grows fast
relative to the source count ("fast growth"), a single untruncated
heavy-tailed period can dominate the whole horizon and the workload is
*stable-like* — heavy-tailed, with tail index near the period law's
``beta``.

This experiment sweeps source count × horizon cells across both regimes,
synthesizing hundreds of independent replications per cell with the
batched grouped kernel (:func:`repro.kernels.superpose_onoff_groups`) and
scoring each cell's replication-workload marginal:

* Anderson-Darling A^2 normality (Case 4, mean/variance estimated) — the
  Gaussianity verdict;
* sample skewness and excess kurtosis — shape diagnostics;
* a Hill stability-index proxy on the upper deviations from the median —
  near the ON-period ``beta`` in the stable-like regime, larger (lighter
  tail) in the Gaussian regime.

Alongside the phase cells, a Hurst battery checks the second-order story:
one large Pareto-source aggregate must show elevated variance-time H near
the predicted ``expected_hurst(beta, beta)``, while a matched-mean
exponential control stays near 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.onoff import OnOffSource, expected_hurst
from repro.distributions.exponential import Exponential
from repro.distributions.pareto import hill_estimator
from repro.experiments.report import format_table
from repro.kernels import superpose_onoff, superpose_onoff_groups
from repro.scenario import execute
from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import variance_time_curve
from repro.stats import anderson_darling_normal

#: Phase-diagram grid: (regime, sources per replication, horizon).  Slow
#: cells pack many sources into a short horizon (every heavy period is
#: truncated → CLT); fast cells give few sources a long horizon (one
#: untruncated period can dominate → stable-like).  Calibrated so the
#: default seed separates cleanly at the 5% A^2 level with 192
#: replications.
CELLS: tuple[tuple[str, int, float], ...] = (
    ("slow", 256, 32.0),
    ("slow", 512, 64.0),
    ("slow", 1024, 64.0),
    ("fast", 4, 8192.0),
    ("fast", 4, 16384.0),
    ("fast", 4, 32768.0),
)


def _moments(x: np.ndarray) -> tuple[float, float]:
    """(sample skewness, excess kurtosis) via central moments."""
    c = x - x.mean()
    m2 = float(np.mean(c**2))
    if m2 <= 0:
        return 0.0, 0.0
    skew = float(np.mean(c**3)) / m2**1.5
    kurt = float(np.mean(c**4)) / m2**2 - 3.0
    return skew, kurt


def _hill_proxy(totals: np.ndarray) -> float:
    """Hill tail-index of the upper deviations from the median.

    The stable-like regime shows up as a heavy *upper* tail of the
    replication workloads; centering on the median keeps the threshold
    positive and robust to the Gaussian bulk."""
    dev = totals - np.median(totals)
    pos = dev[dev > 0]
    k = max(5, pos.size // 4)
    if pos.size <= k:
        return float("nan")
    return hill_estimator(pos, k)


@dataclass(frozen=True)
class SuperposeCell:
    """One phase-diagram cell: the marginal law of replication workloads."""

    regime: str            # "slow" or "fast" connection growth
    n_sources: int         # sources superposed per replication
    horizon: float         # observation horizon per replication
    a2_statistic: float    # modified Case-4 A^2 of the workload marginal
    a2_critical: float
    gaussian: bool         # A^2 consistent with normal at 5%
    skewness: float
    excess_kurtosis: float
    hill_alpha: float      # stability-index proxy (upper deviations)

    @property
    def as_expected(self) -> bool:
        """Slow cells should look Gaussian, fast cells should not."""
        return self.gaussian == (self.regime == "slow")


@dataclass(frozen=True)
class SuperposePhaseDiagram:
    """Phase-diagram sweep plus the Hurst battery on one large aggregate."""

    cells: tuple[SuperposeCell, ...]
    replications: int
    pareto_shape: float
    battery_sources: int
    battery_hurst: float   # variance-time H of the Pareto-source aggregate
    control_hurst: float   # same for the matched-mean exponential control
    expected_h: float      # expected_hurst(shape, shape)

    def rows(self) -> list[dict]:
        return [
            {
                "regime": c.regime,
                "sources": c.n_sources,
                "horizon": c.horizon,
                "A2": round(c.a2_statistic, 3),
                "gaussian": c.gaussian,
                "skew": round(c.skewness, 2),
                "ex_kurt": round(c.excess_kurtosis, 2),
                "hill_alpha": round(c.hill_alpha, 2),
                "ok": c.as_expected,
            }
            for c in self.cells
        ]

    @property
    def gaussian_like_slow(self) -> bool:
        """Every slow-growth cell passes the A^2 normality test."""
        return all(c.gaussian for c in self.cells if c.regime == "slow")

    @property
    def heavy_like_fast(self) -> bool:
        """Every fast-growth cell rejects normality."""
        return all(not c.gaussian for c in self.cells if c.regime == "fast")

    @property
    def regimes_distinguished(self) -> bool:
        """The diagram separates the two limit regimes."""
        return self.gaussian_like_slow and self.heavy_like_fast

    @property
    def hurst_elevated(self) -> bool:
        """Aggregate H near the heavy-tail prediction, control near 1/2."""
        return (
            abs(self.battery_hurst - self.expected_h) <= 0.15
            and abs(self.control_hurst - 0.5) <= 0.15
        )

    def payload(self) -> dict:
        """JSON-ready summary (the phase-diagram artifact)."""
        return {
            "replications": self.replications,
            "pareto_shape": self.pareto_shape,
            "cells": self.rows(),
            "battery": {
                "sources": self.battery_sources,
                "hurst": round(self.battery_hurst, 4),
                "control_hurst": round(self.control_hurst, 4),
                "expected_hurst": round(self.expected_h, 4),
                "elevated": self.hurst_elevated,
            },
            "gaussian_like_slow": self.gaussian_like_slow,
            "heavy_like_fast": self.heavy_like_fast,
            "regimes_distinguished": self.regimes_distinguished,
        }

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title=(
                "Superposition phase diagram: workload marginal per "
                f"replication (R={self.replications}, "
                f"beta={self.pareto_shape})"
            ),
        )
        lines = [
            table,
            "",
            f"slow-growth cells Gaussian-like: {self.gaussian_like_slow}",
            f"fast-growth cells heavy/stable-like: {self.heavy_like_fast}",
            f"regimes distinguished: {self.regimes_distinguished}",
            (
                f"Hurst battery ({self.battery_sources} sources): "
                f"pareto H {self.battery_hurst:.3f} "
                f"(expected {self.expected_h:.2f}), exponential control H "
                f"{self.control_hurst:.3f} (expected 0.50)"
            ),
        ]
        return "\n".join(lines)


def run_config(cfg: dict, seed=0, jobs: int = 1) -> SuperposePhaseDiagram:
    """The superpose family runner: one resolved ``[superpose]`` section."""
    replications = cfg.get("replications", 192)
    pareto_shape = cfg.get("pareto_shape", 1.2)
    battery_sources = cfg.get("battery_sources", 50_000)
    chunk = cfg.get("chunk", 8192)
    if replications < 8:
        raise ValueError(f"replications must be >= 8, got {replications}")
    location = 0.1  # short mean periods: many ON/OFF cycles per horizon
    src = OnOffSource.pareto(
        on_shape=pareto_shape, off_shape=pareto_shape,
        on_location=location, off_location=location,
    )
    mean_period = location * pareto_shape / (pareto_shape - 1.0)
    control = OnOffSource(Exponential(mean_period), Exponential(mean_period))

    seqs = np.random.SeedSequence(seed).spawn(len(CELLS) + 2)
    cells = []
    for (regime, n_sources, horizon), seq in zip(CELLS, seqs):
        totals = superpose_onoff_groups(
            replications, n_sources, 1, horizon, source=src, seed=seq,
            jobs=jobs, chunk=chunk,
        )[:, 0]
        ad = anderson_darling_normal(totals)
        skew, kurt = _moments(totals)
        cells.append(SuperposeCell(
            regime=regime,
            n_sources=n_sources,
            horizon=horizon,
            a2_statistic=ad.statistic,
            a2_critical=ad.critical_value,
            gaussian=ad.passed,
            skewness=skew,
            excess_kurtosis=kurt,
            hill_alpha=_hill_proxy(totals),
        ))

    hs = []
    for s, seq in zip((src, control), seqs[len(CELLS):]):
        agg = superpose_onoff(
            battery_sources, 1024, 1.0, source=s, seed=seq,
            jobs=jobs, chunk=chunk,
        )
        curve = variance_time_curve(CountProcess(agg, 1.0))
        hs.append(float(curve.hurst(min_level=4)))

    return SuperposePhaseDiagram(
        cells=tuple(cells),
        replications=replications,
        pareto_shape=pareto_shape,
        battery_sources=battery_sources,
        battery_hurst=hs[0],
        control_hurst=hs[1],
        expected_h=expected_hurst(pareto_shape, pareto_shape),
    )


def superpose(
    seed=0,
    replications: int = 192,
    pareto_shape: float = 1.2,
    battery_sources: int = 50_000,
    jobs: int = 1,
    chunk: int = 8192,
) -> SuperposePhaseDiagram:
    """Sweep the Gaussian-vs-stable phase diagram of ON/OFF superposition.

    Each cell synthesizes ``replications`` independent aggregates of
    ``n_sources`` sources over ``horizon`` seconds in one grouped-kernel
    sweep, then tests the marginal law of the cumulative workloads.  The
    Hurst battery synthesizes one ``battery_sources``-source aggregate
    (1024 unit bins) for the Pareto law and a matched-mean exponential
    control and fits variance-time H to each.
    """
    return execute("superpose", {
        "replications": replications,
        "pareto_shape": pareto_shape,
        "battery_sources": battery_sources,
        "chunk": chunk,
    }, seed=seed, jobs=jobs)
