"""Fig. 4 and the Section IV multiplexing experiment.

Fig. 4 shows dot plots of packet arrivals from two simulated 2000 s TELNET
connections — one with Tcplib interarrivals, one with Exponential(1.1) —
at 200 s and 2000 s views; "the packets from the connection with Tcplib
interpacket times are dramatically more clustered" (paper counts: 1,926
Tcplib vs 2,204 exponential arrivals).

The accompanying text experiment multiplexes 100 always-on connections for
10 minutes: aggregate packets per 1 s bin had mean 92 / variance 240 with
Tcplib vs mean 92 / variance 97 with exponential.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.telnet import (
    ConnectionSpec,
    Scheme,
    clustering_score,
    connection_packet_times,
    multiplexed_telnet,
)
from repro.experiments.report import ascii_sparkline, format_table
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.binning import bin_counts


@dataclass(frozen=True)
class Fig4Result:
    tcplib_times: np.ndarray
    exp_times: np.ndarray
    duration: float
    mux_mean_tcplib: float
    mux_var_tcplib: float
    mux_mean_exp: float
    mux_var_exp: float

    @property
    def n_tcplib(self) -> int:
        return int(self.tcplib_times.size)

    @property
    def n_exp(self) -> int:
        return int(self.exp_times.size)

    @property
    def clustering_ratio(self) -> float:
        """Share of sub-200 ms gaps, Tcplib over exponential."""
        return clustering_score(self.tcplib_times, 0.2) / max(
            clustering_score(self.exp_times, 0.2), 1e-9
        )

    @property
    def variance_ratio(self) -> float:
        """Paper: 240 / 97 ~= 2.5 at matched mean ~92."""
        return self.mux_var_tcplib / self.mux_var_exp

    def rows(self) -> list[dict]:
        return [
            {
                "row": "Tcplib interarrivals",
                "packets_2000s": self.n_tcplib,
                "sub200ms_gap_share": clustering_score(self.tcplib_times, 0.2),
                "mux_mean_per_s": self.mux_mean_tcplib,
                "mux_var_per_s": self.mux_var_tcplib,
            },
            {
                "row": "Exponential(1.1s)",
                "packets_2000s": self.n_exp,
                "sub200ms_gap_share": clustering_score(self.exp_times, 0.2),
                "mux_mean_per_s": self.mux_mean_exp,
                "mux_var_per_s": self.mux_var_exp,
            },
        ]

    def render(self) -> str:
        lines = [format_table(self.rows(), title="Fig. 4 + multiplexing experiment")]
        tc = bin_counts(self.tcplib_times, 10.0, start=0.0, end=self.duration)
        ec = bin_counts(self.exp_times, 10.0, start=0.0, end=self.duration)
        lines.append("")
        lines.append(f"Tcplib arrivals / 10 s: {ascii_sparkline(tc)}")
        lines.append(f"Exp    arrivals / 10 s: {ascii_sparkline(ec)}")
        return "\n".join(lines)


def fig04(
    seed: SeedLike = 0,
    duration: float = 2000.0,
    target_packets: int = 2000,
    mux_connections: int = 100,
    mux_duration: float = 600.0,
) -> Fig4Result:
    """Regenerate Fig. 4's two connections and the multiplexing numbers."""
    rngs = spawn_rngs(seed, 4)
    # Generate enough gaps, then truncate at the 2000 s window (matching
    # the paper's equal-duration comparison).
    spec = ConnectionSpec(0.0, int(target_packets * 2.5))
    t_tcp = connection_packet_times(spec, Scheme.TCPLIB, seed=rngs[0])
    t_exp = connection_packet_times(spec, Scheme.EXP, seed=rngs[1])
    t_tcp = t_tcp[t_tcp < duration]
    t_exp = t_exp[t_exp < duration]

    mux_tcp = multiplexed_telnet(mux_connections, mux_duration, Scheme.TCPLIB,
                                 seed=rngs[2])
    mux_exp = multiplexed_telnet(mux_connections, mux_duration, Scheme.EXP,
                                 seed=rngs[3])
    return Fig4Result(
        tcplib_times=t_tcp,
        exp_times=t_exp,
        duration=duration,
        mux_mean_tcplib=mux_tcp.mean,
        mux_var_tcplib=mux_tcp.variance,
        mux_mean_exp=mux_exp.mean,
        mux_var_exp=mux_exp.variance,
    )
