"""Section VIII implication experiments + the Section VII-C-2 ablations.

The paper closes with consequences of long-range dependence that Poisson
models cannot express.  Each gets a quantitative experiment here:

* **priority starvation** — LRD high-priority traffic starves a low
  priority class for far longer stretches than Poisson traffic of the same
  mean rate;
* **admission control** — a recent-measurement admission policy is misled
  far more often by LRD background traffic;
* **TCP dynamics** — FTPDATA packet streams shaped by TCP congestion
  control are *not* constant-rate and not exponential, quantifying why the
  idealized M/G/inf model misses real FTP traffic;
* **M/G/k vs M/G/inf** — limiting capacity to k servers dents but does not
  eliminate the large-scale correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrivals.mg_infinity import pareto_mg_infinity
from repro.arrivals.mgk import simulate_mgk
from repro.distributions.pareto import Pareto
from repro.experiments.report import format_table
from repro.queueing.admission import AdmissionResult, admission_experiment
from repro.queueing.priority import PriorityResult, strict_priority_queue
from repro.selfsim.fgn import fgn_sample
from repro.stats.anderson_darling import anderson_darling_exponential
from repro.tcp.network import BottleneckSimulator, TransferSpec
from repro.utils.rng import SeedLike, as_rng, spawn_rngs


# ----------------------------------------------------------------------
# Priority starvation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StarvationResult:
    lrd: PriorityResult
    poisson: PriorityResult

    @property
    def starvation_ratio(self) -> float:
        return self.lrd.longest_low_starvation / max(
            self.poisson.longest_low_starvation, 1e-9
        )

    def rows(self) -> list[dict]:
        return [
            {
                "high_class": name,
                "low_mean_delay": r.mean_low_delay,
                "low_p99_delay": r.p99_low_delay,
                "longest_starvation": r.longest_low_starvation,
            }
            for name, r in (("LRD (fGn H=0.9)", self.lrd),
                            ("Poisson", self.poisson))
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section VIII: low-priority starvation under LRD vs "
                  "Poisson high-priority traffic",
        ) + f"\nstarvation ratio: {self.starvation_ratio:.1f}x"


def _modulated_arrivals(counts: np.ndarray, rng) -> np.ndarray:
    times = [i + rng.random(c) for i, c in enumerate(counts) if c]
    return np.sort(np.concatenate(times)) if times else np.zeros(0)


def priority_starvation(
    seed: SeedLike = 0,
    n_seconds: int = 4000,
    high_mean: float = 6.0,
    low_mean: float = 1.5,
    capacity: float = 10.0,
    hurst: float = 0.9,
) -> StarvationResult:
    """Run the matched-rate LRD-vs-Poisson priority experiment."""
    rng = as_rng(seed)
    lam = np.maximum(fgn_sample(n_seconds, hurst, seed=rng) * (high_mean * 2 / 3)
                     + high_mean, 0.0)
    high_lrd = _modulated_arrivals(rng.poisson(lam), rng)
    high_poi = _modulated_arrivals(rng.poisson(high_mean, n_seconds), rng)
    low = np.sort(rng.uniform(0, n_seconds, int(n_seconds * low_mean)))
    service = 1.0 / capacity
    return StarvationResult(
        lrd=strict_priority_queue(high_lrd, low, service),
        poisson=strict_priority_queue(high_poi, low, service),
    )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionComparison:
    lrd: AdmissionResult
    poisson: AdmissionResult

    @property
    def misled_ratio(self) -> float:
        return self.lrd.misled_rate / max(self.poisson.misled_rate, 1e-4)

    def rows(self) -> list[dict]:
        return [
            {
                "background": name,
                "admission_rate": r.admission_rate,
                "misled_rate": r.misled_rate,
            }
            for name, r in (("LRD (fGn H=0.9)", self.lrd),
                            ("Poisson", self.poisson))
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section VIII: measurement-based admission control misled "
                  "by LRD background traffic",
        )


def admission_comparison(
    seed: SeedLike = 0,
    n_bins: int = 6000,
    mean: float = 50.0,
    capacity: float = 70.0,
    flow_rate: float = 10.0,
    hurst: float = 0.9,
) -> AdmissionComparison:
    """Matched-mean admission-control comparison."""
    rng = as_rng(seed)
    lam = np.maximum(fgn_sample(n_bins, hurst, seed=rng) * 12.0 + mean, 0.0)
    lrd_counts = rng.poisson(lam).astype(float)
    poi_counts = rng.poisson(mean, n_bins).astype(float)
    return AdmissionComparison(
        lrd=admission_experiment(lrd_counts, capacity, flow_rate),
        poisson=admission_experiment(poi_counts, capacity, flow_rate),
    )


# ----------------------------------------------------------------------
# TCP dynamics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TcpDynamicsResult:
    throughputs: np.ndarray  # per-connection delivered rates
    rate_cv: float  # coefficient of variation across connections
    within_rate_swing: float  # max/min per-2s rate inside one transfer
    interarrivals_exponential: bool
    total_drops: int

    def rows(self) -> list[dict]:
        return [
            {
                "metric": "per-connection rate CV",
                "value": self.rate_cv,
                "mginf_assumption": "0 (constant equal rates)",
            },
            {
                "metric": "within-connection rate swing",
                "value": self.within_rate_swing,
                "mginf_assumption": "1 (constant rate)",
            },
            {
                "metric": "interarrivals exponential?",
                "value": self.interarrivals_exponential,
                "mginf_assumption": "n/a (paper: far from exponential)",
            },
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section VII-C-2: TCP congestion control vs the "
                  "constant-rate M/G/inf idealization",
        ) + f"\ntotal drops: {self.total_drops}"


def tcp_dynamics(
    seed: SeedLike = 0,
    n_connections: int = 8,
    bottleneck_rate: float = 400.0,
    buffer_packets: int = 8,
) -> TcpDynamicsResult:
    """Quantify how far TCP-shaped FTPDATA is from constant-rate."""
    rng = as_rng(seed)
    specs = [
        TransferSpec(
            start_time=float(rng.uniform(0, 5.0)),
            n_packets=int(rng.integers(2000, 6000)),
            rtt=float(rng.uniform(0.05, 0.3)),
            max_window=64.0,
        )
        for _ in range(n_connections)
    ]
    sim = BottleneckSimulator(rate=bottleneck_rate, buffer_packets=buffer_packets)
    res = sim.run(specs)
    thr = np.array([t.throughput for t in res.transfers])
    # within-connection rate variation of the largest transfer
    biggest = int(np.argmax([t.spec.n_packets for t in res.transfers]))
    times = np.asarray(res.transfers[biggest].departure_times)
    counts, _ = np.histogram(times, bins=np.arange(times.min(), times.max(), 2.0))
    mid = counts[1:-1]
    swing = float(mid.max() / max(mid.min(), 1)) if mid.size else 1.0
    gaps = np.diff(res.departure_times)
    ad = anderson_darling_exponential(gaps[: min(gaps.size, 4000)])
    return TcpDynamicsResult(
        throughputs=thr,
        rate_cv=float(thr.std() / thr.mean()),
        within_rate_swing=swing,
        interarrivals_exponential=ad.passed,
        total_drops=res.total_drops,
    )


# ----------------------------------------------------------------------
# M/G/k vs M/G/inf
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MGkComparison:
    rows_: list[dict]

    def rows(self) -> list[dict]:
        return self.rows_

    @property
    def correlations_survive(self) -> bool:
        """Lag-50 autocorrelation stays clearly positive at every k."""
        return all(r["acf_50"] > 0.02 for r in self.rows_)

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section VII-C-2: M/G/k vs M/G/inf — finite capacity dents "
                  "but does not erase large-scale correlations",
        )


def mgk_comparison(
    seed: SeedLike = 0,
    rho: float = 5.0,
    shape: float = 1.5,
    ks=(18, 30, 60),
    n_steps: int = 30000,
) -> MGkComparison:
    """Autocorrelation of busy-server counts across server counts k."""
    rows = []
    rngs = spawn_rngs(seed, len(ks) + 1)
    for k, rng in zip(ks, rngs):
        r = simulate_mgk(rho, Pareto(1.0, shape), k=k, n_steps=n_steps,
                         seed=rng, warmup=float(n_steps))
        x = r.in_service.astype(float)
        xc = x - x.mean()
        var = float(x.var())
        if var == 0.0:  # perpetually saturated: no correlation signal
            continue
        rows.append(
            {
                "k": k,
                "utilization": r.utilization,
                "acf_10": float(np.mean(xc[:-10] * xc[10:])) / var,
                "acf_50": float(np.mean(xc[:-50] * xc[50:])) / var,
            }
        )
    inf_model = pareto_mg_infinity(rho, 1.0, shape)
    x = inf_model.simulate(n_steps, seed=rngs[-1],
                           warmup=float(n_steps)).astype(float)
    xc = x - x.mean()
    var = float(x.var())
    rows.append(
        {
            "k": "inf",
            "utilization": float("nan"),
            "acf_10": float(np.mean(xc[:-10] * xc[10:])) / var,
            "acf_50": float(np.mean(xc[:-50] * xc[50:])) / var,
        }
    )
    return MGkComparison(rows_=rows)


# ----------------------------------------------------------------------
# UDP competition (the paper's open question)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UdpCompetitionResult:
    """FTP-vs-MBone competition outcomes (Section VII-C-2)."""

    tcp_throughput_alone: float
    tcp_throughput_shared: float
    udp_offered: int
    udp_delivered: int
    tcp_drops_shared: int

    @property
    def tcp_yield_fraction(self) -> float:
        """How much of its solo throughput TCP gave up."""
        return 1.0 - self.tcp_throughput_shared / self.tcp_throughput_alone

    @property
    def udp_delivery_ratio(self) -> float:
        return self.udp_delivered / self.udp_offered if self.udp_offered else 1.0

    def rows(self) -> list[dict]:
        return [
            {"flow": "TCP alone", "throughput": self.tcp_throughput_alone,
             "delivery": 1.0},
            {"flow": "TCP vs UDP", "throughput": self.tcp_throughput_shared,
             "delivery": float("nan")},
            {"flow": "UDP (unresponsive)",
             "throughput": float("nan"),
             "delivery": self.udp_delivery_ratio},
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            title="Section VII-C-2: TCP yields to unresponsive UDP "
                  "cross-traffic",
        ) + (
            f"\nTCP gave up {100 * self.tcp_yield_fraction:.0f}% of its solo "
            f"throughput; UDP delivered {100 * self.udp_delivery_ratio:.0f}% "
            f"of its offered load"
        )


def udp_competition(
    seed: SeedLike = 0,
    bottleneck_rate: float = 200.0,
    buffer_packets: int = 10,
    udp_fraction: float = 0.5,
    n_packets: int = 5000,
) -> UdpCompetitionResult:
    """Run one FTP transfer with and without MBone-style UDP competition.

    "Only the FTP traffic will adjust to fit the available bandwidth.  The
    UDP traffic will continue unimpeded."  The UDP stream offers
    ``udp_fraction`` of the bottleneck rate for the whole horizon and never
    backs off.
    """
    from repro.arrivals.poisson import homogeneous_poisson

    sim = BottleneckSimulator(rate=bottleneck_rate,
                              buffer_packets=buffer_packets)
    spec = TransferSpec(0.0, n_packets, rtt=0.1, max_window=64)
    alone = sim.run([spec])
    solo_time = alone.transfers[0].completion_time or 1.0
    horizon = 5.0 * solo_time  # generous: shared run is slower
    udp = homogeneous_poisson(udp_fraction * bottleneck_rate, horizon,
                              seed=seed)
    shared = sim.run([spec], cross_traffic=udp)
    completion = shared.transfers[0].completion_time or horizon
    offered = int(np.sum(udp <= completion))
    delivered = int(np.sum(shared.cross_traffic_times <= completion))
    return UdpCompetitionResult(
        tcp_throughput_alone=alone.transfers[0].throughput,
        tcp_throughput_shared=shared.transfers[0].throughput,
        udp_offered=offered,
        udp_delivered=delivered,
        tcp_drops_shared=shared.transfers[0].packets_dropped,
    )
