"""Experiment harness: one module per table/figure of the paper.

Each experiment function returns a structured result with a ``render()``
method that prints the same rows/series the paper's table or figure
reports.  The per-experiment index lives in DESIGN.md; paper-vs-measured
values are recorded in EXPERIMENTS.md.
"""

from repro.experiments.appendix_b import appendix_b
from repro.experiments.appendices import (
    appendix_c,
    appendix_d,
    appendix_e,
    delay_experiment,
)
from repro.experiments.fig01 import fig01
from repro.experiments.implications import (
    admission_comparison,
    mgk_comparison,
    priority_starvation,
    tcp_dynamics,
    udp_competition,
)
from repro.experiments.fig02 import fig02
from repro.experiments.flowsim_exp import flowsim
from repro.experiments.monitor_exp import monitor
from repro.experiments.sessions import weathermap, x11_sessions
from repro.experiments.shaping_exp import shaping
from repro.experiments.superpose_exp import superpose
from repro.experiments.telnet_scales import telnet_scales
from repro.experiments.fig03 import fig03
from repro.experiments.fig04 import fig04
from repro.experiments.fig05 import fig05, fig06
from repro.experiments.fig07 import fig07
from repro.experiments.fig08 import fig08
from repro.experiments.fig09 import fig09
from repro.experiments.fig10 import fig10, fig11
from repro.experiments.fig12 import fig12, fig13
from repro.experiments.fig14 import fig14, fig15, scale_comparison
from repro.experiments.tables import table1, table2

#: Registry mapping experiment ids to their entry points.
REGISTRY = {
    "table1": table1,
    "table2": table2,
    "fig01": fig01,
    "fig02": fig02,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "scale_comparison": scale_comparison,
    "admission": admission_comparison,
    "appendix_b": appendix_b,
    "appendix_c": appendix_c,
    "appendix_d": appendix_d,
    "appendix_e": appendix_e,
    "delay": delay_experiment,
    "flowsim": flowsim,
    "mgk": mgk_comparison,
    "monitor": monitor,
    "priority": priority_starvation,
    "shaping": shaping,
    "superpose": superpose,
    "tcp_dynamics": tcp_dynamics,
    "telnet_scales": telnet_scales,
    "udp_competition": udp_competition,
    "weathermap": weathermap,
    "x11_sessions": x11_sessions,
}

def registry_modules() -> dict[str, str]:
    """Experiment name -> defining module (``repro.experiments.figNN``).

    The engine's result cache digests each experiment's module plus its
    transitive import closure; centralizing the lookup here keeps the cache
    in lockstep with however the registry is populated.
    """
    return {name: fn.__module__ for name, fn in REGISTRY.items()}


__all__ = ["REGISTRY", "registry_modules"] + sorted(REGISTRY)
