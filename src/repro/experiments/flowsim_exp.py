"""Flow-level simulation: heavy tails survive multi-hop networks.

The paper's self-similarity is a property of the *workload*, not of any
single link: heavy-tailed transfer sizes keep the Hurst parameter
elevated on every link the flows traverse, while an exponential workload
with the same arrival rate and mean size stays near H = 1/2.  This
experiment runs the :mod:`repro.flowsim` scenario twice — ftp (Pareto
burst bytes, Section V) and its matched exponential control — over the
same multi-hop topology, and reports the per-link variance-time H.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.flowsim.scenario import FlowScenario, ScenarioResult
from repro.scenario import execute
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FlowsimComparisonResult:
    ftp: ScenarioResult
    control: ScenarioResult

    def rows(self) -> list[dict]:
        rows = []
        for name, out in (("ftp", self.ftp), ("exponential", self.control)):
            s = out.summary()
            hs = list(out.link_hurst.values())
            rows.append({
                "workload": name,
                "n_flows": s["n_flows"],
                "n_links_measured": len(hs),
                "hurst_mean": round(out.mean_hurst, 3),
                "hurst_min": round(min(hs), 3),
                "hurst_max": round(max(hs), 3),
            })
        return rows

    @property
    def heavy_tail_elevated(self) -> bool:
        """Pareto flows keep H well above 1/2 on every traversed link."""
        return min(self.ftp.link_hurst.values()) > 0.6

    @property
    def control_near_half(self) -> bool:
        return abs(self.control.mean_hurst - 0.5) < 0.1

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Flow-level simulation: per-link H, ftp vs exponential",
        )
        return "\n\n".join([table, self.ftp.render(), self.control.render()])


def run_config(cfg: dict, seed: SeedLike = 0, jobs: int = 1):
    """The flowsim family runner: one resolved ``[flowsim]`` section.

    Runs every requested workload over the same topology with the same
    seed (each run spawns its streams fresh, so order is immaterial) and
    wraps the ftp/exponential pair in the comparison result the registry
    has always reported.  A single workload returns its bare
    :class:`~repro.flowsim.scenario.ScenarioResult`.
    """
    workloads = tuple(cfg.get("workloads", ("ftp", "exponential")))
    outs = {}
    for workload in workloads:
        scenario = FlowScenario(
            topology=cfg.get("topology", "line"),
            n_nodes=cfg.get("n_nodes", 10),
            duration=cfg.get("duration", 3600.0),
            sessions_per_hour=cfg.get("sessions_per_hour", 4000.0),
            workload=workload,
            model=cfg.get("model", "msmo97"),
            discipline=cfg.get("discipline", "fair"),
            utilization=cfg.get("utilization", 0.4),
            bin_width=cfg.get("bin_width", 1.0),
        )
        outs[workload] = scenario.run(seed=seed, jobs=jobs)
    if set(workloads) == {"ftp", "exponential"}:
        return FlowsimComparisonResult(ftp=outs["ftp"],
                                       control=outs["exponential"])
    if len(outs) == 1:
        return next(iter(outs.values()))
    raise ValueError(f"unsupported workload combination {workloads!r}")


def flowsim(
    seed: SeedLike = 0,
    topology: str = "line",
    n_nodes: int = 10,
    duration: float = 3600.0,
    sessions_per_hour: float = 4000.0,
    model: str = "msmo97",
    utilization: float = 0.4,
    jobs: int = 1,
) -> FlowsimComparisonResult:
    """Run the ftp scenario and its exponential control, same seed."""
    return execute("flowsim", {
        "topology": topology,
        "n_nodes": n_nodes,
        "duration": duration,
        "sessions_per_hour": sessions_per_hour,
        "model": model,
        "utilization": utilization,
    }, seed=seed, jobs=jobs)
