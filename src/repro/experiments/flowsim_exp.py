"""Flow-level simulation: heavy tails survive multi-hop networks.

The paper's self-similarity is a property of the *workload*, not of any
single link: heavy-tailed transfer sizes keep the Hurst parameter
elevated on every link the flows traverse, while an exponential workload
with the same arrival rate and mean size stays near H = 1/2.  This
experiment runs the :mod:`repro.flowsim` scenario twice — ftp (Pareto
burst bytes, Section V) and its matched exponential control — over the
same multi-hop topology, and reports the per-link variance-time H.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.flowsim.scenario import FlowScenario, ScenarioResult
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FlowsimComparisonResult:
    ftp: ScenarioResult
    control: ScenarioResult

    def rows(self) -> list[dict]:
        rows = []
        for name, out in (("ftp", self.ftp), ("exponential", self.control)):
            s = out.summary()
            hs = list(out.link_hurst.values())
            rows.append({
                "workload": name,
                "n_flows": s["n_flows"],
                "n_links_measured": len(hs),
                "hurst_mean": round(out.mean_hurst, 3),
                "hurst_min": round(min(hs), 3),
                "hurst_max": round(max(hs), 3),
            })
        return rows

    @property
    def heavy_tail_elevated(self) -> bool:
        """Pareto flows keep H well above 1/2 on every traversed link."""
        return min(self.ftp.link_hurst.values()) > 0.6

    @property
    def control_near_half(self) -> bool:
        return abs(self.control.mean_hurst - 0.5) < 0.1

    def render(self) -> str:
        table = format_table(
            self.rows(),
            title="Flow-level simulation: per-link H, ftp vs exponential",
        )
        return "\n\n".join([table, self.ftp.render(), self.control.render()])


def flowsim(
    seed: SeedLike = 0,
    topology: str = "line",
    n_nodes: int = 10,
    duration: float = 3600.0,
    sessions_per_hour: float = 4000.0,
    model: str = "msmo97",
    utilization: float = 0.4,
    jobs: int = 1,
) -> FlowsimComparisonResult:
    """Run the ftp scenario and its exponential control, same seed."""
    base = FlowScenario(
        topology=topology,
        n_nodes=n_nodes,
        duration=duration,
        sessions_per_hour=sessions_per_hour,
        model=model,
        utilization=utilization,
    )
    ftp = base.run(seed=seed, jobs=jobs)
    control = FlowScenario(
        **{**base.__dict__, "workload": "exponential"}
    ).run(seed=seed, jobs=jobs)
    return FlowsimComparisonResult(ftp=ftp, control=control)
