"""TCP Reno-style congestion control state machine.

Section VII-C-2: "the timing of FTPDATA packets transmitted on the network
is intimately related to the dynamics of TCP's congestion control
algorithms ... TCP's congestion control algorithms increase the TCP
congestion window to probe for additional bandwidth, and reduce the
congestion window again in response to congestion (packet drops)", and
Section VII-D: realistic source-level simulation requires "a direct
implementation of TCP's congestion control algorithms."

This module implements the sender-side window dynamics the paper names:

* slow start — cwnd += 1 per ACK until ssthresh;
* congestion avoidance — cwnd += 1/cwnd per ACK (one segment per RTT);
* multiplicative decrease — on a loss event, ssthresh = cwnd/2 and
  cwnd = ssthresh (fast-recovery-style halving, one reaction per window);
* a receiver-window cap.

The state machine is transport-only; packet timing comes from the network
simulator in :mod:`repro.tcp.network`, which supplies the ACK clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require_positive


@dataclass
class RenoSender:
    """Congestion-control state of one bulk-transfer TCP sender.

    Parameters
    ----------
    total_packets:
        Transfer size in segments; the connection closes after the last
        segment is cumulatively acknowledged.
    max_window:
        Receiver-advertised window cap (segments).
    initial_ssthresh:
        Initial slow-start threshold (segments).
    """

    total_packets: int
    max_window: float = 32.0
    initial_ssthresh: float = 16.0

    cwnd: float = field(default=1.0, init=False)
    ssthresh: float = field(init=False)
    next_seq: int = field(default=0, init=False)  # next segment to send
    highest_acked: int = field(default=-1, init=False)
    acked: set[int] = field(default_factory=set, init=False)
    in_flight: int = field(default=0, init=False)
    #: Sequence number that ends the current loss-recovery episode; further
    #: losses within the same window do not halve cwnd again.
    recovery_until: int = field(default=-1, init=False)
    retransmit_queue: list[int] = field(default_factory=list, init=False)

    def __post_init__(self):
        if self.total_packets < 1:
            raise ValueError("total_packets must be >= 1")
        require_positive(self.max_window, "max_window")
        self.ssthresh = float(self.initial_ssthresh)

    # ------------------------------------------------------------------
    @property
    def window(self) -> float:
        """Effective window: min(cwnd, receiver window)."""
        return min(self.cwnd, self.max_window)

    @property
    def done(self) -> bool:
        """Complete once every distinct segment has been acknowledged
        (retransmitted segments may be acked out of order)."""
        return len(self.acked) >= self.total_packets

    def can_send(self) -> bool:
        """May a new (or queued retransmit) segment enter the network?"""
        if self.done:
            return False
        has_data = bool(self.retransmit_queue) or self.next_seq < self.total_packets
        return has_data and self.in_flight < int(self.window)

    # ------------------------------------------------------------------
    def next_segment(self) -> int:
        """Pop the segment number to transmit next (retransmits first)."""
        if not self.can_send():
            raise RuntimeError("window closed or transfer complete")
        self.in_flight += 1
        if self.retransmit_queue:
            return self.retransmit_queue.pop(0)
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def on_ack(self, seq: int) -> None:
        """Process a (cumulative-style) ACK for segment ``seq``."""
        self.in_flight = max(0, self.in_flight - 1)
        self.acked.add(seq)
        if seq > self.highest_acked:
            self.highest_acked = seq
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start: exponential per RTT
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance: linear
        self.cwnd = min(self.cwnd, self.max_window)

    def on_loss(self, seq: int) -> None:
        """React to a fast-retransmit-detected segment loss (Reno halving).

        Only the first loss per window triggers multiplicative decrease —
        subsequent drops from the same congestion episode queue their
        retransmits without further halving.
        """
        self.in_flight = max(0, self.in_flight - 1)
        self.retransmit_queue.append(seq)
        if seq > self.recovery_until:
            self.ssthresh = max(self.cwnd / 2.0, 1.0)
            self.cwnd = self.ssthresh
            self.recovery_until = self.next_seq

    def on_timeout(self, seq: int) -> None:
        """React to a retransmission timeout.

        Fast retransmit needs enough duplicate ACKs to fire; with a tiny
        window the sender instead waits out the RTO and restarts from
        slow start: ssthresh = cwnd/2, cwnd = 1.  Section VI notes the
        resulting "1-2 s spacings that can occur internal to a single
        FTPDATA connection due to TCP retransmission timeouts."
        """
        self.in_flight = max(0, self.in_flight - 1)
        self.retransmit_queue.append(seq)
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.recovery_until = self.next_seq
