"""Event-driven network simulation: TCP senders over a shared bottleneck.

The topology is the canonical one for studying the effects Section VII
describes: N senders, each with its own two-way propagation delay, feeding
one drop-tail bottleneck link.  The simulator produces the *packet
departure timestamps at the bottleneck output* — what a link tracepoint
like the LBL gateway would record — so the resulting processes can be fed
straight into the Appendix A tests and the self-similarity toolkit.

Dynamics reproduced (and asserted in tests):

* self-clocking: "each packet is sent only after the TCP source receives an
  acknowledgment for an earlier packet", giving back-to-back output spacing
  of one service time during busy periods;
* window growth/halving sawtooth ("long-term oscillations");
* non-constant per-connection rate, across and within connections — the
  reason multiplexed FTP traffic departs from the constant-rate M/G/inf
  idealization.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.tcp.connection import RenoSender
from repro.utils.validation import require_nonnegative, require_positive

# Event kinds, ordered for deterministic tie-breaking.
_ARRIVE, _DEPART, _ACK = 0, 1, 2


@dataclass(frozen=True)
class TransferSpec:
    """One bulk transfer: start time, size, path delay, window cap, RTO."""

    start_time: float
    n_packets: int
    rtt: float = 0.1  # two-way propagation (excluding queueing), seconds
    max_window: float = 32.0
    rto: float = 1.0  # retransmission timeout, seconds

    def __post_init__(self):
        require_nonnegative(self.start_time, "start_time")
        require_positive(self.rtt, "rtt")
        require_positive(self.rto, "rto")
        if self.n_packets < 1:
            raise ValueError("n_packets must be >= 1")


@dataclass
class TransferResult:
    """Per-connection outcome."""

    spec: TransferSpec
    departure_times: list[float] = field(default_factory=list)
    completion_time: float | None = None
    packets_dropped: int = 0
    timeouts: int = 0
    cwnd_trace: list[tuple[float, float]] = field(default_factory=list)

    @property
    def packets_delivered(self) -> int:
        """Packets that departed the bottleneck (retransmissions included).

        For a completed transfer this is >= ``spec.n_packets``; for a
        horizon-truncated run it counts the partial progress that
        :attr:`throughput` previously discarded.
        """
        return len(self.departure_times)

    @property
    def throughput(self) -> float:
        """Delivered packets per second.

        Completed transfers use the paper-faithful definition: all
        ``n_packets`` over start-to-completion.  Horizon-truncated
        transfers (``completion_time is None``) fall back to delivered
        packets over the observed span (start to last departure), so
        partial progress is not reported as 0.0.
        """
        if not self.departure_times:
            return 0.0
        if self.completion_time is None:
            span = max(self.departure_times) - self.spec.start_time
            return self.packets_delivered / span if span > 0 else float("inf")
        span = self.completion_time - self.spec.start_time
        return self.spec.n_packets / span if span > 0 else float("inf")


@dataclass(frozen=True)
class SimulationResult:
    """Everything observable at the bottleneck."""

    transfers: list[TransferResult]
    departure_times: np.ndarray  # merged, sorted link-output timestamps
    departure_conn: np.ndarray  # conn index per departure (-1 = cross)
    total_drops: int
    bottleneck_rate: float
    cross_traffic_drops: int = 0

    def connection_times(self, index: int) -> np.ndarray:
        return self.departure_times[self.departure_conn == index]

    @property
    def cross_traffic_times(self) -> np.ndarray:
        """Departures of the unresponsive (UDP) cross-traffic, if any."""
        return self.connection_times(-1)


class BottleneckSimulator:
    """Drop-tail bottleneck shared by Reno senders.

    Parameters
    ----------
    rate:
        Bottleneck service rate in packets/second.
    buffer_packets:
        Queue capacity (excluding the packet in service).  Arrivals to a
        full queue are dropped; the sender learns of the loss one RTT later
        (the ACK-clock detection delay) and reacts per Reno.
    """

    def __init__(self, rate: float, buffer_packets: int = 32):
        require_positive(rate, "rate")
        if buffer_packets < 1:
            raise ValueError("buffer_packets must be >= 1")
        self.rate = rate
        self.buffer = buffer_packets
        self.service = 1.0 / rate

    # ------------------------------------------------------------------
    def run(
        self,
        specs: list[TransferSpec],
        horizon: float | None = None,
        cross_traffic: np.ndarray | None = None,
    ) -> SimulationResult:
        """Simulate all transfers to completion (or ``horizon``).

        ``cross_traffic`` injects unresponsive (UDP/MBone-style) packet
        arrivals into the same drop-tail queue: they consume capacity and
        buffer space but never back off — Section VII-C-2's competition
        scenario ("only the FTP traffic will adjust to fit the available
        bandwidth.  The UDP traffic will continue unimpeded").  Their
        departures are reported under connection index -1.
        """
        if not specs:
            raise ValueError("no transfers to simulate")
        senders = [RenoSender(s.n_packets, max_window=s.max_window)
                   for s in specs]
        results = [TransferResult(spec=s) for s in specs]
        queue_len = 0
        busy_until = 0.0
        total_drops = 0
        merged_t: list[float] = []
        merged_c: list[int] = []

        counter = itertools.count()  # FIFO tie-break for simultaneous events
        events: list[tuple[float, int, int, tuple]] = []

        def push(t: float, kind: int, payload: tuple) -> None:
            heapq.heappush(events, (t, kind, next(counter), payload))

        def try_send(conn: int, now: float) -> None:
            """Inject as many segments as the window currently allows."""
            sender = senders[conn]
            while sender.can_send():
                seq = sender.next_segment()
                # one-way propagation to the bottleneck: rtt/2 is split
                # around the link; we lump sender->link into rtt/2.
                push(now + specs[conn].rtt / 2.0, _ARRIVE, (conn, seq))

        cross_drops = 0
        if cross_traffic is not None:
            for t in np.sort(np.asarray(cross_traffic, dtype=float)):
                push(float(t), _ARRIVE, (-1, -1))

        for i, s in enumerate(specs):
            push(s.start_time, _ACK, (i, -1))  # kick-off pseudo-ack

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if horizon is not None and now > horizon:
                break
            conn, seq = payload
            if conn < 0:  # unresponsive cross-traffic packet
                if kind == _ARRIVE:
                    if queue_len < self.buffer:
                        queue_len += 1
                        start = max(now, busy_until)
                        busy_until = start + self.service
                        push(busy_until, _DEPART, (conn, seq))
                    else:
                        cross_drops += 1
                elif kind == _DEPART:
                    queue_len -= 1
                    merged_t.append(now)
                    merged_c.append(-1)
                continue
            sender = senders[conn]

            if kind == _ACK:
                if isinstance(seq, _Loss):
                    if sender.window < 4.0:
                        # too few duplicate ACKs for fast retransmit: the
                        # sender sits through a full RTO before resuming
                        # from slow start (Section VI's 1-2 s internal gaps)
                        sender.on_timeout(int(seq))
                        results[conn].timeouts += 1
                        results[conn].cwnd_trace.append((now, sender.cwnd))
                        push(now + specs[conn].rto, _ACK, (conn, -1))
                        continue
                    sender.on_loss(int(seq))
                    results[conn].cwnd_trace.append((now, sender.cwnd))
                elif seq >= 0:
                    sender.on_ack(seq)
                    results[conn].cwnd_trace.append((now, sender.cwnd))
                if sender.done and results[conn].completion_time is None:
                    results[conn].completion_time = now
                    continue
                try_send(conn, now)

            elif kind == _ARRIVE:
                nonfull = queue_len < self.buffer
                if nonfull:
                    queue_len += 1
                    start = max(now, busy_until)
                    busy_until = start + self.service
                    push(busy_until, _DEPART, (conn, seq))
                else:
                    total_drops += 1
                    results[conn].packets_dropped += 1
                    # loss detected one RTT later via the duplicate-ACK clock
                    push(now + specs[conn].rtt, _ACK, (conn, _Loss(seq)))

            elif kind == _DEPART:
                queue_len -= 1
                results[conn].departure_times.append(now)
                merged_t.append(now)
                merged_c.append(conn)
                # ACK returns after the reverse path: rtt/2
                push(now + specs[conn].rtt / 2.0, _ACK, (conn, seq))

        order = np.argsort(merged_t, kind="stable")
        return SimulationResult(
            transfers=results,
            departure_times=np.asarray(merged_t)[order],
            departure_conn=np.asarray(merged_c, dtype=np.int64)[order],
            total_drops=total_drops,
            cross_traffic_drops=cross_drops,
            bottleneck_rate=self.rate,
        )


class _Loss(int):
    """Marker wrapping a lost segment's number inside an ACK-kind event."""

    def __new__(cls, seq: int):
        return super().__new__(cls, seq)
