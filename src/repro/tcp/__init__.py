"""TCP substrate: Reno congestion control over a shared drop-tail bottleneck.

Built for Section VII-C-2's discussion — FTPDATA packet timing "is
intimately related to the dynamics of TCP's congestion control algorithms"
— and Section VII-D's requirement that source-level simulation directly
implement those algorithms.
"""

from repro.tcp.connection import RenoSender
from repro.tcp.network import (
    BottleneckSimulator,
    SimulationResult,
    TransferResult,
    TransferSpec,
)

__all__ = [
    "BottleneckSimulator",
    "RenoSender",
    "SimulationResult",
    "TransferResult",
    "TransferSpec",
]
