"""Declarative scenario documents: schema, strict resolver, TOML round trip.

A scenario *spec* is one plain document (a nested dict, loadable from TOML)
that names everything a run needs: the source workload, the network stage,
optional conditioning, and the validation battery.  The per-figure python
modules wire the same pipeline by hand; the spec makes the composition
matrix — sources × topology × conditioning × battery — data instead of
code, so a new cell is a new document, not a new module.

Three contracts, each load-bearing:

* **Strict resolution.**  :func:`resolve` normalizes a raw document against
  the schema: every default is filled in, every value is type-checked, and
  any unknown section or key raises :class:`SpecError` naming the full key
  path (``flowsim.n_node``) with a did-you-mean suggestion.  Silent typos
  are how "reproductions" drift.
* **Round-trip identity.**  ``resolve(parse(dump(resolve(doc))))`` is a
  fixed point: a resolved document dumps to TOML and re-loads to exactly
  itself.  The dump is canonical (schema ordering), so the document's
  content digest (:func:`spec_digest`) is independent of the key order the
  author typed.
* **Seed derivation.**  One integer seed in the document; per-stage RNG
  streams come from the same :func:`repro.utils.rng.spawn_rngs` tree the
  rest of the codebase uses (:func:`stage_rngs`), so stages are
  statistically independent yet fully determined by the document.

Parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls back
to a bundled parser for the TOML subset the schema emits — no third-party
dependency either way.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.utils.rng import spawn_rngs

__all__ = [
    "KINDS",
    "SCHEMA",
    "KIND_SECTIONS",
    "STAGES",
    "SpecError",
    "Field",
    "resolve",
    "resolve_section",
    "load_spec",
    "loads_spec",
    "dump_spec",
    "canonical_json",
    "spec_digest",
    "stage_rngs",
]

#: Scenario kinds: four dedicated subsystem families, the generic registry
#: bridge, and the composite source → condition → validate pipeline.
KINDS = ("experiment", "flowsim", "shaping", "monitor", "superpose", "synth")

#: Stage order for per-stage seed derivation (:func:`stage_rngs`).  Fixed
#: and append-only: inserting a stage would reshuffle every later stream.
STAGES = ("source", "network", "condition", "validate")


class SpecError(ValueError):
    """A document failed strict resolution.

    ``path`` is the dotted location of the offending key or section
    (``"flowsim.n_node"``), empty for document-level problems.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


@dataclass(frozen=True)
class Field:
    """One schema slot: its default, type tag, and admissible values.

    ``type`` is one of ``str | int | float | bool | floats | strs | table``
    (``floats``/``strs`` are homogeneous lists; ``table`` is a free-form
    sub-dict of scalars, used only for ``experiment.params``).  ``None``
    defaults mark optional values that are omitted from dumps.
    """

    default: object
    type: str
    choices: tuple | None = None
    required: bool = False


#: The document schema, section by section.  ``scenario`` is universal;
#: each kind owns the sections :data:`KIND_SECTIONS` grants it.
SCHEMA: dict[str, dict[str, Field]] = {
    "scenario": {
        "name": Field(None, "str", required=True),
        "kind": Field(None, "str", choices=KINDS, required=True),
        "seed": Field(0, "int"),
        "description": Field("", "str"),
    },
    # kind = "experiment": any registry entry, parameterized.
    "experiment": {
        "name": Field(None, "str", required=True),
        "params": Field({}, "table"),
    },
    # kind = "flowsim": source workload(s) routed over a topology.
    "flowsim": {
        "topology": Field("line", "str",
                          choices=("line", "star", "dumbbell")),
        "n_nodes": Field(10, "int"),
        "duration": Field(3600.0, "float"),
        "sessions_per_hour": Field(4000.0, "float"),
        "workloads": Field(["ftp", "exponential"], "strs",
                           choices=("ftp", "exponential")),
        "model": Field("msmo97", "str", choices=("msmo97", "csa00")),
        "discipline": Field("fair", "str", choices=("fair", "fifo")),
        "utilization": Field(0.4, "float"),
        "bin_width": Field(1.0, "float"),
    },
    # kind = "shaping": the synthesize → police → detect closed loop.
    "shaping": {
        "model": Field("ftp", "str"),
        "n_packets": Field(60_000, "int"),
        "source_rate": Field(240.0, "float"),
        "rate_factors": Field([0.3, 0.5, 0.8], "floats"),
        "burst_seconds": Field([0.25, 1.0, 4.0], "floats"),
        "shaper_rate_factors": Field([1.0, 1.5, 3.0], "floats"),
        "hurst_bin_s": Field(0.01, "float"),
        "hurst_split_level": Field(8, "int"),
    },
    # kind = "monitor": the five-stream LRD-vs-drift battery.
    "monitor": {
        "duration": Field(400.0, "float"),
        "rate": Field(50.0, "float"),
        "window": Field(60.0, "float"),
    },
    # kind = "superpose": the Gaussian-vs-stable phase diagram.
    "superpose": {
        "replications": Field(192, "int"),
        "pareto_shape": Field(1.2, "float"),
        "battery_sources": Field(50_000, "int"),
        "chunk": Field(8192, "int"),
    },
    # kind = "synth": source → optional conditioning → sharded battery.
    "source": {
        "model": Field("ftp", "str",
                       choices=("fulltel", "ftp", "poisson", "pareto",
                                "mix")),
        "n_packets": Field(20_000, "int"),
        "rate": Field(None, "float"),
    },
    "condition": {
        "element": Field("none", "str",
                         choices=("none", "policer", "shaper")),
        "rate_factor": Field(0.5, "float"),
        "burst_seconds": Field(1.0, "float"),
    },
    "validate": {
        "bin_width": Field(0.01, "float"),
        "tail_fraction": Field(0.03, "float"),
        "significance": Field(0.05, "float"),
        "min_level": Field(10, "int"),
        "poisson_interval": Field(600.0, "float"),
        "drift_check": Field(True, "bool"),
    },
}

#: Sections each kind may (and, resolved, always does) carry beyond
#: ``scenario``.
KIND_SECTIONS: dict[str, tuple[str, ...]] = {
    "experiment": ("experiment",),
    "flowsim": ("flowsim",),
    "shaping": ("shaping",),
    "monitor": ("monitor",),
    "superpose": ("superpose",),
    "synth": ("source", "condition", "validate"),
}


def _suggest(name: str, options) -> str:
    close = difflib.get_close_matches(name, list(options), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _check_scalar(value, field: Field, path: str):
    """Type-check/coerce one scalar against a scalar field type."""
    t = field.type
    if t == "str":
        if not isinstance(value, str):
            raise SpecError(path, f"expected a string, got {value!r}")
    elif t == "bool":
        if not isinstance(value, bool):
            raise SpecError(path, f"expected true/false, got {value!r}")
    elif t == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(path, f"expected an integer, got {value!r}")
    elif t == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(path, f"expected a number, got {value!r}")
        value = float(value)
    else:  # pragma: no cover - schema authoring error
        raise SpecError(path, f"unhandled field type {t!r}")
    if field.choices is not None and value not in field.choices:
        raise SpecError(
            path,
            f"must be one of {list(field.choices)}, got {value!r}"
            f"{_suggest(str(value), map(str, field.choices))}",
        )
    return value


def _check_value(value, field: Field, path: str):
    if value is None and field.default is None and not field.required:
        return None  # nullable field restated at its default — idempotent
    if field.type in ("floats", "strs"):
        if not isinstance(value, (list, tuple)):
            raise SpecError(path, f"expected a list, got {value!r}")
        elem = Field(None, "float" if field.type == "floats" else "str",
                     choices=field.choices)
        return [_check_scalar(v, elem, f"{path}[{i}]")
                for i, v in enumerate(value)]
    if field.type == "table":
        if not isinstance(value, dict):
            raise SpecError(path, f"expected a table, got {value!r}")
        out = {}
        for key, v in value.items():
            if not isinstance(key, str):
                raise SpecError(path, f"table keys must be strings, "
                                      f"got {key!r}")
            kp = f"{path}.{key}"
            if isinstance(v, (list, tuple)):
                out[key] = [_check_table_scalar(x, f"{kp}[{i}]")
                            for i, x in enumerate(v)]
            else:
                out[key] = _check_table_scalar(v, kp)
        return out
    return _check_scalar(value, field, path)


def _check_table_scalar(value, path: str):
    if not isinstance(value, (str, bool, int, float)):
        raise SpecError(
            path, f"params values must be scalars or lists of scalars, "
                  f"got {value!r}")
    return value


def _resolve_section(name: str, raw: dict, path: str) -> dict:
    schema = SCHEMA[name]
    if not isinstance(raw, dict):
        raise SpecError(path, f"expected a table, got {raw!r}")
    for key in raw:
        if key not in schema:
            raise SpecError(f"{path}.{key}",
                            f"unknown key{_suggest(key, schema)}")
    out = {}
    for key, field in schema.items():
        if key in raw:
            out[key] = _check_value(raw[key], field, f"{path}.{key}")
        elif field.required:
            raise SpecError(f"{path}.{key}", "required key is missing")
        else:
            default = field.default
            out[key] = (list(default) if isinstance(default, list)
                        else dict(default) if isinstance(default, dict)
                        else default)
    return out


def _validate_experiment(section: dict) -> None:
    """Check ``experiment.name``/``params`` against the live registry."""
    import inspect

    from repro.experiments import REGISTRY

    name = section["name"]
    if name not in REGISTRY:
        raise SpecError(
            "experiment.name",
            f"unknown experiment {name!r}{_suggest(name, REGISTRY)}",
        )
    params = inspect.signature(REGISTRY[name]).parameters
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    if accepts_kwargs:
        return
    for key in section["params"]:
        if key not in params or key == "seed":
            raise SpecError(
                f"experiment.params.{key}",
                f"{name}() accepts no such parameter"
                f"{_suggest(key, [p for p in params if p != 'seed'])}",
            )


def resolve(doc: dict) -> dict:
    """Normalize a raw document: fill defaults, reject unknowns, order keys.

    Returns the canonical nested-dict form (idempotent: resolving a
    resolved document returns an equal document).  Raises
    :class:`SpecError` with the offending key path on any violation.
    """
    if not isinstance(doc, dict):
        raise SpecError("", f"spec must be a table, got {doc!r}")
    if "scenario" not in doc:
        raise SpecError("scenario", "required section is missing")
    scenario = _resolve_section("scenario", doc["scenario"], "scenario")
    if not scenario["name"]:
        raise SpecError("scenario.name", "must be a non-empty string")
    kind = scenario["kind"]
    allowed = KIND_SECTIONS[kind]
    for section in doc:
        if section == "scenario" or section in allowed:
            continue
        if section in SCHEMA:
            owner = next(
                (k for k, secs in KIND_SECTIONS.items() if section in secs),
                None,
            )
            raise SpecError(
                section,
                f"section not allowed for kind {kind!r}"
                + (f" (it belongs to kind {owner!r})" if owner else ""),
            )
        raise SpecError(section,
                        f"unknown section"
                        f"{_suggest(section, ('scenario', *allowed))}")
    out = {"scenario": scenario}
    for section in allowed:
        out[section] = _resolve_section(section, doc.get(section, {}),
                                        section)
    if kind == "experiment":
        _validate_experiment(out["experiment"])
    return out


def resolve_section(kind: str, cfg: dict | None = None, *,
                    name: str | None = None, seed: int = 0) -> dict:
    """Resolve a bare kind-config fragment into a full document.

    The spec-builder entry point: the hand-wired experiment functions hand
    their keyword arguments here as ``cfg`` and get back the same resolved
    document a TOML file would produce — one code path for both doors.
    ``cfg`` maps section names to tables for multi-section kinds
    (``synth``), or is the kind's single section directly.
    """
    if kind not in KIND_SECTIONS:
        raise SpecError("scenario.kind",
                        f"must be one of {list(KINDS)}, got {kind!r}"
                        f"{_suggest(str(kind), KINDS)}")
    sections = KIND_SECTIONS[kind]
    cfg = dict(cfg or {})
    doc: dict = {"scenario": {"name": name or kind, "kind": kind,
                              "seed": int(seed)}}
    if len(sections) == 1 and not (set(cfg) <= set(sections)):
        doc[sections[0]] = cfg
    else:
        for key in cfg:
            if key not in sections:
                raise SpecError(
                    key, f"unknown section for kind {kind!r}"
                         f"{_suggest(key, sections)}")
        doc.update({s: cfg[s] for s in sections if s in cfg})
    return resolve(doc)


# ----------------------------------------------------------------------
# TOML round trip


def loads_spec(text: str) -> dict:
    """Parse TOML text into a raw (unresolved) document."""
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: bundled subset parser
        return _parse_toml_subset(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError("", f"invalid TOML: {exc}") from None


def load_spec(path: str | Path) -> dict:
    """Load and parse one TOML spec file (unresolved)."""
    return loads_spec(Path(path).read_text(encoding="utf-8"))


def _parse_scalar(token: str, where: str):
    token = token.strip()
    if token.startswith('"'):
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            raise SpecError("", f"{where}: malformed string {token}") \
                from None
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        if any(c in token for c in ".eE") and not token.startswith("0x"):
            return float(token)
        return int(token, 0)
    except ValueError:
        raise SpecError("", f"{where}: malformed value {token!r}") from None


def _split_array(body: str, where: str) -> list[str]:
    """Split a single-line TOML array body on top-level commas."""
    items, depth, in_str, cur = [], 0, False, []
    i = 0
    while i < len(body):
        ch = body[i]
        if in_str:
            cur.append(ch)
            if ch == "\\" and i + 1 < len(body):
                cur.append(body[i + 1])
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
            cur.append(ch)
        elif ch == "[":
            depth += 1
            cur.append(ch)
        elif ch == "]":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
        i += 1
    if "".join(cur).strip():
        items.append("".join(cur))
    return items


def _parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset :func:`dump_spec` emits (Python 3.10 path).

    Supported: ``[dotted.section]`` headers, ``key = scalar`` and
    ``key = [scalars]`` pairs, ``#`` comments, basic strings with JSON-style
    escapes.  That is exactly the grammar canonical dumps use; richer input
    should run on Python >= 3.11 where :mod:`tomllib` takes over.
    """
    root: dict = {}
    table = root
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if line.startswith("#") or not line:
            continue
        where = f"line {lineno}"
        if line.startswith("["):
            if not line.endswith("]"):
                raise SpecError("", f"{where}: malformed section header")
            table = root
            for part in line[1:-1].strip().split("."):
                if not part:
                    raise SpecError("", f"{where}: empty section name")
                table = table.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise SpecError("", f"{where}: expected 'key = value'")
        key, _, value = line.partition("=")
        key, value = key.strip(), value.strip()
        # Strip a trailing comment (never inside a string or array).
        if "#" in value and not value.startswith(('"', "[")):
            value = value.split("#", 1)[0].strip()
        if not key or not value:
            raise SpecError("", f"{where}: expected 'key = value'")
        if value.startswith("["):
            if not value.endswith("]"):
                raise SpecError("", f"{where}: arrays must be single-line")
            table[key] = [_parse_scalar(tok, where)
                          for tok in _split_array(value[1:-1], where)]
        else:
            table[key] = _parse_scalar(value, where)
    return root


def _format_scalar(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _format_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_scalar(v) for v in value) + "]"
    return _format_scalar(value)


def dump_spec(doc: dict) -> str:
    """Render a resolved document as canonical TOML.

    Sections and keys come out in schema order; ``None`` values and empty
    tables are omitted (they resolve back to their defaults), which makes
    ``resolve → dump → parse → resolve`` a fixed point.
    """
    doc = resolve(doc)
    lines: list[str] = []
    for section, content in doc.items():
        lines.append(f"[{section}]")
        subtables = []
        for key, value in content.items():
            if value is None:
                continue
            if isinstance(value, dict):
                if value:
                    subtables.append((f"{section}.{key}", value))
                continue
            lines.append(f"{key} = {_format_value(value)}")
        for path, tbl in subtables:
            lines.append("")
            lines.append(f"[{path}]")
            for key in sorted(tbl):
                lines.append(f"{key} = {_format_value(tbl[key])}")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Digest & seeds


def canonical_json(doc: dict) -> str:
    """The resolved document as deterministic JSON (digest input)."""
    return json.dumps(resolve(doc), sort_keys=True, separators=(",", ":"))


def spec_digest(doc: dict) -> str:
    """Content digest of the *normalized* document.

    Key-order and formatting invariant: two TOML files that resolve to the
    same document share a digest; changing any effective value changes it.
    """
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


def stage_rngs(seed: int) -> dict[str, object]:
    """Independent per-stage generators for one document seed.

    Spawned over the fixed :data:`STAGES` order via the same
    ``SeedSequence`` tree as everything else in the codebase, so the
    source stream is identical whether or not later stages exist.
    """
    return dict(zip(STAGES, spawn_rngs(int(seed), len(STAGES))))
