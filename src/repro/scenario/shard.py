"""Shard coordinator: split one trace across workers, merge sketches exactly.

The ``stream`` sketches ship an exact merge algebra: summaries built from
any contiguous partition of a trace and merged in partition order are
bit-identical to one serial pass (count histograms sum exactly, gap
chaining stitches the boundary interarrival, TopK/KLL/moments merges are
order-deterministic).  This module is the thin coordinator that exploits
it: cut the event columns into ``jobs`` contiguous chunks, build one
:class:`~repro.stream.summary.StreamSummary` per chunk on a process pool,
and fold them left-to-right.  A sharded run's verdicts therefore *equal*
the serial run's — not approximately, bit for bit — which is the stepping
stone to driving N replay collectors as one trace.
"""

from __future__ import annotations

import numpy as np

from repro.utils.pool import pool_map

__all__ = ["shard_bounds", "sharded_summary"]


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` index ranges covering ``n`` events.

    Same split as :func:`numpy.array_split`: sizes differ by at most one,
    larger chunks first, and the ranges are independent of how the work is
    later scheduled — merge order is argument order, always.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(n, 1))
    base, extra = divmod(n, shards)
    bounds, start = [], 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _summarize_chunk(times, sizes, config):
    """Build one chunk's summary (module-level: pickles into workers)."""
    from repro.stream.summary import StreamSummary

    summary = StreamSummary(config)
    summary.update(times, sizes)
    return summary


def sharded_summary(times, sizes=None, *, config=None, jobs: int = 1,
                    shards: int | None = None):
    """One :class:`StreamSummary` of the whole trace, built on ``jobs`` workers.

    ``shards`` defaults to ``jobs``; passing a higher count exercises the
    merge algebra without extra processes (the serial/sharded equality
    tests do exactly that).  Chunks are merged in index order, so the
    result is bit-identical for every ``(jobs, shards)`` combination —
    including ``jobs=1``, which skips the pool entirely.
    """
    from repro.stream.summary import SummaryConfig

    config = config if config is not None else SummaryConfig()
    times = np.asarray(times, dtype=float)
    sizes = None if sizes is None else np.asarray(sizes, dtype=float)
    n_shards = shards if shards is not None else jobs
    bounds = shard_bounds(times.size, n_shards)
    if len(bounds) == 1:
        return _summarize_chunk(times, sizes, config)
    tasks = [
        (times[a:b], None if sizes is None else sizes[a:b], config)
        for a, b in bounds
    ]
    parts = pool_map(_summarize_chunk, tasks, jobs, strict=True)
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    return merged
