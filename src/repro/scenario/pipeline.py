"""One execution pipeline behind every scenario door.

Two front doors, one path:

* **Documents** — ``repro scenario run spec.toml`` loads a TOML document,
  :func:`run_spec` resolves it and dispatches on ``scenario.kind``.
* **Registry functions** — the hand-wired experiments (``flowsim``,
  ``shaping``, ``monitor``, ``superpose``) are now thin spec-builders:
  they assemble the same config fragment a document would carry and call
  :func:`execute`, which resolves it through the *same* schema and
  dispatches to the *same* family runner.

Because both doors share the resolver and the runner, a committed example
spec reproduces its registry experiment bit-identically — there is no
second wiring to drift.

The ``synth`` kind is the composite the other kinds hand-wire: synthesize
a source workload, optionally condition it in-network, then run the
validation battery over sketches built by the shard coordinator
(:mod:`repro.scenario.shard`) — ``jobs=N`` merges per-chunk sketches with
the exact algebra, so sharded verdicts equal serial ones bit for bit.

Caching (:func:`run_spec_cached`) reuses the engine's
:class:`~repro.engine.cache.ResultCache`, keyed on the document's
*normalized content* plus this module's source closure — editing a spec
invalidates exactly its entries, same contract as the AST source digest.

Import discipline: this module imports only :mod:`repro.scenario.spec` and
stdlib at module level.  Experiment modules import :mod:`repro.scenario`
eagerly, so everything heavier (registry, engine, stream) loads lazily
inside the runners to keep the graph acyclic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.scenario.spec import (
    canonical_json,
    resolve,
    resolve_section,
    spec_digest,
    stage_rngs,
)

__all__ = [
    "PIPELINE_MODULE",
    "ScenarioOutcome",
    "SynthValidationResult",
    "execute",
    "run_spec",
    "run_spec_cached",
]

#: Digest anchor for spec-driven cache keys: the pipeline's own source
#: closure (which reaches every family runner through the lazy imports).
PIPELINE_MODULE = "repro.scenario.pipeline"


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed scenario document: the spec, its result, its rendering."""

    spec: dict          # resolved document
    result: object      # the family result object (render()/payload())
    rendered: str
    compute_time_s: float

    @property
    def name(self) -> str:
        return self.spec["scenario"]["name"]

    @property
    def kind(self) -> str:
        return self.spec["scenario"]["kind"]

    def payload(self) -> dict:
        body = (self.result.payload()
                if hasattr(self.result, "payload") else {})
        return {
            "scenario": self.name,
            "kind": self.kind,
            "seed": self.spec["scenario"]["seed"],
            "spec_digest": spec_digest(self.spec),
            "compute_time_s": round(self.compute_time_s, 3),
            **body,
        }


# ----------------------------------------------------------------------
# Family runners (all imports lazy — see module docstring)


def _run_experiment(doc: dict, seed, jobs: int):
    import inspect

    from repro.experiments import REGISTRY

    cfg = doc["experiment"]
    fn = REGISTRY[cfg["name"]]
    kwargs = dict(cfg["params"])
    if jobs > 1 and "jobs" in inspect.signature(fn).parameters:
        kwargs.setdefault("jobs", jobs)
    return fn(seed=seed, **kwargs)


def _run_flowsim(doc: dict, seed, jobs: int):
    from repro.experiments.flowsim_exp import run_config

    return run_config(doc["flowsim"], seed=seed, jobs=jobs)


def _run_shaping(doc: dict, seed, jobs: int):
    from repro.experiments.shaping_exp import run_config

    return run_config(doc["shaping"], seed=seed, jobs=jobs)


def _run_monitor(doc: dict, seed, jobs: int):
    from repro.experiments.monitor_exp import run_config

    return run_config(doc["monitor"], seed=seed, jobs=jobs)


def _run_superpose(doc: dict, seed, jobs: int):
    from repro.experiments.superpose_exp import run_config

    return run_config(doc["superpose"], seed=seed, jobs=jobs)


@dataclass(frozen=True)
class SynthValidationResult:
    """A ``synth`` run: source → conditioning → sharded battery."""

    source: dict        # resolved [source] section
    condition: dict     # resolved [condition] section
    battery: object     # BatteryReport
    summary: object     # merged StreamSummary (exact under sharding)
    mean_rate: float    # pre-conditioning mean byte rate, bytes/s
    loss_fraction: float

    def sketch_fingerprint(self) -> str:
        """Digest of the merged count ladder — the shard-equality witness.

        Two runs of the same document agree on this hex string iff their
        merged sketches are bit-identical, whatever ``--jobs`` was.
        """
        import hashlib

        counts = self.summary.counts.finalize()
        h = hashlib.sha256()
        h.update(counts.tobytes())
        h.update(str(self.summary.n).encode())
        return h.hexdigest()[:16]

    def payload(self) -> dict:
        return {
            "source": dict(self.source),
            "condition": dict(self.condition),
            "mean_rate_bps": float(self.mean_rate),
            "loss_fraction": float(self.loss_fraction),
            "sketch_fingerprint": self.sketch_fingerprint(),
            "battery": self.battery.payload(),
        }

    def render(self) -> str:
        cond = self.condition["element"]
        lines = [
            f"synth: {self.source['model']} ×{self.source['n_packets']:,d} "
            f"packets, mean {self.mean_rate:,.0f} B/s",
        ]
        if cond != "none":
            lines.append(
                f"  conditioned by {cond} at "
                f"{self.condition['rate_factor']:g}× mean rate "
                f"({self.condition['burst_seconds']:g}s burst), "
                f"loss {self.loss_fraction:.3f}")
        lines.append(f"  sketch fingerprint: {self.sketch_fingerprint()}")
        lines.append("")
        lines.append(self.battery.render())
        return "\n".join(lines)


def _run_synth(doc: dict, seed, jobs: int):
    import numpy as np

    from repro.replay.source import synthesize_packets
    from repro.scenario.battery import run_battery
    from repro.scenario.shard import sharded_summary
    from repro.stream.summary import SummaryConfig

    src, cond, val = doc["source"], doc["condition"], doc["validate"]
    rngs = stage_rngs(seed)
    trace = synthesize_packets(
        src["model"], src["n_packets"], seed=rngs["source"],
        rate=src["rate"],
    )
    times = np.asarray(trace.timestamps, dtype=float)
    sizes = np.asarray(trace.sizes, dtype=float)
    span = float(times[-1] - times[0]) if times.size > 1 else 0.0
    if span <= 0:
        raise ValueError("synthesized trace has no span")
    mean_rate = float(sizes.sum() / span)

    loss = 0.0
    if cond["element"] != "none":
        from repro.shaping.elements import (
            LeakyBucketShaper,
            TokenBucketPolicer,
        )

        rate = cond["rate_factor"] * mean_rate
        burst = cond["burst_seconds"] * rate
        element = (TokenBucketPolicer(rate, burst)
                   if cond["element"] == "policer"
                   else LeakyBucketShaper(rate, burst))
        res = element.apply(times, sizes)
        times = np.asarray(res.accepted_times, dtype=float)
        sizes = np.asarray(res.accepted_costs, dtype=float)
        loss = float(res.loss_fraction)

    config = SummaryConfig(bin_width=val["bin_width"])
    summary = sharded_summary(times, sizes, config=config, jobs=jobs)
    battery = run_battery(times, sizes, summary, val)
    return SynthValidationResult(
        source=dict(src), condition=dict(cond), battery=battery,
        summary=summary, mean_rate=mean_rate, loss_fraction=loss,
    )


_RUNNERS = {
    "experiment": _run_experiment,
    "flowsim": _run_flowsim,
    "shaping": _run_shaping,
    "monitor": _run_monitor,
    "superpose": _run_superpose,
    "synth": _run_synth,
}


# ----------------------------------------------------------------------
# Entry points


def run_spec(doc: dict, *, jobs: int = 1, seed=None) -> ScenarioOutcome:
    """Resolve one document and execute it.

    ``seed`` overrides ``scenario.seed`` when given (the CLI's ``--seed``);
    ``jobs`` fans shardable stages over worker processes — outputs are
    independent of it by the merge-algebra contract.
    """
    resolved = resolve(doc)
    if seed is None:
        seed = resolved["scenario"]["seed"]
    t0 = time.perf_counter()
    result = _RUNNERS[resolved["scenario"]["kind"]](resolved, seed, jobs)
    elapsed = time.perf_counter() - t0
    return ScenarioOutcome(
        spec=resolved, result=result, rendered=result.render(),
        compute_time_s=elapsed,
    )


def execute(kind: str, cfg: dict | None = None, *, seed=0, jobs: int = 1,
            name: str | None = None):
    """Run one kind from a bare config fragment (the spec-builder door).

    The hand-wired experiment functions call this with their keyword
    arguments; the fragment passes through the same strict resolver a
    document would, then the same family runner.  ``seed`` may be any
    ``SeedLike`` (the engine hands Generators under ``--spawn-seeds``),
    so it bypasses the document's integer slot.
    """
    doc = resolve_section(kind, cfg, name=name)
    return _RUNNERS[kind](doc, seed, jobs)


def run_spec_cached(
    doc: dict,
    *,
    jobs: int = 1,
    seed=None,
    cache=None,
    use_cache: bool = True,
) -> tuple[ScenarioOutcome, str]:
    """:func:`run_spec` through the engine's on-disk result cache.

    Returns ``(outcome, cache_state)`` where ``cache_state`` is ``"hit"``,
    ``"miss"``, or ``"off"``.  Keys combine the document's normalized
    content with this module's source closure
    (:func:`repro.engine.cache.content_digest`): editing the spec — or any
    code the pipeline can reach — invalidates exactly its entries.
    """
    from repro.engine.cache import CacheEntry, ResultCache, content_digest

    resolved = resolve(doc)
    if seed is None:
        seed = resolved["scenario"]["seed"]
    if not use_cache:
        return run_spec(resolved, jobs=jobs, seed=seed), "off"
    store = cache if cache is not None else ResultCache()
    digest = content_digest(PIPELINE_MODULE, canonical_json(resolved))
    name = f"scenario-{resolved['scenario']['name']}"
    key = store.key(name, f"master:{seed}", digest)
    entry = store.get(key)
    if entry is not None:
        return entry.result, "hit"
    outcome = run_spec(resolved, jobs=jobs, seed=seed)
    store.put(key, CacheEntry(
        name=name,
        seed_token=f"master:{seed}",
        digest=digest,
        rendered=outcome.rendered,
        result=outcome,
        compute_time_s=outcome.compute_time_s,
    ))
    return outcome, "miss"
