"""The validation battery: every paper-level verdict from one merged summary.

A scenario's ``[validate]`` section names the checks the paper runs by hand
across its figures: the Poisson A² gap test (Section II / Appendix A), the
Pareto tail β (Sections IV-VI), the variance-time Hurst estimate
(Section VIII), and the Clegg LRD-vs-drift discrimination (detrended H).
The battery computes all of them from two inputs the shard coordinator
already guarantees are partition-invariant:

* the **merged sketches** (count ladder, tail reservoirs, moments) — exact
  under shard merge, so sketch-derived verdicts are jobs-independent by
  construction;
* the **full event columns** held at the coordinator — used for the
  interval-based Poisson tests, which are trivially jobs-independent
  because they never leave the coordinator.

The result is one typed verdict object whose rendered form and payload are
byte-identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatteryReport", "run_battery"]

#: Verdict vocabulary, aligned with :data:`repro.monitor.service.VERDICTS`.
VERDICTS = ("poisson-like", "self-similar", "nonstationary",
            "indeterminate")


@dataclass(frozen=True)
class BatteryReport:
    """All validation verdicts for one (possibly sharded) trace."""

    n_events: int
    duration: float
    # Poisson A² on the pooled interarrivals (Case 3, mean estimated).
    a2_statistic: float
    a2_critical: float
    a2_passed: bool
    # Appendix-A fixed-rate interval methodology (None when no interval
    # was dense enough to test).
    interval_s: float
    exp_pass_rate: float | None
    indep_pass_rate: float | None
    poisson_consistent: bool | None
    # Heavy-tail βs from the merged reservoirs (None when the upper
    # tail is degenerate — e.g. a policer quantized the gaps).
    tail_fraction: float
    gap_beta: float | None
    size_beta: float | None
    # Variance-time Hurst from the merged count ladder.
    hurst: float | None
    # Clegg discrimination: raw vs detrended H.
    detrended: float | None
    hurst_gap: float
    drifting: bool
    drift_reason: str
    verdict: str

    def rows(self) -> list[dict]:
        return [
            {"check": "poisson A2 (gaps)",
             "value": round(self.a2_statistic, 3),
             "threshold": round(self.a2_critical, 3),
             "verdict": "pass" if self.a2_passed else "reject"},
            {"check": f"poisson intervals ({self.interval_s:.0f}s)",
             "value": ("-" if self.exp_pass_rate is None
                       else round(self.exp_pass_rate, 3)),
             "threshold": ("-" if self.indep_pass_rate is None
                           else round(self.indep_pass_rate, 3)),
             "verdict": ("untestable" if self.poisson_consistent is None
                         else "consistent" if self.poisson_consistent
                         else "inconsistent")},
            {"check": f"gap tail beta (top {self.tail_fraction:g})",
             "value": ("-" if self.gap_beta is None
                       else round(self.gap_beta, 3)),
             "threshold": "<2 heavy",
             "verdict": ("degenerate" if self.gap_beta is None
                         else "heavy" if self.gap_beta < 2.0 else "light")},
            {"check": "variance-time H",
             "value": ("-" if self.hurst is None else round(self.hurst, 3)),
             "threshold": ">0.6 LRD",
             "verdict": ("undefined" if self.hurst is None
                         else "elevated" if self.hurst > 0.6 else "near-1/2")},
            {"check": "detrended H (drift)",
             "value": ("-" if self.detrended is None
                       else round(self.detrended, 3)),
             "threshold": round(self.hurst_gap, 3),
             "verdict": "drifting" if self.drifting else "stationary"},
        ]

    def payload(self) -> dict:
        return {
            "n_events": int(self.n_events),
            "duration_s": float(self.duration),
            "a2": {"statistic": float(self.a2_statistic),
                   "critical": float(self.a2_critical),
                   "passed": bool(self.a2_passed)},
            "intervals": {
                "interval_s": float(self.interval_s),
                "exp_pass_rate": self.exp_pass_rate,
                "indep_pass_rate": self.indep_pass_rate,
                "poisson_consistent": self.poisson_consistent,
            },
            "tail": {"fraction": float(self.tail_fraction),
                     "gap_beta": self.gap_beta,
                     "size_beta": self.size_beta},
            "hurst": self.hurst,
            "drift": {"detrended_hurst": self.detrended,
                      "hurst_gap": float(self.hurst_gap),
                      "drifting": bool(self.drifting),
                      "reason": self.drift_reason},
            "verdict": self.verdict,
        }

    def render(self) -> str:
        from repro.experiments.report import format_table

        head = (f"validation battery — {self.n_events:,d} events over "
                f"{self.duration:,.1f} s")
        table = format_table(self.rows(), title=head)
        return f"{table}\nverdict: {self.verdict}"


def _classify(a2_passed: bool, hurst: float | None,
              drifting: bool) -> str:
    """One headline verdict from the component checks (monitor vocabulary)."""
    if drifting:
        return "nonstationary"
    if hurst is not None and hurst > 0.65:
        return "self-similar"
    if a2_passed and (hurst is None or abs(hurst - 0.5) <= 0.15):
        return "poisson-like"
    return "indeterminate"


def run_battery(times, sizes, summary, cfg: dict) -> BatteryReport:
    """Run the configured battery over one trace and its merged summary.

    ``cfg`` is the resolved ``[validate]`` section.  ``summary`` must
    cover exactly ``times``/``sizes`` (the shard coordinator guarantees
    it); every sketch-derived number below is then independent of how
    many shards built the summary.
    """
    from repro.monitor.estimators import assess_drift
    from repro.stats import anderson_darling_exponential
    from repro.stats.poisson_tests import evaluate_arrival_process

    times = np.asarray(times, dtype=float)
    if times.size < 3:
        raise ValueError(f"battery needs >= 3 events, got {times.size}")
    gaps = np.diff(times)
    ad = anderson_darling_exponential(gaps[gaps > 0],
                                      significance=cfg["significance"])

    interval = cfg["poisson_interval"]
    exp_rate = indep_rate = consistent = None
    try:
        itest = evaluate_arrival_process(
            times, interval, significance=cfg["significance"],
            start=float(times[0]), end=float(times[-1]),
        )
        exp_rate = float(itest.exponential_pass_rate)
        indep_rate = float(itest.independence_pass_rate)
        consistent = bool(itest.poisson_consistent)
    except ValueError:
        pass  # no interval dense enough to test — reported as untestable

    fraction = summary.best_tail_fraction(cfg["tail_fraction"], "gap")
    gap_beta = size_beta = None
    try:
        gap_beta = float(summary.interarrival_tail_beta(fraction)[0])
    except ValueError:
        pass  # degenerate upper tail (e.g. policer-quantized gaps)
    if sizes is not None:
        try:
            size_fraction = summary.best_tail_fraction(
                cfg["tail_fraction"], "size")
            size_beta = float(summary.size_tail_beta(size_fraction)[0])
        except ValueError:
            pass

    process = summary.counts.as_count_process()
    hurst = None
    if process.n_bins > 2 ** cfg["min_level"] and process.total > 0:
        curve = summary.counts.variance_time()
        hurst = float(curve.hurst(min_level=cfg["min_level"]))

    detrended = None
    gap = 0.0
    drifting = False
    reason = "drift check disabled"
    if cfg["drift_check"] and hurst is not None:
        drift = assess_drift(process, hurst, 0,
                             min_level=cfg["min_level"])
        detrended = drift.detrended_hurst
        gap = drift.hurst_gap
        drifting = drift.drifting
        reason = drift.reason
    elif not cfg["drift_check"]:
        pass
    else:
        reason = "hurst undefined; drift not assessed"

    return BatteryReport(
        n_events=int(times.size),
        duration=float(times[-1] - times[0]),
        a2_statistic=float(ad.statistic),
        a2_critical=float(ad.critical_value),
        a2_passed=bool(ad.passed),
        interval_s=float(interval),
        exp_pass_rate=exp_rate,
        indep_pass_rate=indep_rate,
        poisson_consistent=consistent,
        tail_fraction=float(fraction),
        gap_beta=gap_beta,
        size_beta=size_beta,
        hurst=hurst,
        detrended=detrended,
        hurst_gap=float(gap),
        drifting=drifting,
        drift_reason=reason,
        verdict=_classify(bool(ad.passed), hurst, drifting),
    )
