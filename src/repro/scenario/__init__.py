"""Declarative scenario specs and the shared execution pipeline.

One TOML document names a source workload, a network stage, optional
conditioning, and a validation battery; ``repro scenario run`` executes it
through the cached engine, and ``--jobs N`` shards the work with the exact
sketch-merge algebra (serial ≡ sharded, bit for bit).  See DESIGN.md §6k.

Spec helpers (:mod:`repro.scenario.spec`) load eagerly; the pipeline and
its shard/battery machinery load on first attribute access so that
experiment modules can import this package at module level without closing
an import cycle through the registry.
"""

from repro.scenario.spec import (
    KIND_SECTIONS,
    KINDS,
    SCHEMA,
    STAGES,
    SpecError,
    canonical_json,
    dump_spec,
    load_spec,
    loads_spec,
    resolve,
    resolve_section,
    spec_digest,
    stage_rngs,
)

__all__ = [
    "KINDS",
    "KIND_SECTIONS",
    "SCHEMA",
    "STAGES",
    "SpecError",
    "ScenarioOutcome",
    "canonical_json",
    "dump_spec",
    "execute",
    "load_spec",
    "loads_spec",
    "resolve",
    "resolve_section",
    "run_battery",
    "run_spec",
    "run_spec_cached",
    "sharded_summary",
    "spec_digest",
    "stage_rngs",
]

_LAZY = {
    "ScenarioOutcome": "repro.scenario.pipeline",
    "SynthValidationResult": "repro.scenario.pipeline",
    "execute": "repro.scenario.pipeline",
    "run_spec": "repro.scenario.pipeline",
    "run_spec_cached": "repro.scenario.pipeline",
    "sharded_summary": "repro.scenario.shard",
    "shard_bounds": "repro.scenario.shard",
    "run_battery": "repro.scenario.battery",
    "BatteryReport": "repro.scenario.battery",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
