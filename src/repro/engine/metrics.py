"""Structured per-experiment metrics, emitted in the ``BENCH_*.json`` shape.

Every engine run yields one record per experiment — wall time, cache
hit/miss, worker id, seed material — serializable as JSON so regressions
can be tracked by machines rather than eyeballs.  ``write_bench_files``
lays the records out as one ``BENCH_<experiment>.json`` per experiment plus
a ``BENCH_summary.json`` roll-up.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable


@dataclass(frozen=True)
class ExperimentMetrics:
    """Machine-readable record of one experiment execution."""

    name: str
    seed_token: str
    digest: str
    wall_time_s: float      # time this run spent on the experiment
    compute_time_s: float   # time the result took to compute (cached or not)
    cache: str              # "hit" | "miss" | "off"
    worker: str             # e.g. "pid-4242"
    status: str             # "ok" | "error"
    error: str | None = None

    def payload(self) -> dict:
        return {"bench": self.name, "unit": "s", **asdict(self)}


def summary_payload(
    metrics: Iterable[ExperimentMetrics],
    *,
    master_seed: int,
    jobs: int,
    derive_seeds: bool,
    total_wall_s: float,
) -> dict:
    records = [m.payload() for m in metrics]
    return {
        "bench": "repro-run",
        "unit": "s",
        "master_seed": master_seed,
        "jobs": jobs,
        "derive_seeds": derive_seeds,
        "total_wall_s": total_wall_s,
        "n_experiments": len(records),
        "cache_hits": sum(1 for r in records if r["cache"] == "hit"),
        "failures": sum(1 for r in records if r["status"] == "error"),
        "experiments": records,
    }


def write_bench_files(summary: dict, out_dir: Path | str) -> list[Path]:
    """Write ``BENCH_<name>.json`` per experiment + ``BENCH_summary.json``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for record in summary["experiments"]:
        path = out / f"BENCH_{record['bench']}.json"
        path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        written.append(path)
    path = out / "BENCH_summary.json"
    path.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    written.append(path)
    return written
