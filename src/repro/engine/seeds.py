"""Per-experiment seed derivation for the engine.

Running every experiment with the *same* integer seed (what the legacy
serial CLI does) hands each one an identical RNG stream: the Fig. 2 suite
and the Fig. 12 suite then consume literally the same random numbers, which
quietly correlates results that the paper treats as independent analyses.

``derived_seeds`` instead spawns one child generator per registry entry from
a single master seed via :func:`repro.utils.rng.spawn_rngs`, so experiments
are statistically independent yet fully reproducible.  Derivation is anchored
to the *full sorted registry*, not the requested subset — ``run fig09`` and
``run all`` hand ``fig09`` the same stream, and results are identical no
matter how many workers the run is spread across.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.experiments import REGISTRY
from repro.utils.rng import spawn_rngs


def registry_index(name: str, registry: Mapping | None = None) -> int:
    """Position of ``name`` in the sorted registry (the spawn slot)."""
    order = sorted(REGISTRY if registry is None else registry)
    try:
        return order.index(name)
    except ValueError:
        raise KeyError(f"unknown experiment {name!r}") from None


def derived_seeds(
    master_seed: int,
    names: Iterable[str],
    registry: Mapping | None = None,
) -> dict[str, np.random.Generator]:
    """Independent per-experiment generators from one master seed."""
    reg = REGISTRY if registry is None else registry
    order = sorted(reg)
    children = spawn_rngs(master_seed, len(order))
    slots = {name: children[i] for i, name in enumerate(order)}
    return {name: slots[name] for name in names}


def seed_token(master_seed: int, name: str, derive: bool,
               registry: Mapping | None = None) -> str:
    """Stable cache-key component describing the exact seed material.

    Derived streams depend on the experiment's spawn slot, so the slot is
    part of the token: if the registry grows and an experiment's slot moves,
    its old cache entries (computed from a different stream) go stale
    automatically.
    """
    if not derive:
        return f"master:{master_seed}"
    return f"spawn:{master_seed}:{registry_index(name, registry)}"
