"""Parallel experiment engine: process-pool execution, per-experiment seed
derivation, content-keyed result caching, and ``BENCH_*.json`` metrics.

Entry point::

    from repro.engine import run_experiments

    report = run_experiments(["fig02", "fig09"], master_seed=0, jobs=4)
    print(report.outputs()["fig09"])     # rendered table, cached next time
    report.summary()                     # machine-readable metrics
"""

from repro.engine.cache import (
    CacheEntry,
    ResultCache,
    clear_digest_caches,
    content_digest,
    default_cache_dir,
    dependency_closure,
    source_digest,
)
from repro.engine.metrics import (
    ExperimentMetrics,
    summary_payload,
    write_bench_files,
)
from repro.engine.runner import (
    EngineReport,
    ExperimentRun,
    pool_map,
    run_experiments,
)
from repro.engine.seeds import derived_seeds, registry_index, seed_token

__all__ = [
    "CacheEntry",
    "EngineReport",
    "ExperimentMetrics",
    "ExperimentRun",
    "ResultCache",
    "clear_digest_caches",
    "content_digest",
    "default_cache_dir",
    "dependency_closure",
    "derived_seeds",
    "pool_map",
    "registry_index",
    "run_experiments",
    "seed_token",
    "source_digest",
    "summary_payload",
    "write_bench_files",
]
