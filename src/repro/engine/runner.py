"""Process-pool experiment runner with result caching.

The engine executes any subset of the experiment :data:`REGISTRY` — possibly
in parallel — and memoizes results in a content-keyed on-disk cache, so
``run all`` stops being a two-minute serial grind that re-derives every
table and figure from scratch on each invocation.

Guarantees:

* **Determinism across worker counts.**  Each experiment's output depends
  only on its own seed material, never on scheduling, so ``jobs=8`` produces
  byte-identical renderings to ``jobs=1``.
* **Exact cache invalidation.**  Entries are keyed on (experiment, seed
  material, source digest of the experiment's import closure); editing a
  module re-runs exactly the experiments that depend on it.
* **Structured metrics.**  Every run yields machine-readable per-experiment
  records (wall time, cache hit/miss, worker id) in the ``BENCH_*.json``
  shape.
"""

from __future__ import annotations

import logging
import os
import time
import traceback
from dataclasses import dataclass, field

from repro.engine.cache import CacheEntry, ResultCache, source_digest
from repro.engine.metrics import ExperimentMetrics, summary_payload
from repro.utils.pool import pool_map
from repro.engine.seeds import derived_seeds, seed_token
from repro.experiments import REGISTRY, registry_modules

__all__ = [
    "EngineReport",
    "ExperimentRun",
    "pool_map",  # canonical home: repro.utils.pool
    "run_experiments",
]

logger = logging.getLogger("repro.engine")


def _execute(name: str, seed) -> tuple[object, str, float, str]:
    """Run one experiment; returns (result, rendered, seconds, worker id).

    Module-level so it pickles into pool workers; also used inline.
    """
    fn = REGISTRY[name]
    t0 = time.perf_counter()
    result = fn(seed=seed)
    elapsed = time.perf_counter() - t0
    return result, result.render(), elapsed, f"pid-{os.getpid()}"


@dataclass(frozen=True)
class ExperimentRun:
    """One experiment's outcome within an engine run."""

    name: str
    result: object | None
    rendered: str | None
    metrics: ExperimentMetrics

    @property
    def ok(self) -> bool:
        return self.metrics.status == "ok"


@dataclass(frozen=True)
class EngineReport:
    """All runs of one engine invocation, in the requested order."""

    runs: list[ExperimentRun]
    master_seed: int
    jobs: int
    derive_seeds: bool
    total_wall_s: float
    failures: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(
            self, "failures", sum(1 for r in self.runs if not r.ok)
        )

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def outputs(self) -> dict[str, str]:
        """Experiment name -> rendered table/series text."""
        return {r.name: r.rendered for r in self.runs if r.rendered is not None}

    def summary(self) -> dict:
        return summary_payload(
            [r.metrics for r in self.runs],
            master_seed=self.master_seed,
            jobs=self.jobs,
            derive_seeds=self.derive_seeds,
            total_wall_s=self.total_wall_s,
        )


def run_experiments(
    names,
    *,
    master_seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    derive_seeds: bool = True,
) -> EngineReport:
    """Run experiments, in parallel when ``jobs > 1``, through the cache.

    Parameters
    ----------
    names:
        Registry names to run (order preserved in the report).
    master_seed:
        Single integer from which all seed material derives.
    jobs:
        Worker processes for cache misses; ``1`` runs inline.
    cache, use_cache:
        On-disk result cache (``ResultCache()`` default root when ``None``).
        ``use_cache=False`` disables both lookup and write-back.
    derive_seeds:
        ``True`` hands each experiment an independent child stream spawned
        from the master seed (see :mod:`repro.engine.seeds`); ``False``
        passes the bare integer to every experiment — the legacy serial CLI
        behaviour, kept for byte-identical default output.
    """
    names = list(names)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    store = (cache if cache is not None else ResultCache()) if use_cache else None
    t_start = time.perf_counter()

    seeds = (
        derived_seeds(master_seed, names)
        if derive_seeds
        else {n: master_seed for n in names}
    )
    modules = registry_modules()
    digests = {n: source_digest(modules[n]) for n in names}
    tokens = {n: seed_token(master_seed, n, derive_seeds) for n in names}

    runs: dict[str, ExperimentRun] = {}
    misses: list[str] = []
    for name in names:
        if store is None:
            misses.append(name)
            continue
        t0 = time.perf_counter()
        entry = store.get(store.key(name, tokens[name], digests[name]))
        if entry is None:
            misses.append(name)
            continue
        logger.info("experiment %-18s cache hit (computed in %.2fs)",
                    name, entry.compute_time_s)
        runs[name] = ExperimentRun(
            name=name,
            result=entry.result,
            rendered=entry.rendered,
            metrics=ExperimentMetrics(
                name=name,
                seed_token=tokens[name],
                digest=digests[name],
                wall_time_s=time.perf_counter() - t0,
                compute_time_s=entry.compute_time_s,
                cache="hit",
                worker=f"pid-{os.getpid()}",
                status="ok",
            ),
        )

    def record(name: str, outcome, wall_s: float) -> None:
        cache_state = "off" if store is None else "miss"
        if isinstance(outcome, Exception):
            err = "".join(
                traceback.format_exception_only(type(outcome), outcome)
            ).strip()
            logger.info("experiment %-18s FAILED after %.2fs: %s",
                        name, wall_s, err)
            runs[name] = ExperimentRun(
                name=name,
                result=None,
                rendered=None,
                metrics=ExperimentMetrics(
                    name=name,
                    seed_token=tokens[name],
                    digest=digests[name],
                    wall_time_s=wall_s,
                    compute_time_s=wall_s,
                    cache=cache_state,
                    worker=f"pid-{os.getpid()}",
                    status="error",
                    error=err,
                ),
            )
            return
        result, rendered, elapsed, worker = outcome
        logger.info("experiment %-18s done in %.2fs (cache %s, %s)",
                    name, wall_s, cache_state, worker)
        if store is not None:
            key = store.key(name, tokens[name], digests[name])
            store.put(
                key,
                CacheEntry(
                    name=name,
                    seed_token=tokens[name],
                    digest=digests[name],
                    rendered=rendered,
                    result=result,
                    compute_time_s=elapsed,
                ),
            )
        runs[name] = ExperimentRun(
            name=name,
            result=result,
            rendered=rendered,
            metrics=ExperimentMetrics(
                name=name,
                seed_token=tokens[name],
                digest=digests[name],
                wall_time_s=wall_s,
                compute_time_s=elapsed,
                cache=cache_state,
                worker=worker,
                status="ok",
            ),
        )

    if misses:
        logger.info("running %d experiment(s) on %d worker(s): %s",
                    len(misses), min(jobs, len(misses)), " ".join(misses))
    pool_map(
        _execute,
        [(name, seeds[name]) for name in misses],
        jobs,
        on_result=lambda i, outcome, wall_s: record(misses[i], outcome, wall_s),
    )

    return EngineReport(
        runs=[runs[n] for n in names],
        master_seed=master_seed,
        jobs=jobs,
        derive_seeds=derive_seeds,
        total_wall_s=time.perf_counter() - t_start,
    )
