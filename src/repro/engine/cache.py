"""Content-keyed on-disk result cache for the experiment engine.

A cache entry is keyed on three things: the experiment name, a seed token
(the exact seed material the experiment ran with), and a *source digest* —
a hash of the experiment module's transitive import closure within the
``repro`` package.  Editing any module an experiment depends on therefore
invalidates exactly the affected entries: touching ``selfsim/whittle.py``
re-runs the Hurst experiments but leaves the Fig. 9 burst results warm.

The dependency graph is recovered statically (an AST walk over every module
under ``src/repro``), so digests are available without importing anything
beyond the package itself and never execute experiment code.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import repro

_PACKAGE = "repro"
_CACHE_ENV = "REPRO_CACHE_DIR"
#: Bump when the entry layout changes; old entries then miss instead of
#: unpickling into the wrong shape.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(_CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / _PACKAGE


def package_root() -> Path:
    return Path(repro.__file__).resolve().parent


@lru_cache(maxsize=1)
def _module_files(root_key: str) -> dict[str, Path]:
    """Map every importable ``repro.*`` module name to its source file."""
    root = Path(root_key)
    modules: dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules[".".join(parts)] = path
    return modules


def _imports_of(path: Path, module: str, known: dict[str, Path]) -> set[str]:
    """``repro.*`` modules imported by one source file (absolute + relative)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    package = module if path.name == "__init__.py" else module.rpartition(".")[0]
    found: set[str] = set()

    def resolve(name: str) -> None:
        # `from repro.x import y` may bind the submodule repro.x.y or a
        # symbol defined in repro.x; accept whichever actually is a module.
        if name in known:
            found.add(name)
        else:
            parent = name.rpartition(".")[0]
            if parent in known:
                found.add(parent)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == _PACKAGE:
                    resolve(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base = package.split(".")
                if node.level > 1:
                    base = base[: -(node.level - 1)]
                prefix = ".".join(base)
                stem = f"{prefix}.{node.module}" if node.module else prefix
            elif node.module and node.module.split(".")[0] == _PACKAGE:
                stem = node.module
            else:
                continue
            for alias in node.names:
                resolve(f"{stem}.{alias.name}")
            resolve(stem)
    return found


@lru_cache(maxsize=1)
def _dependency_graph(root_key: str) -> dict[str, frozenset[str]]:
    known = _module_files(root_key)
    return {
        mod: frozenset(_imports_of(path, mod, known))
        for mod, path in known.items()
    }


def dependency_closure(module: str) -> frozenset[str]:
    """Transitive ``repro.*`` import closure of ``module`` (inclusive)."""
    root_key = str(package_root())
    graph = _dependency_graph(root_key)
    if module not in graph:
        raise KeyError(f"unknown module {module!r}")
    seen: set[str] = set()
    stack = [module]
    while stack:
        mod = stack.pop()
        if mod in seen:
            continue
        seen.add(mod)
        stack.extend(graph.get(mod, ()))
    return frozenset(seen)


@lru_cache(maxsize=256)
def source_digest(module: str) -> str:
    """Hex digest of the sources in ``module``'s dependency closure.

    Any edit to any file in the closure changes the digest; files outside
    the closure leave it untouched, so cache invalidation is exact.
    Modules defined outside the ``repro`` tree (e.g. ad-hoc experiments
    registered by tests) digest to a name-only marker: their entries are
    keyed on name and seed alone, with no source tracking.
    """
    files = _module_files(str(package_root()))
    if module not in files:
        return f"external:{module}"
    h = hashlib.sha256()
    for mod in sorted(dependency_closure(module)):
        h.update(mod.encode())
        h.update(b"\0")
        h.update(files[mod].read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def content_digest(module: str, content: str | bytes) -> str:
    """Digest for document-driven runs: source closure plus document content.

    Spec-driven scenarios are keyed on *what they say*, not just which
    code runs them: the digest combines ``module``'s transitive source
    digest with the normalized document bytes, so editing either the
    pipeline sources or any effective spec value invalidates the entry,
    while reordering keys or restating defaults leaves it warm.
    """
    if isinstance(content, str):
        content = content.encode("utf-8")
    h = hashlib.sha256()
    h.update(source_digest(module).encode())
    h.update(b"\0")
    h.update(content)
    return h.hexdigest()


def clear_digest_caches() -> None:
    """Forget memoized graphs/digests (after editing sources in-process)."""
    _module_files.cache_clear()
    _dependency_graph.cache_clear()
    source_digest.cache_clear()


# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheEntry:
    """One cached experiment run."""

    name: str
    seed_token: str
    digest: str
    rendered: str
    result: object
    compute_time_s: float
    created_at: float = field(default_factory=time.time)
    format: int = CACHE_FORMAT


class ResultCache:
    """Pickle-per-entry cache under one root directory."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def key(self, name: str, seed_token: str, digest: str) -> str:
        h = hashlib.sha256(f"{name}\0{seed_token}\0{digest}".encode())
        return f"{name}-{h.hexdigest()[:24]}"

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> CacheEntry | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except Exception:
            return None  # corrupt/stale entries behave as misses
        if not isinstance(entry, CacheEntry) or entry.format != CACHE_FORMAT:
            return None
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._path(key).with_suffix(f".{os.getpid()}.tmp")
        with tmp.open("wb") as fh:
            pickle.dump(entry, fh)
        os.replace(tmp, self._path(key))

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        if not self.root.exists():
            return 0
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink()
            removed += 1
        return removed
