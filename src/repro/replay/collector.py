"""Asyncio capture collector: timestamp, bound, decode, persist.

The collector is the receiving half of the replay loop.  Per transport
connection it reads raw wire bytes, stamps each read block with the event
loop's monotonic clock, carves whole records, and hands the block to a
single writer task through one *bounded* queue — the explicit backpressure
point of the subsystem:

* ``policy="block"`` — when the queue is full the receiving coroutine
  awaits ``queue.put``; it stops reading, the kernel's TCP window fills,
  and the sender's ``drain()`` blocks.  Nothing is lost, the *source* is
  slowed (lossless mode, the default).
* ``policy="drop"`` — a full queue drops the block and counts the dropped
  records per flow (load-shedding mode; what a finite router buffer would
  do, and the knob that makes overload experiments honest).

The writer task decodes blocks back into column batches and appends them
to the capture file through :mod:`repro.traces.io`'s v1 text format
(``.gz`` transparently compressed).  Records are written in arrival
order; a single-flow TCP replay therefore captures the *byte-identical*
line sequence of the source trace.  Shutdown is a graceful drain: close
the listener, wait for in-flight handlers, then let the writer empty the
queue before the file is flushed and closed.

Queue-depth high-water marks, per-flow packet/byte counts, and UDP
sequence-gap loss estimates are reported in :class:`CollectorReport` and
flow into ``BENCH_replay.json``.
"""

from __future__ import annotations

import asyncio
import os
import socket
from dataclasses import dataclass, field

from repro.replay.wire import (
    KIND_FIN,
    RECORD_BYTES,
    TCP_HELLO,
    decode_records,
    unpack_datagram,
    unpack_hello,
)
from repro.traces.io import PKT_HEADER, format_packet_columns, open_trace

#: Target bytes per TCP read (a few thousand records).
READ_BYTES = 256 * 1024


@dataclass
class FlowStats:
    """Per-flow accounting on the receive side."""

    flow_id: int
    n_packets: int = 0
    trace_bytes: int = 0
    wire_bytes: int = 0
    dropped_records: int = 0
    n_blocks: int = 0
    max_seq: int = -1          # UDP only
    n_datagrams: int = 0       # UDP only
    fin_seen: bool = False     # UDP only
    first_arrival: float | None = None
    last_arrival: float | None = None

    def stamp(self, arrival: float) -> None:
        if self.first_arrival is None:
            self.first_arrival = arrival
        self.last_arrival = arrival

    @property
    def udp_lost(self) -> int:
        """Sequence-gap loss estimate (0 for TCP flows)."""
        if self.max_seq < 0:
            return 0
        return max(0, (self.max_seq + 1) - self.n_datagrams)

    def payload(self) -> dict:
        return {
            "flow_id": self.flow_id,
            "n_packets": self.n_packets,
            "trace_bytes": self.trace_bytes,
            "wire_bytes": self.wire_bytes,
            "dropped_records": self.dropped_records,
            "n_blocks": self.n_blocks,
            "udp_lost_datagrams": self.udp_lost,
            "arrival_span_s": (
                self.last_arrival - self.first_arrival
                if self.first_arrival is not None else 0.0
            ),
        }


@dataclass
class CollectorReport:
    """Merged receive-side result of one replay run."""

    transport: str
    policy: str
    queue_depth: int
    queue_high_water: int
    capture_path: str | None
    flows: dict[int, FlowStats] = field(default_factory=dict)
    observer_errors: int = 0

    @property
    def n_packets(self) -> int:
        return sum(f.n_packets for f in self.flows.values())

    @property
    def trace_bytes(self) -> int:
        return sum(f.trace_bytes for f in self.flows.values())

    @property
    def dropped_records(self) -> int:
        return sum(f.dropped_records for f in self.flows.values())

    def payload(self) -> dict:
        return {
            "transport": self.transport,
            "policy": self.policy,
            "queue_depth": self.queue_depth,
            "queue_high_water": self.queue_high_water,
            "capture_path": self.capture_path,
            "n_flows": len(self.flows),
            "n_packets": self.n_packets,
            "trace_bytes": self.trace_bytes,
            "dropped_records": self.dropped_records,
            "observer_errors": self.observer_errors,
            "flows": [
                self.flows[f].payload() for f in sorted(self.flows)
            ],
        }


class Collector:
    """Bounded-queue capture server for replayed traffic."""

    def __init__(
        self,
        *,
        capture_path: str | os.PathLike | None = None,
        policy: str = "block",
        queue_depth: int = 256,
        observer=None,
    ):
        if policy not in ("block", "drop"):
            raise ValueError(f"policy must be 'block' or 'drop', got {policy!r}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if observer is not None and not callable(observer):
            raise TypeError("observer must be callable")
        self.capture_path = (
            None if capture_path is None else os.fspath(capture_path)
        )
        self.policy = policy
        self.queue_depth = queue_depth
        self.queue_high_water = 0
        self.observer = observer
        self.observer_errors = 0
        self.flows: dict[int, FlowStats] = {}
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._server: asyncio.AbstractServer | None = None
        self._udp_transport = None
        self._writer_task: asyncio.Task | None = None
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._transport_kind = "tcp"
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    transport: str = "tcp") -> int:
        """Bind and start serving; returns the bound port."""
        if transport not in ("tcp", "udp"):
            raise ValueError(
                f"transport must be 'tcp' or 'udp', got {transport!r}"
            )
        self._transport_kind = transport
        self._loop = asyncio.get_running_loop()
        self._writer_task = asyncio.create_task(self._write_loop())
        if transport == "tcp":
            self._server = await asyncio.start_server(
                self._handle_tcp, host, port
            )
            bound = self._server.sockets[0].getsockname()[1]
        else:
            self._udp_transport, _ = (
                await self._loop.create_datagram_endpoint(
                    lambda: _CollectorUdp(self), local_addr=(host, port)
                )
            )
            sock = self._udp_transport.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                    8 * 1024 * 1024)
                except OSError:  # pragma: no cover - platform-dependent
                    pass
            bound = self._udp_transport.get_extra_info("sockname")[1]
        return int(bound)

    async def drain(self, timeout: float = 30.0) -> None:
        """Wait for in-flight handlers (TCP) or FINs (UDP), with a cap."""
        if self._transport_kind == "tcp":
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:  # pragma: no cover - safety net
                pass
        else:
            deadline = self._loop.time() + timeout
            while self._loop.time() < deadline:
                if self.flows and all(
                    f.fin_seen for f in self.flows.values()
                ):
                    break
                await asyncio.sleep(0.02)

    async def stop(self) -> CollectorReport:
        """Drain handlers, flush the writer, close the capture file."""
        await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._udp_transport is not None:
            self._udp_transport.close()
        await self._queue.put(None)
        await self._writer_task
        return self.report()

    def set_observer(self, observer) -> None:
        """Install (or clear) the opt-in per-batch observer callback.

        The callable receives each decoded
        :class:`~repro.traces.columns.PacketBatch` on the writer task,
        in arrival order, after accounting and before persistence.  It
        is best-effort: exceptions are counted in ``observer_errors``
        and never stall the ingest/drain path.
        """
        if observer is not None and not callable(observer):
            raise TypeError("observer must be callable")
        self.observer = observer

    def report(self) -> CollectorReport:
        return CollectorReport(
            transport=self._transport_kind,
            policy=self.policy,
            queue_depth=self.queue_depth,
            queue_high_water=self.queue_high_water,
            capture_path=self.capture_path,
            flows=self.flows,
            observer_errors=self.observer_errors,
        )

    # -- ingest --------------------------------------------------------
    def _flow(self, flow_id: int) -> FlowStats:
        if flow_id not in self.flows:
            self.flows[flow_id] = FlowStats(flow_id)
        return self.flows[flow_id]

    async def _enqueue(self, flow_id: int, block: bytes,
                       arrival: float) -> None:
        stats = self._flow(flow_id)
        stats.wire_bytes += len(block)
        stats.n_blocks += 1
        stats.stamp(arrival)
        item = (flow_id, block, arrival)
        if self.policy == "block":
            await self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                stats.dropped_records += len(block) // RECORD_BYTES
                return
        self.queue_high_water = max(
            self.queue_high_water, self._queue.qsize()
        )

    async def _handle_tcp(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self._active += 1
        self._idle.clear()
        try:
            hello = await reader.readexactly(TCP_HELLO.size)
            flow_id = unpack_hello(hello)
            self._flow(flow_id).wire_bytes += len(hello)
            carry = b""
            while True:
                data = await reader.read(READ_BYTES)
                if not data:
                    break
                arrival = self._loop.time()
                data = carry + data
                cut = len(data) - (len(data) % RECORD_BYTES)
                carry = data[cut:]
                if cut:
                    await self._enqueue(flow_id, data[:cut], arrival)
            if carry:
                raise ValueError(
                    f"flow {flow_id}: {len(carry)} trailing bytes are not "
                    "a whole record"
                )
        except asyncio.IncompleteReadError:
            pass  # connection closed before a full hello: ignore
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    def _ingest_datagram(self, data: bytes) -> None:
        arrival = self._loop.time()
        kind, flow_id, seq, payload = unpack_datagram(data)
        stats = self._flow(flow_id)
        if kind == KIND_FIN:
            stats.fin_seen = True
            return
        stats.n_datagrams += 1
        stats.max_seq = max(stats.max_seq, seq)
        if not payload:
            return
        stats.wire_bytes += len(data)
        stats.n_blocks += 1
        stats.stamp(arrival)
        item = (flow_id, payload, arrival)
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            # UDP never blocks the socket callback: a full queue sheds
            # load regardless of policy (that is what UDP means).
            stats.dropped_records += len(payload) // RECORD_BYTES
            return
        self.queue_high_water = max(
            self.queue_high_water, self._queue.qsize()
        )

    # -- persist -------------------------------------------------------
    async def _write_loop(self) -> None:
        fh = None
        if self.capture_path is not None:
            fh = open_trace(self.capture_path, "wt")
            fh.write(PKT_HEADER + "\n")
        try:
            while True:
                item = await self._queue.get()
                if item is None:
                    break
                flow_id, block, _arrival = item
                batch = decode_records(block)
                stats = self._flow(flow_id)
                stats.n_packets += len(batch)
                stats.trace_bytes += int(batch.sizes.sum())
                if self.observer is not None:
                    # The observer is a best-effort tap (live monitors,
                    # metrics): it must never stall or kill the drain
                    # path, so failures are counted and swallowed.
                    try:
                        self.observer(batch)
                    except Exception:
                        self.observer_errors += 1
                if fh is not None:
                    fh.write(format_packet_columns(
                        batch.timestamps, batch.protocols,
                        batch.connection_ids, batch.directions,
                        batch.sizes, batch.user_data,
                    ))
        finally:
            if fh is not None:
                fh.close()


class _CollectorUdp(asyncio.DatagramProtocol):
    def __init__(self, collector: Collector):
        self._collector = collector

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            self._collector._ingest_datagram(data)
        except ValueError:  # pragma: no cover - malformed stray datagram
            pass
