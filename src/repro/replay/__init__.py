"""Live traffic replay & load generation with closed-loop validation.

The analysis side of the repo measures traces; this subsystem *emits*
them: an asyncio sender paces packet records onto real TCP/UDP transports
at their trace timestamps (under a ``speed`` compression factor and an
optional token-bucket rate cap), a bounded-queue collector timestamps and
captures what arrives, and a validation loop re-runs the paper's
statistical battery on the capture to confirm that Poisson-session,
heavy-tail, and variance-time structure survived the replay path.

Entry points::

    from repro.replay import PacingConfig, run_loopback, validate_replay

    result = run_loopback("trace.txt", capture_path="capture.txt",
                          pacing=PacingConfig(speed=0), validate=True)
    assert result.zero_loss and result.validation.ok

or from the CLI: ``repro replay loopback --packets 100000 --validate``.
"""

from repro.replay.collector import Collector, CollectorReport, FlowStats
from repro.replay.loopback import LoopbackResult, loopback, run_loopback
from repro.replay.pacing import Pacer, PacingConfig, PacingStats, TokenBucket
from repro.replay.server import (
    FlowResult,
    merged_pacing,
    replay_source,
    send_flow,
)
from repro.replay.source import (
    MODELS,
    file_source,
    model_help,
    synthesize_packets,
    trace_source,
)
from repro.replay.validate import (
    TraceBattery,
    ValidationReport,
    evaluate_trace,
    session_arrival_times,
    validate_replay,
)
from repro.replay.wire import (
    RECORD_BYTES,
    RECORD_DTYPE,
    decode_records,
    encode_batch,
)

__all__ = [
    "Collector",
    "CollectorReport",
    "FlowResult",
    "FlowStats",
    "LoopbackResult",
    "MODELS",
    "Pacer",
    "PacingConfig",
    "PacingStats",
    "RECORD_BYTES",
    "RECORD_DTYPE",
    "TokenBucket",
    "TraceBattery",
    "ValidationReport",
    "decode_records",
    "encode_batch",
    "evaluate_trace",
    "file_source",
    "loopback",
    "merged_pacing",
    "model_help",
    "replay_source",
    "run_loopback",
    "send_flow",
    "session_arrival_times",
    "synthesize_packets",
    "trace_source",
    "validate_replay",
]
