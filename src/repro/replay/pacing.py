"""Drift-corrected pacing for live trace replay.

The scheduler's contract: emit record *i* at wall-clock time

    ``wall_start + (t_i - t_0) / speed``

where ``t_i`` is the record's trace timestamp and ``speed`` is the time
compression factor (``speed=60`` replays an hour of trace in a minute;
``speed=0`` means as-fast-as-possible, no pacing at all).  Targets are
computed *absolutely* from the flow's wall start, never incrementally from
the previous send, so scheduling jitter does not accumulate as drift.

Late-event accounting: the pacer never sleeps once a deadline has passed —
a late record is sent immediately and its (non-negative) pacing error
``actual - target`` is recorded into a mergeable :class:`PacingStats`
(quantile sketch + moments), from which ``p50/p90/p99/max`` percentiles
are reported.  Errors beyond ``late_threshold`` count as "late events".

Rate capping is a deficit token bucket (:class:`TokenBucket`): ``acquire``
may take the balance negative on a burst larger than the bucket depth, so
arbitrarily large batches are admitted while the *average* rate converges
to the cap.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.shaping.gcra import GcraCore
from repro.stream.sketches import QuantileSketch, StreamingMoments


@dataclass(frozen=True)
class PacingConfig:
    """How a replay flow schedules its sends (picklable, hashable)."""

    #: Trace-time / wall-time compression factor; 0 = as fast as possible.
    speed: float = 1.0
    #: Records per wall-second admitted by the token bucket (None = no cap).
    rate_cap: float | None = None
    #: Token-bucket burst allowance, in records.
    bucket_depth: float = 64.0
    #: Pacing error beyond which a send counts as a late event (seconds).
    late_threshold: float = 0.005

    def __post_init__(self):
        if self.speed < 0:
            raise ValueError(f"speed must be >= 0, got {self.speed}")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"rate_cap must be > 0, got {self.rate_cap}")
        if self.bucket_depth <= 0:
            raise ValueError(
                f"bucket_depth must be > 0, got {self.bucket_depth}"
            )
        if self.late_threshold < 0:
            raise ValueError("late_threshold must be >= 0")

    @property
    def paced(self) -> bool:
        """Whether sends follow trace timestamps at all."""
        return self.speed > 0


class PacingStats:
    """Mergeable record of one flow's pacing errors."""

    def __init__(self, late_threshold: float = 0.005):
        self.late_threshold = late_threshold
        self.n_sent = 0
        self.n_late = 0
        self.errors = QuantileSketch(512)
        self.moments = StreamingMoments()

    def record(self, error: float) -> None:
        """Fold in one paced send's error (clamped at 0: early sends were
        slept away, only residual lateness is meaningful)."""
        err = max(float(error), 0.0)
        self.n_sent += 1
        if err > self.late_threshold:
            self.n_late += 1
        self.errors.update([err])
        self.moments.update([err])

    def count_unpaced(self, n: int = 1) -> None:
        """Count sends that had no deadline (``speed=0`` fast path)."""
        self.n_sent += int(n)

    def merge(self, other: "PacingStats") -> None:
        self.n_sent += other.n_sent
        self.n_late += other.n_late
        self.errors.merge(other.errors)
        self.moments.merge(other.moments)

    # ------------------------------------------------------------------
    def percentiles(self) -> dict[str, float]:
        if self.moments.n == 0:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        p50, p90, p99 = self.errors.quantiles([0.5, 0.9, 0.99])
        return {
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
            "max": float(self.moments.max),
        }

    def payload(self) -> dict:
        return {
            "n_sent": self.n_sent,
            "n_paced": int(self.moments.n),
            "n_late": self.n_late,
            "late_threshold_s": self.late_threshold,
            "mean_error_s": float(self.moments.mean)
            if self.moments.n else 0.0,
            **{f"error_{k}_s": v for k, v in self.percentiles().items()},
        }


class TokenBucket:
    """Virtual-scheduling (GCRA) token bucket: ``rate`` records/second
    average with a ``depth``-record burst allowance.

    The bucket tracks a theoretical arrival time instead of a token count,
    so a single ``acquire(n)`` with ``n`` far beyond the depth still waits
    out the full ``n / rate`` budget — batch-granular capping converges to
    the same average rate as per-record capping.

    The TAT arithmetic lives in :class:`repro.shaping.gcra.GcraCore`
    (deficit admission), shared with the in-network conditioning
    elements; this class only binds it to a clock and an async sleep.
    """

    def __init__(self, rate: float, depth: float = 64.0, *,
                 clock=time.monotonic, sleep=asyncio.sleep):
        self._core = GcraCore(rate, depth)
        self._clock = clock
        self._sleep = sleep

    @property
    def rate(self) -> float:
        return self._core.rate

    @property
    def depth(self) -> float:
        return self._core.depth

    async def acquire(self, n: float = 1.0) -> None:
        """Admit ``n`` records, sleeping until the average rate allows it."""
        wait = self._core.advance(self._clock(), n)
        if wait > 0:
            await self._sleep(wait)


class Pacer:
    """One flow's drift-corrected send scheduler."""

    def __init__(self, config: PacingConfig, *,
                 bucket: TokenBucket | None = None,
                 clock=time.monotonic, sleep=asyncio.sleep):
        self.config = config
        self.stats = PacingStats(config.late_threshold)
        if bucket is None and config.rate_cap is not None:
            bucket = TokenBucket(config.rate_cap, config.bucket_depth,
                                 clock=clock, sleep=sleep)
        self.bucket = bucket
        self._clock = clock
        self._sleep = sleep
        self._wall0: float | None = None
        self._ts0: float | None = None

    def start(self, wall0: float | None = None) -> None:
        """Pin the flow's wall-clock origin (idempotent via first pace)."""
        self._wall0 = self._clock() if wall0 is None else wall0

    @property
    def fast_path(self) -> bool:
        """Whole batches may be sent without per-record scheduling."""
        return not self.config.paced and self.bucket is None

    async def pace(self, ts: float) -> float:
        """Schedule the record stamped ``ts``; return its pacing error.

        Sleeps only while the deadline is in the future — a record already
        past its deadline is released immediately and accounted as late.
        """
        if self.bucket is not None:
            await self.bucket.acquire(1.0)
        if not self.config.paced:
            self.stats.count_unpaced()
            return 0.0
        if self._wall0 is None:
            self.start()
        if self._ts0 is None:
            self._ts0 = float(ts)
        target = self._wall0 + (float(ts) - self._ts0) / self.config.speed
        now = self._clock()
        if now < target:
            await self._sleep(target - now)
            now = self._clock()
        error = now - target
        self.stats.record(error)
        return max(error, 0.0)

    async def admit_batch(self, n: int) -> None:
        """Batch-granular admission for the unpaced (``speed=0``) path.

        The sender chunks its writes at the bucket depth, so each admitted
        run is released within its rate budget.
        """
        if self.bucket is not None:
            await self.bucket.acquire(float(n))
        self.stats.count_unpaced(n)
