"""Binary wire format for replayed packet records.

One trace record travels as a fixed-size 38-byte cell — big-endian
``timestamp/connection_id/protocol/direction/size/user_data`` — encoded
and decoded as whole :class:`~repro.stream.reader.PacketBatch` columns via
a numpy structured dtype, so both ends of the replay path move batches at
array speed rather than per-record ``struct`` calls.  ``float64``
timestamps cross the wire bit-for-bit, which is what lets a captured
stream round-trip byte-identically through :mod:`repro.traces.io`'s
shortest-round-trip float formatting.

Framing:

* **TCP** — one 12-byte hello (magic, version, flow id) per connection,
  then a plain stream of record cells; the FIN/EOF marks end-of-flow and
  drives the collector's graceful drain.
* **UDP** — each datagram carries a 20-byte header (magic, version, kind,
  record count, flow id, sequence number) plus up to
  :data:`MAX_DATAGRAM_RECORDS` cells.  Sequence numbers let the collector
  count loss; ``KIND_FIN`` datagrams (sent redundantly) mark end-of-flow.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.stream.reader import PacketBatch

MAGIC = b"RPRO"
VERSION = 1

#: Fixed width of the protocol-name field (longest v1 token is "FTPDATA").
PROTO_BYTES = 12

#: One packet record on the wire, as a numpy structured dtype.  Big-endian
#: throughout so the bytes are identical to a ``!dq12sbqB`` struct pack.
RECORD_DTYPE = np.dtype([
    ("timestamp", ">f8"),
    ("connection_id", ">i8"),
    ("protocol", f"S{PROTO_BYTES}"),
    ("direction", "i1"),
    ("size", ">i8"),
    ("user_data", "u1"),
])

RECORD_BYTES = RECORD_DTYPE.itemsize

#: TCP per-connection hello: magic, version, pad, flow id.
TCP_HELLO = struct.Struct("!4sB3xI")

#: UDP per-datagram header: magic, version, kind, n_records, flow id, seq.
UDP_HEADER = struct.Struct("!4sBBHIQ")

KIND_DATA = 0
KIND_FIN = 1

#: Records per UDP datagram, sized to keep datagrams under a conservative
#: 1400-byte MTU budget.
MAX_DATAGRAM_RECORDS = (1400 - UDP_HEADER.size) // RECORD_BYTES


def encode_batch(batch: PacketBatch) -> bytes:
    """Encode one batch as a contiguous run of wire cells.

    Columnar producers (e.g. ``trace_source``) ship pre-encoded byte
    protocols in ``batch.protocols_s``; those are used as-is, skipping the
    object-array ``astype("S")`` pass.
    """
    n = len(batch)
    protos = batch.protocols_s
    if protos is None:
        protos = np.asarray(batch.protocols).astype("S")
    if protos.dtype.itemsize > PROTO_BYTES:
        longest = max(np.asarray(batch.protocols).tolist(), key=len)
        raise ValueError(
            f"protocol name {longest!r} exceeds the {PROTO_BYTES}-byte "
            "wire field"
        )
    cells = np.empty(n, dtype=RECORD_DTYPE)
    cells["timestamp"] = batch.timestamps
    cells["connection_id"] = batch.connection_ids
    cells["protocol"] = protos
    cells["direction"] = batch.directions
    cells["size"] = batch.sizes
    cells["user_data"] = batch.user_data
    return cells.tobytes()


def decode_records(buf: bytes | bytearray | memoryview) -> PacketBatch:
    """Decode a run of wire cells back into a :class:`PacketBatch`."""
    if len(buf) % RECORD_BYTES:
        raise ValueError(
            f"wire payload of {len(buf)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    cells = np.frombuffer(buf, dtype=RECORD_DTYPE)
    return PacketBatch(
        timestamps=cells["timestamp"].astype("=f8"),
        protocols=cells["protocol"].astype("U").astype(object),
        connection_ids=cells["connection_id"].astype(np.int64),
        directions=cells["direction"].astype(np.int8),
        sizes=cells["size"].astype(np.int64),
        user_data=cells["user_data"].astype(bool),
    )


def pack_hello(flow_id: int) -> bytes:
    return TCP_HELLO.pack(MAGIC, VERSION, flow_id)


def unpack_hello(buf: bytes) -> int:
    """Validate a TCP hello and return its flow id."""
    magic, version, flow_id = TCP_HELLO.unpack(buf)
    if magic != MAGIC:
        raise ValueError(f"bad hello magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported wire version {version}")
    return flow_id


def pack_datagram(flow_id: int, seq: int, payload: bytes,
                  kind: int = KIND_DATA) -> bytes:
    n = len(payload) // RECORD_BYTES
    return UDP_HEADER.pack(MAGIC, VERSION, kind, n, flow_id, seq) + payload


def unpack_datagram(data: bytes) -> tuple[int, int, int, bytes]:
    """Return ``(kind, flow_id, seq, payload)`` for one datagram."""
    if len(data) < UDP_HEADER.size:
        raise ValueError(f"datagram of {len(data)} bytes is too short")
    magic, version, kind, n, flow_id, seq = UDP_HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ValueError(f"bad datagram magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported wire version {version}")
    payload = data[UDP_HEADER.size:]
    if len(payload) != n * RECORD_BYTES:
        raise ValueError(
            f"datagram announces {n} records but carries {len(payload)} "
            "payload bytes"
        )
    return kind, flow_id, seq, payload
