"""Asyncio replay sender: paced emission of packet batches over TCP/UDP.

One *flow* is one transport connection replaying a (sub)stream of packet
records under its own :class:`~repro.replay.pacing.Pacer`.
``replay_source`` fans a single source out over ``flows`` concurrent
multiplexed flows — records are routed by ``connection_id % flows`` so a
connection's packets stay ordered within one flow — through bounded
per-flow queues, giving end-to-end backpressure: a slow flow stalls the
distributor, which stops pulling batches from the (possibly out-of-core)
source.

Send paths per batch:

* **fast path** (``speed=0``, no rate cap): the whole batch is encoded in
  one vectorized call and written at once, throttled only by
  ``writer.drain()`` (TCP flow control);
* **capped-unpaced** (``speed=0`` + rate cap): batch-granular token-bucket
  admission, then the vectorized write;
* **paced** (``speed>0``): per-record deadline scheduling with periodic
  drains.

TCP flows end with EOF (the collector's drain signal); UDP flows end with
redundant FIN datagrams and carry sequence numbers so the collector can
count loss.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.replay.pacing import Pacer, PacingConfig, TokenBucket
from repro.replay.wire import (
    KIND_FIN,
    MAX_DATAGRAM_RECORDS,
    RECORD_BYTES,
    encode_batch,
    pack_datagram,
    pack_hello,
)
from repro.stream.reader import PacketBatch

#: Drain (await TCP flow control) at least every this many paced records.
DRAIN_EVERY = 256

#: Bounded depth of each flow's batch queue (batches, not records).
FLOW_QUEUE_BATCHES = 4


@dataclass(frozen=True)
class FlowResult:
    """What one flow sent, and how punctually."""

    flow_id: int
    n_packets: int
    wire_bytes: int
    trace_bytes: int
    wall_s: float
    pacing: dict

    def payload(self) -> dict:
        return {
            "flow_id": self.flow_id,
            "n_packets": self.n_packets,
            "wire_bytes": self.wire_bytes,
            "trace_bytes": self.trace_bytes,
            "wall_s": self.wall_s,
            "packets_per_s": self.n_packets / self.wall_s
            if self.wall_s > 0 else 0.0,
            "pacing": self.pacing,
        }


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self):
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport):
        self.transport = transport

    def error_received(self, exc):  # pragma: no cover - kernel-dependent
        pass


async def _send_tcp(
    batches: "asyncio.Queue[PacketBatch | None] | Iterable[PacketBatch]",
    host: str,
    port: int,
    flow_id: int,
    pacer: Pacer,
) -> tuple[int, int, int]:
    reader, writer = await asyncio.open_connection(host, port)
    n_packets = wire_bytes = trace_bytes = 0
    try:
        hello = pack_hello(flow_id)
        writer.write(hello)
        wire_bytes += len(hello)
        async for batch in _aiter_batches(batches):
            payload = encode_batch(batch)
            if not pacer.config.paced:
                if pacer.bucket is None:
                    await pacer.admit_batch(len(batch))
                    writer.write(payload)
                    await writer.drain()
                else:
                    # Chunk capped writes at the bucket depth so the batch
                    # is released across its rate budget, not in one burst.
                    step = max(int(pacer.bucket.depth), 1)
                    view = memoryview(payload)
                    for off in range(0, len(batch), step):
                        m = min(step, len(batch) - off)
                        await pacer.admit_batch(m)
                        writer.write(
                            view[off * RECORD_BYTES:
                                 (off + m) * RECORD_BYTES]
                        )
                        await writer.drain()
            else:
                ts = batch.timestamps
                view = memoryview(payload)
                for i in range(len(batch)):
                    await pacer.pace(float(ts[i]))
                    writer.write(
                        view[i * RECORD_BYTES:(i + 1) * RECORD_BYTES]
                    )
                    if i % DRAIN_EVERY == 0:
                        await writer.drain()
                await writer.drain()
            n_packets += len(batch)
            wire_bytes += len(payload)
            trace_bytes += int(batch.sizes.sum())
    finally:
        writer.close()
        await writer.wait_closed()
    return n_packets, wire_bytes, trace_bytes


async def _send_udp(
    batches: "asyncio.Queue[PacketBatch | None] | Iterable[PacketBatch]",
    host: str,
    port: int,
    flow_id: int,
    pacer: Pacer,
) -> tuple[int, int, int]:
    loop = asyncio.get_running_loop()
    transport, proto = await loop.create_datagram_endpoint(
        _UdpProtocol, remote_addr=(host, port)
    )
    n_packets = wire_bytes = trace_bytes = 0
    seq = 0
    try:
        async for batch in _aiter_batches(batches):
            payload = encode_batch(batch)
            view = memoryview(payload)
            if pacer.config.paced:
                # One record per datagram keeps pacing record-accurate.
                ts = batch.timestamps
                for i in range(len(batch)):
                    await pacer.pace(float(ts[i]))
                    dgram = pack_datagram(
                        flow_id, seq,
                        bytes(view[i * RECORD_BYTES:(i + 1) * RECORD_BYTES]),
                    )
                    transport.sendto(dgram)
                    wire_bytes += len(dgram)
                    seq += 1
            else:
                for off in range(0, len(batch), MAX_DATAGRAM_RECORDS):
                    chunk = bytes(
                        view[off * RECORD_BYTES:
                             (off + MAX_DATAGRAM_RECORDS) * RECORD_BYTES]
                    )
                    await pacer.admit_batch(len(chunk) // RECORD_BYTES)
                    dgram = pack_datagram(flow_id, seq, chunk)
                    transport.sendto(dgram)
                    wire_bytes += len(dgram)
                    seq += 1
                    # Yield so the local collector's socket gets serviced;
                    # UDP has no flow control and will shed load otherwise.
                    await asyncio.sleep(0)
            n_packets += len(batch)
            trace_bytes += int(batch.sizes.sum())
        for _ in range(3):  # redundant FINs: datagrams may drop
            fin = pack_datagram(flow_id, seq, b"", kind=KIND_FIN)
            transport.sendto(fin)
            wire_bytes += len(fin)
            await asyncio.sleep(0.01)
    finally:
        transport.close()
    return n_packets, wire_bytes, trace_bytes


async def _aiter_batches(batches):
    """Uniform async iteration over a queue of batches or a plain iterable."""
    if isinstance(batches, asyncio.Queue):
        while True:
            item = await batches.get()
            if item is None:
                return
            yield item
    else:
        for batch in batches:
            yield batch
            await asyncio.sleep(0)  # yield to the collector between batches


async def send_flow(
    batches,
    host: str,
    port: int,
    *,
    flow_id: int = 0,
    pacing: PacingConfig | None = None,
    pacer: Pacer | None = None,
    transport: str = "tcp",
) -> FlowResult:
    """Replay one flow's batches to ``host:port`` under a pacing policy."""
    if pacer is None:
        pacer = Pacer(pacing if pacing is not None else PacingConfig())
    if transport not in ("tcp", "udp"):
        raise ValueError(f"transport must be 'tcp' or 'udp', got {transport!r}")
    t0 = time.perf_counter()
    pacer.start()
    sender = _send_tcp if transport == "tcp" else _send_udp
    n_packets, wire_bytes, trace_bytes = await sender(
        batches, host, port, flow_id, pacer
    )
    return FlowResult(
        flow_id=flow_id,
        n_packets=n_packets,
        wire_bytes=wire_bytes,
        trace_bytes=trace_bytes,
        wall_s=time.perf_counter() - t0,
        pacing=pacer.stats.payload(),
    )


def _split_batch(batch: PacketBatch, flows: int) -> list[PacketBatch | None]:
    """Route records to flows by ``connection_id % flows`` (order-preserving
    within each flow)."""
    lanes = batch.connection_ids % flows
    out: list[PacketBatch | None] = []
    for f in range(flows):
        mask = lanes == f
        if not mask.any():
            out.append(None)
            continue
        out.append(PacketBatch(
            timestamps=batch.timestamps[mask],
            protocols=batch.protocols[mask],
            connection_ids=batch.connection_ids[mask],
            directions=batch.directions[mask],
            sizes=batch.sizes[mask],
            user_data=batch.user_data[mask],
            protocols_s=None if batch.protocols_s is None
            else batch.protocols_s[mask],
        ))
    return out


async def _distribute(
    source: Iterator[PacketBatch],
    queues: "list[asyncio.Queue]",
) -> None:
    flows = len(queues)
    try:
        for batch in source:
            if flows == 1:
                await queues[0].put(batch)
            else:
                for q, sub in zip(queues, _split_batch(batch, flows)):
                    if sub is not None:
                        await q.put(sub)
    finally:
        for q in queues:
            await q.put(None)


async def replay_source(
    source: Iterator[PacketBatch],
    host: str,
    port: int,
    *,
    flows: int = 1,
    pacing: PacingConfig | None = None,
    transport: str = "tcp",
) -> list[FlowResult]:
    """Replay one source over ``flows`` concurrent multiplexed flows.

    All flows share one wall-clock origin and — when a rate cap is set —
    one token bucket, so the cap applies to the *aggregate*, matching how
    a bottleneck link would see the multiplexed stream.
    """
    if flows < 1:
        raise ValueError(f"flows must be >= 1, got {flows}")
    config = pacing if pacing is not None else PacingConfig()
    shared_bucket = (
        TokenBucket(config.rate_cap, config.bucket_depth)
        if config.rate_cap is not None else None
    )
    wall0 = time.monotonic()
    pacers = []
    for _ in range(flows):
        p = Pacer(config, bucket=shared_bucket)
        p.start(wall0)
        pacers.append(p)
    queues: list[asyncio.Queue] = [
        asyncio.Queue(maxsize=FLOW_QUEUE_BATCHES) for _ in range(flows)
    ]
    feeder = asyncio.create_task(_distribute(source, queues))
    try:
        results = await asyncio.gather(*[
            send_flow(q, host, port, flow_id=f, pacer=pacers[f],
                      transport=transport)
            for f, q in enumerate(queues)
        ])
    finally:
        if not feeder.done():
            feeder.cancel()
        try:
            await feeder
        except asyncio.CancelledError:
            pass
    return list(results)


def merged_pacing(results: Iterable[FlowResult]) -> dict:
    """Aggregate per-flow pacing payloads (worst-case percentiles)."""
    results = list(results)
    if not results:
        return {}
    n_sent = sum(r.pacing["n_sent"] for r in results)
    n_late = sum(r.pacing["n_late"] for r in results)
    n_paced = sum(r.pacing["n_paced"] for r in results)
    keys = ("error_p50_s", "error_p90_s", "error_p99_s", "error_max_s")
    merged = {k: max(r.pacing[k] for r in results) for k in keys}
    mean = (
        sum(r.pacing["mean_error_s"] * r.pacing["n_paced"] for r in results)
        / n_paced if n_paced else 0.0
    )
    return {"n_sent": n_sent, "n_paced": n_paced, "n_late": n_late,
            "mean_error_s": mean, **merged}
