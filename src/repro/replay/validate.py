"""Closed-loop statistical validation of a replayed trace.

The paper's burden of proof is statistical: Poisson session arrivals,
heavy-tailed interarrivals, and slowly decaying variance-time curves.  A
replay path that preserves packets but mangled their structure would be
useless for load generation, so the closed loop runs the same battery on
the *source* trace and on the *capture* and compares verdicts:

* **A² Poisson test on session arrivals** — each connection's first packet
  is its session arrival; Appendix A's Anderson-Darling + lag-1
  independence battery (:func:`repro.stats.poisson_tests
  .evaluate_arrival_process`) must reach the same consistency verdict on
  both sides.
* **Pareto tail fit on interarrivals** — the streamed β of the upper
  interarrival tail (Section IV's heavy-tail signature), computed through
  the :mod:`repro.stream.sketches` ``TopK`` reservoir, must agree within a
  relative tolerance.
* **Variance-time slope** — the Hurst-parameter signature (Fig. 4-5) of
  the count process from the ``CountLadder`` sketch, within an absolute
  tolerance.

Both sides are summarized through the identical
:class:`~repro.stream.summary.StreamSummary` accumulators, so a lossless
replay (block mode, zero drops) reproduces the source's numbers *exactly*
— any mismatch localizes a defect in the replay path itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.stats.poisson_tests import evaluate_arrival_process
from repro.stream.summary import StreamSummary, SummaryConfig
from repro.traces.io import read_packet_trace
from repro.traces.trace import PacketTrace

#: Feed the sketches in slices of this many records.
BATCH_RECORDS = 65_536


@dataclass(frozen=True)
class TraceBattery:
    """One trace's results for the validation battery."""

    name: str
    n_packets: int
    n_sessions: int
    trace_bytes: float
    duration: float
    poisson_consistent: bool
    exponential_pass_rate: float
    independence_pass_rate: float
    interval_length: float
    n_intervals_tested: int
    gap_beta: float
    gap_tail_fraction: float
    vt_slope: float | None

    def payload(self) -> dict:
        return {
            "name": self.name,
            "n_packets": self.n_packets,
            "n_sessions": self.n_sessions,
            "trace_bytes": self.trace_bytes,
            "duration_s": self.duration,
            "poisson_consistent": self.poisson_consistent,
            "exponential_pass_rate": self.exponential_pass_rate,
            "independence_pass_rate": self.independence_pass_rate,
            "interval_length_s": self.interval_length,
            "n_intervals_tested": self.n_intervals_tested,
            "gap_beta": self.gap_beta,
            "gap_tail_fraction": self.gap_tail_fraction,
            "vt_slope": self.vt_slope,
        }


def session_arrival_times(trace: PacketTrace) -> np.ndarray:
    """Each connection's first packet time (cid >= 0), sorted.

    Connection ids below zero are the synthesizers' shared-background
    sentinels, not sessions, and are excluded.
    """
    cids = trace.connection_ids
    mask = cids >= 0
    # timestamps are time-sorted, so the first occurrence of a cid is that
    # connection's first packet.
    _, first_idx = np.unique(cids[mask], return_index=True)
    return np.sort(trace.timestamps[mask][first_idx])


def evaluate_trace(
    trace_or_path: PacketTrace | str | os.PathLike,
    *,
    bin_width: float = 0.01,
    interval_s: float = 600.0,
    tail_fraction: float = 0.03,
    min_arrivals: int = 8,
) -> TraceBattery:
    """Run the validation battery on one trace (path or in-memory)."""
    if isinstance(trace_or_path, PacketTrace):
        trace = trace_or_path
    else:
        trace = read_packet_trace(trace_or_path)
    if len(trace) < 2:
        raise ValueError(f"{trace.name}: need >= 2 packets to validate")

    summary = StreamSummary(SummaryConfig(bin_width=bin_width))
    for i in range(0, len(trace), BATCH_RECORDS):
        sl = slice(i, i + BATCH_RECORDS)
        summary.update(trace.timestamps[sl], trace.sizes[sl].astype(float))

    sessions = session_arrival_times(trace)
    # Clamp the fixed-rate hypothesis window so at least two complete
    # intervals fit the session span (short traces); sparser failures
    # (too few sessions per interval) propagate as ValueError.
    interval = float(interval_s)
    span = float(sessions[-1] - sessions[0]) if sessions.size else 0.0
    if span > 0 and interval > span / 2.0:
        interval = span / 2.0
    poisson = evaluate_arrival_process(
        sessions, interval, min_arrivals=min_arrivals
    )

    frac = summary.best_tail_fraction(tail_fraction, "gap")
    _, beta, _k = summary.gap_tail.tail_fit(frac)

    process = summary.counts.as_count_process()
    vt_slope = None
    if process.n_bins >= 100 and process.mean > 0:
        curve = summary.counts.variance_time()
        top = int(curve.levels[-1])
        mid = max(min(10, top // 2), 1)
        vt_slope = float(curve.slope(min_level=mid, max_level=top))

    return TraceBattery(
        name=trace.name,
        n_packets=len(trace),
        n_sessions=int(sessions.size),
        trace_bytes=float(trace.sizes.sum()),
        duration=float(trace.duration),
        poisson_consistent=poisson.poisson_consistent,
        exponential_pass_rate=poisson.exponential_pass_rate,
        independence_pass_rate=poisson.independence_pass_rate,
        interval_length=interval,
        n_intervals_tested=poisson.n_intervals_tested,
        gap_beta=float(beta),
        gap_tail_fraction=float(frac),
        vt_slope=vt_slope,
    )


@dataclass(frozen=True)
class ValidationReport:
    """Source-vs-capture verdict of the closed loop."""

    source: TraceBattery
    capture: TraceBattery
    beta_rtol: float
    vt_atol: float

    @property
    def packets_match(self) -> bool:
        return self.source.n_packets == self.capture.n_packets

    @property
    def poisson_match(self) -> bool:
        return (
            self.source.poisson_consistent == self.capture.poisson_consistent
        )

    @property
    def beta_match(self) -> bool:
        a, b = self.source.gap_beta, self.capture.gap_beta
        return abs(a - b) <= self.beta_rtol * max(abs(a), 1e-12)

    @property
    def vt_match(self) -> bool:
        a, b = self.source.vt_slope, self.capture.vt_slope
        if a is None or b is None:
            return a is None and b is None
        return abs(a - b) <= self.vt_atol

    @property
    def ok(self) -> bool:
        return (self.packets_match and self.poisson_match
                and self.beta_match and self.vt_match)

    def payload(self) -> dict:
        return {
            "ok": self.ok,
            "packets_match": self.packets_match,
            "poisson_match": self.poisson_match,
            "beta_match": self.beta_match,
            "vt_match": self.vt_match,
            "beta_rtol": self.beta_rtol,
            "vt_atol": self.vt_atol,
            "source": self.source.payload(),
            "capture": self.capture.payload(),
        }

    def render(self) -> str:
        s, c = self.source, self.capture

        def row(label, a, b, match):
            flag = "ok" if match else "MISMATCH"
            return f"  {label:<26s} {a!s:>14s} {b!s:>14s}   {flag}"

        lines = [
            "replay validation: source vs capture",
            f"  {'':<26s} {'source':>14s} {'capture':>14s}",
            row("packets", s.n_packets, c.n_packets, self.packets_match),
            row("sessions", s.n_sessions, c.n_sessions,
                s.n_sessions == c.n_sessions),
            row("A2 Poisson consistent", s.poisson_consistent,
                c.poisson_consistent, self.poisson_match),
            row("exp pass rate",
                f"{100 * s.exponential_pass_rate:.1f}%",
                f"{100 * c.exponential_pass_rate:.1f}%", True),
            row(f"gap tail beta (upper {100 * s.gap_tail_fraction:.2g}%)",
                f"{s.gap_beta:.4f}", f"{c.gap_beta:.4f}", self.beta_match),
            row("var-time slope",
                "n/a" if s.vt_slope is None else f"{s.vt_slope:.4f}",
                "n/a" if c.vt_slope is None else f"{c.vt_slope:.4f}",
                self.vt_match),
            f"  verdict: {'PASS' if self.ok else 'FAIL'} — statistics "
            + ("survived the replay path"
               if self.ok else "did NOT survive the replay path"),
        ]
        return "\n".join(lines)


def validate_replay(
    source: PacketTrace | str | os.PathLike,
    capture: PacketTrace | str | os.PathLike,
    *,
    bin_width: float = 0.01,
    interval_s: float = 600.0,
    tail_fraction: float = 0.03,
    beta_rtol: float = 0.05,
    vt_atol: float = 0.05,
) -> ValidationReport:
    """Run the battery on both sides of a replay and compare verdicts."""
    kw = dict(bin_width=bin_width, interval_s=interval_s,
              tail_fraction=tail_fraction)
    return ValidationReport(
        source=evaluate_trace(source, **kw),
        capture=evaluate_trace(capture, **kw),
        beta_rtol=beta_rtol,
        vt_atol=vt_atol,
    )
