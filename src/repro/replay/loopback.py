"""End-to-end loopback replay: collector + sender + validation in one call.

``run_loopback`` binds a :class:`~repro.replay.collector.Collector` on an
ephemeral localhost port, replays a source through it over real TCP/UDP
sockets, drains gracefully, and (optionally) runs the closed-loop
statistical battery of :mod:`repro.replay.validate` on source vs capture.
This is the acceptance path of the subsystem, the CLI's
``repro replay loopback``, and the workload behind ``BENCH_replay.json``.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass

from repro.replay.collector import Collector, CollectorReport
from repro.replay.pacing import PacingConfig
from repro.replay.server import FlowResult, merged_pacing, replay_source
from repro.replay.source import file_source, trace_source
from repro.replay.validate import ValidationReport, validate_replay
from repro.traces.trace import PacketTrace


@dataclass(frozen=True)
class LoopbackResult:
    """Everything one loopback run measured."""

    flow_results: list[FlowResult]
    collector: CollectorReport
    wall_s: float
    validation: ValidationReport | None = None

    @property
    def n_sent(self) -> int:
        return sum(f.n_packets for f in self.flow_results)

    @property
    def n_received(self) -> int:
        return self.collector.n_packets

    @property
    def zero_loss(self) -> bool:
        return (self.n_received == self.n_sent
                and self.collector.dropped_records == 0)

    def bench_payload(self) -> dict:
        """A ``BENCH_*``-family record for the replay path."""
        pacing = merged_pacing(self.flow_results)
        wire_bytes = sum(f.wire_bytes for f in self.flow_results)
        return {
            "bench": "replay",
            "unit": "s",
            "n_flows": len(self.flow_results),
            "n_sent": self.n_sent,
            "n_received": self.n_received,
            "dropped_records": self.collector.dropped_records,
            "zero_loss": self.zero_loss,
            "wall_s": self.wall_s,
            "packets_per_s": self.n_sent / self.wall_s
            if self.wall_s > 0 else 0.0,
            "wire_bytes_per_s": wire_bytes / self.wall_s
            if self.wall_s > 0 else 0.0,
            "trace_bytes": self.collector.trace_bytes,
            "pacing": pacing,
            "queue_high_water": self.collector.queue_high_water,
            "collector": self.collector.payload(),
            "flows": [f.payload() for f in self.flow_results],
            "validation": (
                None if self.validation is None
                else self.validation.payload()
            ),
        }

    def render(self) -> str:
        pacing = merged_pacing(self.flow_results)
        lines = [
            f"replay loopback: {self.n_sent:,d} packets over "
            f"{len(self.flow_results)} {self.collector.transport.upper()} "
            f"flow(s) in {self.wall_s:.2f}s "
            f"({self.n_sent / self.wall_s if self.wall_s else 0.0:,.0f} pkts/s)",
            f"  received       {self.n_received:>14,d}"
            f"   (dropped {self.collector.dropped_records:,d}, "
            f"{'zero loss' if self.zero_loss else 'LOSSY'})",
            f"  queue depth    {self.collector.queue_high_water:>14,d}"
            f"   high-water (cap {self.collector.queue_depth}, "
            f"policy {self.collector.policy})",
        ]
        if pacing.get("n_paced"):
            lines.append(
                f"  pacing error   p50={pacing['error_p50_s'] * 1e3:.3f}ms"
                f"  p99={pacing['error_p99_s'] * 1e3:.3f}ms"
                f"  max={pacing['error_max_s'] * 1e3:.3f}ms"
                f"  ({pacing['n_late']:,d} late)"
            )
        if self.validation is not None:
            lines.append(self.validation.render())
        return "\n".join(lines)


async def loopback(
    source: PacketTrace | str | os.PathLike,
    *,
    capture_path: str | os.PathLike,
    pacing: PacingConfig | None = None,
    flows: int = 1,
    transport: str = "tcp",
    policy: str = "block",
    queue_depth: int = 256,
    validate: bool = False,
    host: str = "127.0.0.1",
    element=None,
) -> LoopbackResult:
    """Replay ``source`` to a local collector and return both sides.

    ``element`` optionally puts an in-path conditioning stage from
    :mod:`repro.shaping` between the source and the sender: a policer
    drops non-conforming records before they ever hit the wire, a
    shaper rewrites their timestamps (which paced replay then honors).
    Bucket state carries across batches, so the conditioned stream is
    chunking-invariant.
    """
    collector = Collector(capture_path=capture_path, policy=policy,
                          queue_depth=queue_depth)
    port = await collector.start(host=host, transport=transport)
    t0 = time.perf_counter()
    batches = (
        trace_source(source) if isinstance(source, PacketTrace)
        else file_source(source)
    )
    if element is not None:
        from repro.shaping.elements import condition_batches

        batches = condition_batches(batches, element)
    try:
        flow_results = await replay_source(
            batches, host, port,
            flows=flows, pacing=pacing, transport=transport,
        )
    finally:
        report = await collector.stop()
    wall = time.perf_counter() - t0
    validation = None
    if validate:
        validation = validate_replay(source, os.fspath(capture_path))
    return LoopbackResult(
        flow_results=list(flow_results),
        collector=report,
        wall_s=wall,
        validation=validation,
    )


def run_loopback(source, **kwargs) -> LoopbackResult:
    """Synchronous wrapper around :func:`loopback`."""
    return asyncio.run(loopback(source, **kwargs))
