"""Pluggable replay feeds: on-disk traces and live model synthesis.

A replay *source* is just an iterator of time-sorted
:class:`~repro.stream.reader.PacketBatch` columns — the same currency the
streaming scan consumes — so the sender never needs a whole trace in
memory:

* :func:`file_source` streams any v1/``.gz`` packet trace through the
  chunked reader of :mod:`repro.stream.reader` (multi-GB traces replay
  out-of-core);
* :func:`trace_source` slices an in-memory :class:`PacketTrace`;
* :func:`synthesize_packets` builds an exactly-``n``-packet trace live
  from the paper's source models (``fulltel``, ``ftp``, ``poisson``,
  ``pareto``, ``mix``), auto-calibrating the synthesis horizon from a
  probe run the way ``repro stream synth`` does.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator

import numpy as np

from repro.arrivals.pareto_renewal import pareto_renewal_arrivals
from repro.arrivals.poisson import homogeneous_poisson
from repro.core.ftp import FtpSessionModel
from repro.core.fulltel import FullTelModel
from repro.stream.reader import PacketBatch, iter_trace_batches, sniff_kind
from repro.stream.synth import _assign_packet_sizes
from repro.traces.trace import PacketTrace
from repro.utils.rng import SeedLike, as_rng, spawn_rngs

DEFAULT_BATCH_RECORDS = 8192


def file_source(
    path: str | os.PathLike,
    *,
    block_bytes: int | None = None,
) -> Iterator[PacketBatch]:
    """Stream a v1 packet trace file as batches, out-of-core."""
    kind = sniff_kind(path)
    if kind != "packet":
        raise ValueError(f"{path}: replay needs a packet trace, got {kind}")
    kwargs = {} if block_bytes is None else {"block_bytes": block_bytes}
    return iter_trace_batches(path, "packet", **kwargs)


def trace_source(
    trace: PacketTrace, batch_records: int = DEFAULT_BATCH_RECORDS
) -> Iterator[PacketBatch]:
    """Slice an in-memory packet trace into replay batches.

    Numeric columns are zero-copy views of the trace's arrays; protocol
    names are gathered per batch from the trace's interned code table —
    both as the object column and pre-encoded wire bytes (``protocols_s``),
    so :func:`repro.replay.wire.encode_batch` never re-encodes strings.
    """
    if batch_records < 1:
        raise ValueError(f"batch_records must be >= 1, got {batch_records}")
    table_obj = trace.protocol_table
    table_s = table_obj.astype("S") if table_obj.size else None
    codes = trace.protocol_codes
    for i in range(0, len(trace), batch_records):
        sl = slice(i, i + batch_records)
        c = codes[sl]
        yield PacketBatch(
            timestamps=trace.timestamps[sl],
            protocols=table_obj[c] if table_obj.size
            else np.zeros(0, dtype=object),
            connection_ids=trace.connection_ids[sl],
            directions=trace.directions[sl],
            sizes=trace.sizes[sl],
            user_data=trace.user_data[sl],
            protocols_s=table_s[c] if table_s is not None else None,
        )


# ----------------------------------------------------------------------
# Live model synthesis
# ----------------------------------------------------------------------
def _fulltel(duration: float, seed, rate: float | None) -> PacketTrace:
    """TELNET packets from the FULL-TEL source model (Section IV)."""
    return FullTelModel(
        connections_per_hour=rate if rate is not None else 136.5
    ).synthesize(duration, seed=seed)


def _ftp(duration: float, seed, rate: float | None) -> PacketTrace:
    """FTPDATA packets: Section VI session/burst model, constant-rate
    512-byte segments within each connection."""
    model = FtpSessionModel(
        sessions_per_hour=rate if rate is not None else 40.0
    )
    rng = as_rng(seed)
    cols = model.synthesize_columns(duration, seed=rng)
    idx = np.flatnonzero(cols.protocols == "FTPDATA")
    if idx.size == 0:
        return PacketTrace("FTP-REPLAY", timestamps=np.zeros(0))
    totals = (cols.bytes_orig + cols.bytes_resp)[idx]
    counts = np.maximum(1, np.round(totals / 512.0).astype(np.int64))
    spans = np.maximum(cols.durations[idx], 1e-3)
    total = int(counts.sum())
    # Per-packet index 1..n within each connection, then the same
    # elementwise start + span * (j/n) the per-record loop computed
    # (identical float ops, so identical bits).
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    j = (np.arange(total, dtype=np.int64) - offsets + 1).astype(float)
    times = (np.repeat(cols.start_times[idx], counts)
             + np.repeat(spans, counts) * (j / np.repeat(counts, counts)))
    cids = np.repeat(idx, counts)
    keep = times < duration
    times, cids = times[keep], cids[keep]
    n = times.size
    return PacketTrace(
        "FTP-REPLAY",
        timestamps=times,
        protocols=np.full(n, "FTPDATA", dtype=object),
        connection_ids=cids,
        sizes=np.full(n, 512, dtype=np.int64),
    )


def _poisson(duration: float, seed, rate: float | None) -> PacketTrace:
    """Homogeneous Poisson packet arrivals — the paper's null model."""
    rng = as_rng(seed)
    per_sec = (rate if rate is not None else 360_000.0) / 3600.0
    times = homogeneous_poisson(per_sec, duration, seed=rng)
    n = times.size
    return PacketTrace(
        "POISSON-REPLAY",
        timestamps=times,
        protocols=np.full(n, "OTHER", dtype=object),
        connection_ids=np.arange(n, dtype=np.int64),
        sizes=_assign_packet_sizes(np.full(n, "OTHER", dtype=object), rng),
    )


def _pareto(duration: float, seed, rate: float | None) -> PacketTrace:
    """Pareto-renewal packet arrivals (Appendix C's failure mode)."""
    rng = as_rng(seed)
    per_sec = (rate if rate is not None else 360_000.0) / 3600.0
    location = 0.5 / per_sec  # Pareto(loc, 1.5) mean = 3*loc = 1.5/per_sec
    n = max(int(duration * per_sec), 16)
    times = pareto_renewal_arrivals(n, 1.5, location=location, seed=rng)
    times = times[times < duration]
    n = times.size
    return PacketTrace(
        "PARETO-REPLAY",
        timestamps=times,
        protocols=np.full(n, "OTHER", dtype=object),
        connection_ids=np.arange(n, dtype=np.int64),
        sizes=_assign_packet_sizes(np.full(n, "OTHER", dtype=object), rng),
    )


def _mix(duration: float, seed, rate: float | None) -> PacketTrace:
    """The full Table-II packet mix (TELNET + FTPDATA + background)."""
    from repro.traces.synthesis import synthesize_packet_trace

    rng = as_rng(seed)
    trace = synthesize_packet_trace(
        "LBL PKT-1", seed=rng, hours=duration / 3600.0,
        scale=rate if rate is not None else 1.0,
    )
    sizes = _assign_packet_sizes(trace.protocols, rng)
    return PacketTrace(
        "MIX-REPLAY",
        timestamps=trace.timestamps,
        protocols=trace.protocols,
        connection_ids=trace.connection_ids,
        directions=trace.directions,
        sizes=sizes,
        user_data=trace.user_data,
    )


#: name -> builder(duration_s, seed, rate) for ``repro replay --model``.
MODELS: dict[str, Callable[[float, object, float | None], PacketTrace]] = {
    "fulltel": _fulltel,
    "ftp": _ftp,
    "poisson": _poisson,
    "pareto": _pareto,
    "mix": _mix,
}


def model_help() -> str:
    return "; ".join(
        f"{name}: {(fn.__doc__ or '').strip().splitlines()[0]}"
        for name, fn in MODELS.items()
    )


def synthesize_packets(
    model: str,
    n_packets: int,
    *,
    seed: SeedLike = 0,
    rate: float | None = None,
    probe_hours: float = 0.25,
) -> PacketTrace:
    """Synthesize exactly ``n_packets`` live from one of :data:`MODELS`.

    A probe run at ``probe_hours`` estimates the model's packet rate; the
    horizon is then scaled (with 20% headroom, doubling on shortfall) and
    the result truncated to exactly ``n_packets`` rows.  Deterministic for
    a given ``(model, n_packets, seed, rate)``.
    """
    if model not in MODELS:
        raise KeyError(
            f"unknown model {model!r}; choose from {sorted(MODELS)}"
        )
    if n_packets < 1:
        raise ValueError(f"n_packets must be >= 1, got {n_packets}")
    build = MODELS[model]
    probe_rng, *rngs = spawn_rngs(seed, 7)
    probe = build(probe_hours * 3600.0, probe_rng, rate)
    per_sec = max(len(probe) / (probe_hours * 3600.0), 1e-9)
    duration = 1.2 * n_packets / per_sec
    for rng in rngs:
        trace = build(duration, rng, rate)
        if len(trace) >= n_packets:
            break
        duration *= 2.0
    else:
        raise RuntimeError(
            f"model {model!r} produced only {len(trace)} of "
            f"{n_packets} packets; pass a higher rate"
        )
    return PacketTrace(
        trace.name,
        timestamps=trace.timestamps[:n_packets],
        protocols=trace.protocols[:n_packets],
        connection_ids=trace.connection_ids[:n_packets],
        directions=trace.directions[:n_packets],
        sizes=trace.sizes[:n_packets],
        user_data=trace.user_data[:n_packets],
    )
