"""The always-on monitor service.

:class:`MonitorService` consumes arrival batches — from the ``stream``
chunk reader (file mode), a ``replay.Collector`` observer tap (live
mode), or any caller with sorted timestamp arrays — and maintains the
windowed sketch battery:

* a :class:`~repro.monitor.windows.SlidingCountLadder` over the last
  ``window`` seconds (rate + variance-time Hurst),
* a :class:`~repro.monitor.windows.DecayedTopK` over inter-arrival gaps
  (Pareto tail β — the Appendix C diagnostic: renewal gaps with β < 2
  make counts pseudo-self-similar),
* a :class:`~repro.monitor.windows.WindowedQuantileSketch` over packet
  sizes (gaps when no sizes are supplied),
* an :class:`~repro.monitor.estimators.OnlinePoissonCheck` over recent
  arrivals,
* CUSUM + Page–Hinkley on the per-tick rate series and CUSUM on the
  per-snapshot Hurst series.

Every ``snapshot_every`` seconds of *stream time* the service emits a
:class:`MonitorSnapshot` carrying the live estimates, any new alarms,
and a verdict in {``warming-up``, ``nonstationary``, ``self-similar``,
``poisson-like``, ``indeterminate``}.  ``nonstationary`` wins over
``self-similar`` — the Clegg et al. rule: an elevated H is only
reported as self-similarity when block-mean detrending does not explain
it and the rate detectors are quiet.

Snapshots tick at batch granularity: a batch that jumps several
boundaries emits one snapshot (the live state), not one per missed
tick.  All state is O(window): the ladder retains ``window/bin_width``
bins, reservoirs and panes are capacity-bounded, and nothing grows with
total stream length except the snapshot/alarm history the caller keeps.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.stats.anderson_darling import AndersonDarlingResult
from repro.utils.validation import require_positive

from .changepoint import CusumDetector, PageHinkleyDetector, RegimeShiftAlarm
from .estimators import (
    DriftReport,
    HurstEstimate,
    OnlineHurst,
    OnlinePoissonCheck,
    OnlineTail,
    TailEstimate,
    assess_drift,
)
from .windows import DecayedTopK, SlidingCountLadder, WindowedQuantileSketch

if TYPE_CHECKING:  # pragma: no cover
    from repro.replay.collector import Collector

__all__ = ["MonitorConfig", "MonitorReport", "MonitorService",
           "MonitorSnapshot"]

VERDICTS = ("warming-up", "nonstationary", "self-similar", "poisson-like",
            "indeterminate")


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning for one :class:`MonitorService`.

    The defaults suit a ~50 events/s stream watched over five minutes;
    tests and short scenarios shrink ``window`` / ``snapshot_every`` /
    warmups together.  ``decay=None`` derives a half-life of half the
    window for the decayed sketches (0 when the window is infinite).
    """

    window: float = 300.0        # sliding-window span, seconds
    bin_width: float = 0.1       # ladder bin width, seconds
    snapshot_every: float = 15.0  # stream seconds between snapshots
    rate_tick: float = 1.0       # rate-series sample spacing, seconds
    start: float = 0.0           # stream epoch
    decay: float | None = None   # decayed-sketch rate; None = derived
    tail_fraction: float = 0.05
    tail_capacity: int = 4096
    quantile_capacity: int = 512
    n_panes: int = 8
    min_level: int = 10          # variance-time fit floor
    min_bins: int | None = None  # ladder bins before H is attempted
    n_blocks: int = 8            # detrending blocks for drift assessment
    hurst_gap: float = 0.15      # raw-minus-detrended H that implies drift
    hurst_high: float = 0.65     # H at/above which we may call LRD
    poisson_band: float = 0.15   # |H - 0.5| band for "poisson-like"
    rate_cusum_threshold: float = 10.0
    rate_cusum_drift: float = 1.0
    rate_ph_delta: float = 0.5
    rate_ph_threshold: float = 20.0
    rate_warmup: int = 30        # rate-tick samples per reference estimate
    hurst_cusum_threshold: float = 5.0
    hurst_cusum_drift: float = 0.5
    hurst_warmup: int = 10       # snapshots per Hurst reference estimate
    alarm_limit: int = 2         # PH rate alarms in window that imply drift
    idle_limit: float = 0.35     # empty-tick excess that implies on/off
    verdict_smoothing: int = 5   # snapshots in the verdict's H median
    ad_significance: float = 0.05
    ad_max_samples: int = 2048
    ad_min_samples: int = 30

    def effective_decay(self) -> float:
        if self.decay is not None:
            return self.decay
        if math.isinf(self.window):
            return 0.0
        return math.log(2.0) / (self.window / 2.0)

    def payload(self) -> dict:
        return {
            "window": self.window,
            "bin_width": self.bin_width,
            "snapshot_every": self.snapshot_every,
            "rate_tick": self.rate_tick,
            "decay": self.effective_decay(),
            "tail_fraction": self.tail_fraction,
            "hurst_high": self.hurst_high,
            "hurst_gap": self.hurst_gap,
            "alarm_limit": self.alarm_limit,
            "idle_limit": self.idle_limit,
        }


@dataclass(frozen=True)
class MonitorSnapshot:
    """One periodic reading of the live estimator battery."""

    time: float               # stream time of the snapshot
    n_events: int             # in-range events seen so far (all time)
    window_start: float
    window_end: float
    window_events: int        # events inside the current window
    rate: float               # events/s over the current window
    hurst: HurstEstimate | None
    tail: TailEstimate | None
    poisson: AndersonDarlingResult | None
    drift: DriftReport | None
    alarms: tuple[RegimeShiftAlarm, ...]  # new since the last snapshot
    verdict: str
    memory_bytes: int

    def payload(self) -> dict:
        return {
            "time": self.time,
            "n_events": self.n_events,
            "window": [self.window_start, self.window_end],
            "window_events": self.window_events,
            "rate": self.rate,
            "hurst": None if self.hurst is None else self.hurst.payload(),
            "tail": None if self.tail is None else self.tail.payload(),
            "poisson": None if self.poisson is None else {
                "statistic": self.poisson.statistic,
                "n": self.poisson.n,
                "passed": self.poisson.passed,
            },
            "drift": None if self.drift is None else self.drift.payload(),
            "alarms": [a.payload() for a in self.alarms],
            "verdict": self.verdict,
            "memory_bytes": self.memory_bytes,
        }


@dataclass(frozen=True)
class MonitorReport:
    """Everything a finished (or checkpointed) monitor run produced."""

    config: MonitorConfig
    snapshots: tuple[MonitorSnapshot, ...]
    alarms: tuple[RegimeShiftAlarm, ...]
    n_events: int
    n_batches: int
    duration: float           # stream seconds covered
    wall_time_s: float        # process time spent inside observe()
    memory_bytes: int
    final_verdict: str = field(default="warming-up")

    @property
    def events_per_s(self) -> float:
        return self.n_events / self.wall_time_s if self.wall_time_s else 0.0

    def verdict_counts(self) -> dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for snap in self.snapshots:
            out[snap.verdict] += 1
        return out

    def modal_verdict(self, after: float = 0.0) -> str:
        """Most common settled verdict among snapshots at/after ``after``.

        ``final_verdict`` votes over the trailing quarter, which suits a
        live dashboard but lets one late excursion (a single giant
        heavy-tail lull, say) recolor a long stable run.  The mode over
        the whole post-warmup history is the robust offline summary;
        ties break toward the most recent verdict.
        """
        tail = [s.verdict for s in self.snapshots
                if s.time >= after and s.verdict != "warming-up"]
        if not tail:
            return "warming-up"
        counts = Counter(tail)
        top = max(counts.values())
        return next(v for v in reversed(tail) if counts[v] == top)

    def payload(self) -> dict:
        return {
            "config": self.config.payload(),
            "n_events": self.n_events,
            "n_batches": self.n_batches,
            "n_snapshots": len(self.snapshots),
            "n_alarms": len(self.alarms),
            "duration": self.duration,
            "wall_time_s": self.wall_time_s,
            "events_per_s": self.events_per_s,
            "memory_bytes": self.memory_bytes,
            "final_verdict": self.final_verdict,
            "verdict_counts": self.verdict_counts(),
            "alarms": [a.payload() for a in self.alarms],
            "snapshots": [s.payload() for s in self.snapshots],
        }

    def bench_payload(self) -> dict:
        return {
            "n_events": self.n_events,
            "n_batches": self.n_batches,
            "n_snapshots": len(self.snapshots),
            "n_alarms": len(self.alarms),
            "duration": self.duration,
            "wall_time_s": self.wall_time_s,
            "events_per_s": self.events_per_s,
            "memory_bytes": self.memory_bytes,
            "final_verdict": self.final_verdict,
        }

    def render(self) -> str:
        from repro.experiments.report import format_table

        rows = []
        step = max(len(self.snapshots) // 24, 1)  # thin long runs
        shown = self.snapshots[::step]
        if shown and shown[-1] is not self.snapshots[-1]:
            shown = list(shown) + [self.snapshots[-1]]
        for snap in shown:
            rows.append({
                "t_s": f"{snap.time:.1f}",
                "rate_s": f"{snap.rate:.1f}",
                "H": "-" if snap.hurst is None
                     else f"{snap.hurst.hurst:.3f}",
                "beta": "-" if snap.tail is None
                        else f"{snap.tail.shape:.2f}",
                "alarms": len(snap.alarms),
                "verdict": snap.verdict,
            })
        table = format_table(rows, title="monitor snapshots")
        lines = [
            "monitor report",
            f"  events {self.n_events}  batches {self.n_batches}  "
            f"stream {self.duration:.1f}s  wall {self.wall_time_s:.3f}s  "
            f"({self.events_per_s:,.0f} ev/s)  "
            f"memory {self.memory_bytes / 1024:.1f} KiB",
            f"  final verdict: {self.final_verdict}  "
            f"alarms: {len(self.alarms)}",
            table,
        ]
        for alarm in self.alarms:
            lines.append("  " + alarm.describe())
        return "\n".join(lines)


class MonitorService:
    """Always-on estimation over a live or replayed packet stream.

    Feed sorted timestamp batches through :meth:`observe` (optionally
    with per-packet sizes); each call returns the snapshots whose
    boundaries the batch crossed.  :meth:`attach` taps a
    ``replay.Collector``; :meth:`run_file` drives a trace file through
    the same path.
    """

    def __init__(self, config: MonitorConfig | None = None):
        self.config = cfg = config or MonitorConfig()
        require_positive(cfg.snapshot_every, "snapshot_every")
        require_positive(cfg.rate_tick, "rate_tick")
        decay = cfg.effective_decay()
        self.ladder = SlidingCountLadder(
            cfg.bin_width, start=cfg.start, window=cfg.window
        )
        self.gap_tail = DecayedTopK(cfg.tail_capacity, decay=decay)
        self.size_quantiles = WindowedQuantileSketch(
            cfg.quantile_capacity, window=cfg.window,
            n_panes=cfg.n_panes, start=cfg.start,
        )
        self.poisson_check = OnlinePoissonCheck(
            window=min(cfg.window, 1e12),
            max_samples=cfg.ad_max_samples,
            min_samples=cfg.ad_min_samples,
            significance=cfg.ad_significance,
        )
        self._hurst = OnlineHurst(self.ladder, min_level=cfg.min_level,
                                  min_bins=cfg.min_bins)
        self._tail = OnlineTail(self.gap_tail,
                                tail_fraction=cfg.tail_fraction)
        self.rate_cusum = CusumDetector(
            cfg.rate_cusum_threshold, cfg.rate_cusum_drift,
            warmup=cfg.rate_warmup, series="rate",
        )
        self.rate_ph = PageHinkleyDetector(
            cfg.rate_ph_delta, cfg.rate_ph_threshold,
            warmup=cfg.rate_warmup, series="rate",
        )
        self.hurst_cusum = CusumDetector(
            cfg.hurst_cusum_threshold, cfg.hurst_cusum_drift,
            warmup=cfg.hurst_warmup, series="hurst",
        )
        self.snapshots: list[MonitorSnapshot] = []
        self.alarms: list[RegimeShiftAlarm] = []
        self._pending_alarms: list[RegimeShiftAlarm] = []
        self._rate_alarm_times: deque[float] = deque()
        self._recent_h: deque[float] = deque(maxlen=max(cfg.verdict_smoothing, 1))
        self.n_events = 0
        self.n_batches = 0
        self.wall_time_s = 0.0
        self._last_time = -np.inf
        self._first_time: float | None = None
        self._next_snapshot: float | None = None
        self._tick_index: int | None = None  # open rate-tick bucket
        self._tick_count = 0
        # Closed-tick counts covering roughly one window, for the
        # idle-excess (on/off modulation) symptom; bounded even when the
        # window is infinite so memory stays O(window or constant).
        n_ticks = (int(math.ceil(cfg.window / cfg.rate_tick))
                   if math.isfinite(cfg.window) else 4096)
        self._tick_history: deque[int] = deque(maxlen=max(n_ticks, 1))

    # -- ingestion -----------------------------------------------------
    def observe(self, times, sizes=None) -> list[MonitorSnapshot]:
        """Absorb one batch of sorted arrival times; return new snapshots."""
        t0 = time.perf_counter()
        arr = np.asarray(times, dtype=float)
        out: list[MonitorSnapshot] = []
        if arr.size == 0:
            self.wall_time_s += time.perf_counter() - t0
            return out
        self.n_batches += 1
        self.n_events += int(arr.size)
        cfg = self.config

        self.ladder.update(arr)
        # Inter-arrival gaps, chained across batches; each gap is stamped
        # with the arrival that closed it so decay ages it correctly.
        if math.isfinite(self._last_time):
            gaps = np.diff(arr, prepend=self._last_time)
        else:
            gaps = np.diff(arr)
        if gaps.size:
            pos = gaps > 0
            if np.any(pos):
                self.gap_tail.update(gaps[pos], arr[arr.size - gaps.size:][pos])
        if sizes is not None:
            sz = np.asarray(sizes, dtype=float)
            self.size_quantiles.update(sz, arr)
        else:
            if gaps.size:
                self.size_quantiles.update(gaps, arr[arr.size - gaps.size:])
        self.poisson_check.update(arr)
        self._update_rate_series(arr)

        last = float(arr[-1])
        if self._first_time is None:
            self._first_time = float(arr[0])
            self._next_snapshot = self._first_time + cfg.snapshot_every
        self._last_time = max(self._last_time, last)
        if last >= self._next_snapshot:
            out.append(self._emit_snapshot(last))
            self._next_snapshot = last + cfg.snapshot_every
        self.wall_time_s += time.perf_counter() - t0
        return out

    def _update_rate_series(self, arr: np.ndarray) -> None:
        """Fold a batch into fixed rate-tick buckets; every *closed*
        bucket (including empty ones the stream skipped) becomes one
        rate sample for the change-point detectors."""
        cfg = self.config
        idx = np.floor((arr - cfg.start) / cfg.rate_tick).astype(np.int64)
        if self._tick_index is None:
            self._tick_index = int(idx[0])
        buckets, counts = np.unique(idx, return_counts=True)
        for bucket, count in zip(buckets, counts):
            bucket = int(bucket)
            if bucket < self._tick_index:
                continue  # straggler behind the open tick: fold forward
            while bucket > self._tick_index:
                self._close_tick()
            self._tick_count += int(count)

    def _close_tick(self) -> None:
        cfg = self.config
        tick_end = cfg.start + (self._tick_index + 1) * cfg.rate_tick
        rate = self._tick_count / cfg.rate_tick
        for detector in (self.rate_cusum, self.rate_ph):
            alarm = detector.update(rate, time=tick_end)
            if alarm is not None:
                self._record_alarm(alarm)
        self._tick_history.append(self._tick_count)
        self._tick_index += 1
        self._tick_count = 0

    def idle_excess(self) -> float:
        """Empty-tick fraction beyond the Poisson expectation.

        A Poisson stream at the window's mean per-tick rate μ leaves a
        tick empty with probability ``exp(-μ)``; ON/OFF rate modulation
        leaves far more.  The excess is the on/off signature the drift
        assessor thresholds against ``idle_limit``.
        """
        ticks = self._tick_history
        if not ticks:
            return 0.0
        mean = sum(ticks) / len(ticks)
        idle = sum(1 for c in ticks if c == 0) / len(ticks)
        return max(0.0, idle - math.exp(-mean))

    def _record_alarm(self, alarm: RegimeShiftAlarm) -> None:
        self.alarms.append(alarm)
        self._pending_alarms.append(alarm)
        # Only Page–Hinkley rate alarms count as drift evidence: CUSUM is
        # the fast alert channel and fires occasionally on bursty but
        # stationary heavy-tailed streams, while PH with a wide allowance
        # stays quiet unless the mean level genuinely moves.
        if alarm.series == "rate" and alarm.detector == "page-hinkley":
            self._rate_alarm_times.append(alarm.time)

    def _rate_alarms_in_window(self, now: float) -> int:
        horizon = now - self.config.window
        while self._rate_alarm_times and self._rate_alarm_times[0] < horizon:
            self._rate_alarm_times.popleft()
        return len(self._rate_alarm_times)

    # -- snapshotting --------------------------------------------------
    def _emit_snapshot(self, now: float) -> MonitorSnapshot:
        cfg = self.config
        hurst = self._hurst.estimate()
        tail = self._tail.estimate()
        poisson = self.poisson_check.check()
        drift: DriftReport | None = None
        rate_alarms = self._rate_alarms_in_window(now)
        idle = self.idle_excess()
        if hurst is not None:
            self._recent_h.append(hurst.hurst)
            alarm = self.hurst_cusum.update(hurst.hurst, time=now)
            if alarm is not None:
                self._record_alarm(alarm)
            drift = assess_drift(
                self.ladder.window_process(), hurst.hurst, rate_alarms,
                n_blocks=cfg.n_blocks, min_level=cfg.min_level,
                hurst_gap=cfg.hurst_gap, hurst_high=cfg.hurst_high,
                alarm_limit=cfg.alarm_limit,
                idle_excess=idle, idle_limit=cfg.idle_limit,
            )
        lo, hi = self.ladder.window_bounds()
        window_events = int(self.ladder.window_counts().sum())
        span = hi - lo
        verdict = self._verdict(poisson, drift, rate_alarms, idle)
        snap = MonitorSnapshot(
            time=float(now),
            n_events=self.n_events,
            window_start=lo,
            window_end=hi,
            window_events=window_events,
            rate=window_events / span if span > 0 else 0.0,
            hurst=hurst,
            tail=tail,
            poisson=poisson,
            drift=drift,
            alarms=tuple(self._pending_alarms),
            verdict=verdict,
            memory_bytes=self.memory_bytes,
        )
        self._pending_alarms = []
        self.snapshots.append(snap)
        return snap

    def _verdict(self, poisson, drift, rate_alarms: int,
                 idle_excess: float = 0.0) -> str:
        """Classify the current window.

        Uses the *median* of the last ``verdict_smoothing`` Hurst
        estimates — a single noisy fit must not flip the verdict — and
        gives drift right of way: an elevated H only earns
        ``self-similar`` when detrending cannot explain it and the rate
        detectors are quiet (the Clegg et al. rule).
        """
        cfg = self.config
        # ``ever_warmed`` rather than ``warmed_up``: a detector that has
        # alarmed and is re-estimating its reference has certainly seen
        # enough stream to classify — only the initial warmup blocks.
        warmed = self.rate_cusum.ever_warmed or self.rate_ph.ever_warmed
        if not warmed or not self._recent_h:
            return "warming-up"
        if drift is not None and drift.drifting:
            return "nonstationary"
        if rate_alarms >= cfg.alarm_limit:
            return "nonstationary"  # H unavailable but the rate is moving
        if idle_excess >= cfg.idle_limit:
            return "nonstationary"  # on/off modulation, H or not
        h = float(np.median(self._recent_h))
        if h >= cfg.hurst_high:
            return "self-similar"
        if abs(h - 0.5) <= cfg.poisson_band and (poisson is None
                                                 or poisson.passed):
            return "poisson-like"
        return "indeterminate"

    # -- wiring --------------------------------------------------------
    def tap(self, batch) -> None:
        """Observer-callback adapter for ``replay.Collector``."""
        sizes = getattr(batch, "sizes", None)
        self.observe(batch.timestamps, sizes)

    def attach(self, collector: "Collector") -> None:
        """Register this monitor as the collector's batch observer."""
        collector.set_observer(self.tap)

    def run_file(self, path, kind: str | None = None) -> "MonitorReport":
        """Drive a trace file through the monitor in arrival order."""
        from repro.stream import iter_trace_batches

        for batch in iter_trace_batches(path, kind=kind):
            times = getattr(batch, "timestamps", None)
            if times is None:  # connection batches carry start_times
                self.observe(batch.start_times)
            else:
                self.observe(times, batch.sizes)
        return self.finalize()

    # -- results -------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return int(self.ladder.nbytes + self.gap_tail.nbytes
                   + self.size_quantiles.nbytes + self.poisson_check.nbytes)

    def finalize(self, *, flush: bool = True) -> MonitorReport:
        """Build the report; ``flush`` emits a last snapshot if any
        events arrived after the most recent one."""
        if (flush and self._first_time is not None
                and math.isfinite(self._last_time)
                and (not self.snapshots
                     or self._last_time > self.snapshots[-1].time)):
            self._emit_snapshot(self._last_time)
        duration = (0.0 if self._first_time is None
                    else self._last_time - self._first_time)
        # Majority vote over the trailing quarter of the run, most recent
        # verdict breaking ties: one flappy snapshot at the very end must
        # not overturn a stable classification.
        final = "warming-up"
        if self.snapshots:
            k = max(3, len(self.snapshots) // 4)
            tail = [s.verdict for s in self.snapshots[-k:]]
            counts = Counter(tail)
            top = max(counts.values())
            final = next(v for v in reversed(tail) if counts[v] == top)
        return MonitorReport(
            config=self.config,
            snapshots=tuple(self.snapshots),
            alarms=tuple(self.alarms),
            n_events=self.n_events,
            n_batches=self.n_batches,
            duration=float(duration),
            wall_time_s=self.wall_time_s,
            memory_bytes=self.memory_bytes,
            final_verdict=final,
        )
