"""Online change-point detectors for the monitor's estimator series.

Two classics, both O(1) per sample and parameter-light:

* **CUSUM** (Page 1954): two-sided cumulative sums of standardized
  deviations with an allowance ``drift``; alarms when either side's
  statistic exceeds ``threshold`` standard deviations.  Best for abrupt
  mean shifts (a Hurst step, a rate step).
* **Page–Hinkley**: cumulative deviation minus its running extremum;
  alarms when the gap exceeds ``threshold``.  More sensitive to slow
  ramps (diurnal drift) than CUSUM with the same allowance.

Both standardize against a reference mean/std estimated from the first
``warmup`` samples of the current regime, re-arming after every alarm so
a monitored series can step multiple times.  Detection latency is
reported in *samples since the statistic last left zero* (CUSUM) or
since the running extremum (Page–Hinkley) — i.e. how long the detector
watched the new regime before calling it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["CusumDetector", "PageHinkleyDetector", "RegimeShiftAlarm"]


@dataclass(frozen=True)
class RegimeShiftAlarm:
    """A typed regime-shift alarm emitted by an online detector."""

    detector: str          # "cusum" | "page-hinkley"
    series: str            # what was monitored, e.g. "rate", "hurst"
    time: float            # stream time of the alarming sample
    index: int             # sample index within the monitored series
    direction: str         # "up" | "down"
    statistic: float       # detector statistic at alarm
    threshold: float       # configured alarm threshold
    reference_mean: float  # mean of the regime the series departed from
    detection_latency: int  # samples between shift onset estimate and alarm

    def payload(self) -> dict:
        return {
            "detector": self.detector,
            "series": self.series,
            "time": self.time,
            "index": self.index,
            "direction": self.direction,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "reference_mean": self.reference_mean,
            "detection_latency": self.detection_latency,
        }

    def describe(self) -> str:
        return (f"{self.detector}[{self.series}] {self.direction} at "
                f"t={self.time:.1f}s (stat {self.statistic:.2f} > "
                f"{self.threshold:.2f}, latency {self.detection_latency})")


class _DetectorBase:
    """Warmup/re-arm plumbing shared by both detectors."""

    def __init__(self, warmup: int, series: str):
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        self.warmup = int(warmup)
        self.series = str(series)
        self.n_samples = 0   # samples seen over the detector's lifetime
        self.n_alarms = 0
        self.ever_warmed = False  # completed at least one warmup ever
        self._warming = True
        self._warm: list[float] = []
        self.ref_mean = 0.0
        self.ref_std = 1.0
        self._reset_state()

    def _reset_state(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _rearm(self) -> None:
        """Forget the reference; re-estimate it from upcoming samples."""
        self._warming = True
        self._warm = []
        self._reset_state()

    @property
    def warmed_up(self) -> bool:
        return not self._warming

    def _absorb_warmup(self, x: float) -> bool:
        """Collect reference samples; True while still warming up."""
        if not self._warming:
            return False
        self._warm.append(x)
        if len(self._warm) < self.warmup:
            return True
        arr = np.asarray(self._warm, dtype=float)
        self.ref_mean = float(arr.mean())
        std = float(arr.std())
        # Guard constant warmups (a flat series would alarm on any noise).
        self.ref_std = std if std > 1e-12 else max(abs(self.ref_mean), 1.0) * 1e-3
        self._warm = []
        self._warming = False
        self.ever_warmed = True
        return True


class CusumDetector(_DetectorBase):
    """Two-sided standardized CUSUM with automatic re-arm after alarms.

    ``threshold`` (h) and ``drift`` (k) are in reference-standard-
    deviation units; the textbook tuning h≈5, k≈0.5 detects a 1σ mean
    shift with average run length in the hundreds under H0.
    """

    def __init__(self, threshold: float = 6.0, drift: float = 0.5,
                 warmup: int = 20, series: str = ""):
        require_positive(threshold, "threshold")
        if drift < 0:
            raise ValueError(f"drift must be >= 0, got {drift}")
        self.threshold = float(threshold)
        self.drift = float(drift)
        super().__init__(warmup, series)

    def _reset_state(self) -> None:
        self._g_up = 0.0
        self._g_dn = 0.0
        self._run_up = 0  # samples since g_up last sat at zero
        self._run_dn = 0

    def update(self, x: float, time: float = 0.0) -> RegimeShiftAlarm | None:
        self.n_samples += 1
        if self._absorb_warmup(float(x)):
            return None
        s = (float(x) - self.ref_mean) / self.ref_std
        self._g_up = max(0.0, self._g_up + s - self.drift)
        self._run_up = self._run_up + 1 if self._g_up > 0 else 0
        self._g_dn = max(0.0, self._g_dn - s - self.drift)
        self._run_dn = self._run_dn + 1 if self._g_dn > 0 else 0
        if self._g_up <= self.threshold and self._g_dn <= self.threshold:
            return None
        up = self._g_up > self._g_dn
        alarm = RegimeShiftAlarm(
            detector="cusum",
            series=self.series,
            time=float(time),
            index=self.n_samples - 1,
            direction="up" if up else "down",
            statistic=float(self._g_up if up else self._g_dn),
            threshold=self.threshold,
            reference_mean=self.ref_mean,
            detection_latency=int(self._run_up if up else self._run_dn),
        )
        self.n_alarms += 1
        self._rearm()
        return alarm


class PageHinkleyDetector(_DetectorBase):
    """Two-sided Page–Hinkley test with automatic re-arm after alarms.

    ``delta`` is the magnitude allowance and ``threshold`` the alarm
    level, both in reference-standard-deviation units (the series is
    standardized against the warmup reference before accumulation).
    """

    def __init__(self, delta: float = 0.25, threshold: float = 8.0,
                 warmup: int = 20, series: str = ""):
        require_positive(threshold, "threshold")
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        super().__init__(warmup, series)

    def _reset_state(self) -> None:
        self._cum_up = 0.0
        self._min_up = 0.0
        self._argmin_up = 0
        self._cum_dn = 0.0
        self._max_dn = 0.0
        self._argmax_dn = 0
        self._k = 0  # post-warmup sample counter for the current regime

    def update(self, x: float, time: float = 0.0) -> RegimeShiftAlarm | None:
        self.n_samples += 1
        if self._absorb_warmup(float(x)):
            return None
        s = (float(x) - self.ref_mean) / self.ref_std
        self._k += 1
        self._cum_up += s - self.delta
        if self._cum_up < self._min_up:
            self._min_up = self._cum_up
            self._argmin_up = self._k
        ph_up = self._cum_up - self._min_up
        self._cum_dn += s + self.delta
        if self._cum_dn > self._max_dn:
            self._max_dn = self._cum_dn
            self._argmax_dn = self._k
        ph_dn = self._max_dn - self._cum_dn
        if ph_up <= self.threshold and ph_dn <= self.threshold:
            return None
        up = ph_up > ph_dn
        alarm = RegimeShiftAlarm(
            detector="page-hinkley",
            series=self.series,
            time=float(time),
            index=self.n_samples - 1,
            direction="up" if up else "down",
            statistic=float(ph_up if up else ph_dn),
            threshold=self.threshold,
            reference_mean=self.ref_mean,
            detection_latency=int(self._k - (self._argmin_up if up
                                             else self._argmax_dn)),
        )
        self.n_alarms += 1
        self._rearm()
        return alarm
