"""Windowed and exponentially-decayed variants of the ``stream.sketches``.

The batch sketches accumulate *forever*: a :class:`~repro.stream.sketches.
CountLadder` holds every bin since the stream began, a ``TopK`` never
forgets a large value.  An always-on monitor instead wants the *recent*
stream — the last ``W`` seconds, or an exponentially-decayed view — while
keeping the two contracts that make the batch family composable:

* **Twin reduction.**  Every windowed sketch with ``window=inf`` (or
  ``decay=0``) is *bit-identical* to its unbounded ``stream.sketches``
  twin: same counts, same order statistics, same estimator outputs.  The
  windowed family is a strict generalization, not a parallel code path
  with its own rounding.
* **Exact-merge algebra.**  ``merge`` stays associative and (for the
  integer/order-statistic sketches) order-invariant, so sharded
  collectors — N replay receivers each running a monitor — combine into
  the same windowed state as one receiver seeing the whole stream.
  Windowing commutes with merging because eviction depends only on the
  *merged* maximum event time, which is itself order-invariant, and each
  shard's own evictions are always a subset of the merged eviction.

Decay semantics: a decayed sketch stores raw ``(value, event-time)``
pairs and derives weights ``exp(-decay * (now - t))`` *lazily* at query
time, with the effective sample count ``n_eff`` carried as a
``(mass, reference-time)`` pair.  Storing times instead of pre-decayed
weights is what makes the merge order-invariant: the union of two shards'
pairs is a set, and every weight is a pure function of the pair and the
merged clock.
"""

from __future__ import annotations

import math

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.utils.binning import bin_edges
from repro.utils.validation import require_positive

__all__ = [
    "DecayedMoments",
    "DecayedTopK",
    "SlidingCountLadder",
    "WindowedQuantileSketch",
]


# ----------------------------------------------------------------------
# sliding count ladder
# ----------------------------------------------------------------------
class SlidingCountLadder:
    """Ring-buffered :class:`~repro.stream.sketches.CountLadder` over the
    last ``window`` seconds.

    Bins are indexed *absolutely* (bin ``j`` covers ``[start + j*w,
    start + (j+1)*w)``) and the buffer retains the trailing
    ``ceil(window / bin_width)`` bins ending at the bin holding the
    largest event time seen.  Bins that slide out of the window are
    *evicted* — their events move from :attr:`n_events` to
    :attr:`evicted_events` — so memory is ``O(window / bin_width)``,
    independent of stream length.  ``window=inf`` never evicts and is
    bit-identical to the open-mode ``CountLadder`` (same edge arithmetic,
    same closed-right final bin, same trailing-partial-bin drop).

    Events older than the retained window (stragglers from a slow shard)
    are dropped and counted in :attr:`late_events` rather than silently
    mis-binned.
    """

    def __init__(
        self,
        bin_width: float,
        *,
        start: float = 0.0,
        window: float = math.inf,
        weighted: bool = False,
    ):
        require_positive(bin_width, "bin_width")
        require_positive(window, "window")
        self.bin_width = float(bin_width)
        self.start = float(start)
        self.window = float(window)
        self.weighted = bool(weighted)
        #: Retained trailing bins; ``None`` means never evict.
        self.window_bins = (
            None if math.isinf(self.window)
            else max(int(math.ceil(self.window / self.bin_width)), 1)
        )
        dtype = float if weighted else np.int64
        self.offset = 0  # absolute index of counts[0]
        self.counts = np.zeros(64, dtype=dtype)
        # Events sitting exactly on their slot's left edge (see
        # CountLadder: needed to fold the closed-right final edge).
        self._edge_hits = np.zeros(64, dtype=dtype)
        self.n_events = 0        # events (or weight) in retained bins
        self.evicted_events = 0  # slid out of the window
        self.late_events = 0     # arrived behind the retained window
        self.max_time = -np.inf
        self._idx_max = -1       # absolute bin index holding max_time

    # -- geometry ------------------------------------------------------
    def _local_edges(self, n_local: int) -> np.ndarray:
        """Edges for retained bins ``offset .. offset + n_local``.

        Element ``j`` is ``start + bin_width * (offset + j)`` — the same
        float product ``CountLadder._make_edges`` produces for the
        absolute index, so binning is bit-identical at any offset.
        """
        idx = np.arange(self.offset, self.offset + n_local + 1, dtype=np.int64)
        return self.start + self.bin_width * idx

    def _grow_to(self, n_local: int) -> None:
        if n_local <= self.counts.size:
            return
        grown = 1 << (n_local - 1).bit_length()
        for attr in ("counts", "_edge_hits"):
            new = np.zeros(grown, dtype=self.counts.dtype)
            old = getattr(self, attr)
            new[: old.size] = old
            setattr(self, attr, new)

    def _evict(self) -> None:
        if self.window_bins is None:
            return
        cutoff = self._idx_max - self.window_bins + 1
        if cutoff <= self.offset:
            return
        drop = cutoff - self.offset
        gone = self.counts[:drop].sum()
        self.evicted_events += int(gone) if not self.weighted else float(gone)
        self.n_events -= int(gone) if not self.weighted else float(gone)
        # Trim trailing growth slack too: a single wide batch can have
        # grown the buffer far past the window, and retaining that tail
        # would leak O(batch span) instead of O(window).  Live local
        # indices run up to ``_idx_max - cutoff`` plus one final-edge
        # slot read by ``finalize``.
        live = self._idx_max - cutoff + 2
        cap = max(64, 1 << (live - 1).bit_length())
        self.counts = self.counts[drop:drop + cap].copy()
        self._edge_hits = self._edge_hits[drop:drop + cap].copy()
        self.offset = cutoff

    # -- updates -------------------------------------------------------
    def update(self, times, weights=None) -> None:
        arr = np.asarray(times, dtype=float)
        if arr.size == 0:
            return
        if self.weighted:
            if weights is None:
                raise ValueError("weighted ladder requires weights")
            w = np.asarray(weights, dtype=float)
        else:
            if weights is not None:
                raise ValueError("unweighted ladder got weights")
            w = None
        hi = float(arr.max())
        if hi > self.max_time:
            self.max_time = hi
        needed = int(np.floor((hi - self.start) / self.bin_width)) + 2
        n_local = needed - self.offset
        if n_local > 0:
            self._grow_to(n_local)
        edges = self._local_edges(self.counts.size - 1)
        idx = np.searchsorted(edges, arr, side="right") - 1
        valid = idx >= 0  # before ``start``, or behind the retained window
        if not np.all(valid):
            behind = arr[~valid] >= self.start
            self.late_events += int(np.count_nonzero(behind))
        idx = idx[valid]
        vals = arr[valid]
        wv = None if w is None else w[valid]
        if idx.size:
            self._idx_max = max(self._idx_max, self.offset + int(idx.max()))
        on_edge = vals == edges[idx]
        if self.weighted:
            self.n_events += float(wv.sum())
            self.counts += np.bincount(idx, weights=wv,
                                       minlength=self.counts.size)
            if np.any(on_edge):
                self._edge_hits += np.bincount(
                    idx[on_edge], weights=wv[on_edge],
                    minlength=self.counts.size,
                )
        else:
            self.n_events += int(idx.size)
            self.counts += np.bincount(idx, minlength=self.counts.size)
            if np.any(on_edge):
                self._edge_hits += np.bincount(
                    idx[on_edge], minlength=self.counts.size
                )
        self._evict()

    # -- merge ---------------------------------------------------------
    def merge(self, other: "SlidingCountLadder") -> None:
        if (other.bin_width != self.bin_width or other.start != self.start
                or other.window != self.window
                or other.weighted != self.weighted):
            raise ValueError("cannot merge ladders with different layouts")
        lo = min(self.offset, other.offset)
        hi = max(self.offset + self.counts.size,
                 other.offset + other.counts.size)
        dtype = self.counts.dtype
        counts = np.zeros(hi - lo, dtype=dtype)
        edge_hits = np.zeros(hi - lo, dtype=dtype)
        for part in (self, other):
            sl = slice(part.offset - lo, part.offset - lo + part.counts.size)
            counts[sl] += part.counts
            edge_hits[sl] += part._edge_hits
        self.offset = lo
        self.counts = counts
        self._edge_hits = edge_hits
        self.n_events += other.n_events
        self.evicted_events += other.evicted_events
        self.late_events += other.late_events
        self.max_time = max(self.max_time, other.max_time)
        self._idx_max = max(self._idx_max, other._idx_max)
        self._evict()

    # -- results -------------------------------------------------------
    def finalize(self) -> np.ndarray:
        """Per-bin counts over the retained whole-bin window.

        Batch semantics, exactly as ``CountLadder.finalize``: the window
        ends at the largest event time, the trailing partial bin is
        dropped, and events sitting exactly on the final edge fold into
        the last (closed-right) bin.
        """
        if self.n_events == 0 or self.max_time < self.start:
            return self.counts[:0].copy()
        edges = bin_edges(self.start, self.max_time, self.bin_width)
        n_abs = len(edges) - 1
        if n_abs < 1:
            # Zero-span window: every event sits exactly at ``start``.
            return self.counts[:1].copy()
        n_local = n_abs - self.offset
        out = self.counts[:n_local].copy()
        if 0 < n_local < self.counts.size:
            out[-1] += self._edge_hits[n_local]
        return out

    def window_counts(self) -> np.ndarray:
        """The last ``<= window_bins`` whole bins (all bins at inf)."""
        full = self.finalize()
        if self.window_bins is None or full.size <= self.window_bins:
            return full
        return full[-self.window_bins:]

    def window_process(self) -> CountProcess:
        return CountProcess(self.window_counts(), self.bin_width)

    def window_bounds(self) -> tuple[float, float]:
        """``[t_lo, t_hi)`` edges of :meth:`window_counts`'s bins, so a
        batch path can rebuild the identical window from raw times."""
        full = self.finalize()
        n = full.size
        if self.window_bins is not None:
            n = min(n, self.window_bins)
        first = self.offset + (full.size - n)
        lo = self.start + self.bin_width * first
        hi = self.start + self.bin_width * (first + n)
        return float(lo), float(hi)

    def as_count_process(self) -> CountProcess:
        return CountProcess(self.finalize(), self.bin_width)

    @property
    def total_events(self):
        """All in-range events ever accumulated (retained + evicted)."""
        return self.n_events + self.evicted_events

    @property
    def nbytes(self) -> int:
        return (int(self.counts.nbytes) + int(self._edge_hits.nbytes) + 64)


# ----------------------------------------------------------------------
# exponentially-decayed moments
# ----------------------------------------------------------------------
class DecayedMoments:
    """Time-decayed Welford-Chan moments.

    Existing mass is scaled by ``exp(-decay * dt)`` whenever the clock
    advances, then the new batch (treated as a point mass at its own
    ``now``) folds in through the same weighted Chan combination the
    unbounded :class:`~repro.stream.sketches.StreamingMoments` uses —
    with ``decay=0`` every scale factor is exactly ``1.0`` and the
    arithmetic is bit-identical to the twin.  ``min``/``max`` are
    all-time extremes (extremes cannot be decayed without a window).
    """

    __slots__ = ("decay", "n", "mean", "m2", "min", "max", "total", "t_ref")

    def __init__(self, decay: float = 0.0):
        if decay < 0:
            raise ValueError(f"decay must be >= 0, got {decay}")
        self.decay = float(decay)
        self.n = 0.0          # effective (decayed) count
        self.mean = 0.0
        self.m2 = 0.0
        self.min = np.inf
        self.max = -np.inf
        self.total = 0.0      # decayed sum
        self.t_ref = -np.inf  # clock the decayed mass is referenced to

    def _advance(self, now: float) -> None:
        if now <= self.t_ref:
            return
        if self.n:
            scale = math.exp(-self.decay * (now - self.t_ref))
            self.n *= scale
            self.m2 *= scale
            self.total *= scale
        self.t_ref = now

    def update(self, values, now: float | None = None) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self._advance(self.t_ref if now is None else float(now))
        self._combine(float(arr.size), float(arr.mean()),
                      float(((arr - arr.mean()) ** 2).sum()),
                      float(arr.min()), float(arr.max()), float(arr.sum()))

    def merge(self, other: "DecayedMoments") -> None:
        if other.decay != self.decay:
            raise ValueError("cannot merge moments with different decay")
        now = max(self.t_ref, other.t_ref)
        self._advance(now)
        if other.n == 0:
            return
        scale = (math.exp(-self.decay * (now - other.t_ref))
                 if now > other.t_ref else 1.0)
        self._combine(other.n * scale, other.mean, other.m2 * scale,
                      other.min, other.max, other.total * scale)

    def _combine(self, n, mean, m2, lo, hi, total) -> None:
        if n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
            self.min, self.max, self.total = lo, hi, total
            return
        delta = mean - self.mean
        combined = self.n + n
        self.m2 = self.m2 + m2 + delta * delta * (self.n * n / combined)
        self.mean = self.mean + delta * (n / combined)
        self.n = combined
        self.min = min(self.min, lo)
        self.max = max(self.max, hi)
        self.total += total

    @property
    def variance(self) -> float:
        return self.m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def nbytes(self) -> int:
        return 8 * 8

    def __repr__(self):
        return (f"DecayedMoments(decay={self.decay:g}, n_eff={self.n:.6g}, "
                f"mean={self.mean:.6g})")


# ----------------------------------------------------------------------
# exponentially-decayed top-k tail reservoir
# ----------------------------------------------------------------------
class DecayedTopK:
    """Top-``k`` reservoir whose items age out exponentially.

    Stores ``(value, event-time)`` pairs for the ``capacity`` largest
    values still young enough to matter; each item's weight
    ``exp(-decay * (now - t))`` is derived lazily against the reservoir
    clock (the largest event time seen), and the effective sample count
    :attr:`n_eff` decays the same way.  On the ``update`` path, items
    whose weight falls below ``weight_floor`` are evicted, so with
    ``decay > 0`` an ancient outlier cannot dominate the current tail
    fit forever.  ``merge`` is a pure top-k union (no age eviction), so
    merging shards in any order yields the identical reservoir.

    ``decay=0`` keeps every weight at exactly ``1.0`` and ``n_eff ==
    n_seen``; values, Hill estimates, and :meth:`tail_fit` are then
    bit-identical to :class:`~repro.stream.sketches.TopK`.  Merging takes
    the union of the pairs (then re-selects the top ``capacity``), which
    is order-invariant: weights are pure functions of the pair and the
    merged clock.
    """

    __slots__ = ("capacity", "decay", "weight_floor", "values", "times",
                 "n_seen", "n_eff", "t_ref")

    def __init__(self, capacity: int, decay: float = 0.0,
                 weight_floor: float = 1e-9):
        require_positive(capacity, "capacity")
        if decay < 0:
            raise ValueError(f"decay must be >= 0, got {decay}")
        if not 0.0 < weight_floor < 1.0:
            raise ValueError(
                f"weight_floor must be in (0, 1), got {weight_floor}"
            )
        self.capacity = int(capacity)
        self.decay = float(decay)
        self.weight_floor = float(weight_floor)
        self.values = np.empty(0, dtype=float)  # sorted ascending
        self.times = np.empty(0, dtype=float)   # aligned event times
        self.n_seen = 0
        self.n_eff = 0.0
        self.t_ref = -np.inf

    # -- internals -----------------------------------------------------
    @property
    def _max_age(self) -> float:
        if self.decay == 0.0:
            return math.inf
        return -math.log(self.weight_floor) / self.decay

    def _select(self, values: np.ndarray, times: np.ndarray,
                evict_age: bool = True) -> None:
        """Keep the ``capacity`` largest by value (ties broken by time so
        the kept multiset is deterministic under any merge order).

        Age eviction only runs on the sequential ``update`` path
        (``evict_age=True``): inside ``merge`` the selection must be the
        pure top-k union, because dropping by age against an
        *intermediate* merge clock frees capacity slots in one merge
        order but not another and top-k truncation is irreversible.
        Items a merge retains past their floor age just carry a
        negligible weight at query time.
        """
        if evict_age and self.decay > 0.0 and values.size:
            young = (self.t_ref - times) <= self._max_age
            values, times = values[young], times[young]
        order = np.lexsort((times, values))
        values, times = values[order], times[order]
        if values.size > self.capacity:
            values = values[values.size - self.capacity:]
            times = times[times.size - self.capacity:]
        self.values, self.times = values, times

    def _advance(self, now: float) -> None:
        if now <= self.t_ref:
            return
        if self.n_eff:
            self.n_eff *= math.exp(-self.decay * (now - self.t_ref))
        self.t_ref = now

    # -- updates -------------------------------------------------------
    def update(self, values, times=None) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        if times is None:
            t = np.full(arr.size, self.t_ref if self.t_ref > -np.inf else 0.0)
        else:
            t = np.broadcast_to(np.asarray(times, dtype=float), arr.shape)
        self.n_seen += int(arr.size)
        now = max(self.t_ref, float(t.max()))
        self._advance(now)
        if self.decay:
            self.n_eff += float(np.exp(-self.decay * (now - t)).sum())
        else:
            self.n_eff += float(arr.size)
        self._select(np.concatenate([self.values, arr]),
                     np.concatenate([self.times, t]))

    def merge(self, other: "DecayedTopK") -> None:
        if (other.capacity != self.capacity or other.decay != self.decay
                or other.weight_floor != self.weight_floor):
            raise ValueError(
                "cannot merge DecayedTopK with different parameters"
            )
        now = max(self.t_ref, other.t_ref)
        self._advance(now)
        boost = (math.exp(-self.decay * (now - other.t_ref))
                 if now > other.t_ref and other.n_eff else 1.0)
        self.n_eff += other.n_eff * boost
        self.n_seen += other.n_seen
        self._select(np.concatenate([self.values, other.values]),
                     np.concatenate([self.times, other.times]),
                     evict_age=False)

    # -- queries -------------------------------------------------------
    def weights(self) -> np.ndarray:
        """Current item weights, aligned with :attr:`values`."""
        if self.decay == 0.0:
            return np.ones(self.values.size)
        return np.exp(-self.decay * (self.t_ref - self.times))

    def max_tail_fraction(self) -> float:
        """Largest tail fraction :meth:`tail_fit` can serve exactly."""
        if self.n_eff <= 0 or self.values.size < 2:
            return 0.0
        w = self.weights()
        return float(w[1:].sum() / self.n_eff)

    def tail_fit(self, tail_fraction: float = 0.05) -> tuple[float, float, int]:
        """Decay-weighted Pareto ``(location, shape, k)`` of the upper tail.

        The tail holds the smallest set of largest stored values whose
        cumulative weight reaches ``n_eff * tail_fraction`` (at least
        weight 2); the weighted Hill estimate is
        ``W / sum(w_i * ln(v_i / threshold))``.  With ``decay=0`` this is
        the exact batch ``TopK.tail_fit``.  When the reservoir cannot
        cover the requested fraction the error reports the largest
        feasible one (:meth:`max_tail_fraction`) so streaming callers can
        degrade instead of guessing.
        """
        target = max(2.0, math.floor(self.n_eff * tail_fraction))
        if target >= self.n_eff:
            raise ValueError(
                "tail fraction leaves no body below the threshold"
            )
        w = self.weights()
        cum = np.cumsum(w[::-1])  # cumulative weight from the largest down
        k = int(np.searchsorted(cum, target, side="left")) + 1
        if k + 1 > self.values.size:
            raise ValueError(
                f"reservoir holds {self.values.size} of "
                f"{self.n_seen} seen: cannot cover tail fraction "
                f"{tail_fraction:g}; largest feasible fraction is "
                f"{self.max_tail_fraction():.6g}"
            )
        threshold = float(self.values[self.values.size - k - 1])
        if threshold <= 0:
            raise ValueError("Hill estimator requires a positive tail threshold")
        tail = self.values[self.values.size - k:]
        wt = w[w.size - k:]
        logs = wt * np.log(tail / threshold)
        total = float(np.sum(logs))
        if total <= 0:
            raise ValueError("degenerate upper tail")
        mass = float(cum[k - 1])
        return threshold, mass / total, k

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes) + int(self.times.nbytes) + 48

    def __repr__(self):
        return (f"DecayedTopK(capacity={self.capacity}, decay={self.decay:g}, "
                f"n_seen={self.n_seen}, n_eff={self.n_eff:.6g})")


# ----------------------------------------------------------------------
# windowed quantile sketch
# ----------------------------------------------------------------------
class WindowedQuantileSketch:
    """Quantile sketch over the last ``window`` seconds, via time panes.

    The window is split into ``n_panes`` panes of ``window / n_panes``
    seconds; each live pane owns one
    :class:`~repro.stream.sketches.QuantileSketch` and panes older than
    the window behind the newest event are dropped whole.  Queries merge
    the live panes (ascending pane order, so results are deterministic),
    which means the effective horizon ranges between
    ``window * (1 - 1/n_panes)`` and ``window`` — the standard
    pane-granularity tradeoff.  Memory is ``O(n_panes * capacity)``.

    ``window=inf`` keeps a single unbounded pane and delegates verbatim:
    updates, merges, and queries are bit-identical to the twin sketch.
    """

    def __init__(self, capacity: int = 1024, *, window: float = math.inf,
                 n_panes: int = 8, start: float = 0.0):
        require_positive(window, "window")
        if n_panes < 2:
            raise ValueError(f"n_panes must be >= 2, got {n_panes}")
        from repro.stream.sketches import QuantileSketch

        self._sketch_cls = QuantileSketch
        self.capacity = int(capacity)
        self.window = float(window)
        self.start = float(start)
        self.n_panes = int(n_panes)
        self.pane_width = (
            math.inf if math.isinf(self.window) else self.window / n_panes
        )
        self._panes: dict[int, "QuantileSketch"] = {}
        self._pane_max = -1
        if math.isinf(self.window):
            self._panes[0] = QuantileSketch(self.capacity)
            self._pane_max = 0

    # -- updates -------------------------------------------------------
    def update(self, values, times=None) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if math.isinf(self.window):
            self._panes[0].update(arr)
            return
        if times is None:
            raise ValueError("a finite-window sketch requires event times")
        t = np.broadcast_to(np.asarray(times, dtype=float), arr.shape)
        idx = np.floor((t - self.start) / self.pane_width).astype(np.int64)
        self._pane_max = max(self._pane_max, int(idx.max()))
        cutoff = self._pane_max - self.n_panes + 1
        live = idx >= cutoff
        arr, idx = arr[live], idx[live]
        for pane in np.unique(idx):
            sk = self._panes.get(int(pane))
            if sk is None:
                sk = self._panes[int(pane)] = self._sketch_cls(self.capacity)
            sk.update(arr[idx == pane])
        self._evict()

    def _evict(self) -> None:
        cutoff = self._pane_max - self.n_panes + 1
        for pane in [p for p in self._panes if p < cutoff]:
            del self._panes[pane]

    # -- merge ---------------------------------------------------------
    def merge(self, other: "WindowedQuantileSketch") -> None:
        if (other.capacity != self.capacity or other.window != self.window
                or other.n_panes != self.n_panes
                or other.start != self.start):
            raise ValueError(
                "cannot merge windowed sketches with different layouts"
            )
        for pane in sorted(other._panes):
            sk = self._panes.get(pane)
            if sk is None:
                sk = self._panes[pane] = self._sketch_cls(self.capacity)
            sk.merge(other._panes[pane])
        self._pane_max = max(self._pane_max, other._pane_max)
        self._evict()

    # -- queries -------------------------------------------------------
    def merged(self):
        """One :class:`QuantileSketch` over the live panes (a copy)."""
        out = self._sketch_cls(self.capacity)
        for pane in sorted(self._panes):
            out.merge(self._panes[pane])
        return out

    @property
    def n(self) -> int:
        """Items currently inside live panes (all items at ``inf``)."""
        return int(sum(sk.n for sk in self._panes.values()))

    def quantile(self, q: float) -> float:
        return self.merged().quantile(q)

    def quantiles(self, qs) -> np.ndarray:
        sk = self.merged()
        return np.array([sk.quantile(float(q)) for q in np.asarray(qs)])

    def cdf(self, x: float) -> float:
        return self.merged().cdf(x)

    def max_rank_error(self) -> int:
        return self.merged().max_rank_error()

    @property
    def nbytes(self) -> int:
        return int(sum(sk.nbytes for sk in self._panes.values())
                   + 16 * max(len(self._panes), 1))

    def __repr__(self):
        return (f"WindowedQuantileSketch(capacity={self.capacity}, "
                f"window={self.window:g}, panes={len(self._panes)}, "
                f"n={self.n})")
