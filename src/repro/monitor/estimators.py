"""Incremental estimators fed from the windowed sketches.

Each estimator wraps one windowed sketch and turns its current state
into the paper's batch statistic over *the live window only*:

* :class:`OnlineHurst` — variance-time Hurst
  (:mod:`repro.selfsim.variance_time`) on the sliding ladder's count
  process, bit-identical to the batch curve computed from the same
  window of raw times.
* :class:`OnlineTail` — Pareto β via the decayed TopK's weighted
  ``tail_fit``, degrading to the largest feasible tail fraction when the
  reservoir cannot cover the requested one.
* :class:`OnlinePoissonCheck` — Anderson–Darling exponentiality of the
  most recent inter-arrival gaps (the paper's session-arrival test).

Plus the Clegg discrimination step: :func:`detrended_hurst` removes
block means before re-estimating H, so a mean *drift* that fakes LRD
collapses toward 0.5 while genuine self-similarity survives — the gap
between raw and detrended H, together with the rate-alarm count, drives
the monitor's ``nonstationary`` verdict.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.selfsim.counts import CountProcess
from repro.selfsim.variance_time import variance_time_curve
from repro.stats.anderson_darling import (
    AndersonDarlingResult,
    anderson_darling_exponential,
)

from .windows import DecayedTopK, SlidingCountLadder

__all__ = [
    "DriftReport",
    "HurstEstimate",
    "OnlineHurst",
    "OnlinePoissonCheck",
    "OnlineTail",
    "TailEstimate",
    "detrended_hurst",
]


# ----------------------------------------------------------------------
# Hurst
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HurstEstimate:
    """Variance-time H over the ladder's current window."""

    hurst: float
    slope: float
    n_bins: int
    window_start: float
    window_end: float
    min_level: int

    def payload(self) -> dict:
        return {
            "hurst": self.hurst,
            "slope": self.slope,
            "n_bins": self.n_bins,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "min_level": self.min_level,
        }


class OnlineHurst:
    """Variance-time Hurst over a :class:`SlidingCountLadder`'s window.

    ``min_bins`` must give the curve enough aggregation levels for the
    fit: with the repo's ``default_levels`` convention, ``min_level=10``
    needs at least ``50 * min_level`` bins, so the default window of 512
    bins clears it with margin.  Returns ``None`` until then.
    """

    def __init__(self, ladder: SlidingCountLadder, *, min_level: int = 10,
                 min_bins: int | None = None, min_events: int = 256):
        self.ladder = ladder
        self.min_level = int(min_level)
        self.min_bins = (50 * self.min_level if min_bins is None
                         else int(min_bins))
        self.min_events = int(min_events)

    def estimate(self) -> HurstEstimate | None:
        counts = self.ladder.window_counts()
        if counts.size < self.min_bins or counts.sum() < self.min_events:
            return None
        process = CountProcess(counts, self.ladder.bin_width)
        try:
            curve = variance_time_curve(process)
            if not np.all(curve.variances > 0):
                return None  # a level collapsed; the slope would be -inf
            slope = curve.slope(min_level=self.min_level)
        except ValueError:
            return None
        if not np.isfinite(slope):
            return None
        hurst = 1.0 + slope / 2.0
        lo, hi = self.ladder.window_bounds()
        return HurstEstimate(
            hurst=float(hurst),
            slope=float(slope),
            n_bins=int(counts.size),
            window_start=lo,
            window_end=hi,
            min_level=self.min_level,
        )


# ----------------------------------------------------------------------
# Pareto tail
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TailEstimate:
    """Decay-weighted Pareto tail fit, possibly at a degraded fraction."""

    location: float
    shape: float
    k: int
    fraction: float            # fraction actually used
    requested_fraction: float  # fraction the monitor asked for
    degraded: bool             # True when reservoir forced a smaller one

    def payload(self) -> dict:
        return {
            "location": self.location,
            "shape": self.shape,
            "k": self.k,
            "fraction": self.fraction,
            "requested_fraction": self.requested_fraction,
            "degraded": self.degraded,
        }


class OnlineTail:
    """Pareto β from a :class:`DecayedTopK`, degrading gracefully.

    When the reservoir cannot cover ``tail_fraction`` of the effective
    sample count, the estimate silently falls back to a slightly
    smaller-than-feasible fraction and flags ``degraded=True`` — the
    monitor keeps reporting a tail rather than erroring out mid-stream.
    """

    def __init__(self, topk: DecayedTopK, *, tail_fraction: float = 0.05,
                 min_samples: int = 100):
        if not 0.0 < tail_fraction < 1.0:
            raise ValueError(
                f"tail_fraction must be in (0, 1), got {tail_fraction}"
            )
        self.topk = topk
        self.tail_fraction = float(tail_fraction)
        self.min_samples = int(min_samples)

    def estimate(self) -> TailEstimate | None:
        if self.topk.n_seen < self.min_samples:
            return None
        fraction = self.tail_fraction
        degraded = False
        feasible = self.topk.max_tail_fraction()
        if feasible <= 0:
            return None
        if fraction > feasible:
            # Back off just below feasible so the +1 threshold item fits.
            fraction = feasible * 0.999
            degraded = True
        try:
            location, shape, k = self.topk.tail_fit(fraction)
        except ValueError:
            return None
        return TailEstimate(
            location=float(location),
            shape=float(shape),
            k=int(k),
            fraction=fraction,
            requested_fraction=self.tail_fraction,
            degraded=degraded,
        )


# ----------------------------------------------------------------------
# Poisson check
# ----------------------------------------------------------------------
class OnlinePoissonCheck:
    """Anderson–Darling exponentiality over recent inter-arrival gaps.

    Keeps the last ``max_samples`` arrival times (dropping any older
    than ``window`` behind the newest) and tests their gaps with the
    Case-3 A² statistic.  O(max_samples) memory regardless of stream
    length.
    """

    def __init__(self, *, window: float = 300.0, max_samples: int = 2048,
                 min_samples: int = 30, significance: float = 0.05):
        if min_samples < 3:
            raise ValueError(f"min_samples must be >= 3, got {min_samples}")
        self.window = float(window)
        self.min_samples = int(min_samples)
        self.significance = float(significance)
        self._times: deque[float] = deque(maxlen=int(max_samples))

    def update(self, times) -> None:
        arr = np.asarray(times, dtype=float)
        if arr.size == 0:
            return
        self._times.extend(arr.tolist())
        newest = self._times[-1]
        while self._times and newest - self._times[0] > self.window:
            self._times.popleft()

    def check(self) -> AndersonDarlingResult | None:
        if len(self._times) < self.min_samples + 1:
            return None
        gaps = np.diff(np.asarray(self._times, dtype=float))
        gaps = gaps[gaps > 0]
        if gaps.size < self.min_samples:
            return None
        return anderson_darling_exponential(
            gaps, significance=self.significance
        )

    @property
    def nbytes(self) -> int:
        return 8 * (self._times.maxlen or len(self._times))


# ----------------------------------------------------------------------
# LRD-vs-drift discrimination
# ----------------------------------------------------------------------
def detrended_hurst(process: CountProcess, *, n_blocks: int = 8,
                    min_level: int = 10) -> float | None:
    """Variance-time H after removing block-local means.

    Splits the count series into ``n_blocks`` equal blocks and replaces
    each block's mean with the grand mean before re-estimating H.  A
    nonstationary mean (diurnal ramp, load step) inflates the *raw*
    variance-time slope at large aggregation levels — the Clegg et al.
    failure mode — but contributes nothing once block means are gone,
    so ``H_raw - H_detrended`` is large under drift and near zero for
    genuine long-range dependence.
    """
    counts = np.asarray(process.counts, dtype=float)
    if counts.size < max(2 * n_blocks, 100):
        return None
    block = counts.size // n_blocks
    trimmed = counts[: block * n_blocks]
    blocks = trimmed.reshape(n_blocks, block)
    detrended = blocks - blocks.mean(axis=1, keepdims=True) + trimmed.mean()
    flat = CountProcess(detrended.ravel(), process.bin_width)
    try:
        curve = variance_time_curve(flat, normalized=False)
        if not np.all(curve.variances > 0):
            return None
        hurst = curve.hurst(min_level=min_level)
    except ValueError:
        return None
    if not np.isfinite(hurst):
        return None
    return float(hurst)


@dataclass(frozen=True)
class DriftReport:
    """Is the window's apparent LRD explained by mean drift?"""

    raw_hurst: float
    detrended_hurst: float | None
    hurst_gap: float           # raw - detrended (0 when undetermined)
    rate_alarms_in_window: int
    drifting: bool
    reason: str
    idle_excess: float = 0.0   # empty-tick fraction beyond Poisson's

    def payload(self) -> dict:
        return {
            "raw_hurst": self.raw_hurst,
            "detrended_hurst": self.detrended_hurst,
            "hurst_gap": self.hurst_gap,
            "rate_alarms_in_window": self.rate_alarms_in_window,
            "idle_excess": self.idle_excess,
            "drifting": self.drifting,
            "reason": self.reason,
        }


def assess_drift(
    process: CountProcess,
    raw_hurst: float,
    rate_alarms_in_window: int,
    *,
    n_blocks: int = 8,
    min_level: int = 10,
    hurst_gap: float = 0.15,
    hurst_high: float = 0.65,
    alarm_limit: int = 2,
    idle_excess: float = 0.0,
    idle_limit: float = 0.35,
) -> DriftReport:
    """Classify the window: genuine LRD vs drift faking it.

    Three independent symptoms flag drift: (a) detrending block means
    collapses an elevated H by more than ``hurst_gap``; (b) the rate
    change-point detectors fired ``alarm_limit`` or more times inside
    the window (a stationary LRD stream is bursty but does not keep
    shifting its reference mean); (c) the window's empty-tick fraction
    exceeds the Poisson expectation at its mean rate by ``idle_limit``
    or more — the signature of ON/OFF rate modulation, which fakes LRD
    at coarse scales yet leaves whole ticks silent far more often than
    a stationary heavy-tailed renewal ever does.
    """
    h_det = detrended_hurst(process, n_blocks=n_blocks, min_level=min_level)
    gap = 0.0 if h_det is None else raw_hurst - h_det
    gap_says_drift = (h_det is not None and gap > hurst_gap
                      and raw_hurst > hurst_high)
    alarms_say_drift = rate_alarms_in_window >= alarm_limit
    idle_says_drift = idle_excess >= idle_limit
    reasons = []
    if gap_says_drift:
        reasons.append(f"detrending drops H from {raw_hurst:.2f} to "
                       f"{h_det:.2f}")
    if alarms_say_drift:
        reasons.append(f"{rate_alarms_in_window} rate alarms in window")
    if idle_says_drift:
        reasons.append(f"idle-tick excess {idle_excess:.2f} implies "
                       "on/off modulation")
    reason = ("; ".join(reasons) if reasons
              else "window consistent with a stationary process")
    return DriftReport(
        raw_hurst=float(raw_hurst),
        detrended_hurst=h_det,
        hurst_gap=float(gap),
        rate_alarms_in_window=int(rate_alarms_in_window),
        drifting=bool(gap_says_drift or alarms_say_drift or idle_says_drift),
        reason=reason,
        idle_excess=float(idle_excess),
    )
