"""Synthetic stress streams for the monitor (the Clegg scenarios).

Clegg et al. ("Criticisms of modelling packet traffic using LRD",
PAPERS.md) list the ways a finite trace can *look* long-range dependent
without being so: nonstationary mean drift, and Markov-modulated (hence
short-range-dependent) on/off sources whose burst structure mimics
self-similarity at the measured scales.  A production monitor must tell
these apart from the real thing, so the test battery here provides one
stream per failure mode plus the genuine article:

* :func:`poisson_stream` — the H≈0.5 null.
* :func:`pareto_stream` — Pareto-renewal interarrivals with β≈1.3:
  pseudo-self-similar counts with H ≈ (3-β)/2 ≈ 0.85 (Appendix C).
* :func:`hurst_step_stream` — Poisson then Pareto-renewal at the same
  mean rate: a pure dependence-structure step the alarm layer must
  catch *without* a rate change to lean on.
* :func:`markov_onoff_stream` — exponential ON/OFF sojourns with
  Poisson arrivals during ON: strictly SRD, but bursty enough to fake
  an elevated variance-time slope (expected verdict: nonstationary,
  never self-similar).
* :func:`diurnal_ramp_stream` — the `traces.diurnal` TELNET profile
  compressed into a short run: a deterministic load ramp that inflates
  the raw variance-time slope (expected verdict: nonstationary).

Every stream is a sorted ``float64`` array of arrival times; feed it to
the service through :func:`iter_batches` to emulate a live collector.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson, piecewise_poisson
from repro.distributions.pareto import Pareto
from repro.traces.diurnal import hourly_rates
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive

__all__ = [
    "diurnal_ramp_stream",
    "hurst_step_stream",
    "iter_batches",
    "markov_onoff_stream",
    "pareto_stream",
    "poisson_stream",
]


def poisson_stream(duration: float, rate: float,
                   seed: SeedLike = None) -> np.ndarray:
    """Homogeneous Poisson arrivals on [0, duration): the H≈0.5 null."""
    return homogeneous_poisson(rate, duration, seed=seed)


def pareto_stream(duration: float, rate: float, shape: float = 1.3,
                  seed: SeedLike = None, t0: float = 0.0) -> np.ndarray:
    """Pareto-renewal arrivals at mean rate ``rate`` on [t0, t0+duration).

    Interarrivals are i.i.d. Pareto(location, ``shape``) with the
    location chosen so the mean gap is ``1/rate`` (mean = location *
    β/(β-1), so β must exceed 1).  With β ≈ 1.3 the count process is
    pseudo-self-similar with H ≈ (3-β)/2 ≈ 0.85.
    """
    require_positive(duration, "duration")
    require_positive(rate, "rate")
    if shape <= 1.0:
        raise ValueError(
            f"shape must be > 1 for a finite mean rate, got {shape}"
        )
    rng = as_rng(seed)
    location = (1.0 / rate) * (shape - 1.0) / shape
    dist = Pareto(location, shape)
    horizon = t0 + duration
    times = []
    t = t0
    block = max(int(rate * duration * 1.25) + 16, 1024)
    while t < horizon:
        gaps = dist.sample(block, seed=rng)
        cum = t + np.cumsum(gaps)
        t = float(cum[-1])
        times.append(cum)
    out = np.concatenate(times)
    return out[out < horizon]


def hurst_step_stream(duration: float, rate: float, t_step: float,
                      shape: float = 1.3,
                      seed: SeedLike = None) -> np.ndarray:
    """Poisson until ``t_step``, Pareto-renewal after, same mean rate.

    The mean rate never changes — only the dependence structure steps
    from H≈0.5 to H≈(3-shape)/2 — so this isolates the Hurst-series
    change-point detector from the rate detectors.
    """
    require_positive(duration, "duration")
    if not 0.0 < t_step < duration:
        raise ValueError(
            f"t_step must be inside (0, {duration}), got {t_step}"
        )
    rng = as_rng(seed)
    head = homogeneous_poisson(rate, t_step, seed=rng)
    tail = pareto_stream(duration - t_step, rate, shape, seed=rng, t0=t_step)
    return np.concatenate([head, tail])


def markov_onoff_stream(duration: float, rate_on: float,
                        mean_on: float = 5.0, mean_off: float = 15.0,
                        seed: SeedLike = None) -> np.ndarray:
    """Markov-modulated Poisson process: the SRD source that fakes LRD.

    A two-state Markov chain with exponential sojourns (``mean_on`` /
    ``mean_off`` seconds) emits Poisson arrivals at ``rate_on`` while ON
    and nothing while OFF.  Autocorrelations decay exponentially — the
    process is short-range dependent by construction — yet over windows
    comparable to the sojourn times the on/off bursts inflate the
    variance-time slope exactly like the Clegg et al. counterexample.
    """
    require_positive(duration, "duration")
    require_positive(rate_on, "rate_on")
    require_positive(mean_on, "mean_on")
    require_positive(mean_off, "mean_off")
    rng = as_rng(seed)
    pieces = []
    t = 0.0
    on = True  # start ON so short streams are never empty
    while t < duration:
        sojourn = float(rng.exponential(mean_on if on else mean_off))
        end = min(t + sojourn, duration)
        if on and end > t:
            burst = homogeneous_poisson(rate_on, end - t, seed=rng)
            pieces.append(t + burst)
        t = end
        on = not on
    if not pieces:
        return np.zeros(0, dtype=float)
    return np.concatenate(pieces)


def diurnal_ramp_stream(duration: float, mean_rate: float,
                        protocol: str = "telnet", site: str = "west",
                        n_hours: int = 12, start_hour: int = 4,
                        seed: SeedLike = None) -> np.ndarray:
    """A diurnal load ramp compressed into ``duration`` seconds.

    Takes ``n_hours`` of the `traces.diurnal` hourly profile starting at
    ``start_hour`` (the TELNET office-hours ramp climbs ~9x between
    hours 5 and 10) and plays each "hour" in ``duration / n_hours``
    seconds of stream time — a deterministic mean trend, the classic
    nonstationarity that fakes LRD in a variance-time plot.
    """
    require_positive(duration, "duration")
    require_positive(mean_rate, "mean_rate")
    if n_hours < 2:
        raise ValueError(f"n_hours must be >= 2, got {n_hours}")
    rates = hourly_rates(protocol, mean_rate, start_hour + n_hours,
                         site)[start_hour:]
    return piecewise_poisson(rates, interval=duration / n_hours, seed=seed)


def iter_batches(times: np.ndarray,
                 batch_seconds: float = 1.0) -> Iterator[np.ndarray]:
    """Slice a sorted arrival array into consecutive time batches.

    Emulates a live collector delivering everything that arrived in each
    ``batch_seconds`` tick (empty ticks are skipped, as a real collector
    would deliver nothing).
    """
    require_positive(batch_seconds, "batch_seconds")
    arr = np.asarray(times, dtype=float)
    if arr.size == 0:
        return
    edges = np.arange(arr[0], arr[-1] + batch_seconds, batch_seconds)
    idx = np.searchsorted(arr, edges)
    for lo, hi in zip(idx[:-1], idx[1:]):
        if hi > lo:
            yield arr[lo:hi]
    if idx[-1] < arr.size:
        yield arr[idx[-1]:]
