"""Always-on online estimation over live traffic (`repro.monitor`).

Promotes the batch sketch battery (`repro.stream.sketches`) to a
production monitor: sliding-window / decaying sketches with the same
exact-merge algebra, per-batch Hurst / Pareto-tail / Poisson estimates,
CUSUM and Page–Hinkley regime-shift alarms, and the Clegg et al.
LRD-vs-drift discrimination — so a diurnal ramp or a Markov-modulated
burst source is reported ``nonstationary``, never ``self-similar``.
"""

from .changepoint import CusumDetector, PageHinkleyDetector, RegimeShiftAlarm
from .estimators import (
    DriftReport,
    HurstEstimate,
    OnlineHurst,
    OnlinePoissonCheck,
    OnlineTail,
    TailEstimate,
    assess_drift,
    detrended_hurst,
)
from .scenarios import (
    diurnal_ramp_stream,
    hurst_step_stream,
    iter_batches,
    markov_onoff_stream,
    pareto_stream,
    poisson_stream,
)
from .service import MonitorConfig, MonitorReport, MonitorService, MonitorSnapshot
from .windows import (
    DecayedMoments,
    DecayedTopK,
    SlidingCountLadder,
    WindowedQuantileSketch,
)

__all__ = [
    "CusumDetector",
    "DecayedMoments",
    "DecayedTopK",
    "DriftReport",
    "HurstEstimate",
    "MonitorConfig",
    "MonitorReport",
    "MonitorService",
    "MonitorSnapshot",
    "OnlineHurst",
    "OnlinePoissonCheck",
    "OnlineTail",
    "PageHinkleyDetector",
    "RegimeShiftAlarm",
    "SlidingCountLadder",
    "TailEstimate",
    "WindowedQuantileSketch",
    "assess_drift",
    "detrended_hurst",
    "diurnal_ramp_stream",
    "hurst_step_stream",
    "iter_batches",
    "markov_onoff_stream",
    "pareto_stream",
    "poisson_stream",
]
