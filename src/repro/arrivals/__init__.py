"""Arrival-process generators and their closed-form theory.

* :mod:`repro.arrivals.poisson` — the null models of Section III.
* :mod:`repro.arrivals.pareto_renewal` — Appendix C's pseudo-self-similar
  i.i.d.-Pareto renewal process with burst/lull analytics.
* :mod:`repro.arrivals.onoff` — heavy-tailed ON/OFF multiplexing [28].
* :mod:`repro.arrivals.mg_infinity` — the M/G/infinity construction and its
  autocovariance (Appendices D and E).
* :mod:`repro.arrivals.cluster` — the clustered / timer-driven / cascade
  mechanisms behind the non-Poisson protocols (NNTP, SMTP, WWW, FTPDATA).
"""

from repro.arrivals.cluster import (
    cascade_arrivals,
    compound_poisson_cluster,
    modulated_poisson,
    timer_driven_arrivals,
)
from repro.arrivals.mg_infinity import (
    MGInfinity,
    asymptotic_hurst,
    is_long_range_dependent,
    lognormal_mg_infinity,
    pareto_autocovariance,
    pareto_mg_infinity,
)
from repro.arrivals.cross_traffic import self_similar_cross_traffic
from repro.arrivals.mgk import MGkResult, simulate_mgk
from repro.arrivals.onoff import OnOffSource, expected_hurst, multiplex_onoff
from repro.arrivals.pareto_renewal import (
    BurstLullSummary,
    burst_lull_summary,
    burst_termination_bounds,
    expected_burst_length,
    lull_length_bounds,
    pareto_renewal_arrivals,
    pareto_renewal_counts,
    steady_state_empty_probability,
)
from repro.arrivals.poisson import (
    exponential_interarrival_times,
    homogeneous_poisson,
    piecewise_poisson,
    poisson_fixed_count,
    thinned_poisson,
)

__all__ = [
    "BurstLullSummary",
    "MGInfinity",
    "MGkResult",
    "OnOffSource",
    "asymptotic_hurst",
    "burst_lull_summary",
    "burst_termination_bounds",
    "cascade_arrivals",
    "compound_poisson_cluster",
    "expected_burst_length",
    "expected_hurst",
    "exponential_interarrival_times",
    "homogeneous_poisson",
    "is_long_range_dependent",
    "lognormal_mg_infinity",
    "lull_length_bounds",
    "modulated_poisson",
    "multiplex_onoff",
    "pareto_autocovariance",
    "pareto_mg_infinity",
    "pareto_renewal_arrivals",
    "pareto_renewal_counts",
    "simulate_mgk",
    "piecewise_poisson",
    "poisson_fixed_count",
    "self_similar_cross_traffic",
    "steady_state_empty_probability",
    "thinned_poisson",
    "timer_driven_arrivals",
]
