"""The M/G/k queue — Section VII-C-2's finite-capacity variant of M/G/inf.

"One way to incorporate the effect of limited bandwidth into the M/G/inf
model would be to explore a model of an M/G/k queue instead ... because
there are only k servers, the actual arrival times of individuals at a
server would occasionally have to be delayed until there was available
capacity.  While this limited capacity would have the effect of reducing
the fit of the multiplexed traffic to a self-similar model, it does not
eliminate the underlying large-scale correlations."

The simulator tracks the number of customers *in service* over time (the
analogue of the M/G/inf occupancy count) with Poisson arrivals, general
service times, ``k`` servers, and an unbounded FIFO waiting room.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class MGkResult:
    """Sampled occupancy of the M/G/k system."""

    in_service: np.ndarray  # busy servers at each sample instant
    in_system: np.ndarray  # busy + waiting
    dt: float
    k: int

    @property
    def utilization(self) -> float:
        return float(self.in_service.mean()) / self.k

    @property
    def mean_queue(self) -> float:
        return float((self.in_system - self.in_service).mean())


def simulate_mgk(
    rho: float,
    service: Distribution,
    k: int,
    n_steps: int,
    dt: float = 1.0,
    seed: SeedLike = None,
    warmup: float | None = None,
) -> MGkResult:
    """Simulate an M/G/k queue and sample its occupancy every ``dt``.

    Parameters
    ----------
    rho:
        Poisson arrival rate (customers / unit time).
    service:
        Service-time distribution (e.g. Pareto for the Appendix D regime).
    k:
        Number of servers; ``k = inf`` behaviour is recovered as k grows.
    """
    require_positive(rho, "rho")
    require_positive(dt, "dt")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    rng = as_rng(seed)
    span = n_steps * dt
    if warmup is None:
        mean = service.mean
        warmup = 10.0 * mean if np.isfinite(mean) else 0.1 * span

    # Arrivals over [-warmup, span).
    n_arr = rng.poisson(rho * (warmup + span))
    arrivals = np.sort(rng.uniform(-warmup, span, size=n_arr))
    services = service.sample(n_arr, seed=rng)

    obs = dt * np.arange(n_steps)
    in_service = np.zeros(n_steps, dtype=np.int64)
    in_system = np.zeros(n_steps, dtype=np.int64)

    busy: list[float] = []  # heap of service completion times
    waiting: list[tuple[float, float]] = []  # FIFO (arrival, service) pairs
    # Event-free sweep: walk arrivals and observation instants in time order.
    # `changes` records (time, delta_service, delta_system) step events for
    # occupancy reconstruction.
    changes: list[tuple[float, int, int]] = []

    wait_head = 0
    wait_buf: list[float] = []  # service times of queued customers (FIFO)

    def start_service(t: float, s: float) -> None:
        heapq.heappush(busy, t + s)
        changes.append((t, 1, 0))
        changes.append((t + s, -1, -1))

    for t, s in zip(arrivals, services):
        # complete finished services; promote waiters
        while busy and busy[0] <= t:
            done = heapq.heappop(busy)
            if wait_head < len(wait_buf):
                start_service(done, wait_buf[wait_head])
                wait_head += 1
        changes.append((t, 0, 1))
        if len(busy) < k:
            start_service(t, s)
        else:
            wait_buf.append(s)
    # drain remaining waiters
    while busy and wait_head < len(wait_buf):
        done = heapq.heappop(busy)
        start_service(done, wait_buf[wait_head])
        wait_head += 1

    changes.sort(key=lambda c: c[0])
    times = np.array([c[0] for c in changes])
    d_serv = np.cumsum([c[1] for c in changes])
    d_sys = np.cumsum([c[2] for c in changes])
    idx = np.searchsorted(times, obs, side="right") - 1
    valid = idx >= 0
    in_service[valid] = d_serv[idx[valid]]
    in_system[valid] = d_sys[idx[valid]]
    return MGkResult(in_service=in_service, in_system=in_system, dt=dt, k=k)
