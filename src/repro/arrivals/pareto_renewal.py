"""The i.i.d.-Pareto renewal process of Appendix C.

Appendix C studies arrivals whose interarrival times are i.i.d. Pareto with
shape beta <~ 1 and shows the associated count process is
"pseudo-self-similar": over finite time scales it displays the balance of
bursts and lulls of a self-similar process (Figs. 14 and 15), even though in
the limit it is not long-range dependent.

The analytical skeleton implemented here:

* partition time into bins of width ``b``; a bin is *occupied* if it receives
  at least one arrival, *empty* otherwise;
* a *burst* is a maximal run of occupied bins, a *lull* a maximal run of
  empty bins;
* the per-interarrival probability of terminating a burst is bounded by
  (a/2b)^beta <= p_t <= (a/b)^beta  (eq. 3);
* expected burst length B ~ b/a (beta=2), ~ log(b/a) (beta=1), constant
  (beta=1/2);
* lull lengths measured *in bins* are stochastically invariant in ``b``
  (truncation-from-below invariance of the Pareto).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.pareto import Pareto
from repro.utils.binning import bin_counts
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_positive


def pareto_renewal_arrivals(
    n: int,
    shape: float,
    location: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Cumulative arrival times of ``n`` i.i.d. Pareto interarrivals."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    gaps = Pareto(location, shape).sample(n, seed=seed)
    return np.cumsum(gaps)


def pareto_renewal_counts(
    n_bins: int,
    bin_width: float,
    shape: float,
    location: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Count process {X_i}: arrivals per bin, for ``n_bins`` bins of width b.

    Generates interarrivals lazily in blocks until the observation window
    ``n_bins * bin_width`` is covered, so enormous bins (Fig. 15 uses
    b = 10^7) stay tractable.
    """
    require_positive(bin_width, "bin_width")
    if n_bins < 0:
        raise ValueError(f"n_bins must be >= 0, got {n_bins}")
    rng = as_rng(seed)
    horizon = n_bins * bin_width
    dist = Pareto(location, shape)

    # Stream interarrivals in fixed-size blocks and histogram incrementally:
    # with beta <= 1 and the huge bins of Fig. 15 (b = 10^7) the window can
    # contain hundreds of millions of arrivals, far too many to materialize.
    counts = np.zeros(n_bins, dtype=np.int64)
    t = 0.0
    block = 1 << 20
    while t < horizon:
        gaps = dist.sample(block, seed=rng)
        cum = t + np.cumsum(gaps)
        t = float(cum[-1])
        in_window = cum[cum < horizon]
        if in_window.size:
            idx = (in_window / bin_width).astype(np.int64)
            counts += np.bincount(idx, minlength=n_bins)
    return counts


# ----------------------------------------------------------------------
# Burst / lull structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurstLullSummary:
    """Run-length statistics of a binned count process (Appendix C)."""

    burst_lengths: np.ndarray  # lengths (in bins) of maximal occupied runs
    lull_lengths: np.ndarray  # lengths (in bins) of maximal empty runs

    @property
    def mean_burst(self) -> float:
        return float(self.burst_lengths.mean()) if self.burst_lengths.size else 0.0

    @property
    def mean_lull(self) -> float:
        return float(self.lull_lengths.mean()) if self.lull_lengths.size else 0.0

    @property
    def occupied_fraction(self) -> float:
        total = self.burst_lengths.sum() + self.lull_lengths.sum()
        if total == 0:
            return 0.0
        return float(self.burst_lengths.sum() / total)


def burst_lull_summary(counts: np.ndarray) -> BurstLullSummary:
    """Decompose a count process into alternating bursts and lulls.

    A bin is occupied if its count is > 0.  Runs are maximal; the sequence of
    run lengths partitions the series.
    """
    occ = np.asarray(counts) > 0
    if occ.size == 0:
        return BurstLullSummary(np.zeros(0, dtype=int), np.zeros(0, dtype=int))
    # Boundaries where occupancy flips.
    change = np.flatnonzero(np.diff(occ.astype(np.int8)) != 0)
    starts = np.concatenate([[0], change + 1])
    ends = np.concatenate([change + 1, [occ.size]])
    lengths = ends - starts
    kinds = occ[starts]
    return BurstLullSummary(
        burst_lengths=lengths[kinds].astype(int),
        lull_lengths=lengths[~kinds].astype(int),
    )


# ----------------------------------------------------------------------
# Appendix C closed forms
# ----------------------------------------------------------------------
def burst_termination_bounds(bin_width: float, location: float, shape: float) -> tuple[float, float]:
    """Bounds (eq. 3) on the probability an interarrival ends a burst.

    An interarrival > 2b always skips a bin (ends the burst); one > b may.
    Hence  P[I > 2b] <= p_t <= P[I > b], i.e.
    (a/2b)^beta <= p_t <= (a/b)^beta   (for b >= a).
    """
    require_positive(bin_width, "bin_width")
    d = Pareto(location, shape)
    lower = float(d.sf(np.asarray(2.0 * bin_width)))
    upper = float(d.sf(np.asarray(bin_width)))
    return lower, upper


def expected_burst_length(bin_width: float, location: float, shape: float) -> float:
    """Appendix C's approximation of the expected burst length (in bins).

    B ~= b/a for beta = 2 (b >> a); ~= log(b/a) for beta = 1 (b > a);
    ~= E[1/u^(1/2)] = 2 (a constant) for beta = 1/2.  For other shapes we
    return the geometric-variable estimate 1/p_t at the midpoint of the
    eq.-3 bounds — adequate for the qualitative scaling comparisons the
    paper draws.
    """
    require_positive(bin_width, "bin_width")
    b, a = bin_width, location
    if b <= a:
        return 1.0
    if abs(shape - 2.0) < 1e-9:
        return b / a
    if abs(shape - 1.0) < 1e-9:
        return math.log(b / a)
    if abs(shape - 0.5) < 1e-9:
        return 2.0
    lower, upper = burst_termination_bounds(b, a, shape)
    mid = 0.5 * (lower + upper)
    return 1.0 / mid if mid > 0 else math.inf


def lull_length_bounds(bin_width: float, location: float, shape: float) -> tuple[Pareto, Pareto]:
    """Stochastic bounds on the lull length L (in seconds).

    Every lull is produced by a single interarrival > b (definitely) and
    possibly > 2b, so L is stochastically bounded between Pareto(b, beta)
    and Pareto(2b, beta); dividing by b, the lull measured in *bins* is
    bounded between Pareto(1, beta) and Pareto(2, beta) — independent of b.
    """
    require_positive(bin_width, "bin_width")
    d = Pareto(location, shape)
    lo = d.truncated_from_below(bin_width)
    hi = d.truncated_from_below(2.0 * bin_width)
    return lo, hi


def steady_state_empty_probability(shape: float) -> float:
    """Appendix C's limit: for beta <= 1 every bin is eventually empty a.s.

    With infinite-mean lulls and finite-mean bursts, the alternating renewal
    process spends asymptotically all its time in lulls, so in steady state
    P[bin occupied] -> 0; for beta > 1 the probability is strictly positive.
    """
    require_positive(shape, "shape")
    return 0.0 if shape <= 1.0 else float("nan")
