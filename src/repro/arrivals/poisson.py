"""Poisson arrival-process generators.

Section III's positive result is that user-session arrivals (TELNET
connections, FTP sessions) are Poisson *with fixed hourly rates*: globally a
nonhomogeneous Poisson process whose rate is piecewise-constant over one-hour
intervals, following the diurnal pattern of Fig. 1.  Both the homogeneous
and the piecewise-constant nonhomogeneous generators live here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_nonnegative, require_positive


def homogeneous_poisson(rate: float, duration: float, seed: SeedLike = None) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, duration).

    Draws N ~ Poisson(rate * duration) and places the arrivals uniformly —
    the conditional-uniformity property — which is exact and O(N).
    """
    require_nonnegative(rate, "rate")
    require_nonnegative(duration, "duration")
    rng = as_rng(seed)
    n = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0.0, duration, size=n))


def poisson_fixed_count(n: int, duration: float, seed: SeedLike = None) -> np.ndarray:
    """``n`` arrival times of a Poisson process conditioned on its count.

    Conditioned on N(t) = n, Poisson arrivals are i.i.d. uniform on [0, t).
    Used when an experiment must match a trace's observed arrival count
    exactly (e.g. the VAR-EXP synthesis of Section IV).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    require_nonnegative(duration, "duration")
    rng = as_rng(seed)
    return np.sort(rng.uniform(0.0, duration, size=n))


def piecewise_poisson(
    hourly_rates: Sequence[float],
    interval: float = 3600.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals with piecewise-constant rates.

    ``hourly_rates[i]`` is the arrival rate (events/second) during the i-th
    interval of length ``interval`` seconds.  This is exactly the paper's
    null model: "during fixed-length intervals (say, one hour long) the
    arrival rate is constant".
    """
    require_positive(interval, "interval")
    rng = as_rng(seed)
    pieces = []
    for i, rate in enumerate(hourly_rates):
        require_nonnegative(rate, f"hourly_rates[{i}]")
        arrivals = homogeneous_poisson(rate, interval, seed=rng)
        pieces.append(i * interval + arrivals)
    if not pieces:
        return np.zeros(0, dtype=float)
    return np.concatenate(pieces)


def thinned_poisson(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    rate_max: float,
    duration: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Nonhomogeneous Poisson arrivals by Lewis-Shedler thinning.

    ``rate_fn`` maps (an array of) times to instantaneous rates bounded by
    ``rate_max``.  Used for smooth diurnal profiles where hourly steps are
    too coarse.
    """
    require_positive(rate_max, "rate_max")
    require_nonnegative(duration, "duration")
    rng = as_rng(seed)
    candidates = homogeneous_poisson(rate_max, duration, seed=rng)
    if candidates.size == 0:
        return candidates
    rates = np.asarray(rate_fn(candidates), dtype=float)
    if np.any(rates > rate_max * (1.0 + 1e-9)):
        raise ValueError("rate_fn exceeded rate_max; thinning is invalid")
    keep = rng.random(candidates.size) < rates / rate_max
    return candidates[keep]


def exponential_interarrival_times(
    n: int, mean: float, seed: SeedLike = None
) -> np.ndarray:
    """``n`` i.i.d. exponential interarrival gaps (not cumulative times)."""
    require_positive(mean, "mean")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return as_rng(seed).exponential(mean, size=n)
