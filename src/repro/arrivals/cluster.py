"""Clustered and timer-driven arrival processes.

Section III attributes the *failure* of Poisson models for machine-generated
traffic to specific mechanisms, which these generators reproduce:

* NNTP: flooding — a connection immediately spawns secondary connections as
  news is offered onward — plus timer-driven exchanges;
* SMTP: mailing-list explosions, "one connection immediately follows
  another", plus timer-driven queue retries (positive correlation of
  consecutive interarrivals);
* WWW and X11: within one user session many connections arrive in quick
  succession (the paper's conjecture for why X11 *connection* arrivals are
  not Poisson even though session arrivals should be);
* FTPDATA: multiple-get transfers produce back-to-back connections.
"""

from __future__ import annotations

import numpy as np

from repro.arrivals.poisson import homogeneous_poisson
from repro.distributions.base import Distribution
from repro.kernels.segments import grouped_cumsum
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import require_nonnegative, require_positive


def compound_poisson_cluster(
    session_rate: float,
    duration: float,
    cluster_size_dist: Distribution,
    within_gap_dist: Distribution,
    seed: SeedLike = None,
) -> np.ndarray:
    """Poisson cluster (Neyman-Scott-style) arrivals.

    Cluster *triggers* arrive as a homogeneous Poisson process; each trigger
    spawns ``N ~ cluster_size_dist`` (rounded up to >= 1) arrivals separated
    by gaps from ``within_gap_dist``.  Triggers model user sessions or
    mailing-list explosions; offspring model the machine-generated follow-on
    connections that destroy the memoryless property.

    RNG-stream contract: after the triggers, all cluster sizes are drawn in
    one vectorized call, then all within-cluster gaps in a second; the
    per-cluster offset ``cumsum`` uses the bit-exact segmented kernel, so
    the assembly matches a per-cluster loop over the same variates exactly.
    """
    rng = as_rng(seed)
    triggers = homogeneous_poisson(session_rate, duration, seed=rng)
    if triggers.size == 0:
        return triggers
    sizes = np.maximum(
        np.ceil(cluster_size_dist.sample(triggers.size, seed=rng)).astype(np.int64),
        1,
    )
    n_gaps = sizes - 1
    total_gaps = int(n_gaps.sum())
    gaps = (
        within_gap_dist.sample(total_gaps, seed=rng)
        if total_gaps
        else np.zeros(0)
    )
    offsets = np.zeros(int(sizes.sum()))
    follower = np.ones(offsets.size, dtype=bool)
    follower[np.cumsum(sizes) - sizes] = False  # cluster heads: offset 0
    offsets[follower] = grouped_cumsum(gaps, n_gaps)
    all_times = np.sort(np.repeat(triggers, sizes) + offsets)
    return all_times[all_times < duration]


def timer_driven_arrivals(
    period: float,
    duration: float,
    jitter_sd: float = 0.0,
    batch_size: int = 1,
    batch_gap: float = 0.0,
    phase: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Periodic (timer-driven) arrivals with optional Gaussian jitter.

    Models NNTP/SMTP timer behaviour and the periodic "weather-map" FTP
    traffic the paper removes before analysis.  Periodicity is the
    archetypal anti-Poisson structure: interarrivals concentrate at the
    period instead of being exponential, and the paper notes it can induce
    network-wide synchronization [17].
    """
    require_positive(period, "period")
    require_nonnegative(duration, "duration")
    require_nonnegative(jitter_sd, "jitter_sd")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_rng(seed)
    firings = np.arange(phase, duration, period)
    if jitter_sd > 0 and firings.size:
        firings = firings + rng.normal(0.0, jitter_sd, size=firings.size)
    if firings.size == 0:
        return np.zeros(0)
    # broadcast: firing x batch offset, elementwise identical to the
    # per-firing construction
    batch_offsets = batch_gap * np.arange(batch_size)
    all_times = np.sort((firings[:, None] + batch_offsets[None, :]).ravel())
    return all_times[(all_times >= 0.0) & (all_times < duration)]


def modulated_poisson(
    rates: tuple[float, float],
    mean_sojourn: tuple[float, float],
    duration: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Two-state Markov-modulated Poisson process (MMPP).

    The process alternates between states with arrival rates ``rates[0]``
    and ``rates[1]``, holding each state for an exponential sojourn with the
    given means.  Slowly varying intensity produces *positively correlated*
    consecutive interarrivals — the paper's consistent "+" annotation for
    SMTP — while remaining over-dispersed relative to Poisson.
    """
    require_nonnegative(duration, "duration")
    for i, r in enumerate(rates):
        require_nonnegative(r, f"rates[{i}]")
    for i, m in enumerate(mean_sojourn):
        require_positive(m, f"mean_sojourn[{i}]")
    rng = as_rng(seed)
    state = int(rng.random() < 0.5)
    t = 0.0
    times = []
    while t < duration:
        hold = float(rng.exponential(mean_sojourn[state]))
        end = min(t + hold, duration)
        arr = homogeneous_poisson(rates[state], end - t, seed=rng)
        times.append(t + arr)
        t = end
        state = 1 - state
    if not times:
        return np.zeros(0)
    return np.sort(np.concatenate(times))


def cascade_arrivals(
    seed_rate: float,
    duration: float,
    spawn_probability: float,
    spawn_delay_dist: Distribution,
    max_generations: int = 8,
    seed: SeedLike = None,
) -> np.ndarray:
    """Branching (flooding) arrivals: NNTP's propagation mechanism.

    Seed connections arrive Poisson; each connection independently spawns a
    secondary connection with probability ``spawn_probability`` after a delay
    from ``spawn_delay_dist``, recursively up to ``max_generations``.  The
    offspring chains produce the strong positive correlation and clustering
    that make NNTP "decidedly not Poisson".
    """
    if not 0.0 <= spawn_probability < 1.0:
        raise ValueError("spawn_probability must be in [0, 1)")
    rng = as_rng(seed)
    current = homogeneous_poisson(seed_rate, duration, seed=rng)
    all_times = [current]
    for _ in range(max_generations):
        if current.size == 0:
            break
        spawning = current[rng.random(current.size) < spawn_probability]
        if spawning.size == 0:
            break
        delays = spawn_delay_dist.sample(spawning.size, seed=rng)
        current = spawning + delays
        current = current[current < duration]
        all_times.append(current)
    return np.sort(np.concatenate(all_times))
