"""Heavy-tailed ON/OFF sources (Section VII-B, after Willinger et al. [28]).

The first of the paper's two constructions known to yield self-similar
traffic: multiplex many sources that alternate between an ON state (emitting
at a fixed rate) and an OFF state (silent), with ON and/or OFF period lengths
drawn from a heavy-tailed (infinite-variance) distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.pareto import Pareto
from repro.utils.rng import SeedLike, as_rng, spawn_rngs
from repro.utils.validation import require_positive

#: Periods drawn per vectorized block in :meth:`OnOffSource.intervals`.
#: Must be even so each block begins in the same phase it would have under
#: the scalar one-period-at-a-time walk.
PERIOD_BLOCK = 16


def _require_bin_count(n_bins) -> int:
    if not isinstance(n_bins, (int, np.integer)) or n_bins < 0:
        raise ValueError(f"n_bins must be an integer >= 0, got {n_bins!r}")
    return int(n_bins)


@dataclass(frozen=True)
class OnOffSource:
    """A single fluid ON/OFF source.

    Parameters
    ----------
    on_dist, off_dist:
        Distributions of ON and OFF period lengths (seconds).  Self-similar
        aggregate traffic requires at least one of them heavy-tailed with
        infinite variance (e.g. ``Pareto(shape < 2)``).
    rate:
        Emission rate (events/second) while ON.
    """

    on_dist: Distribution
    off_dist: Distribution
    rate: float = 1.0

    def __post_init__(self):
        require_positive(self.rate, "rate")

    @classmethod
    def pareto(
        cls,
        on_shape: float = 1.2,
        off_shape: float = 1.2,
        on_location: float = 1.0,
        off_location: float = 1.0,
        rate: float = 1.0,
    ) -> "OnOffSource":
        """The canonical construction: Pareto ON and OFF periods."""
        return cls(Pareto(on_location, on_shape), Pareto(off_location, off_shape), rate)

    def intervals(self, duration: float, seed: SeedLike = None, start_on: bool | None = None):
        """Return (start, end) ON intervals covering [0, duration).

        Periods are drawn in blocks of :data:`PERIOD_BLOCK` (half from the
        current phase's distribution, half from the other, then interleaved)
        instead of one ``sample(1)`` call per period; the period boundaries
        come from one sequential ``cumsum`` per block, bit-identical to a
        scalar ``t += length`` walk over the same variates.
        """
        require_positive(duration, "duration")
        rng = as_rng(seed)
        on = bool(rng.random() < 0.5) if start_on is None else start_on
        t = 0.0
        out = []
        block = PERIOD_BLOCK  # even, so each block starts in the same phase
        while t < duration:
            cur = (self.on_dist if on else self.off_dist).sample(
                block // 2, seed=rng
            )
            oth = (self.off_dist if on else self.on_dist).sample(
                block // 2, seed=rng
            )
            lengths = np.empty(block)
            lengths[0::2] = cur
            lengths[1::2] = oth
            bounds = np.cumsum(np.concatenate(([t], lengths)))
            starts, ends = bounds[:-1], bounds[1:]
            # starts is non-decreasing, so "still inside the horizon" is a
            # prefix of the block
            n_live = int(np.count_nonzero(starts < duration))
            phase_on = np.zeros(block, dtype=bool)
            phase_on[(0 if on else 1)::2] = True
            for i in np.flatnonzero(phase_on[:n_live]):
                out.append((float(starts[i]), min(float(ends[i]), duration)))
            if n_live < block:
                break
            t = float(bounds[-1])
        return out

    def counts(
        self, n_bins: int, bin_width: float, seed: SeedLike = None
    ) -> np.ndarray:
        """Fluid count process: work emitted per bin (rate x ON overlap).

        Bin placement follows the :mod:`repro.utils.binning` convention:
        bin ``i`` covers ``[i * bin_width, (i + 1) * bin_width)`` with the
        final bin closed on the right (an interval boundary landing exactly
        on an edge belongs to the bin on its right).  Both the first- and
        last-bin indices are clamped to ``n_bins - 1``: an interval start
        strictly inside the horizon can still round up to ``n_bins`` under
        float division when ``start / bin_width`` lands within an ulp of the
        top edge.
        """
        _require_bin_count(n_bins)
        require_positive(bin_width, "bin_width")
        duration = n_bins * bin_width
        if duration == 0:
            return np.zeros(0)
        work = np.zeros(n_bins, dtype=float)
        for start, end in self.intervals(duration, seed=seed):
            first = min(int(start / bin_width), n_bins - 1)
            last = min(int(end / bin_width), n_bins - 1)
            if first == last:
                work[first] += end - start
                continue
            work[first] += (first + 1) * bin_width - start
            work[first + 1:last] += bin_width
            work[last] += end - last * bin_width
        return work * self.rate


def multiplex_onoff(
    n_sources: int,
    n_bins: int,
    bin_width: float,
    source: OnOffSource | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Aggregate count process of ``n_sources`` independent ON/OFF sources.

    With heavy-tailed period lengths the aggregate converges (as sources and
    time scale grow) to fractional Gaussian noise with
    H = (3 - min(on_shape, off_shape)) / 2 — the [28] result the paper
    invokes in Section VII-B.

    This is the simple per-source loop; at scale (10^4+ sources) use the
    batched, bit-identical :func:`repro.kernels.superpose.superpose_onoff`,
    which consumes the same spawned RNG streams and supports process
    fan-out without pickling count arrays.
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    _require_bin_count(n_bins)
    src = source or OnOffSource.pareto()
    total = np.zeros(n_bins, dtype=float)
    for rng in spawn_rngs(seed, n_sources):
        total += src.counts(n_bins, bin_width, seed=rng)
    return total


def expected_hurst(on_shape: float, off_shape: float) -> float:
    """Limit Hurst parameter of the multiplexed ON/OFF aggregate,
    H = (3 - beta_min) / 2 for 1 < beta_min < 2."""
    beta = min(on_shape, off_shape)
    if not 1.0 < beta < 2.0:
        raise ValueError("the ON/OFF limit requires min shape in (1, 2)")
    return (3.0 - beta) / 2.0
